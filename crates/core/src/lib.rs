//! # spanners-core
//!
//! Core types and algorithms for **regular document spanners**, implementing the
//! constant-delay enumeration and counting algorithms of
//! *“Constant delay algorithms for regular document spanners”*
//! (Florenzano, Riveros, Ugarte, Vansummeren, Vrgoč — 2018).
//!
//! The crate provides:
//!
//! * the basic vocabulary of document spanners: [`Document`], [`Span`],
//!   [`Mapping`], capture [`variable`]s and variable [`Marker`]s;
//! * **extended variable-set automata** ([`Eva`]) — the paper's evaluation-friendly
//!   automaton model in which a transition carries a *set* of variable markers and
//!   variable/letter transitions alternate (Section 3.1);
//! * the **deterministic sequential eVA** representation [`DetSeva`] used by the
//!   evaluation algorithms, and its **lazy hybrid** counterpart
//!   ([`LazyDetSeva`] + budgeted [`LazyCache`], module [`lazy`]) that
//!   determinizes nondeterministic eVA on demand behind the [`Stepper`] seam;
//! * **Algorithm 1 + 2**: linear-time preprocessing and constant-delay enumeration of
//!   all output mappings ([`enumerate`]), driven by a sparse active-state set
//!   ([`sparse`]) and exposed both as the one-shot [`EnumerationDag`] and as the
//!   reusable, allocation-free-after-warm-up [`Evaluator`];
//! * **Algorithm 3**: counting the number of output mappings in `O(|A| × |d|)`
//!   ([`count`]);
//! * a high-level [`CompiledSpanner`] façade tying it all together.
//!
//! Automaton *construction* from regex formulas, translation of classical
//! variable-set automata, determinization, and the spanner algebra live in the
//! companion crates `spanners-regex`, `spanners-automata` and `spanners-algebra`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod byteclass;
pub mod count;
pub mod det;
pub mod document;
pub mod enumerate;
pub mod error;
pub mod eva;
pub mod lazy;
pub mod limits;
pub mod mapping;
pub mod markerset;
pub mod product;
pub mod slp;
pub mod span;
pub mod spanner;
pub mod sparse;
pub mod variable;

pub use byteclass::{
    find_next_interesting, AlphabetPartition, ByteClass, ClassMask, ClassRun, ClassRuns,
    InterestMask,
};
pub use count::{count_mappings, CountCache, Counter};
pub use det::{DetSeva, Stepper};
pub use document::Document;
pub use enumerate::{DagView, EngineMode, EnumerationDag, Evaluator, MappingIter};
pub use error::{ParseError, Result, SpannerError};
pub use eva::{Eva, EvaBuilder, EvaRun, StateId};
pub use lazy::{
    CapacitySignature, EvictionPolicy, FrozenCache, FrozenDelta, FrozenStepper, LazyCache,
    LazyConfig, LazyDetSeva, LazyStepper,
};
pub use limits::{EvalLimits, GovernorHandle, GovernorStats, MemoryGovernor};
pub use mapping::{
    dedup_mappings, join_mapping_sets, project_mapping_set, union_mapping_sets, Mapping,
};
pub use markerset::{MarkerSet, VarSet, VariableStatus};
pub use product::{AnnotatedProduct, AnnotatedTransition};
pub use slp::{Slp, SlpEvaluator, SlpRules, SlpSharedMemo};
pub use span::{all_spans, Span};
pub use spanner::{CompiledSpanner, EnginePolicy};
pub use sparse::SparseSet;
pub use variable::{Marker, VarId, VarRegistry, MAX_VARIABLES};

/// Compile-time thread-safety audit of the batch/serving runtime's sharing
/// model: the compiled automata and frozen snapshots are shared *read-only*
/// across worker threads (`Send + Sync`), while every mutable engine — the
/// evaluators, count caches, lazy caches and frozen-overflow deltas — is
/// per-worker state that only needs to move between threads (`Send`).
/// A field that silently introduced interior mutability or a thread-bound
/// type would fail this function's bounds and break the build.
#[allow(dead_code)]
fn assert_runtime_thread_safety() {
    fn shared<T: Send + Sync>() {}
    fn per_worker<T: Send>() {}
    shared::<DetSeva>();
    shared::<LazyDetSeva>();
    shared::<FrozenCache>();
    shared::<AlphabetPartition>();
    shared::<CompiledSpanner>();
    shared::<Document>();
    per_worker::<Evaluator>();
    per_worker::<CountCache<u64>>();
    per_worker::<LazyCache>();
    per_worker::<FrozenDelta>();
    shared::<Slp>();
    shared::<SlpRules>();
    shared::<SlpSharedMemo>();
    per_worker::<SlpEvaluator>();
    shared::<MemoryGovernor>();
    shared::<GovernorHandle>();
}
