//! Byte classes: sets of alphabet symbols labelling letter transitions.
//!
//! A letter transition of an automaton rarely matches a single byte; realistic
//! extraction rules use classes such as `[a-z]`, `\d`, or `Σ` (any byte).
//! [`ByteClass`] is a 256-bit set of bytes, and [`AlphabetPartition`] computes
//! the coarsest partition of the byte alphabet such that every class used by
//! an automaton is a union of partition blocks — the standard trick that lets
//! determinization and dense transition tables work over a handful of
//! equivalence classes instead of all 256 bytes.

use std::fmt;

/// A set of bytes, represented as a 256-bit bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteClass {
    bits: [u64; 4],
}

impl Default for ByteClass {
    fn default() -> Self {
        ByteClass::empty()
    }
}

impl ByteClass {
    /// The empty byte class.
    #[inline]
    pub const fn empty() -> Self {
        ByteClass { bits: [0; 4] }
    }

    /// The class of all 256 bytes (the paper's `Σ`).
    #[inline]
    pub const fn any() -> Self {
        ByteClass { bits: [u64::MAX; 4] }
    }

    /// A class containing a single byte.
    #[inline]
    pub fn singleton(b: u8) -> Self {
        let mut c = ByteClass::empty();
        c.insert(b);
        c
    }

    /// A class containing every byte in the inclusive range `lo..=hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut c = ByteClass::empty();
        if lo <= hi {
            for b in lo..=hi {
                c.insert(b);
            }
        }
        c
    }

    /// A class containing every byte of `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut c = ByteClass::empty();
        for &b in bytes {
            c.insert(b);
        }
        c
    }

    /// ASCII decimal digits `[0-9]`.
    pub fn ascii_digits() -> Self {
        ByteClass::range(b'0', b'9')
    }

    /// ASCII letters `[A-Za-z]`.
    pub fn ascii_alpha() -> Self {
        ByteClass::range(b'a', b'z').union(&ByteClass::range(b'A', b'Z'))
    }

    /// ASCII alphanumerics plus underscore (`\w`).
    pub fn ascii_word() -> Self {
        ByteClass::ascii_alpha()
            .union(&ByteClass::ascii_digits())
            .union(&ByteClass::singleton(b'_'))
    }

    /// ASCII whitespace (`\s`): space, tab, newline, carriage return, form feed, vertical tab.
    pub fn ascii_space() -> Self {
        ByteClass::from_bytes(b" \t\n\r\x0c\x0b")
    }

    /// Whether the class contains byte `b`.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Inserts byte `b`.
    #[inline]
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes byte `b`.
    #[inline]
    pub fn remove(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Number of bytes in the class.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the class is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &ByteClass) -> ByteClass {
        let mut bits = [0u64; 4];
        for (i, w) in bits.iter_mut().enumerate() {
            *w = self.bits[i] | other.bits[i];
        }
        ByteClass { bits }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ByteClass) -> ByteClass {
        let mut bits = [0u64; 4];
        for (i, w) in bits.iter_mut().enumerate() {
            *w = self.bits[i] & other.bits[i];
        }
        ByteClass { bits }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &ByteClass) -> ByteClass {
        let mut bits = [0u64; 4];
        for (i, w) in bits.iter_mut().enumerate() {
            *w = self.bits[i] & !other.bits[i];
        }
        ByteClass { bits }
    }

    /// Complement with respect to the full byte alphabet.
    pub fn complement(&self) -> ByteClass {
        let mut bits = [0u64; 4];
        for (i, w) in bits.iter_mut().enumerate() {
            *w = !self.bits[i];
        }
        ByteClass { bits }
    }

    /// Whether the classes share at least one byte.
    pub fn intersects(&self, other: &ByteClass) -> bool {
        (0..4).any(|i| self.bits[i] & other.bits[i] != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &ByteClass) -> bool {
        (0..4).all(|i| self.bits[i] & !other.bits[i] == 0)
    }

    /// Iterates over the bytes in the class in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).map(|b| b as u8).filter(move |&b| self.contains(b))
    }

    /// An arbitrary representative byte of the class, if non-empty.
    pub fn first(&self) -> Option<u8> {
        self.iter().next()
    }
}

impl fmt::Display for ByteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ByteClass::any() {
            return write!(f, "Σ");
        }
        if self.len() == 1 {
            let b = self.first().unwrap();
            return if b.is_ascii_graphic() {
                write!(f, "{}", b as char)
            } else {
                write!(f, "\\x{b:02x}")
            };
        }
        // Render as compact ranges.
        write!(f, "[")?;
        let mut b = 0usize;
        while b < 256 {
            if self.contains(b as u8) {
                let start = b;
                while b + 1 < 256 && self.contains((b + 1) as u8) {
                    b += 1;
                }
                let render = |f: &mut fmt::Formatter<'_>, x: u8| -> fmt::Result {
                    if x.is_ascii_graphic() {
                        write!(f, "{}", x as char)
                    } else {
                        write!(f, "\\x{x:02x}")
                    }
                };
                render(f, start as u8)?;
                if b > start {
                    write!(f, "-")?;
                    render(f, b as u8)?;
                }
            }
            b += 1;
        }
        write!(f, "]")
    }
}

/// A set of alphabet equivalence-class indices, as a 256-bit bitmap.
///
/// Class indices never exceed 255 (an [`AlphabetPartition`] maps bytes
/// through a `u8` table), so four `u64` words cover every possible partition.
/// The evaluation engines use one `ClassMask` per automaton state to record
/// which classes are *skippable* for that state, and intersect the masks of
/// the live states into the active set's skippable-class set — one AND per
/// surviving state instead of a per-run predicate test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassMask {
    words: [u64; 4],
}

impl ClassMask {
    /// The empty mask (no class skippable).
    #[inline]
    pub const fn empty() -> Self {
        ClassMask { words: [0; 4] }
    }

    /// The full mask (every possible class index). Intersecting it with the
    /// per-state masks of the live states is how the engines seed the
    /// active-set mask — an empty active set vacuously skips everything.
    #[inline]
    pub const fn all() -> Self {
        ClassMask { words: [u64::MAX; 4] }
    }

    /// Inserts class index `cls`.
    #[inline]
    pub fn insert(&mut self, cls: usize) {
        debug_assert!(cls < 256, "class indices are at most 255");
        self.words[(cls >> 6) & 3] |= 1u64 << (cls & 63);
    }

    /// Removes class index `cls`.
    #[inline]
    pub fn remove(&mut self, cls: usize) {
        debug_assert!(cls < 256, "class indices are at most 255");
        self.words[(cls >> 6) & 3] &= !(1u64 << (cls & 63));
    }

    /// Whether the mask contains class index `cls`.
    #[inline]
    pub fn contains(&self, cls: usize) -> bool {
        debug_assert!(cls < 256, "class indices are at most 255");
        self.words[(cls >> 6) & 3] & (1u64 << (cls & 63)) != 0
    }

    /// Intersects this mask with `other` in place (the per-state AND of the
    /// active-set mask maintenance).
    #[inline]
    pub fn intersect_with(&mut self, other: &ClassMask) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    /// Whether no class is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of classes in the mask.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The byte-level *interest* table derived from a skippable-class
/// [`ClassMask`]: byte `b` is **interesting** when its equivalence class is
/// not wholly skippable for the current active set, i.e. the evaluation loop
/// cannot jump over it and must execute a `(Capturing; Reading)` step there.
///
/// Stored as a flat 256-entry 0/1 table so [`find_next_interesting`] can OR
/// sixteen lookups per iteration — the same chunked-LUT shape as
/// [`AlphabetPartition::classify_into`], autovectorizable with no unsafe
/// code. Build one with [`AlphabetPartition::interest_mask_into`].
#[derive(Debug, Clone)]
pub struct InterestMask {
    lut: [u8; 256],
}

impl Default for InterestMask {
    /// Defaults to *every* byte interesting — the conservative direction: a
    /// mask used before being derived from a real [`ClassMask`] makes the
    /// scanner stop at once instead of skipping work it must not skip.
    fn default() -> Self {
        InterestMask { lut: [1; 256] }
    }
}

impl InterestMask {
    /// Whether byte `b` is interesting under this mask.
    #[inline]
    pub fn is_interesting(&self, b: u8) -> bool {
        self.lut[b as usize] != 0
    }

    /// Number of interesting bytes (diagnostics).
    pub fn count_interesting(&self) -> usize {
        self.lut.iter().filter(|&&v| v != 0).count()
    }
}

/// Finds the next *interesting* document position at or after `from`: the
/// first `i >= from` with `interest.is_interesting(doc[i])`, or `None` when
/// the rest of the document is wholly skippable.
///
/// This is the scanning core of the skip-mask fast path
/// ([`crate::EngineMode::SkipScan`]): instead of materializing class runs and
/// testing each one, the engine jumps straight from one interesting byte to
/// the next. The loop mirrors [`AlphabetPartition::classify_into`] — 16-byte
/// chunks over a flat 256-entry table, ORed into a single "any interesting?"
/// accumulator, so LLVM unrolls and vectorises the common all-skippable
/// chunks into a handful of vector ops (memchr-style throughput without
/// unsafe code or explicit SIMD).
pub fn find_next_interesting(doc: &[u8], from: usize, interest: &InterestMask) -> Option<usize> {
    // A 64-byte outer stride of four independent 16-byte accumulators: the
    // four OR chains have no dependencies between them, so the loop keeps
    // multiple loads in flight per cycle (and vectorises where the target
    // supports it). 16 stays the LUT-chunk granularity of the position scan.
    const CHUNK: usize = 16;
    const STRIDE: usize = 4 * CHUNK;
    let start = from.min(doc.len());
    let lut = &interest.lut;
    let mut offset = start;
    let mut strides = doc[start..].chunks_exact(STRIDE);
    for s in &mut strides {
        let mut any = [0u8; 4];
        for lane in 0..4 {
            let c = &s[lane * CHUNK..(lane + 1) * CHUNK];
            for &b in c {
                any[lane] |= lut[b as usize];
            }
        }
        if any.iter().any(|&a| a != 0) {
            let j = s
                .iter()
                .position(|&b| lut[b as usize] != 0)
                .expect("an accumulator saw an interesting byte in this stride");
            return Some(offset + j);
        }
        offset += STRIDE;
    }
    // Tail: one 16-byte-chunked pass over the last < 64 bytes.
    let mut chunks = strides.remainder().chunks_exact(CHUNK);
    for c in &mut chunks {
        let mut any = 0u8;
        for &b in c {
            any |= lut[b as usize];
        }
        if any != 0 {
            let j = c
                .iter()
                .position(|&b| lut[b as usize] != 0)
                .expect("the accumulator saw an interesting byte in this chunk");
            return Some(offset + j);
        }
        offset += CHUNK;
    }
    chunks.remainder().iter().position(|&b| lut[b as usize] != 0).map(|j| offset + j)
}

/// A partition of the 256-byte alphabet into equivalence classes.
///
/// Two bytes are equivalent when no byte class of the automaton distinguishes
/// them. Deterministic automata store one dense transition entry per
/// equivalence class instead of per byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphabetPartition {
    /// Maps each byte to its equivalence-class index.
    class_of: [u8; 256],
    /// Number of equivalence classes.
    num_classes: usize,
    /// A representative byte for each class.
    representatives: Vec<u8>,
    /// The byte membership of each class (one 256-bit set per class) — the
    /// table [`AlphabetPartition::interest_mask_into`] unions to turn a
    /// skippable-class mask into a byte-level interest table.
    class_bytes: Vec<ByteClass>,
}

impl AlphabetPartition {
    /// The trivial partition with a single class containing every byte.
    pub fn trivial() -> Self {
        AlphabetPartition {
            class_of: [0; 256],
            num_classes: 1,
            representatives: vec![0],
            class_bytes: vec![ByteClass::any()],
        }
    }

    /// Computes the coarsest partition refining all the given byte classes.
    ///
    /// Every byte class in `classes` is a union of blocks of the returned
    /// partition. The construction assigns each byte a signature — the set of
    /// input classes it belongs to — and groups bytes by signature.
    pub fn from_classes<'a, I>(classes: I) -> Self
    where
        I: IntoIterator<Item = &'a ByteClass>,
    {
        let classes: Vec<&ByteClass> = classes.into_iter().collect();
        // Signature of byte b = bitmask over `classes` membership. With more
        // than 128 distinct classes we fall back to a vector signature.
        let mut signatures: Vec<Vec<u64>> = vec![vec![0u64; classes.len().div_ceil(64)]; 256];
        for (ci, c) in classes.iter().enumerate() {
            for (b, sig) in signatures.iter_mut().enumerate() {
                if c.contains(b as u8) {
                    sig[ci / 64] |= 1u64 << (ci % 64);
                }
            }
        }
        let mut class_of = [0u8; 256];
        let mut seen: Vec<(&Vec<u64>, u8)> = Vec::new();
        let mut representatives = Vec::new();
        for b in 0..256usize {
            let sig = &signatures[b];
            match seen.iter().find(|(s, _)| *s == sig) {
                Some(&(_, idx)) => class_of[b] = idx,
                None => {
                    let idx = seen.len() as u8;
                    seen.push((sig, idx));
                    representatives.push(b as u8);
                    class_of[b] = idx;
                }
            }
        }
        let mut class_bytes = vec![ByteClass::empty(); seen.len()];
        for b in 0..256usize {
            class_bytes[class_of[b] as usize].insert(b as u8);
        }
        AlphabetPartition { class_of, num_classes: seen.len(), representatives, class_bytes }
    }

    /// The equivalence-class index of byte `b`.
    #[inline]
    pub fn class_of(&self, b: u8) -> usize {
        self.class_of[b as usize] as usize
    }

    /// Bulk classification: maps every byte of `bytes` to its equivalence
    /// class, writing into the reusable buffer `out` (cleared first, capacity
    /// retained across calls).
    ///
    /// The loop is structured as fixed-width chunks over a flat 256-entry
    /// lookup table so that LLVM can unroll and vectorise it — no unsafe code
    /// or explicit SIMD intrinsics. One pass of this plus run-length encoding
    /// ([`ClassRuns`]) is what lets the evaluation engines work per class run
    /// instead of per byte.
    pub fn classify_into(&self, bytes: &[u8], out: &mut Vec<u8>) {
        const CHUNK: usize = 16;
        out.clear();
        out.resize(bytes.len(), 0);
        let lut = &self.class_of;
        let mut src = bytes.chunks_exact(CHUNK);
        let mut dst = out.chunks_exact_mut(CHUNK);
        for (s, d) in (&mut src).zip(&mut dst) {
            // Fixed-trip-count inner loop with no bounds checks after the
            // chunking: LLVM unrolls and interleaves the 16 table loads.
            for j in 0..CHUNK {
                d[j] = lut[s[j] as usize];
            }
        }
        for (s, d) in src.remainder().iter().zip(dst.into_remainder()) {
            *d = lut[*s as usize];
        }
    }

    /// Number of equivalence classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// A representative byte for equivalence class `idx`.
    pub fn representative(&self, idx: usize) -> u8 {
        self.representatives[idx]
    }

    /// The full byte membership of equivalence class `idx` (a 256-bit set).
    #[inline]
    pub fn class_members(&self, idx: usize) -> &ByteClass {
        &self.class_bytes[idx]
    }

    /// Derives the byte-level interest table of a skippable-class mask: byte
    /// `b` becomes *interesting* exactly when its equivalence class is **not**
    /// in `skippable`. Writes into the caller-provided `out` so the hot loop
    /// performs no allocation (an `InterestMask` is a flat inline table).
    ///
    /// The scanning engines rebuild this only when the active set's
    /// intersected [`ClassMask`] changes — dense regions that churn the
    /// active set every byte never pay for it, because the rebuild is
    /// deferred until a skippable position is actually reached.
    pub fn interest_mask_into(&self, skippable: &ClassMask, out: &mut InterestMask) {
        let mut interesting = ByteClass::empty();
        for cls in 0..self.num_classes {
            if !skippable.contains(cls) {
                interesting = interesting.union(&self.class_bytes[cls]);
            }
        }
        for (b, slot) in out.lut.iter_mut().enumerate() {
            *slot = interesting.contains(b as u8) as u8;
        }
    }

    /// All equivalence-class indices that intersect the given byte class.
    pub fn classes_intersecting(&self, c: &ByteClass) -> Vec<usize> {
        let mut out = Vec::new();
        self.classes_intersecting_into(c, &mut out);
        out
    }

    /// Like [`AlphabetPartition::classes_intersecting`], but writing the
    /// (ascending) class indices into a caller-provided buffer so bulk
    /// transition-table construction — e.g. the per-(state, class) target
    /// lists of the lazy determinizer — performs one allocation total instead
    /// of one per transition.
    pub fn classes_intersecting_into(&self, c: &ByteClass, out: &mut Vec<usize>) {
        out.clear();
        // At most 256 classes exist, so a stack bitmap avoids heap traffic.
        let mut seen = [false; 256];
        for b in c.iter() {
            seen[self.class_of(b)] = true;
        }
        out.extend((0..self.num_classes).filter(|&i| seen[i]));
    }
}

/// A maximal run of consecutive document positions sharing one alphabet
/// equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassRun {
    /// The equivalence-class index shared by every position of the run.
    pub class: u8,
    /// First document position of the run (0-based).
    pub start: usize,
    /// Number of positions in the run (always ≥ 1).
    pub len: usize,
}

/// Run-length encodes a class buffer produced by
/// [`AlphabetPartition::classify_into`]: yields maximal `(class, start, len)`
/// runs in document order.
///
/// Real documents overwhelmingly put consecutive bytes in the same equivalence
/// class (long stretches of "noise" between matches), so the evaluation loops
/// iterate these runs and consume an entire skippable run in O(live states)
/// instead of O(run length × live states).
#[derive(Debug, Clone)]
pub struct ClassRuns<'a> {
    classes: &'a [u8],
    pos: usize,
}

impl<'a> ClassRuns<'a> {
    /// Iterates the maximal class runs of `classes`.
    pub fn new(classes: &'a [u8]) -> Self {
        ClassRuns { classes, pos: 0 }
    }
}

impl Iterator for ClassRuns<'_> {
    type Item = ClassRun;

    fn next(&mut self) -> Option<ClassRun> {
        let start = self.pos;
        let cls = *self.classes.get(start)?;
        let mut end = start + 1;
        while self.classes.get(end) == Some(&cls) {
            end += 1;
        }
        self.pos = end;
        Some(ClassRun { class: cls, start, len: end - start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_any_singleton() {
        assert!(ByteClass::empty().is_empty());
        assert_eq!(ByteClass::empty().len(), 0);
        assert_eq!(ByteClass::any().len(), 256);
        let c = ByteClass::singleton(b'a');
        assert_eq!(c.len(), 1);
        assert!(c.contains(b'a'));
        assert!(!c.contains(b'b'));
    }

    #[test]
    fn range_and_from_bytes() {
        let c = ByteClass::range(b'a', b'c');
        assert_eq!(c.len(), 3);
        assert!(c.contains(b'b'));
        assert!(ByteClass::range(b'z', b'a').is_empty());
        let d = ByteClass::from_bytes(b"xyz");
        assert_eq!(d.len(), 3);
        assert!(d.contains(b'y'));
    }

    #[test]
    fn predefined_classes() {
        assert_eq!(ByteClass::ascii_digits().len(), 10);
        assert_eq!(ByteClass::ascii_alpha().len(), 52);
        assert_eq!(ByteClass::ascii_word().len(), 63);
        assert!(ByteClass::ascii_space().contains(b' '));
        assert!(ByteClass::ascii_space().contains(b'\n'));
        assert!(!ByteClass::ascii_space().contains(b'a'));
    }

    #[test]
    fn set_operations() {
        let a = ByteClass::range(b'a', b'f');
        let b = ByteClass::range(b'd', b'k');
        assert_eq!(a.union(&b).len(), 11);
        assert_eq!(a.intersection(&b).len(), 3);
        assert_eq!(a.difference(&b).len(), 3);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&ByteClass::range(b'x', b'z')));
        assert!(a.intersection(&b).is_subset(&a));
        assert_eq!(a.complement().len(), 250);
        assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn insert_remove_boundary_bytes() {
        let mut c = ByteClass::empty();
        c.insert(0);
        c.insert(63);
        c.insert(64);
        c.insert(255);
        assert_eq!(c.len(), 4);
        assert!(c.contains(0) && c.contains(63) && c.contains(64) && c.contains(255));
        c.remove(64);
        assert!(!c.contains(64));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn iter_and_first() {
        let c = ByteClass::from_bytes(b"cab");
        let bytes: Vec<u8> = c.iter().collect();
        assert_eq!(bytes, vec![b'a', b'b', b'c']);
        assert_eq!(c.first(), Some(b'a'));
        assert_eq!(ByteClass::empty().first(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ByteClass::any().to_string(), "Σ");
        assert_eq!(ByteClass::singleton(b'a').to_string(), "a");
        assert_eq!(ByteClass::singleton(0x01).to_string(), "\\x01");
        assert_eq!(ByteClass::range(b'a', b'd').to_string(), "[a-d]");
        let two = ByteClass::singleton(b'a').union(&ByteClass::singleton(b'z'));
        assert_eq!(two.to_string(), "[az]");
    }

    #[test]
    fn partition_trivial() {
        let p = AlphabetPartition::trivial();
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.class_of(b'a'), p.class_of(b'!'));
    }

    #[test]
    fn partition_from_classes() {
        let digits = ByteClass::ascii_digits();
        let alpha = ByteClass::ascii_alpha();
        let at = ByteClass::singleton(b'@');
        let p = AlphabetPartition::from_classes([&digits, &alpha, &at]);
        // Blocks: digits, alpha, '@', everything else => 4 classes.
        assert_eq!(p.num_classes(), 4);
        assert_eq!(p.class_of(b'0'), p.class_of(b'9'));
        assert_eq!(p.class_of(b'a'), p.class_of(b'Z'));
        assert_ne!(p.class_of(b'0'), p.class_of(b'a'));
        assert_ne!(p.class_of(b'@'), p.class_of(b'#'));
        assert_eq!(p.class_of(b'#'), p.class_of(b' '));
        // Every input class is a union of blocks: all members share the class index set.
        for c in [&digits, &alpha, &at] {
            let ids: std::collections::HashSet<_> = c.iter().map(|b| p.class_of(b)).collect();
            for b in 0..=255u8 {
                if ids.contains(&p.class_of(b)) {
                    assert!(c.contains(b), "byte {b} in same block but not in class");
                }
            }
        }
    }

    #[test]
    fn partition_overlapping_classes() {
        let a = ByteClass::range(b'a', b'f');
        let b = ByteClass::range(b'd', b'k');
        let p = AlphabetPartition::from_classes([&a, &b]);
        // Blocks: a-only (a..c), both (d..f), b-only (g..k), neither => 4.
        assert_eq!(p.num_classes(), 4);
        assert_eq!(p.class_of(b'a'), p.class_of(b'c'));
        assert_eq!(p.class_of(b'd'), p.class_of(b'f'));
        assert_eq!(p.class_of(b'g'), p.class_of(b'k'));
        assert_ne!(p.class_of(b'a'), p.class_of(b'd'));
        assert_ne!(p.class_of(b'd'), p.class_of(b'g'));
    }

    #[test]
    fn partition_representatives_and_intersections() {
        let digits = ByteClass::ascii_digits();
        let p = AlphabetPartition::from_classes([&digits]);
        assert_eq!(p.num_classes(), 2);
        for idx in 0..p.num_classes() {
            let rep = p.representative(idx);
            assert_eq!(p.class_of(rep), idx);
        }
        let hit = p.classes_intersecting(&ByteClass::singleton(b'5'));
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0], p.class_of(b'5'));
        let all = p.classes_intersecting(&ByteClass::any());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn classes_intersecting_into_matches_allocating_form() {
        let digits = ByteClass::ascii_digits();
        let alpha = ByteClass::ascii_alpha();
        let p = AlphabetPartition::from_classes([&digits, &alpha]);
        let mut buf = Vec::new();
        for probe in [
            ByteClass::any(),
            ByteClass::empty(),
            ByteClass::singleton(b'5'),
            ByteClass::range(b'0', b'z'),
            ByteClass::from_bytes(b"a0!"),
        ] {
            p.classes_intersecting_into(&probe, &mut buf);
            assert_eq!(buf, p.classes_intersecting(&probe), "probe {probe}");
        }
    }

    #[test]
    fn partition_no_classes() {
        let p = AlphabetPartition::from_classes(std::iter::empty());
        assert_eq!(p.num_classes(), 1);
    }

    #[test]
    fn classify_into_matches_class_of() {
        let digits = ByteClass::ascii_digits();
        let alpha = ByteClass::ascii_alpha();
        let p = AlphabetPartition::from_classes([&digits, &alpha]);
        // Lengths straddling the 16-byte chunk width, including 0 and exact
        // multiples, so both the chunked loop and the remainder are covered.
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 256] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut out = Vec::new();
            p.classify_into(&bytes, &mut out);
            assert_eq!(out.len(), len);
            for (i, &b) in bytes.iter().enumerate() {
                assert_eq!(out[i] as usize, p.class_of(b), "byte {b} at {i}, len {len}");
            }
        }
    }

    #[test]
    fn classify_into_reuses_buffer() {
        let p = AlphabetPartition::trivial();
        let mut out = Vec::new();
        p.classify_into(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17], &mut out);
        let cap = out.capacity();
        p.classify_into(&[9, 9], &mut out);
        assert_eq!(out, vec![0, 0]);
        assert_eq!(out.capacity(), cap, "shrinking input must not reallocate");
    }

    #[test]
    fn class_runs_rle() {
        let runs: Vec<ClassRun> = ClassRuns::new(&[2, 2, 2, 0, 1, 1, 2]).collect();
        assert_eq!(
            runs,
            vec![
                ClassRun { class: 2, start: 0, len: 3 },
                ClassRun { class: 0, start: 3, len: 1 },
                ClassRun { class: 1, start: 4, len: 2 },
                ClassRun { class: 2, start: 6, len: 1 },
            ]
        );
        assert_eq!(ClassRuns::new(&[]).count(), 0);
        let single: Vec<ClassRun> = ClassRuns::new(&[7]).collect();
        assert_eq!(single, vec![ClassRun { class: 7, start: 0, len: 1 }]);
    }

    #[test]
    fn class_mask_set_operations() {
        let mut m = ClassMask::empty();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        m.insert(0);
        m.insert(63);
        m.insert(64);
        m.insert(255);
        assert_eq!(m.len(), 4);
        assert!(m.contains(0) && m.contains(63) && m.contains(64) && m.contains(255));
        assert!(!m.contains(1));
        m.remove(64);
        assert!(!m.contains(64));
        assert_eq!(m.len(), 3);
        let full = ClassMask::all();
        assert_eq!(full.len(), 256);
        let mut and = full;
        and.intersect_with(&m);
        assert_eq!(and, m);
        let mut none = m;
        none.intersect_with(&ClassMask::empty());
        assert!(none.is_empty());
    }

    #[test]
    fn class_members_partition_the_alphabet() {
        let digits = ByteClass::ascii_digits();
        let alpha = ByteClass::ascii_alpha();
        let p = AlphabetPartition::from_classes([&digits, &alpha]);
        let mut total = 0;
        for cls in 0..p.num_classes() {
            let members = p.class_members(cls);
            total += members.len();
            for b in members.iter() {
                assert_eq!(p.class_of(b), cls, "byte {b} in wrong class set");
            }
        }
        assert_eq!(total, 256, "class byte sets must partition the alphabet");
    }

    #[test]
    fn interest_mask_complements_skippable_classes() {
        let digits = ByteClass::ascii_digits();
        let p = AlphabetPartition::from_classes([&digits]);
        let digit_cls = p.class_of(b'5');
        let mut skippable = ClassMask::empty();
        skippable.insert(1 - digit_cls); // the non-digit class
        let mut interest = InterestMask::default();
        p.interest_mask_into(&skippable, &mut interest);
        for b in 0..=255u8 {
            assert_eq!(interest.is_interesting(b), b.is_ascii_digit(), "byte {b}");
        }
        assert_eq!(interest.count_interesting(), 10);
        // All classes skippable: nothing is interesting; none skippable: all.
        let mut all = ClassMask::empty();
        all.insert(0);
        all.insert(1);
        p.interest_mask_into(&all, &mut interest);
        assert_eq!(interest.count_interesting(), 0);
        p.interest_mask_into(&ClassMask::empty(), &mut interest);
        assert_eq!(interest.count_interesting(), 256);
    }

    #[test]
    fn find_next_interesting_matches_scalar_scan() {
        let digits = ByteClass::ascii_digits();
        let p = AlphabetPartition::from_classes([&digits]);
        let digit_cls = p.class_of(b'0');
        let mut skippable = ClassMask::empty();
        skippable.insert(1 - digit_cls);
        let mut interest = InterestMask::default();
        p.interest_mask_into(&skippable, &mut interest);
        // Single interesting byte planted at every position of documents whose
        // lengths straddle the 16-byte chunk width.
        for len in [1usize, 15, 16, 17, 31, 32, 33, 64, 100] {
            for pos in 0..len {
                let mut doc = vec![b'q'; len];
                doc[pos] = b'7';
                for from in [0usize, pos.saturating_sub(1), pos, pos + 1, len] {
                    let expected = (from..len).find(|&i| interest.is_interesting(doc[i]));
                    assert_eq!(
                        find_next_interesting(&doc, from, &interest),
                        expected,
                        "len {len}, pos {pos}, from {from}"
                    );
                }
            }
        }
        // Empty documents and all-skippable tails.
        assert_eq!(find_next_interesting(&[], 0, &interest), None);
        assert_eq!(find_next_interesting(&[b'z'; 100], 0, &interest), None);
        // `from` past the end is tolerated.
        assert_eq!(find_next_interesting(b"77", 5, &interest), None);
    }

    #[test]
    fn default_interest_mask_is_conservative() {
        let interest = InterestMask::default();
        assert_eq!(interest.count_interesting(), 256);
        assert_eq!(find_next_interesting(b"abc", 0, &interest), Some(0));
    }

    #[test]
    fn class_runs_cover_the_buffer() {
        let digits = ByteClass::ascii_digits();
        let p = AlphabetPartition::from_classes([&digits]);
        let doc: Vec<u8> = b"abc123de45678fg9".repeat(13);
        let mut classes = Vec::new();
        p.classify_into(&doc, &mut classes);
        let mut covered = 0usize;
        for run in ClassRuns::new(&classes) {
            assert_eq!(run.start, covered, "runs must be contiguous");
            assert!(run.len >= 1);
            for &c in &classes[run.start..run.start + run.len] {
                assert_eq!(c, run.class);
            }
            // Maximality: the neighbouring classes differ.
            if run.start > 0 {
                assert_ne!(classes[run.start - 1], run.class);
            }
            covered = run.start + run.len;
        }
        assert_eq!(covered, doc.len());
    }
}
