//! High-level façade tying compilation, evaluation, enumeration and counting together.

use crate::count::{CountCache, Counter};
use crate::det::DetSeva;
use crate::document::Document;
use crate::enumerate::{DagView, EnumerationDag, Evaluator, MappingIter};
use crate::error::SpannerError;
use crate::eva::Eva;
use crate::lazy::{FrozenCache, LazyConfig, LazyDetSeva};
use crate::mapping::Mapping;
use crate::slp::{Slp, SlpEvaluator};
use crate::variable::VarRegistry;
use std::sync::Arc;

/// Which determinization engine a [`CompiledSpanner`] should use.
///
/// * **Eager** compiles the automaton into the dense tables of [`DetSeva`]
///   up front — the fastest per-byte stepping, but it requires the input to
///   already be deterministic and pays the full table cost at compile time.
/// * **Lazy** keeps the (possibly nondeterministic) automaton and
///   determinizes on demand inside a budgeted [`crate::LazyCache`] — large or
///   nondeterministic user-supplied spanners start evaluating immediately and
///   never exceed the memory budget, at the cost of cache bookkeeping on
///   cold rows.
/// * **Auto** (the default) picks eager for small deterministic automata and
///   lazy for everything else — see [`CompiledSpanner::from_eva_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePolicy {
    /// Eager below [`CompiledSpanner::AUTO_EAGER_MAX_CELLS`] letter-table
    /// cells (and only for deterministic input), lazy above it.
    #[default]
    Auto,
    /// Always compile eagerly; fails with [`SpannerError::NotDeterministic`]
    /// on nondeterministic input.
    Eager,
    /// Always determinize lazily, with the default [`LazyConfig`].
    Lazy,
}

/// The compiled engine behind a [`CompiledSpanner`].
#[derive(Debug, Clone)]
enum Engine {
    Eager(DetSeva),
    Lazy(LazyDetSeva),
}

/// A compiled document spanner, ready to be evaluated over many documents.
///
/// A `CompiledSpanner` wraps either an eagerly compiled deterministic
/// sequential extended VA ([`DetSeva`]) or a lazily determinized one
/// ([`LazyDetSeva`]); the engine is chosen by an [`EnginePolicy`] (see
/// [`CompiledSpanner::from_eva_with`]). Construct one from an [`Eva`] with
/// [`CompiledSpanner::from_eva`], or — more conveniently — from a regex
/// formula or classical VA through the `spanners-regex` / `spanners-automata`
/// crates, which perform the translations of Section 4 of the paper and end
/// with this type.
///
/// Evaluation follows the two-phase structure of the paper:
///
/// 1. [`CompiledSpanner::evaluate`] runs the linear-time preprocessing
///    (Algorithm 1), producing an [`EnumerationDag`];
/// 2. the DAG is then enumerated with constant delay (Algorithm 2), counted,
///    or materialized.
///
/// The convenience methods [`CompiledSpanner::mappings`],
/// [`CompiledSpanner::count`] and [`CompiledSpanner::is_match`] bundle the two
/// phases for one-shot use; [`CompiledSpanner::evaluate_with`] and
/// [`CompiledSpanner::count_with`] are the hot-path entry points and work
/// with both engines (the lazy determinization cache lives inside the
/// caller's [`Evaluator`] / [`CountCache`] and stays warm across documents).
/// Every entry point drives the engines in their default
/// [`crate::EngineMode::SkipScan`] inner loop — skip-mask scanning over the
/// raw document bytes; pass an explicitly-moded [`Evaluator`] /
/// [`CountCache`] to the `*_with` methods to select the class-run or
/// per-byte fallbacks.
#[derive(Debug, Clone)]
pub struct CompiledSpanner {
    engine: Engine,
}

impl CompiledSpanner {
    /// [`EnginePolicy::Auto`]'s eager/lazy threshold, in letter-table cells
    /// (states × alphabet classes). Deterministic automata at or below it
    /// compile eagerly (the dense table is at most a few hundred kilobytes);
    /// anything larger — or any nondeterministic automaton — goes lazy.
    pub const AUTO_EAGER_MAX_CELLS: usize = 1 << 16;

    /// Compiles a sequential eVA into a spanner under [`EnginePolicy::Auto`].
    ///
    /// Fails if the automaton is not sequential, or — for the eager engine
    /// only — not deterministic. Nondeterministic input is handled by the
    /// lazy engine, which `Auto` selects for it automatically.
    pub fn from_eva(eva: &Eva) -> Result<Self, SpannerError> {
        Self::from_eva_with(eva, EnginePolicy::Auto)
    }

    /// Compiles a sequential eVA with an explicit engine choice.
    ///
    /// `Auto` resolves to eager iff the input is deterministic **and** its
    /// dense letter table would hold at most
    /// [`CompiledSpanner::AUTO_EAGER_MAX_CELLS`] cells; otherwise lazy.
    pub fn from_eva_with(eva: &Eva, policy: EnginePolicy) -> Result<Self, SpannerError> {
        let engine = match policy {
            EnginePolicy::Eager => Engine::Eager(DetSeva::compile(eva)?),
            EnginePolicy::Lazy => Engine::Lazy(LazyDetSeva::new(eva, LazyConfig::default())?),
            EnginePolicy::Auto => {
                let cells = eva.num_states().saturating_mul(
                    crate::byteclass::AlphabetPartition::from_classes(eva.letter_classes().iter())
                        .num_classes(),
                );
                if cells <= Self::AUTO_EAGER_MAX_CELLS && eva.is_deterministic() {
                    Engine::Eager(DetSeva::compile(eva)?)
                } else {
                    Engine::Lazy(LazyDetSeva::new(eva, LazyConfig::default())?)
                }
            }
        };
        Ok(CompiledSpanner { engine })
    }

    /// Compiles a sequential eVA with the lazy engine and an explicit cache
    /// configuration (memory budget).
    pub fn from_eva_lazy(eva: &Eva, config: LazyConfig) -> Result<Self, SpannerError> {
        Ok(CompiledSpanner { engine: Engine::Lazy(LazyDetSeva::new(eva, config)?) })
    }

    /// Wraps an already-compiled deterministic sequential eVA (eager engine).
    pub fn from_det(automaton: DetSeva) -> Self {
        CompiledSpanner { engine: Engine::Eager(automaton) }
    }

    /// Wraps an already-prepared lazy automaton (lazy engine).
    pub fn from_lazy(automaton: LazyDetSeva) -> Self {
        CompiledSpanner { engine: Engine::Lazy(automaton) }
    }

    /// Whether this spanner runs on the lazy determinization engine.
    pub fn is_lazy(&self) -> bool {
        matches!(self.engine, Engine::Lazy(_))
    }

    /// The underlying eagerly compiled automaton, if the eager engine is in
    /// use (`None` for lazy spanners).
    pub fn eager_automaton(&self) -> Option<&DetSeva> {
        match &self.engine {
            Engine::Eager(det) => Some(det),
            Engine::Lazy(_) => None,
        }
    }

    /// The underlying lazy automaton, if the lazy engine is in use.
    pub fn lazy_automaton(&self) -> Option<&LazyDetSeva> {
        match &self.engine {
            Engine::Eager(_) => None,
            Engine::Lazy(lazy) => Some(lazy),
        }
    }

    /// The underlying eagerly compiled automaton, or `None` for lazy-backed
    /// spanners. An alias of [`CompiledSpanner::eager_automaton`], kept as
    /// the canonical name (it replaced a panicking `automaton()` accessor:
    /// since `EnginePolicy::Auto` routes nondeterministic or oversized input
    /// to the lazy engine, no caller may assume an eager automaton exists
    /// unless it chose the engine itself).
    #[inline]
    pub fn try_automaton(&self) -> Option<&DetSeva> {
        self.eager_automaton()
    }

    /// The registry naming the spanner's capture variables.
    pub fn registry(&self) -> &VarRegistry {
        match &self.engine {
            Engine::Eager(det) => det.registry(),
            Engine::Lazy(lazy) => lazy.registry(),
        }
    }

    /// Phase 1 (Algorithm 1): preprocess `doc` in time `O(|A| × |d|)`,
    /// producing the compact DAG representation of all output mappings.
    pub fn evaluate(&self, doc: &Document) -> EnumerationDag {
        match &self.engine {
            Engine::Eager(det) => EnumerationDag::build(det, doc),
            Engine::Lazy(lazy) => Evaluator::new().eval_lazy_owned(lazy, doc),
        }
    }

    /// Like [`CompiledSpanner::evaluate`], but running inside a caller-owned
    /// [`Evaluator`] so that repeated evaluations over many documents reuse
    /// the DAG arenas — and, for lazy spanners, the warm determinization
    /// cache — instead of allocating fresh ones. The hot-path entry point
    /// for serving workloads.
    pub fn evaluate_with<'a>(
        &'a self,
        evaluator: &'a mut Evaluator,
        doc: &Document,
    ) -> DagView<'a> {
        match &self.engine {
            Engine::Eager(det) => evaluator.eval(det, doc),
            Engine::Lazy(lazy) => evaluator.eval_lazy(lazy, doc),
        }
    }

    /// [`CompiledSpanner::evaluate_with`] under the evaluator's configured
    /// [`crate::EvalLimits`]: a tripped step budget, deadline, or eviction
    /// thrash guard surfaces as an `Err` for this document instead of a
    /// panic, and the evaluator stays reusable for the next document.
    pub fn try_evaluate_with<'a>(
        &'a self,
        evaluator: &'a mut Evaluator,
        doc: &Document,
    ) -> Result<DagView<'a>, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.try_eval(det, doc),
            Engine::Lazy(lazy) => evaluator.try_eval_lazy(lazy, doc),
        }
    }

    /// Evaluates and materializes all output mappings.
    ///
    /// Equivalent to `self.evaluate(doc).collect_mappings()`; prefer
    /// [`CompiledSpanner::evaluate`] + [`EnumerationDag::iter`] when the output
    /// may be large and you want to stream it.
    pub fn mappings(&self, doc: &Document) -> Vec<Mapping> {
        self.evaluate(doc).collect_mappings()
    }

    /// Counts `|⟦A⟧(d)|` in time `O(|A| × |d|)` without enumerating
    /// (Algorithm 3 / Theorem 5.1).
    pub fn count<C: Counter>(&self, doc: &Document) -> Result<C, SpannerError> {
        self.count_with(&mut CountCache::new(), doc)
    }

    /// Counts `|⟦A⟧(d)|` as a `u64`.
    pub fn count_u64(&self, doc: &Document) -> Result<u64, SpannerError> {
        self.count(doc)
    }

    /// Like [`CompiledSpanner::count`], but running inside a caller-owned
    /// [`CountCache`] so that repeated counts over many documents reuse the
    /// per-state buffers (and, for lazy spanners, the warm determinization
    /// cache) instead of allocating fresh ones — the hot-path entry point
    /// for counting workloads.
    pub fn count_with<C: Counter>(
        &self,
        cache: &mut CountCache<C>,
        doc: &Document,
    ) -> Result<C, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => cache.count(det, doc),
            Engine::Lazy(lazy) => cache.count_lazy(lazy, doc),
        }
    }

    /// Whether the spanner produces at least one mapping on `doc`.
    ///
    /// Runs the transition relation without building the DAG — linear time,
    /// constant memory in the document (for lazy spanners: bounded by the
    /// configured cache budget). One-shot: a lazy spanner determinizes from
    /// a cold cache each call; hot paths matching many documents should use
    /// [`CompiledSpanner::is_match_with`] instead.
    pub fn is_match(&self, doc: &Document) -> bool {
        match &self.engine {
            Engine::Eager(det) => det.accepts(doc),
            Engine::Lazy(lazy) => lazy.accepts(&mut lazy.create_cache(), doc),
        }
    }

    /// Like [`CompiledSpanner::is_match`], but reusing the caller-owned
    /// [`Evaluator`]'s embedded determinization cache, so repeated match
    /// checks on a lazy spanner amortize subset construction across
    /// documents exactly like [`CompiledSpanner::evaluate_with`] does.
    pub fn is_match_with(&self, evaluator: &mut Evaluator, doc: &Document) -> bool {
        match &self.engine {
            Engine::Eager(det) => det.accepts(doc),
            Engine::Lazy(lazy) => evaluator.accepts_lazy(lazy, doc),
        }
    }

    /// [`CompiledSpanner::is_match_with`] under the evaluator's configured
    /// [`crate::EvalLimits`] (see [`CompiledSpanner::try_evaluate_with`]).
    pub fn try_is_match_with(
        &self,
        evaluator: &mut Evaluator,
        doc: &Document,
    ) -> Result<bool, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.try_accepts(det, doc),
            Engine::Lazy(lazy) => evaluator.try_accepts_lazy(lazy, doc),
        }
    }

    /// Convenience wrapper: evaluate and iterate in one call, holding the DAG
    /// alive for the duration of the borrow.
    pub fn iter_mappings<'a>(&self, dag: &'a EnumerationDag) -> MappingIter<'a> {
        dag.iter()
    }

    /// Warms a private determinization cache on `warm_docs` and freezes it
    /// into a shareable [`FrozenCache`] snapshot — the preparation step of
    /// the parallel batch/serving runtime. Returns `None` for eager spanners,
    /// whose dense tables are already immutable and shared by reference.
    ///
    /// The snapshot captures every subset state and transition row the warm
    /// documents exercised; worker threads then step through it read-only,
    /// each computing the (rare, for a representative warm set) leftovers in
    /// a private [`crate::FrozenDelta`]. An empty `warm_docs` yields a valid
    /// but cold snapshot: every state is then rediscovered per document.
    pub fn freeze_warm(&self, warm_docs: &[Document]) -> Option<FrozenCache> {
        let lazy = self.lazy_automaton()?;
        let mut evaluator = Evaluator::new();
        for doc in warm_docs {
            let _ = evaluator.eval_lazy(lazy, doc).num_nodes();
        }
        Some(match evaluator.lazy_cache() {
            Some(cache) => cache.freeze(lazy),
            None => lazy.create_cache().freeze(lazy),
        })
    }

    /// Like [`CompiledSpanner::evaluate_with`], but stepping a lazy spanner
    /// through the shared `frozen` snapshot (with the evaluator's private
    /// overflow delta) instead of the evaluator's embedded mutable cache —
    /// the per-worker entry point of the batch runtime. Eager spanners ignore
    /// `frozen` (their tables are already shared and immutable), so callers
    /// can hold an `Option<FrozenCache>` and dispatch uniformly.
    pub fn evaluate_frozen_with<'a>(
        &'a self,
        evaluator: &'a mut Evaluator,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> DagView<'a> {
        match &self.engine {
            Engine::Eager(det) => evaluator.eval(det, doc),
            Engine::Lazy(lazy) => evaluator.eval_frozen(lazy, frozen, doc),
        }
    }

    /// [`CompiledSpanner::evaluate_frozen_with`] under the evaluator's
    /// configured [`crate::EvalLimits`] (see
    /// [`CompiledSpanner::try_evaluate_with`]).
    pub fn try_evaluate_frozen_with<'a>(
        &'a self,
        evaluator: &'a mut Evaluator,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<DagView<'a>, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.try_eval(det, doc),
            Engine::Lazy(lazy) => evaluator.try_eval_frozen(lazy, frozen, doc),
        }
    }

    /// Like [`CompiledSpanner::count_with`], but stepping a lazy spanner
    /// through the shared `frozen` snapshot (see
    /// [`CompiledSpanner::evaluate_frozen_with`]).
    pub fn count_frozen_with<C: Counter>(
        &self,
        cache: &mut CountCache<C>,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<C, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => cache.count(det, doc),
            Engine::Lazy(lazy) => cache.count_frozen(lazy, frozen, doc),
        }
    }

    /// Like [`CompiledSpanner::is_match_with`], but stepping a lazy spanner
    /// through the shared `frozen` snapshot (see
    /// [`CompiledSpanner::evaluate_frozen_with`]).
    pub fn is_match_frozen_with(
        &self,
        evaluator: &mut Evaluator,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> bool {
        match &self.engine {
            Engine::Eager(det) => det.accepts(doc),
            Engine::Lazy(lazy) => evaluator.accepts_frozen(lazy, frozen, doc),
        }
    }

    /// [`CompiledSpanner::is_match_frozen_with`] under the evaluator's
    /// configured [`crate::EvalLimits`] (see
    /// [`CompiledSpanner::try_evaluate_with`]).
    pub fn try_is_match_frozen_with(
        &self,
        evaluator: &mut Evaluator,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<bool, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.try_accepts(det, doc),
            Engine::Lazy(lazy) => evaluator.try_accepts_frozen(lazy, frozen, doc),
        }
    }

    /// Counts `|⟦A⟧(d)|` directly over an [`Slp`]-compressed document —
    /// **without decompressing** — inside the caller-owned
    /// [`SlpEvaluator`], whose per-`(symbol, state)` memo amortizes the
    /// bottom-up grammar pass across a corpus sharing one rule set. Counts
    /// and match verdicts are byte-identical to running the byte engines on
    /// [`Slp::decompress`]'s output; cost is proportional to the
    /// *compressed* size once the memo is warm.
    pub fn count_slp_with(
        &self,
        evaluator: &mut SlpEvaluator,
        slp: &Slp,
    ) -> Result<u64, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.count(det, slp),
            Engine::Lazy(lazy) => evaluator.count_lazy(lazy, slp),
        }
    }

    /// Whether the spanner produces at least one mapping on the compressed
    /// document (see [`CompiledSpanner::count_slp_with`]); the
    /// acceptance-fold sibling, immune to count overflow.
    pub fn is_match_slp_with(
        &self,
        evaluator: &mut SlpEvaluator,
        slp: &Slp,
    ) -> Result<bool, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.accepts(det, slp),
            Engine::Lazy(lazy) => evaluator.accepts_lazy(lazy, slp),
        }
    }

    /// [`CompiledSpanner::count_slp_with`] stepping a lazy spanner through
    /// the shared `frozen` snapshot (with the evaluator's private overflow
    /// delta) — the per-worker entry point of the batch runtime. Eager
    /// spanners ignore `frozen`, mirroring
    /// [`CompiledSpanner::count_frozen_with`].
    pub fn count_slp_frozen_with(
        &self,
        evaluator: &mut SlpEvaluator,
        frozen: &FrozenCache,
        slp: &Slp,
    ) -> Result<u64, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.count(det, slp),
            Engine::Lazy(lazy) => evaluator.count_frozen(lazy, frozen, slp),
        }
    }

    /// [`CompiledSpanner::is_match_slp_with`] through the shared `frozen`
    /// snapshot.
    pub fn is_match_slp_frozen_with(
        &self,
        evaluator: &mut SlpEvaluator,
        frozen: &FrozenCache,
        slp: &Slp,
    ) -> Result<bool, SpannerError> {
        match &self.engine {
            Engine::Eager(det) => evaluator.accepts(det, slp),
            Engine::Lazy(lazy) => evaluator.accepts_frozen(lazy, frozen, slp),
        }
    }

    /// [`CompiledSpanner::freeze_warm`] for compressed corpora: warms a
    /// private determinization cache **and** the SLP memo tables on
    /// `warm_slps`, freezes the cache, and attaches the memo snapshot to the
    /// [`FrozenCache`] — workers then compose documents off the shared
    /// bottom-up pass (read through [`crate::FrozenCache::slp_memo`])
    /// instead of recomputing it per worker. Freezing preserves state ids,
    /// so the warm rows remain valid against the snapshot. Returns `None`
    /// for eager spanners, whose memo already persists inside each
    /// evaluator.
    pub fn freeze_warm_slp(&self, warm_slps: &[Slp]) -> Option<FrozenCache> {
        let lazy = self.lazy_automaton()?;
        let mut evaluator = SlpEvaluator::new();
        for slp in warm_slps {
            // Warm both the count and the reachable-set tables; errors
            // (overflow, budget) just leave fewer warm rows behind.
            let _ = evaluator.count_lazy(lazy, slp);
            let _ = evaluator.accepts_lazy(lazy, slp);
        }
        let mut frozen = match evaluator.lazy_cache() {
            Some(cache) => cache.freeze(lazy),
            None => lazy.create_cache().freeze(lazy),
        };
        if let Some(memo) = evaluator.shared_memo_snapshot() {
            frozen.set_slp_memo(Arc::new(memo));
        }
        Some(frozen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::eva::EvaBuilder;
    use crate::markerset::MarkerSet;
    use crate::span::Span;

    /// `Σ* x{a+} Σ*` — x captures every maximal-or-not run of `a`s… precisely:
    /// every span consisting solely of `a`s (non-empty).
    fn a_block_eva() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_byte(q1, b'a', q1);
        b.add_letter(q2, any, q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        b.build().unwrap()
    }

    fn a_block_spanner() -> CompiledSpanner {
        CompiledSpanner::from_eva(&a_block_eva()).unwrap()
    }

    #[test]
    fn end_to_end_extraction() {
        let sp = a_block_spanner();
        let x = sp.registry().get("x").unwrap();
        let doc = Document::from("baab");
        let mut out = sp.mappings(&doc);
        out.sort();
        // non-empty all-'a' spans of "baab": [1,2⟩? (0-based: 1..2, 2..3, 1..3)
        let expected: Vec<Mapping> = vec![
            Mapping::singleton(x, Span::new(1, 2).unwrap()),
            Mapping::singleton(x, Span::new(1, 3).unwrap()),
            Mapping::singleton(x, Span::new(2, 3).unwrap()),
        ];
        assert_eq!(out, expected);
        assert_eq!(sp.count_u64(&doc).unwrap(), 3);
        assert!(sp.is_match(&doc));
        assert!(!sp.is_match(&Document::from("bbbb")));
        assert_eq!(sp.count_u64(&Document::from("bbbb")).unwrap(), 0);
    }

    #[test]
    fn evaluate_then_stream() {
        let sp = a_block_spanner();
        let doc = Document::from("aaaa");
        let dag = sp.evaluate(&doc);
        let streamed: Vec<Mapping> = sp.iter_mappings(&dag).collect();
        assert_eq!(streamed.len(), dag.count_paths() as usize);
        assert_eq!(streamed.len(), 4 + 3 + 2 + 1);
        assert_eq!(sp.count_u64(&doc).unwrap(), 10);
    }

    #[test]
    fn rejects_bad_automata() {
        // Non-sequential automaton is rejected at compile time — by every
        // engine (the lazy engine needs sequentiality just as much).
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let eva = b.build().unwrap();
        assert!(CompiledSpanner::from_eva(&eva).is_err());
        assert!(CompiledSpanner::from_eva_with(&eva, EnginePolicy::Eager).is_err());
        assert!(CompiledSpanner::from_eva_with(&eva, EnginePolicy::Lazy).is_err());
    }

    #[test]
    fn auto_policy_picks_eager_for_small_deterministic_input() {
        let sp = a_block_spanner();
        assert!(!sp.is_lazy());
        assert!(sp.eager_automaton().is_some());
        assert!(sp.lazy_automaton().is_none());
        assert_eq!(sp.try_automaton().expect("eager engine").num_states(), 3);
    }

    #[test]
    fn try_automaton_is_none_on_lazy_spanners() {
        let lazy = CompiledSpanner::from_eva_with(&a_block_eva(), EnginePolicy::Lazy).unwrap();
        assert!(lazy.try_automaton().is_none());
        let eager = a_block_spanner();
        assert!(eager.try_automaton().is_some());
    }

    #[test]
    fn frozen_entry_points_match_live_engines() {
        // Lazy spanner: freeze after warming on one document, then the frozen
        // entry points must agree with the embedded-cache ones on every doc.
        let eva = a_block_eva();
        let lazy = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Lazy).unwrap();
        let frozen = lazy.freeze_warm(&[Document::from("baab")]).expect("lazy spanners freeze");
        let mut live = Evaluator::new();
        let mut frosty = Evaluator::new();
        let mut live_counts = CountCache::<u64>::new();
        let mut frozen_counts = CountCache::<u64>::new();
        for text in ["", "a", "baab", "aaaa", "bbbb", "abab"] {
            let doc = Document::from(text);
            let mut expected = lazy.evaluate_with(&mut live, &doc).collect_mappings();
            let mut got = lazy.evaluate_frozen_with(&mut frosty, &frozen, &doc).collect_mappings();
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "frozen evaluation diverged on {text:?}");
            assert_eq!(
                lazy.count_frozen_with(&mut frozen_counts, &frozen, &doc).unwrap(),
                lazy.count_with(&mut live_counts, &doc).unwrap(),
                "frozen count diverged on {text:?}"
            );
            assert_eq!(
                lazy.is_match_frozen_with(&mut frosty, &frozen, &doc),
                lazy.is_match(&doc),
                "frozen is_match diverged on {text:?}"
            );
        }
        // Eager spanners have no snapshot to freeze; the frozen entry points
        // fall back to the plain engine so callers can dispatch uniformly.
        let eager = a_block_spanner();
        assert!(eager.freeze_warm(&[]).is_none());
        let doc = Document::from("baab");
        assert_eq!(
            eager.evaluate_frozen_with(&mut frosty, &frozen, &doc).count_paths(),
            eager.evaluate_with(&mut live, &doc).count_paths()
        );
    }

    #[test]
    fn explicit_lazy_override_on_deterministic_input() {
        let eva = a_block_eva();
        let eager = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Eager).unwrap();
        let lazy = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Lazy).unwrap();
        assert!(lazy.is_lazy());
        assert!(lazy.eager_automaton().is_none());
        for text in ["", "a", "baab", "aaaa", "bbbb", "abab"] {
            let doc = Document::from(text);
            let mut e = eager.mappings(&doc);
            let mut l = lazy.mappings(&doc);
            e.sort();
            l.sort();
            assert_eq!(e, l, "engines diverged on {text:?}");
            assert_eq!(
                eager.count_u64(&doc).unwrap(),
                lazy.count_u64(&doc).unwrap(),
                "counts diverged on {text:?}"
            );
            assert_eq!(eager.is_match(&doc), lazy.is_match(&doc), "is_match on {text:?}");
        }
    }

    #[test]
    fn auto_policy_picks_lazy_for_nondeterministic_input() {
        // Overlapping letter ranges: not deterministic, eager must refuse,
        // Auto must fall through to the lazy engine and still evaluate.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_letter(q1, ByteClass::range(b'a', b'm'), q1);
        b.add_letter(q1, ByteClass::range(b'g', b'z'), q1);
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        let eva = b.build().unwrap();
        assert!(matches!(
            CompiledSpanner::from_eva_with(&eva, EnginePolicy::Eager),
            Err(SpannerError::NotDeterministic(_))
        ));
        let sp = CompiledSpanner::from_eva(&eva).unwrap();
        assert!(sp.is_lazy());
        let doc = Document::from("xagzx");
        let mut got = sp.mappings(&doc);
        got.sort();
        let mut expected = eva.eval_naive(&doc);
        expected.sort();
        assert_eq!(got, expected);
        assert_eq!(sp.count_u64(&doc).unwrap() as usize, expected.len());
    }

    #[test]
    fn texts_round_trip() {
        let sp = a_block_spanner();
        let doc = Document::from("xaax");
        let dag = sp.evaluate(&doc);
        let texts: Vec<String> = dag
            .iter()
            .map(|m| {
                let t = m.texts(sp.registry(), &doc);
                String::from_utf8(t["x"].to_vec()).unwrap()
            })
            .collect();
        assert_eq!(texts.len(), 3);
        assert!(texts.iter().all(|t| t.chars().all(|c| c == 'a')));
    }
}
