//! High-level façade tying compilation, evaluation, enumeration and counting together.

use crate::count::{count_mappings, CountCache, Counter};
use crate::det::DetSeva;
use crate::document::Document;
use crate::enumerate::{DagView, EnumerationDag, Evaluator, MappingIter};
use crate::error::SpannerError;
use crate::eva::Eva;
use crate::mapping::Mapping;
use crate::variable::VarRegistry;

/// A compiled document spanner, ready to be evaluated over many documents.
///
/// A `CompiledSpanner` wraps a deterministic sequential extended VA
/// ([`DetSeva`]). Construct one from an [`Eva`] with [`CompiledSpanner::from_eva`],
/// or — more conveniently — from a regex formula or classical VA through the
/// `spanners-regex` / `spanners-automata` crates, which perform the
/// translations of Section 4 of the paper and end with this type.
///
/// Evaluation follows the two-phase structure of the paper:
///
/// 1. [`CompiledSpanner::evaluate`] runs the linear-time preprocessing
///    (Algorithm 1), producing an [`EnumerationDag`];
/// 2. the DAG is then enumerated with constant delay (Algorithm 2), counted,
///    or materialized.
///
/// The convenience methods [`CompiledSpanner::mappings`],
/// [`CompiledSpanner::count`] and [`CompiledSpanner::is_match`] bundle the two
/// phases for one-shot use.
#[derive(Debug, Clone)]
pub struct CompiledSpanner {
    automaton: DetSeva,
}

impl CompiledSpanner {
    /// Compiles a deterministic sequential eVA into a spanner.
    ///
    /// Fails if the automaton is not deterministic or not sequential.
    pub fn from_eva(eva: &Eva) -> Result<Self, SpannerError> {
        Ok(CompiledSpanner { automaton: DetSeva::compile(eva)? })
    }

    /// Wraps an already-compiled deterministic sequential eVA.
    pub fn from_det(automaton: DetSeva) -> Self {
        CompiledSpanner { automaton }
    }

    /// The underlying deterministic sequential eVA.
    pub fn automaton(&self) -> &DetSeva {
        &self.automaton
    }

    /// The registry naming the spanner's capture variables.
    pub fn registry(&self) -> &VarRegistry {
        self.automaton.registry()
    }

    /// Phase 1 (Algorithm 1): preprocess `doc` in time `O(|A| × |d|)`,
    /// producing the compact DAG representation of all output mappings.
    pub fn evaluate(&self, doc: &Document) -> EnumerationDag {
        EnumerationDag::build(&self.automaton, doc)
    }

    /// Like [`CompiledSpanner::evaluate`], but running inside a caller-owned
    /// [`Evaluator`] so that repeated evaluations over many documents reuse
    /// the DAG arenas instead of allocating fresh ones — the hot-path entry
    /// point for serving workloads.
    pub fn evaluate_with<'a>(
        &'a self,
        evaluator: &'a mut Evaluator,
        doc: &Document,
    ) -> DagView<'a> {
        evaluator.eval(&self.automaton, doc)
    }

    /// Evaluates and materializes all output mappings.
    ///
    /// Equivalent to `self.evaluate(doc).collect_mappings()`; prefer
    /// [`CompiledSpanner::evaluate`] + [`EnumerationDag::iter`] when the output
    /// may be large and you want to stream it.
    pub fn mappings(&self, doc: &Document) -> Vec<Mapping> {
        self.evaluate(doc).collect_mappings()
    }

    /// Counts `|⟦A⟧(d)|` in time `O(|A| × |d|)` without enumerating
    /// (Algorithm 3 / Theorem 5.1).
    pub fn count<C: Counter>(&self, doc: &Document) -> Result<C, SpannerError> {
        count_mappings(&self.automaton, doc)
    }

    /// Counts `|⟦A⟧(d)|` as a `u64`.
    pub fn count_u64(&self, doc: &Document) -> Result<u64, SpannerError> {
        self.count(doc)
    }

    /// Like [`CompiledSpanner::count`], but running inside a caller-owned
    /// [`CountCache`] so that repeated counts over many documents reuse the
    /// per-state buffers instead of allocating fresh ones — the hot-path
    /// entry point for counting workloads.
    pub fn count_with<C: Counter>(
        &self,
        cache: &mut CountCache<C>,
        doc: &Document,
    ) -> Result<C, SpannerError> {
        cache.count(&self.automaton, doc)
    }

    /// Whether the spanner produces at least one mapping on `doc`.
    ///
    /// Runs the transition relation without building the DAG — linear time,
    /// constant memory in the document.
    pub fn is_match(&self, doc: &Document) -> bool {
        self.automaton.accepts(doc)
    }

    /// Convenience wrapper: evaluate and iterate in one call, holding the DAG
    /// alive for the duration of the borrow.
    pub fn iter_mappings<'a>(&self, dag: &'a EnumerationDag) -> MappingIter<'a> {
        dag.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::eva::EvaBuilder;
    use crate::markerset::MarkerSet;
    use crate::span::Span;

    /// `Σ* x{a+} Σ*` — x captures every maximal-or-not run of `a`s… precisely:
    /// every span consisting solely of `a`s (non-empty).
    fn a_block_spanner() -> CompiledSpanner {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_byte(q1, b'a', q1);
        b.add_letter(q2, any, q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        CompiledSpanner::from_eva(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn end_to_end_extraction() {
        let sp = a_block_spanner();
        let x = sp.registry().get("x").unwrap();
        let doc = Document::from("baab");
        let mut out = sp.mappings(&doc);
        out.sort();
        // non-empty all-'a' spans of "baab": [1,2⟩? (0-based: 1..2, 2..3, 1..3)
        let expected: Vec<Mapping> = vec![
            Mapping::singleton(x, Span::new(1, 2).unwrap()),
            Mapping::singleton(x, Span::new(1, 3).unwrap()),
            Mapping::singleton(x, Span::new(2, 3).unwrap()),
        ];
        assert_eq!(out, expected);
        assert_eq!(sp.count_u64(&doc).unwrap(), 3);
        assert!(sp.is_match(&doc));
        assert!(!sp.is_match(&Document::from("bbbb")));
        assert_eq!(sp.count_u64(&Document::from("bbbb")).unwrap(), 0);
    }

    #[test]
    fn evaluate_then_stream() {
        let sp = a_block_spanner();
        let doc = Document::from("aaaa");
        let dag = sp.evaluate(&doc);
        let streamed: Vec<Mapping> = sp.iter_mappings(&dag).collect();
        assert_eq!(streamed.len(), dag.count_paths() as usize);
        assert_eq!(streamed.len(), 4 + 3 + 2 + 1);
        assert_eq!(sp.count_u64(&doc).unwrap(), 10);
    }

    #[test]
    fn rejects_bad_automata() {
        // Non-sequential automaton is rejected at compile time.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        assert!(CompiledSpanner::from_eva(&b.build().unwrap()).is_err());
    }

    #[test]
    fn texts_round_trip() {
        let sp = a_block_spanner();
        let doc = Document::from("xaax");
        let dag = sp.evaluate(&doc);
        let texts: Vec<String> = dag
            .iter()
            .map(|m| {
                let t = m.texts(sp.registry(), &doc);
                String::from_utf8(t["x"].to_vec()).unwrap()
            })
            .collect();
        assert_eq!(texts.len(), 3);
        assert!(texts.iter().all(|t| t.chars().all(|c| c == 'a')));
    }
}
