//! Error types shared across the `spanners` workspace.

use std::fmt;

/// Errors produced while constructing or evaluating document spanners.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future fault categories (this crate grows them as the serving
/// runtime hardens) are not semver breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpannerError {
    /// An automaton (or regex formula) declared more variables than the
    /// bit-packed [`MarkerSet`](crate::MarkerSet) representation supports.
    TooManyVariables {
        /// Number of variables requested.
        requested: usize,
        /// Maximum number of variables supported per automaton.
        limit: usize,
    },
    /// A state identifier was out of range for the automaton it was used with.
    InvalidState {
        /// The offending state id.
        state: usize,
        /// Number of states in the automaton.
        num_states: usize,
    },
    /// A multi-tenant registration used an unusable tenant id (empty,
    /// duplicated, or containing the `.` namespace separator that the shared
    /// automaton reserves for `tenant.variable` prefixing).
    InvalidTenantId {
        /// The offending tenant id as supplied.
        id: String,
        /// Why the id was rejected.
        reason: &'static str,
    },
    /// A variable identifier was out of range for the registry it was used with.
    InvalidVariable {
        /// The offending variable index.
        var: usize,
        /// Number of variables registered.
        num_vars: usize,
    },
    /// A transition refers to an empty marker set, which extended VA forbid
    /// (the empty "stay" step is implicit, never an explicit transition).
    EmptyMarkerTransition,
    /// The automaton handed to the constant-delay evaluator is not deterministic.
    NotDeterministic(String),
    /// The automaton handed to the constant-delay evaluator is not sequential.
    NotSequential(String),
    /// The automaton handed to a functional-only construction is not functional.
    NotFunctional(String),
    /// A span was constructed with `start > end` or positions past the document end.
    InvalidSpan {
        /// Start offset (0-based, inclusive).
        start: usize,
        /// End offset (0-based, exclusive).
        end: usize,
        /// Document length the span was validated against, if any.
        doc_len: Option<usize>,
    },
    /// Two mappings assigned incompatible spans to the same variable during a join.
    IncompatibleMappings {
        /// Human-readable variable name (or index) that conflicted.
        variable: String,
    },
    /// A counter overflowed while counting output mappings (Theorem 5.1).
    CountOverflow,
    /// A regex formula failed to parse.
    Parse(ParseError),
    /// A construction exceeded a user-provided resource budget
    /// (e.g. determinization state limit).
    BudgetExceeded {
        /// What was being constructed.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// A batch worker panicked while evaluating one document. The panic was
    /// contained (the batch keeps running), the engine involved was
    /// quarantined (dropped, never checked back into its pool), and the
    /// failure is reported against this document alone.
    WorkerPanicked {
        /// Index of the document whose evaluation panicked.
        doc_index: usize,
        /// The panic payload, stringified when possible.
        message: String,
    },
    /// A per-document wall-clock deadline from
    /// [`EvalLimits`](crate::EvalLimits) expired mid-evaluation.
    DeadlineExceeded {
        /// `true` when the *soft* deadline expired (the document is a
        /// candidate for graceful degradation and retry); `false` for the
        /// hard deadline (the document is abandoned).
        soft: bool,
        /// The configured budget, in milliseconds.
        limit_ms: u64,
    },
    /// A per-document step budget ([`EvalLimits::max_steps`](crate::EvalLimits))
    /// was exhausted mid-evaluation.
    StepBudgetExceeded {
        /// The configured maximum number of executed evaluation steps.
        limit: u64,
    },
    /// A configuration value was rejected up front (e.g. a zero thread count
    /// or an absurd retry limit in batch options).
    InvalidConfig {
        /// What was wrong with the configuration.
        what: &'static str,
    },
    /// A streaming submission was shed by admission control: the bounded
    /// ingress queue was full. The document was **not** accepted — retry
    /// later or drop it; nothing server-side refers to it.
    Overloaded {
        /// Documents queued at the moment the submission was shed (under
        /// concurrent submitters this is a snapshot, but it is never less
        /// than `capacity` when the error is raised).
        queued: usize,
        /// The configured queue capacity (documents) that was full.
        capacity: usize,
    },
    /// A per-tenant admission quota rejected a streaming submission before
    /// it reached the ingress queue. The document was **not** accepted; the
    /// rejection is retryable once the tenant's in-flight work completes (or
    /// its token bucket refills on the next completed micro-batch).
    QuotaExceeded {
        /// The tenant whose quota was exhausted (empty for the anonymous
        /// single-tenant submission path).
        tenant: String,
        /// Which quota dimension rejected the submission:
        /// `"in-flight documents"`, `"queued bytes"`, `"rate tokens"`, or
        /// `"injected"` (deterministic fault harness).
        kind: &'static str,
    },
    /// The tenant's circuit breaker is open: its recent documents kept
    /// failing, so new submissions are shed without burning a shard pass.
    /// Retryable after the stated number of completed micro-batches, when
    /// the breaker moves to half-open and admits a probe document.
    CircuitOpen {
        /// The tenant being shed.
        tenant: String,
        /// Completed micro-batches until the breaker admits a probe.
        retry_after_batches: u32,
    },
    /// A bounded ticket wait (the runtime's `Ticket::wait_timeout`) elapsed
    /// before the submission completed. The ticket is **not** consumed and
    /// the result is still pending: wait again, or drain the server.
    WaitTimedOut {
        /// The timeout that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// A submission (or still-queued ticket) was rejected because the
    /// service had already begun draining or aborting. Accepted work is
    /// unaffected: `drain()` completes every previously accepted ticket.
    ShuttingDown,
    /// A variable name was looked up in a registry that does not contain it
    /// (e.g. remapping mappings between registries, or routing a tenant's
    /// results through a shared multi-tenant registry).
    UnknownVariable {
        /// The variable name that failed to resolve.
        variable: String,
    },
}

impl SpannerError {
    /// Whether the error is **transient**: retrying the same call later (or
    /// with backoff — see the runtime's `RetryPolicy`) can succeed without
    /// any change to the input.
    ///
    /// Retryable: [`Overloaded`](SpannerError::Overloaded) (queue pressure
    /// drains), [`QuotaExceeded`](SpannerError::QuotaExceeded) (in-flight
    /// work completes, token buckets refill),
    /// [`CircuitOpen`](SpannerError::CircuitOpen) (the breaker half-opens
    /// after its cooldown), [`BudgetExceeded`](SpannerError::BudgetExceeded)
    /// (memory pressure sheds), a *soft*
    /// [`DeadlineExceeded`](SpannerError::DeadlineExceeded) (the degradation
    /// ladder's retry rungs apply), and
    /// [`WaitTimedOut`](SpannerError::WaitTimedOut) (the ticket is intact —
    /// wait again). Everything else — malformed input, hard deadlines,
    /// panics, [`ShuttingDown`](SpannerError::ShuttingDown) — is terminal:
    /// retrying the identical call cannot succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SpannerError::Overloaded { .. }
                | SpannerError::QuotaExceeded { .. }
                | SpannerError::CircuitOpen { .. }
                | SpannerError::BudgetExceeded { .. }
                | SpannerError::DeadlineExceeded { soft: true, .. }
                | SpannerError::WaitTimedOut { .. }
        )
    }
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::TooManyVariables { requested, limit } => write!(
                f,
                "too many capture variables: requested {requested}, limit is {limit} per automaton"
            ),
            SpannerError::InvalidState { state, num_states } => {
                write!(f, "state {state} is out of range (automaton has {num_states} states)")
            }
            SpannerError::InvalidTenantId { id, reason } => {
                write!(f, "invalid tenant id `{id}`: {reason}")
            }
            SpannerError::InvalidVariable { var, num_vars } => {
                write!(f, "variable {var} is out of range ({num_vars} variables registered)")
            }
            SpannerError::EmptyMarkerTransition => {
                write!(f, "extended variable transitions must carry a non-empty marker set")
            }
            SpannerError::NotDeterministic(why) => {
                write!(f, "automaton is not deterministic: {why}")
            }
            SpannerError::NotSequential(why) => write!(f, "automaton is not sequential: {why}"),
            SpannerError::NotFunctional(why) => write!(f, "automaton is not functional: {why}"),
            SpannerError::InvalidSpan { start, end, doc_len } => match doc_len {
                Some(len) => {
                    write!(f, "invalid span [{start}, {end}⟩ for document of length {len}")
                }
                None => write!(f, "invalid span [{start}, {end}⟩"),
            },
            SpannerError::IncompatibleMappings { variable } => {
                write!(f, "mappings assign different spans to variable `{variable}`")
            }
            SpannerError::CountOverflow => {
                write!(f, "mapping count overflowed the chosen counter type")
            }
            SpannerError::Parse(e) => write!(f, "regex formula parse error: {e}"),
            SpannerError::BudgetExceeded { what, limit } => {
                write!(f, "{what} exceeded the configured budget of {limit}")
            }
            SpannerError::WorkerPanicked { doc_index, message } => {
                write!(f, "worker panicked on document {doc_index}: {message}")
            }
            SpannerError::DeadlineExceeded { soft, limit_ms } => {
                let kind = if *soft { "soft deadline" } else { "deadline" };
                write!(f, "document evaluation exceeded its {kind} of {limit_ms} ms")
            }
            SpannerError::StepBudgetExceeded { limit } => {
                write!(f, "document evaluation exhausted its step budget of {limit} steps")
            }
            SpannerError::InvalidConfig { what } => {
                write!(f, "invalid configuration: {what}")
            }
            SpannerError::Overloaded { queued, capacity } => {
                write!(f, "service overloaded: ingress queue full ({queued}/{capacity} documents)")
            }
            SpannerError::QuotaExceeded { tenant, kind } => {
                if tenant.is_empty() {
                    write!(f, "admission quota exceeded: {kind}")
                } else {
                    write!(f, "tenant `{tenant}` quota exceeded: {kind}")
                }
            }
            SpannerError::CircuitOpen { tenant, retry_after_batches } => write!(
                f,
                "tenant `{tenant}` circuit breaker is open: retry after {retry_after_batches} \
                 completed batches"
            ),
            SpannerError::WaitTimedOut { waited_ms } => {
                write!(f, "ticket wait timed out after {waited_ms} ms (result still pending)")
            }
            SpannerError::ShuttingDown => {
                write!(f, "service is shutting down: submission rejected")
            }
            SpannerError::UnknownVariable { variable } => {
                write!(f, "variable `{variable}` is not present in the target registry")
            }
        }
    }
}

impl std::error::Error for SpannerError {}

/// A parse error for regex formulas, carrying the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the pattern where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error at `offset` with the given message.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError { offset, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for SpannerError {
    fn from(e: ParseError) -> Self {
        SpannerError::Parse(e)
    }
}

/// Convenient result alias used across the workspace.
pub type Result<T, E = SpannerError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_too_many_variables() {
        let e = SpannerError::TooManyVariables { requested: 40, limit: 32 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
    }

    #[test]
    fn display_invalid_span_with_doc() {
        let e = SpannerError::InvalidSpan { start: 5, end: 3, doc_len: Some(10) };
        assert_eq!(e.to_string(), "invalid span [5, 3⟩ for document of length 10");
    }

    #[test]
    fn display_invalid_span_without_doc() {
        let e = SpannerError::InvalidSpan { start: 5, end: 3, doc_len: None };
        assert_eq!(e.to_string(), "invalid span [5, 3⟩");
    }

    #[test]
    fn parse_error_into_spanner_error() {
        let p = ParseError::new(7, "unexpected `)`");
        let s: SpannerError = p.clone().into();
        assert_eq!(s, SpannerError::Parse(p));
        assert!(s.to_string().contains("offset 7"));
    }

    #[test]
    fn errors_are_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(SpannerError::CountOverflow);
        takes_err(ParseError::new(0, "x"));
    }

    #[test]
    fn display_worker_panicked() {
        let e = SpannerError::WorkerPanicked { doc_index: 17, message: "index oob".into() };
        assert_eq!(e.to_string(), "worker panicked on document 17: index oob");
    }

    #[test]
    fn display_deadline_exceeded_soft_and_hard() {
        let hard = SpannerError::DeadlineExceeded { soft: false, limit_ms: 250 };
        assert_eq!(hard.to_string(), "document evaluation exceeded its deadline of 250 ms");
        let soft = SpannerError::DeadlineExceeded { soft: true, limit_ms: 50 };
        assert_eq!(soft.to_string(), "document evaluation exceeded its soft deadline of 50 ms");
    }

    #[test]
    fn display_step_budget_exceeded() {
        let e = SpannerError::StepBudgetExceeded { limit: 1_000 };
        assert_eq!(e.to_string(), "document evaluation exhausted its step budget of 1000 steps");
    }

    #[test]
    fn display_invalid_config() {
        let e = SpannerError::InvalidConfig { what: "batch thread count must be nonzero" };
        assert_eq!(e.to_string(), "invalid configuration: batch thread count must be nonzero");
    }

    #[test]
    fn display_overloaded_and_shutting_down() {
        let e = SpannerError::Overloaded { queued: 64, capacity: 64 };
        assert_eq!(e.to_string(), "service overloaded: ingress queue full (64/64 documents)");
        assert_eq!(
            SpannerError::ShuttingDown.to_string(),
            "service is shutting down: submission rejected"
        );
    }

    #[test]
    fn display_quota_and_breaker_and_wait_timeout() {
        let e = SpannerError::QuotaExceeded { tenant: "t3".into(), kind: "queued bytes" };
        assert_eq!(e.to_string(), "tenant `t3` quota exceeded: queued bytes");
        let anon = SpannerError::QuotaExceeded { tenant: String::new(), kind: "rate tokens" };
        assert_eq!(anon.to_string(), "admission quota exceeded: rate tokens");
        let open = SpannerError::CircuitOpen { tenant: "t3".into(), retry_after_batches: 2 };
        assert_eq!(
            open.to_string(),
            "tenant `t3` circuit breaker is open: retry after 2 completed batches"
        );
        let timed = SpannerError::WaitTimedOut { waited_ms: 50 };
        assert_eq!(timed.to_string(), "ticket wait timed out after 50 ms (result still pending)");
    }

    #[test]
    fn retryable_classification_is_pinned() {
        let retryable = [
            SpannerError::Overloaded { queued: 2, capacity: 2 },
            SpannerError::QuotaExceeded { tenant: "t".into(), kind: "rate tokens" },
            SpannerError::CircuitOpen { tenant: "t".into(), retry_after_batches: 1 },
            SpannerError::BudgetExceeded { what: "global memory budget", limit: 1 },
            SpannerError::DeadlineExceeded { soft: true, limit_ms: 5 },
            SpannerError::WaitTimedOut { waited_ms: 5 },
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} must be retryable");
        }
        let terminal = [
            SpannerError::ShuttingDown,
            SpannerError::DeadlineExceeded { soft: false, limit_ms: 5 },
            SpannerError::StepBudgetExceeded { limit: 1 },
            SpannerError::WorkerPanicked { doc_index: 0, message: "boom".into() },
            SpannerError::CountOverflow,
            SpannerError::InvalidConfig { what: "x" },
        ];
        for e in &terminal {
            assert!(!e.is_retryable(), "{e} must be terminal");
        }
    }

    #[test]
    fn display_unknown_variable() {
        let e = SpannerError::UnknownVariable { variable: "tenant3.x".into() };
        assert_eq!(e.to_string(), "variable `tenant3.x` is not present in the target registry");
    }

    #[test]
    fn display_not_deterministic_and_sequential() {
        assert!(SpannerError::NotDeterministic("two transitions".into())
            .to_string()
            .contains("not deterministic"));
        assert!(SpannerError::NotSequential("variable x reopened".into())
            .to_string()
            .contains("not sequential"));
        assert!(SpannerError::NotFunctional("x unused".into())
            .to_string()
            .contains("not functional"));
    }
}
