//! Mappings: the outputs of a document spanner.
//!
//! Following the paper (and Maturana et al.), the result of evaluating a
//! spanner over a document is a set of *mappings*: partial functions from
//! variables to spans. Mappings generalise the tuples of Fagin et al. in that
//! not every variable needs to be assigned.

use crate::error::SpannerError;
use crate::markerset::VarSet;
use crate::span::Span;
use crate::variable::{VarId, VarRegistry};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A mapping `µ`: a partial function from variables to spans.
///
/// Internally stored as a sorted association list keyed by [`VarId`], which
/// keeps equality, hashing and iteration deterministic and cheap for the small
/// variable counts typical of extraction rules.
///
/// ```
/// use spanners_core::{Mapping, Span, VarId};
/// let x = VarId::new(0).unwrap();
/// let y = VarId::new(1).unwrap();
/// let m = Mapping::new().with(x, Span::new(0, 4).unwrap());
/// assert_eq!(m.get(x), Some(Span::new(0, 4).unwrap()));
/// assert_eq!(m.get(y), None);
/// assert_eq!(m.domain().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Mapping {
    /// Sorted by variable id; no duplicate variables.
    entries: Vec<(VarId, Span)>,
}

impl Mapping {
    /// The empty mapping ∅ (domain is empty).
    pub fn new() -> Self {
        Mapping::default()
    }

    /// The singleton mapping `[x → s]`.
    pub fn singleton(var: VarId, span: Span) -> Self {
        Mapping { entries: vec![(var, span)] }
    }

    /// Builds a mapping from `(variable, span)` pairs.
    ///
    /// Later bindings for the same variable overwrite earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (VarId, Span)>>(pairs: I) -> Self {
        let mut m = Mapping::new();
        for (v, s) in pairs {
            m.insert(v, s);
        }
        m
    }

    /// Number of variables in the domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mapping is the empty mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The span assigned to `var`, if any.
    pub fn get(&self, var: VarId) -> Option<Span> {
        self.entries.binary_search_by_key(&var, |(v, _)| *v).ok().map(|i| self.entries[i].1)
    }

    /// Whether `var` is in the domain.
    pub fn contains(&self, var: VarId) -> bool {
        self.get(var).is_some()
    }

    /// Inserts (or overwrites) a binding.
    pub fn insert(&mut self, var: VarId, span: Span) {
        match self.entries.binary_search_by_key(&var, |(v, _)| *v) {
            Ok(i) => self.entries[i].1 = span,
            Err(i) => self.entries.insert(i, (var, span)),
        }
    }

    /// Builder-style insert.
    pub fn with(mut self, var: VarId, span: Span) -> Self {
        self.insert(var, span);
        self
    }

    /// Removes a binding, returning the span if it was present.
    pub fn remove(&mut self, var: VarId) -> Option<Span> {
        match self.entries.binary_search_by_key(&var, |(v, _)| *v) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The domain of the mapping as a [`VarSet`].
    pub fn domain(&self) -> VarSet {
        self.entries.iter().map(|(v, _)| *v).collect()
    }

    /// Iterates over `(variable, span)` bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Span)> + '_ {
        self.entries.iter().copied()
    }

    /// Two mappings are *compatible* (`µ1 ∼ µ2`) when they agree on every
    /// variable in both domains.
    pub fn compatible(&self, other: &Mapping) -> bool {
        // Merge-scan the two sorted lists.
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (va, sa) = self.entries[i];
            let (vb, sb) = other.entries[j];
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if sa != sb {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// The union `µ1 ∪ µ2` of two compatible mappings.
    ///
    /// Returns an error naming the conflicting variable if they are not compatible.
    pub fn union(&self, other: &Mapping) -> Result<Mapping, SpannerError> {
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(va, sa)), Some(&(vb, sb))) => match va.cmp(&vb) {
                    std::cmp::Ordering::Less => {
                        entries.push((va, sa));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push((vb, sb));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        if sa != sb {
                            return Err(SpannerError::IncompatibleMappings {
                                variable: va.to_string(),
                            });
                        }
                        entries.push((va, sa));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(va, sa)), None) => {
                    entries.push((va, sa));
                    i += 1;
                }
                (None, Some(&(vb, sb))) => {
                    entries.push((vb, sb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Ok(Mapping { entries })
    }

    /// The restriction `µ|Y` of the mapping to the variables in `vars`.
    pub fn project(&self, vars: &VarSet) -> Mapping {
        Mapping {
            entries: self.entries.iter().copied().filter(|(v, _)| vars.contains(*v)).collect(),
        }
    }

    /// Whether every variable of `vars` is assigned (totality check used for
    /// functional spanners).
    pub fn is_total_on(&self, vars: &VarSet) -> bool {
        vars.is_subset(&self.domain())
    }

    /// Renders the mapping with variable names from `registry`, e.g.
    /// `{email → [7, 13⟩, name → [1, 5⟩}`.
    pub fn display<'a>(&'a self, registry: &'a VarRegistry) -> MappingDisplay<'a> {
        MappingDisplay { mapping: self, registry }
    }

    /// Extracts the captured substrings as a name → text map.
    pub fn texts<'d>(
        &self,
        registry: &VarRegistry,
        doc: &'d crate::document::Document,
    ) -> BTreeMap<String, &'d [u8]> {
        self.entries
            .iter()
            .map(|(v, s)| (registry.name(*v).to_string(), doc.span_bytes(*s)))
            .collect()
    }
}

impl FromIterator<(VarId, Span)> for Mapping {
    fn from_iter<I: IntoIterator<Item = (VarId, Span)>>(iter: I) -> Self {
        Mapping::from_pairs(iter)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, s)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} → {s}")?;
        }
        write!(f, "}}")
    }
}

/// Display adaptor resolving variable names through a [`VarRegistry`].
pub struct MappingDisplay<'a> {
    mapping: &'a Mapping,
    registry: &'a VarRegistry,
}

impl fmt::Display for MappingDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, s)) in self.mapping.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} → {}", self.registry.name(*v), s)?;
        }
        write!(f, "}}")
    }
}

/// The natural join `M1 ⋈ M2` of two sets of mappings:
/// `{µ1 ∪ µ2 | µ1 ∈ M1, µ2 ∈ M2, µ1 ∼ µ2}`.
///
/// Hash-partitioned: the *certain* shared variables — those assigned in every
/// mapping on both sides — form an exact partitioning key (compatible pairs
/// agree on them, mappings with different key assignments are incompatible),
/// so the right side is bucketed by its key projection and each left mapping
/// probes a single bucket. Falls back to the pairwise scan only when no
/// variable is certain on both sides. The output — sorted and deduplicated by
/// [`dedup_mappings`] — is byte-identical to the naive O(|M1|·|M2|) scan.
pub fn join_mapping_sets(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
    let mut out = Vec::new();
    let key_vars = certain_domain(left).intersection(&certain_domain(right));
    if key_vars.is_empty() || left.is_empty() || right.is_empty() {
        for m1 in left {
            for m2 in right {
                if m1.compatible(m2) {
                    out.push(m1.union(m2).expect("compatible mappings union"));
                }
            }
        }
    } else {
        let mut buckets: HashMap<Mapping, Vec<&Mapping>> = HashMap::new();
        for m2 in right {
            buckets.entry(m2.project(&key_vars)).or_default().push(m2);
        }
        for m1 in left {
            if let Some(bucket) = buckets.get(&m1.project(&key_vars)) {
                for m2 in bucket {
                    if m1.compatible(m2) {
                        out.push(m1.union(m2).expect("compatible mappings union"));
                    }
                }
            }
        }
    }
    dedup_mappings(&mut out);
    out
}

/// The variables assigned in *every* mapping of `set` (the full variable
/// universe for an empty set, so intersection with the other side is neutral;
/// an empty join side short-circuits in [`join_mapping_sets`] anyway).
fn certain_domain(set: &[Mapping]) -> VarSet {
    set.iter().fold(VarSet::first_n(crate::variable::MAX_VARIABLES), |acc, m| {
        acc.intersection(&m.domain())
    })
}

/// The union `M1 ∪ M2` of two sets of mappings, deduplicated.
pub fn union_mapping_sets(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
    let mut out: Vec<Mapping> = left.iter().chain(right.iter()).cloned().collect();
    dedup_mappings(&mut out);
    out
}

/// The projection `π_Y(M)` of a set of mappings, deduplicated.
pub fn project_mapping_set(set: &[Mapping], vars: &VarSet) -> Vec<Mapping> {
    let mut out: Vec<Mapping> = set.iter().map(|m| m.project(vars)).collect();
    dedup_mappings(&mut out);
    out
}

/// Sorts and deduplicates a set of mappings in place.
pub fn dedup_mappings(set: &mut Vec<Mapping>) {
    set.sort();
    set.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i).unwrap()
    }

    fn sp(a: usize, b: usize) -> Span {
        Span::new(a, b).unwrap()
    }

    #[test]
    fn empty_mapping() {
        let m = Mapping::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.domain(), VarSet::new());
        assert_eq!(m.to_string(), "{}");
    }

    #[test]
    fn insert_get_overwrite() {
        let mut m = Mapping::new();
        m.insert(v(2), sp(0, 1));
        m.insert(v(0), sp(2, 3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(v(2)), Some(sp(0, 1)));
        assert_eq!(m.get(v(1)), None);
        // entries stay sorted by variable id
        let order: Vec<_> = m.iter().map(|(var, _)| var.index()).collect();
        assert_eq!(order, vec![0, 2]);
        m.insert(v(2), sp(5, 6));
        assert_eq!(m.get(v(2)), Some(sp(5, 6)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(v(2)), Some(sp(5, 6)));
        assert_eq!(m.remove(v(2)), None);
    }

    #[test]
    fn from_pairs_and_iter() {
        let m = Mapping::from_pairs([(v(1), sp(1, 2)), (v(0), sp(0, 1)), (v(1), sp(3, 4))]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(v(1)), Some(sp(3, 4)));
        let collected: Mapping = m.iter().collect();
        assert_eq!(collected, m);
    }

    #[test]
    fn compatibility() {
        let m1 = Mapping::from_pairs([(v(0), sp(0, 2)), (v(1), sp(2, 4))]);
        let m2 = Mapping::from_pairs([(v(1), sp(2, 4)), (v(2), sp(4, 6))]);
        let m3 = Mapping::from_pairs([(v(1), sp(0, 4))]);
        assert!(m1.compatible(&m2));
        assert!(m2.compatible(&m1));
        assert!(!m1.compatible(&m3));
        // disjoint domains are always compatible
        let m4 = Mapping::singleton(v(5), sp(9, 9));
        assert!(m1.compatible(&m4));
        // the empty mapping is compatible with everything
        assert!(Mapping::new().compatible(&m1));
    }

    #[test]
    fn union_compatible() {
        let m1 = Mapping::from_pairs([(v(0), sp(0, 2)), (v(1), sp(2, 4))]);
        let m2 = Mapping::from_pairs([(v(1), sp(2, 4)), (v(2), sp(4, 6))]);
        let u = m1.union(&m2).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.get(v(0)), Some(sp(0, 2)));
        assert_eq!(u.get(v(1)), Some(sp(2, 4)));
        assert_eq!(u.get(v(2)), Some(sp(4, 6)));
    }

    #[test]
    fn union_incompatible_errors() {
        let m1 = Mapping::singleton(v(1), sp(0, 1));
        let m2 = Mapping::singleton(v(1), sp(0, 2));
        let err = m1.union(&m2).unwrap_err();
        assert!(matches!(err, SpannerError::IncompatibleMappings { .. }));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let m1 = Mapping::from_pairs([(v(0), sp(0, 2))]);
        assert_eq!(m1.union(&Mapping::new()).unwrap(), m1);
        assert_eq!(Mapping::new().union(&m1).unwrap(), m1);
    }

    #[test]
    fn projection() {
        let m = Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(1, 2)), (v(2), sp(2, 3))]);
        let y: VarSet = vec![v(0), v(2)].into_iter().collect();
        let p = m.project(&y);
        assert_eq!(p.len(), 2);
        assert!(p.contains(v(0)));
        assert!(!p.contains(v(1)));
        // projecting to a superset keeps everything
        let all = VarSet::first_n(5);
        assert_eq!(m.project(&all), m);
        // projecting to the empty set yields the empty mapping
        assert!(m.project(&VarSet::new()).is_empty());
    }

    #[test]
    fn totality() {
        let m = Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(1, 2))]);
        assert!(m.is_total_on(&VarSet::first_n(2)));
        assert!(!m.is_total_on(&VarSet::first_n(3)));
        assert!(m.is_total_on(&VarSet::new()));
    }

    #[test]
    fn display_with_registry() {
        let mut reg = VarRegistry::new();
        let name = reg.intern("name").unwrap();
        let email = reg.intern("email").unwrap();
        // Figure 1, µ1: name → [1,5⟩, email → [7,13⟩
        let m = Mapping::from_pairs([
            (name, Span::from_paper(1, 5).unwrap()),
            (email, Span::from_paper(7, 13).unwrap()),
        ]);
        assert_eq!(m.display(&reg).to_string(), "{name → [1, 5⟩, email → [7, 13⟩}");
        assert_eq!(m.to_string(), "{x0 → [1, 5⟩, x1 → [7, 13⟩}");
    }

    #[test]
    fn texts_extracts_substrings() {
        let doc = crate::document::Document::from("John xj@g.bey");
        let mut reg = VarRegistry::new();
        let name = reg.intern("name").unwrap();
        let email = reg.intern("email").unwrap();
        let m = Mapping::from_pairs([
            (name, Span::from_paper(1, 5).unwrap()),
            (email, Span::from_paper(7, 13).unwrap()),
        ]);
        let t = m.texts(&reg, &doc);
        assert_eq!(t["name"], b"John");
        assert_eq!(t["email"], b"j@g.be");
    }

    #[test]
    fn join_mapping_sets_basic() {
        let left =
            vec![Mapping::from_pairs([(v(0), sp(0, 1))]), Mapping::from_pairs([(v(0), sp(1, 2))])];
        let right = vec![
            Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(5, 6))]),
            Mapping::from_pairs([(v(1), sp(7, 8))]),
        ];
        let joined = join_mapping_sets(&left, &right);
        // (left0 ⋈ right0): compatible; (left0 ⋈ right1): disjoint domains;
        // (left1 ⋈ right0): x0 conflict; (left1 ⋈ right1): disjoint domains.
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(5, 6))])));
        assert!(joined.contains(&Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(7, 8))])));
        assert!(joined.contains(&Mapping::from_pairs([(v(0), sp(1, 2)), (v(1), sp(7, 8))])));
    }

    #[test]
    fn join_with_empty_mapping_set() {
        let left = vec![Mapping::from_pairs([(v(0), sp(0, 1))])];
        assert!(join_mapping_sets(&left, &[]).is_empty());
        // Joining with the set containing only the empty mapping acts as identity.
        let id = vec![Mapping::new()];
        assert_eq!(join_mapping_sets(&left, &id), left);
    }

    /// The pre-hash-partitioning pairwise implementation, kept as the oracle
    /// the production join is pinned byte-identical against.
    fn join_mapping_sets_naive(left: &[Mapping], right: &[Mapping]) -> Vec<Mapping> {
        let mut out = Vec::new();
        for m1 in left {
            for m2 in right {
                if m1.compatible(m2) {
                    out.push(m1.union(m2).expect("compatible mappings union"));
                }
            }
        }
        dedup_mappings(&mut out);
        out
    }

    /// Deterministic mapping-set generator mixing certain, optional and
    /// conflicting variables (simple LCG; no external randomness).
    fn mapping_soup(seed: u64, n: usize, certain: &[usize], optional: &[usize]) -> Vec<Mapping> {
        let mut state = seed;
        let mut step = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        (0..n)
            .map(|_| {
                let mut m = Mapping::new();
                for &var in certain {
                    let a = step() % 8;
                    m.insert(v(var), sp(a, a + 1 + step() % 4));
                }
                for &var in optional {
                    if step() % 2 == 0 {
                        let a = step() % 8;
                        m.insert(v(var), sp(a, a + 1 + step() % 4));
                    }
                }
                m
            })
            .collect()
    }

    #[test]
    fn hash_join_matches_naive_join_byte_for_byte() {
        // Shared certain variable x0 (the partitioning key), plus optional
        // variables that force per-bucket compatibility checks to matter.
        let left = mapping_soup(1, 60, &[0, 1], &[2]);
        let right = mapping_soup(2, 70, &[0], &[2, 3]);
        assert_eq!(join_mapping_sets(&left, &right), join_mapping_sets_naive(&left, &right));
        // No certain shared variable (left certain = {0,1}, right certain =
        // {3}): exercises the pairwise fallback.
        let right = mapping_soup(3, 40, &[3], &[0, 2]);
        assert_eq!(join_mapping_sets(&left, &right), join_mapping_sets_naive(&left, &right));
        // Fully disjoint domains: cartesian product, still identical.
        let right = mapping_soup(4, 30, &[4], &[5]);
        assert_eq!(join_mapping_sets(&left, &right), join_mapping_sets_naive(&left, &right));
        // Empty-mapping sets and empty sets.
        let id = vec![Mapping::new()];
        assert_eq!(join_mapping_sets(&left, &id), join_mapping_sets_naive(&left, &id));
        assert_eq!(join_mapping_sets(&left, &[]), join_mapping_sets_naive(&left, &[]));
        assert_eq!(join_mapping_sets(&[], &left), join_mapping_sets_naive(&[], &left));
    }

    #[test]
    fn hash_join_partitions_on_all_certain_shared_variables() {
        // Both sides certain on {0, 1}; only exact agreement on both joins.
        let left = mapping_soup(7, 50, &[0, 1], &[]);
        let right = mapping_soup(8, 50, &[0, 1], &[2]);
        let joined = join_mapping_sets(&left, &right);
        assert_eq!(joined, join_mapping_sets_naive(&left, &right));
        for m in &joined {
            assert!(m.contains(v(0)) && m.contains(v(1)));
        }
    }

    #[test]
    fn union_and_project_sets_dedup() {
        let a = vec![Mapping::singleton(v(0), sp(0, 1)), Mapping::singleton(v(0), sp(1, 2))];
        let b = vec![Mapping::singleton(v(0), sp(1, 2))];
        let u = union_mapping_sets(&a, &b);
        assert_eq!(u.len(), 2);
        let m1 = Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(1, 2))]);
        let m2 = Mapping::from_pairs([(v(0), sp(0, 1)), (v(1), sp(2, 3))]);
        let p = project_mapping_set(&[m1, m2], &vec![v(0)].into_iter().collect());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].get(v(0)), Some(sp(0, 1)));
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut set = vec![
            Mapping::singleton(v(1), sp(0, 1)),
            Mapping::new(),
            Mapping::singleton(v(0), sp(0, 1)),
        ];
        dedup_mappings(&mut set);
        assert_eq!(set[0], Mapping::new());
        assert_eq!(set.len(), 3);
    }
}
