//! Sets of variable markers, packed into a single machine word.
//!
//! Extended variable-set automata (Section 3.1 of the paper) label their
//! variable transitions with non-empty subsets `S ⊆ Markers_V`. Validity of a
//! run, determinism, and the enumeration algorithm all manipulate such sets
//! heavily, so we pack them into a `u64`: bit `2v` is the open marker `x_v⊢`
//! and bit `2v + 1` the close marker `⊣x_v`. All operations are O(1).

use crate::variable::{Marker, VarId, MAX_VARIABLES};
use std::fmt;

/// A set of variable markers (open/close), packed into a `u64`.
///
/// ```
/// use spanners_core::{MarkerSet, Marker, VarId};
/// let x = VarId::new(0).unwrap();
/// let y = VarId::new(1).unwrap();
/// let s = MarkerSet::new().with_open(x).with_open(y);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(Marker::Open(x)));
/// assert!(!s.contains(Marker::Close(x)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MarkerSet {
    bits: u64,
}

impl MarkerSet {
    /// The empty marker set ∅.
    #[inline]
    pub const fn new() -> Self {
        MarkerSet { bits: 0 }
    }

    /// A marker set from raw bits (bit `2v` = open `v`, bit `2v+1` = close `v`).
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        MarkerSet { bits }
    }

    /// The raw bit representation.
    #[inline]
    pub const fn bits(&self) -> u64 {
        self.bits
    }

    /// A singleton set containing one marker.
    #[inline]
    pub fn singleton(marker: Marker) -> Self {
        MarkerSet::new().with(marker)
    }

    fn bit(marker: Marker) -> u64 {
        let v = marker.variable().index();
        debug_assert!(v < MAX_VARIABLES);
        match marker {
            Marker::Open(_) => 1u64 << (2 * v),
            Marker::Close(_) => 1u64 << (2 * v + 1),
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of markers in the set.
    #[inline]
    pub const fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set contains the given marker.
    #[inline]
    pub fn contains(&self, marker: Marker) -> bool {
        self.bits & Self::bit(marker) != 0
    }

    /// Whether the set contains the open marker of `var`.
    #[inline]
    pub fn opens(&self, var: VarId) -> bool {
        self.contains(Marker::Open(var))
    }

    /// Whether the set contains the close marker of `var`.
    #[inline]
    pub fn closes(&self, var: VarId) -> bool {
        self.contains(Marker::Close(var))
    }

    /// Inserts a marker in place.
    #[inline]
    pub fn insert(&mut self, marker: Marker) {
        self.bits |= Self::bit(marker);
    }

    /// Removes a marker in place.
    #[inline]
    pub fn remove(&mut self, marker: Marker) {
        self.bits &= !Self::bit(marker);
    }

    /// Returns `self ∪ {marker}` (builder style).
    #[inline]
    pub fn with(mut self, marker: Marker) -> Self {
        self.insert(marker);
        self
    }

    /// Returns `self ∪ {var⊢}`.
    #[inline]
    pub fn with_open(self, var: VarId) -> Self {
        self.with(Marker::Open(var))
    }

    /// Returns `self ∪ {⊣var}`.
    #[inline]
    pub fn with_close(self, var: VarId) -> Self {
        self.with(Marker::Close(var))
    }

    /// Set union.
    #[inline]
    pub const fn union(&self, other: &MarkerSet) -> MarkerSet {
        MarkerSet { bits: self.bits | other.bits }
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(&self, other: &MarkerSet) -> MarkerSet {
        MarkerSet { bits: self.bits & other.bits }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(&self, other: &MarkerSet) -> MarkerSet {
        MarkerSet { bits: self.bits & !other.bits }
    }

    /// Whether the two sets share no marker.
    #[inline]
    pub const fn is_disjoint(&self, other: &MarkerSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub const fn is_subset(&self, other: &MarkerSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// The set of variables whose *open* marker is in the set.
    #[inline]
    pub fn opened_vars(&self) -> VarSet {
        VarSet { bits: Self::compress_even(self.bits) }
    }

    /// The set of variables whose *close* marker is in the set.
    #[inline]
    pub fn closed_vars(&self) -> VarSet {
        VarSet { bits: Self::compress_even(self.bits >> 1) }
    }

    /// Extracts the bits at even positions of `x` into a compact 32-bit-wide value.
    fn compress_even(mut x: u64) -> u32 {
        // Keep only even-indexed bits, then compact pairs step by step.
        x &= 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
        x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
        x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
        x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
        x as u32
    }

    /// Iterates over the markers in the set, opens before closes per variable,
    /// ordered by variable index.
    pub fn iter(&self) -> MarkerSetIter {
        MarkerSetIter { bits: self.bits }
    }

    /// Builds a marker set from an iterator of markers.
    pub fn from_markers<I: IntoIterator<Item = Marker>>(markers: I) -> Self {
        let mut s = MarkerSet::new();
        for m in markers {
            s.insert(m);
        }
        s
    }

    /// The full marker set over the first `num_vars` variables (both open and close).
    pub fn all(num_vars: usize) -> Self {
        debug_assert!(num_vars <= MAX_VARIABLES);
        if num_vars == 0 {
            MarkerSet::new()
        } else if num_vars == MAX_VARIABLES {
            MarkerSet { bits: u64::MAX }
        } else {
            MarkerSet { bits: (1u64 << (2 * num_vars)) - 1 }
        }
    }

    /// Renders the set with variable names from a resolver function, in the
    /// paper's `{x⊢, ⊣y}` notation.
    pub fn display_with<'a, F>(&'a self, resolve: F) -> impl fmt::Display + 'a
    where
        F: Fn(VarId) -> String + 'a,
    {
        struct D<'a, F>(&'a MarkerSet, F);
        impl<'a, F: Fn(VarId) -> String> fmt::Display for D<'a, F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, m) in self.0.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match m {
                        Marker::Open(v) => write!(f, "{}⊢", (self.1)(v))?,
                        Marker::Close(v) => write!(f, "⊣{}", (self.1)(v))?,
                    }
                }
                write!(f, "}}")
            }
        }
        D(self, resolve)
    }
}

impl fmt::Display for MarkerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| format!("x{}", v.index())))
    }
}

impl FromIterator<Marker> for MarkerSet {
    fn from_iter<I: IntoIterator<Item = Marker>>(iter: I) -> Self {
        MarkerSet::from_markers(iter)
    }
}

/// Iterator over the markers of a [`MarkerSet`].
#[derive(Debug, Clone)]
pub struct MarkerSetIter {
    bits: u64,
}

impl Iterator for MarkerSetIter {
    type Item = Marker;

    fn next(&mut self) -> Option<Marker> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        let var = VarId::new(tz / 2).expect("marker bit within variable limit");
        Some(if tz.is_multiple_of(2) { Marker::Open(var) } else { Marker::Close(var) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MarkerSetIter {}

/// A set of variables (not markers), packed into a `u32`.
///
/// Used to track which variables are currently open / already closed while
/// checking validity and sequentiality, and for projection sets `Y ⊆ V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarSet {
    bits: u32,
}

impl VarSet {
    /// The empty variable set.
    #[inline]
    pub const fn new() -> Self {
        VarSet { bits: 0 }
    }

    /// A variable set from raw bits (bit `v` = variable `v`).
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        VarSet { bits }
    }

    /// The raw bit representation.
    #[inline]
    pub const fn bits(&self) -> u32 {
        self.bits
    }

    /// The set of the first `n` variables.
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= MAX_VARIABLES);
        if n == 0 {
            VarSet::new()
        } else if n == MAX_VARIABLES {
            VarSet { bits: u32::MAX }
        } else {
            VarSet { bits: (1u32 << n) - 1 }
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of variables in the set.
    #[inline]
    pub const fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set contains `var`.
    #[inline]
    pub fn contains(&self, var: VarId) -> bool {
        self.bits & (1 << var.index()) != 0
    }

    /// Inserts a variable in place.
    #[inline]
    pub fn insert(&mut self, var: VarId) {
        self.bits |= 1 << var.index();
    }

    /// Removes a variable in place.
    #[inline]
    pub fn remove(&mut self, var: VarId) {
        self.bits &= !(1 << var.index());
    }

    /// Returns `self ∪ {var}` (builder style).
    #[inline]
    pub fn with(mut self, var: VarId) -> Self {
        self.insert(var);
        self
    }

    /// Set union.
    #[inline]
    pub const fn union(&self, other: &VarSet) -> VarSet {
        VarSet { bits: self.bits | other.bits }
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet { bits: self.bits & other.bits }
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(&self, other: &VarSet) -> VarSet {
        VarSet { bits: self.bits & !other.bits }
    }

    /// Whether the sets are disjoint.
    #[inline]
    pub const fn is_disjoint(&self, other: &VarSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub const fn is_subset(&self, other: &VarSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// Iterates over the variables in the set in index order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(VarId::new(tz).expect("var bit within limit"))
            }
        })
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// Tracks, for one run prefix, which variables are currently open and which
/// have been closed, to decide validity (paper, Section 2: "variables are
/// opened and closed in a correct manner").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VariableStatus {
    /// Variables currently open (opened but not yet closed).
    pub open: VarSet,
    /// Variables already closed.
    pub closed: VarSet,
}

impl VariableStatus {
    /// The initial status: no variable opened or closed.
    pub fn new() -> Self {
        VariableStatus::default()
    }

    /// Applies a marker set to the status, returning the new status, or `None`
    /// if doing so would be invalid (re-opening an opened/closed variable,
    /// closing a variable that is not open, or opening and closing where the
    /// closing half is inconsistent).
    ///
    /// Note that a set `S` may open *and* close the same variable (an empty
    /// capture at the current position); this is valid.
    pub fn apply(&self, markers: MarkerSet) -> Option<VariableStatus> {
        let opens = markers.opened_vars();
        let closes = markers.closed_vars();
        let used = self.open.union(&self.closed);
        // A variable may only be opened if it was never opened before.
        if !opens.is_disjoint(&used) {
            return None;
        }
        // A variable may only be closed if it is currently open, or being
        // opened in this very step (empty span capture).
        let closable = self.open.union(&opens);
        if !closes.is_subset(&closable) {
            return None;
        }
        let open = self.open.union(&opens).difference(&closes);
        let closed = self.closed.union(&closes);
        Some(VariableStatus { open, closed })
    }

    /// Whether the status is final-compatible: every opened variable has been closed.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.open.is_empty()
    }

    /// All variables mentioned so far (open or closed).
    #[inline]
    pub fn mentioned(&self) -> VarSet {
        self.open.union(&self.closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i).unwrap()
    }

    #[test]
    fn empty_and_len() {
        let s = MarkerSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let s = s.with_open(v(0)).with_close(v(0));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn contains_and_remove() {
        let mut s = MarkerSet::new().with_open(v(3)).with_close(v(5));
        assert!(s.opens(v(3)));
        assert!(!s.closes(v(3)));
        assert!(s.closes(v(5)));
        s.remove(Marker::Open(v(3)));
        assert!(!s.opens(v(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = MarkerSet::new().with_open(v(0)).with_open(v(1));
        let b = MarkerSet::new().with_open(v(1)).with_close(v(2));
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b), MarkerSet::singleton(Marker::Open(v(1))));
        assert_eq!(a.difference(&b), MarkerSet::singleton(Marker::Open(v(0))));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
    }

    #[test]
    fn opened_and_closed_vars() {
        let s = MarkerSet::new().with_open(v(0)).with_open(v(4)).with_close(v(4)).with_close(v(7));
        let opened = s.opened_vars();
        let closed = s.closed_vars();
        assert!(opened.contains(v(0)));
        assert!(opened.contains(v(4)));
        assert!(!opened.contains(v(7)));
        assert!(closed.contains(v(4)));
        assert!(closed.contains(v(7)));
        assert!(!closed.contains(v(0)));
        assert_eq!(opened.len(), 2);
        assert_eq!(closed.len(), 2);
    }

    #[test]
    fn opened_vars_high_indices() {
        // Exercise the bit-compression on high variable indices.
        let s = MarkerSet::new().with_open(v(31)).with_close(v(30));
        assert!(s.opened_vars().contains(v(31)));
        assert!(!s.opened_vars().contains(v(30)));
        assert!(s.closed_vars().contains(v(30)));
        assert_eq!(s.opened_vars().len(), 1);
        assert_eq!(s.closed_vars().len(), 1);
    }

    #[test]
    fn iter_round_trip() {
        let s = MarkerSet::new().with_open(v(2)).with_close(v(2)).with_open(v(5));
        let markers: Vec<_> = s.iter().collect();
        assert_eq!(markers, vec![Marker::Open(v(2)), Marker::Close(v(2)), Marker::Open(v(5))]);
        let rebuilt: MarkerSet = markers.into_iter().collect();
        assert_eq!(rebuilt, s);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn all_markers() {
        assert_eq!(MarkerSet::all(0), MarkerSet::new());
        assert_eq!(MarkerSet::all(2).len(), 4);
        assert_eq!(MarkerSet::all(MAX_VARIABLES).len(), 64);
    }

    #[test]
    fn display() {
        let s = MarkerSet::new().with_open(v(0)).with_close(v(1));
        assert_eq!(s.to_string(), "{x0⊢, ⊣x1}");
        assert_eq!(MarkerSet::new().to_string(), "{}");
    }

    #[test]
    fn varset_basics() {
        let mut s = VarSet::new();
        assert!(s.is_empty());
        s.insert(v(3));
        s.insert(v(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(v(1)));
        assert!(!s.contains(v(0)));
        s.remove(v(1));
        assert_eq!(s.len(), 1);
        let t = VarSet::first_n(4);
        assert_eq!(t.len(), 4);
        assert!(s.is_subset(&t));
        assert_eq!(VarSet::first_n(0), VarSet::new());
        assert_eq!(VarSet::first_n(MAX_VARIABLES).len(), 32);
    }

    #[test]
    fn varset_iter_and_display() {
        let s: VarSet = vec![v(2), v(0)].into_iter().collect();
        let items: Vec<_> = s.iter().collect();
        assert_eq!(items, vec![v(0), v(2)]);
        assert_eq!(s.to_string(), "{x0, x2}");
    }

    #[test]
    fn status_valid_sequence() {
        // open x, then close x: valid
        let st = VariableStatus::new();
        let st = st.apply(MarkerSet::new().with_open(v(0))).unwrap();
        assert!(!st.is_complete());
        let st = st.apply(MarkerSet::new().with_close(v(0))).unwrap();
        assert!(st.is_complete());
        assert!(st.closed.contains(v(0)));
    }

    #[test]
    fn status_open_and_close_same_step() {
        // {x⊢, ⊣x} in one step: empty span capture, valid.
        let st = VariableStatus::new();
        let st = st.apply(MarkerSet::new().with_open(v(0)).with_close(v(0))).unwrap();
        assert!(st.is_complete());
        assert!(st.closed.contains(v(0)));
    }

    #[test]
    fn status_rejects_reopen() {
        let st = VariableStatus::new().apply(MarkerSet::new().with_open(v(0))).unwrap();
        assert!(st.apply(MarkerSet::new().with_open(v(0))).is_none());
        let st = st.apply(MarkerSet::new().with_close(v(0))).unwrap();
        // reopening after close also invalid
        assert!(st.apply(MarkerSet::new().with_open(v(0))).is_none());
    }

    #[test]
    fn status_rejects_close_unopened() {
        let st = VariableStatus::new();
        assert!(st.apply(MarkerSet::new().with_close(v(0))).is_none());
        // closing twice
        let st = st
            .apply(MarkerSet::new().with_open(v(0)))
            .unwrap()
            .apply(MarkerSet::new().with_close(v(0)))
            .unwrap();
        assert!(st.apply(MarkerSet::new().with_close(v(0))).is_none());
    }

    #[test]
    fn status_mentioned() {
        let st = VariableStatus::new()
            .apply(MarkerSet::new().with_open(v(0)).with_open(v(1)))
            .unwrap()
            .apply(MarkerSet::new().with_close(v(1)))
            .unwrap();
        assert_eq!(st.mentioned().len(), 2);
        assert!(st.open.contains(v(0)));
        assert!(st.closed.contains(v(1)));
    }
}
