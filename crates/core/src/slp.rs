//! Grammar-aware evaluation over SLP-compressed documents.
//!
//! A *straight-line program* (SLP) is an acyclic context-free grammar in
//! Chomsky-ish normal form — every rule is a pair `X → L R` over previously
//! defined symbols, terminals are single bytes — whose derivation produces
//! exactly one document. Repetitive corpora (logs especially) compress 10–50×
//! into this form, and the Muñoz–Riveros line of work shows spanners can be
//! evaluated **directly on the grammar**, in time proportional to the
//! *compressed* size, instead of decompressing first.
//!
//! The engine here exploits the same structure the byte engines already
//! compute per position. One position of Algorithm 3 applies the transform
//! `T_b = Read_b ∘ Capture` to the per-state count vector; `T_b` is linear,
//! so the transform of a nonterminal's whole expansion is the product of its
//! children's transforms. Per `(nonterminal, det-state)` the engine memoizes
//!
//! * the **transition summary** — the set of det states reachable after
//!   reading the expansion from one source state (for acceptance), and
//! * the **mapping-count row** — how many partial mappings end in each of
//!   those states (for counting),
//!
//! computed bottom-up on demand and composed in `O(#rules)` per document
//! instead of `O(#bytes)`. The final `Capturing` step of the byte engines
//! (which runs once *after* the last position) is applied once at the end,
//! outside the grammar composition, so the per-position transform stays
//! associative and the memoized rows agree byte-for-byte with
//! [`crate::CountCache`] / [`crate::DetSeva::accepts`] on the decompressed
//! document — `tests/slp.rs` pins this differentially.
//!
//! [`SlpEvaluator`] mirrors [`crate::CountCache`]'s engine-embedding idiom:
//! it drives the eager [`DetSeva`], the live lazy engine, and the
//! frozen/delta split of the batch runtime, owning the per-worker
//! [`LazyCache`] / [`FrozenDelta`] plus the memo tables. A warm memo can be
//! snapshotted into an immutable [`SlpSharedMemo`] and attached to a
//! [`FrozenCache`] (see [`crate::CompiledSpanner::freeze_warm_slp`]), so N
//! workers compose documents off one shared bottom-up pass instead of
//! recomputing it N times.

use std::collections::HashMap;
use std::sync::Arc;

use crate::det::{DetSeva, Stepper};
use crate::document::Document;
use crate::error::SpannerError;
use crate::lazy::{
    next_engine_id, CapacitySignature, FrozenCache, FrozenDelta, FrozenStepper, LazyCache,
    LazyDetSeva, LazyStepper,
};
use crate::limits::{EvalLimits, LimitChecker};

/// Symbols below this bound are terminals (the byte itself); symbol
/// `FIRST_NONTERMINAL + k` names rule `k`.
const FIRST_NONTERMINAL: u32 = 256;

/// Default byte budget of the per-evaluator memo tables (rows are cleared
/// and recomputed on demand past this), mirroring
/// [`crate::lazy::LazyConfig`]'s default determinization budget.
pub const DEFAULT_MEMO_BUDGET: usize = 8 * 1024 * 1024;

/// The rule set of a straight-line program: rule `k` (symbol `256 + k`)
/// expands to the pair of earlier symbols `rules[k]`.
///
/// Rule sets are validated acyclic at construction (every rule references
/// only terminals and *earlier* rules) and are shared between the documents
/// of a corpus via `Arc` — the memoized per-rule summaries are keyed by the
/// rule set's identity, so documents sharing one `SlpRules` also share one
/// bottom-up pass.
#[derive(Debug, Clone)]
pub struct SlpRules {
    /// Process-unique identity (memo keying).
    id: u64,
    /// `rules[k] = (left, right)`, both `< 256 + k`.
    rules: Vec<(u32, u32)>,
    /// Expansion length of each rule's derivation, in bytes.
    lens: Vec<u64>,
}

impl SlpRules {
    /// Validates and packages a rule list. Every rule may reference only
    /// terminals (`0..256`) and strictly earlier rules; expansion lengths
    /// must fit `u64`.
    pub fn new(rules: Vec<(u32, u32)>) -> Result<SlpRules, SpannerError> {
        if rules.len() > (u32::MAX - FIRST_NONTERMINAL) as usize {
            return Err(SpannerError::InvalidConfig { what: "too many SLP rules for u32 symbols" });
        }
        let mut lens: Vec<u64> = Vec::with_capacity(rules.len());
        for (k, &(l, r)) in rules.iter().enumerate() {
            let bound = FIRST_NONTERMINAL + k as u32;
            if l >= bound || r >= bound {
                return Err(SpannerError::InvalidConfig {
                    what: "SLP rule references an undefined or later symbol",
                });
            }
            let len_of = |s: u32| -> u64 {
                if s < FIRST_NONTERMINAL {
                    1
                } else {
                    lens[(s - FIRST_NONTERMINAL) as usize]
                }
            };
            let len = len_of(l).checked_add(len_of(r)).ok_or(SpannerError::InvalidConfig {
                what: "SLP expansion length overflows u64",
            })?;
            lens.push(len);
        }
        Ok(SlpRules { id: next_engine_id(), rules, lens })
    }

    /// An empty rule set (documents are then plain terminal sequences).
    pub fn empty() -> SlpRules {
        SlpRules::new(Vec::new()).expect("empty rule set is always valid")
    }

    /// Process-unique identity of this rule set (memo keying).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of rules.
    #[inline]
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// The `(left, right)` pair of nonterminal symbol `sym`.
    #[inline]
    pub(crate) fn rule(&self, sym: u32) -> (u32, u32) {
        self.rules[(sym - FIRST_NONTERMINAL) as usize]
    }

    /// Expansion length of `sym` in bytes.
    #[inline]
    pub fn symbol_len(&self, sym: u32) -> u64 {
        if sym < FIRST_NONTERMINAL {
            1
        } else {
            self.lens[(sym - FIRST_NONTERMINAL) as usize]
        }
    }
}

/// One SLP-compressed document: a shared rule set plus the top-level symbol
/// sequence whose expansion is the document.
///
/// Build one offline with `spanners-workloads`' Re-Pair-style builder, or
/// [`Slp::literal`] for an uncompressed terminal sequence. Evaluate with
/// [`SlpEvaluator`] through the
/// [`CompiledSpanner`](crate::CompiledSpanner::count_slp_with) facades.
#[derive(Debug, Clone)]
pub struct Slp {
    rules: Arc<SlpRules>,
    sequence: Vec<u32>,
    /// Total expansion length in bytes.
    len: u64,
}

impl Slp {
    /// Packages a compressed document, validating that the sequence only
    /// references defined symbols and that the expansion length fits `u64`.
    pub fn new(rules: Arc<SlpRules>, sequence: Vec<u32>) -> Result<Slp, SpannerError> {
        let bound = FIRST_NONTERMINAL + rules.num_rules() as u32;
        let mut len = 0u64;
        for &sym in &sequence {
            if sym >= bound {
                return Err(SpannerError::InvalidConfig {
                    what: "SLP sequence references an undefined symbol",
                });
            }
            len = len
                .checked_add(rules.symbol_len(sym))
                .ok_or(SpannerError::InvalidConfig { what: "SLP document length overflows u64" })?;
        }
        Ok(Slp { rules, sequence, len })
    }

    /// An uncompressed SLP: every byte of `bytes` as a terminal symbol.
    pub fn literal(bytes: &[u8]) -> Slp {
        let rules = Arc::new(SlpRules::empty());
        let sequence = bytes.iter().map(|&b| b as u32).collect();
        Slp::new(rules, sequence).expect("terminal sequences are always valid")
    }

    /// The shared rule set.
    #[inline]
    pub fn rules(&self) -> &Arc<SlpRules> {
        &self.rules
    }

    /// The top-level symbol sequence.
    #[inline]
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Length of the decompressed document in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the decompressed document is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in symbols: the top-level sequence plus two symbols
    /// per rule (the grammar is shared across a corpus, so per-document cost
    /// is dominated by the sequence).
    pub fn compressed_size(&self) -> usize {
        self.sequence.len() + 2 * self.rules.num_rules()
    }

    /// `decompressed bytes / compressed symbols` — the factor the
    /// grammar-aware engine's per-document work is divided by.
    pub fn compression_ratio(&self) -> f64 {
        self.len as f64 / self.compressed_size().max(1) as f64
    }

    /// Expands the SLP into `out` (cleared first), iteratively — grammars
    /// from the Re-Pair builder can be deep, so no recursion.
    pub fn decompress_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(usize::try_from(self.len).unwrap_or(0));
        let mut stack: Vec<u32> = Vec::new();
        for &top in &self.sequence {
            stack.push(top);
            while let Some(sym) = stack.pop() {
                if sym < FIRST_NONTERMINAL {
                    out.push(sym as u8);
                } else {
                    let (l, r) = self.rules.rule(sym);
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
    }

    /// Expands the SLP into a fresh [`Document`].
    pub fn decompress(&self) -> Document {
        let mut bytes = Vec::new();
        self.decompress_into(&mut bytes);
        Document::new(bytes)
    }
}

/// Reference to a memoized (or scratch-computed) row.
#[derive(Debug, Clone, Copy)]
enum RowRef {
    /// The row lives in the terminal scratch buffer.
    Term,
    /// `count_arena[a..b]` / `set_arena[a..b]` of the local memo.
    Local(usize, usize),
    /// Same, of the shared (frozen-attached) memo.
    Shared(usize, usize),
}

/// Memo tables: per `(rule-set id, symbol, source det state)`, the
/// mapping-count row (for counting) and the reachable-state row (for
/// acceptance), flat CSR-style arenas behind small hash indexes.
#[derive(Debug, Clone, Default)]
struct RowTables {
    count_index: HashMap<(u64, u32, u32), u32>,
    count_offsets: Vec<u32>,
    count_arena: Vec<(u32, u64)>,
    set_index: HashMap<(u64, u32, u32), u32>,
    set_offsets: Vec<u32>,
    set_arena: Vec<u32>,
    /// Approximate bytes held (arena entries + index overhead).
    bytes: usize,
}

/// Approximate index-entry overhead of one memoized row (hash-map key,
/// value, bucket share, offset slot).
const ROW_COST: usize = 64;

impl RowTables {
    fn clear(&mut self) {
        self.count_index.clear();
        self.count_offsets.clear();
        self.count_arena.clear();
        self.set_index.clear();
        self.set_offsets.clear();
        self.set_arena.clear();
        self.bytes = 0;
    }

    fn is_empty(&self) -> bool {
        self.count_index.is_empty() && self.set_index.is_empty()
    }

    fn num_rows(&self) -> usize {
        self.count_index.len() + self.set_index.len()
    }

    fn lookup_count(&self, key: (u64, u32, u32)) -> Option<(usize, usize)> {
        let &ri = self.count_index.get(&key)?;
        let ri = ri as usize;
        Some((self.count_offsets[ri] as usize, self.count_offsets[ri + 1] as usize))
    }

    fn lookup_set(&self, key: (u64, u32, u32)) -> Option<(usize, usize)> {
        let &ri = self.set_index.get(&key)?;
        let ri = ri as usize;
        Some((self.set_offsets[ri] as usize, self.set_offsets[ri + 1] as usize))
    }
}

/// An immutable snapshot of warm memo tables, attached to a
/// [`FrozenCache`] and shared read-only across batch workers (`Send + Sync`
/// — plain data). Built by [`crate::CompiledSpanner::freeze_warm_slp`]: the
/// rows were computed against the pre-freeze [`LazyCache`], and freezing
/// preserves state ids, so they remain valid against the snapshot.
#[derive(Debug, Clone)]
pub struct SlpSharedMemo {
    tables: RowTables,
}

impl SlpSharedMemo {
    /// Approximate bytes held by the shared rows.
    pub fn memory_bytes(&self) -> usize {
        self.tables.bytes
    }

    /// Number of memoized `(rule set, symbol, state)` rows.
    pub fn num_rows(&self) -> usize {
        self.tables.num_rows()
    }
}

/// One explicit-stack frame of the bottom-up count-row computation:
/// `row(sym, q) = Σ_{(p, c) ∈ row(left, q)} c · row(right, p)`.
#[derive(Debug, Default)]
struct CountFrame {
    sym: u32,
    q: u32,
    left_ready: bool,
    idx: usize,
    left: Vec<(u32, u64)>,
    acc: Vec<(u32, u64)>,
}

/// Set-row sibling of [`CountFrame`]:
/// `reach(sym, q) = ⋃_{p ∈ reach(left, q)} reach(right, p)`.
#[derive(Debug, Default)]
struct SetFrame {
    sym: u32,
    q: u32,
    left_ready: bool,
    idx: usize,
    left: Vec<u32>,
    acc: Vec<u32>,
}

/// The reusable workspace of one evaluator: memo tables, frame stacks and
/// scratch buffers, all retained-capacity across documents.
#[derive(Debug)]
struct Workspace {
    memo: RowTables,
    /// `(engine id, epoch)` the local memo rows are valid for. Engine ids
    /// come from the shared process-wide counter ([`next_engine_id`]), so
    /// one pair disambiguates eager/lazy/frozen contexts; the epoch is the
    /// lazy cache's clear count (state ids move on eviction) or a
    /// per-document generation for frozen runs (delta-local ids die with
    /// the per-document delta reset).
    ctx: (u64, u64),
    /// Effective memo byte budget for the current run.
    budget: usize,
    /// Budget-driven memo clears over the evaluator's lifetime.
    clears: u64,
    /// Rows computed over the evaluator's lifetime (cache-efficiency
    /// diagnostic: `rows_built - memo.num_rows()` is recompute waste).
    rows_built: u64,
    checker: LimitChecker,
    frames: Vec<CountFrame>,
    free_frames: Vec<CountFrame>,
    sframes: Vec<SetFrame>,
    free_sframes: Vec<SetFrame>,
    /// Capture sources of one terminal row: the state plus its marker
    /// targets (one entry per marker pair — multiplicity is mapping count).
    srcs: Vec<u32>,
    /// Terminal count row scratch.
    trow: Vec<(u32, u64)>,
    /// Terminal set row scratch.
    tset: Vec<u32>,
    /// Count-fold frontier: `(state, partial-mapping count)`.
    frontier: Vec<(u32, u64)>,
    next: Vec<(u32, u64)>,
    /// Acceptance-fold live set (sorted).
    live: Vec<u32>,
    next_live: Vec<u32>,
    /// Maintenance scratch (live ids handed to [`Stepper::maintain`]).
    maint: Vec<u32>,
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace {
            memo: RowTables::default(),
            ctx: (0, 0),
            budget: DEFAULT_MEMO_BUDGET,
            clears: 0,
            rows_built: 0,
            checker: LimitChecker::unlimited(),
            frames: Vec::new(),
            free_frames: Vec::new(),
            sframes: Vec::new(),
            free_sframes: Vec::new(),
            srcs: Vec::new(),
            trow: Vec::new(),
            tset: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            live: Vec::new(),
            next_live: Vec::new(),
            maint: Vec::new(),
        }
    }
}

impl Workspace {
    /// Starts one evaluation: arms the limit checker, sets the effective
    /// memo budget, and drops memoized rows if the engine context changed
    /// (different automaton/snapshot, or state ids moved since).
    fn begin(&mut self, limits: &EvalLimits, engine: u64, epoch: u64, budget: usize) {
        self.checker = LimitChecker::start(limits);
        self.budget = budget;
        if self.ctx != (engine, epoch) {
            self.memo.clear();
            self.ctx = (engine, epoch);
        }
    }

    /// Runs the clear-and-restart eviction protocol when the underlying
    /// cache is over budget: live frontier ids are handed to
    /// [`Stepper::maintain`], remapped in place, and the local memo — whose
    /// rows reference pre-eviction ids — is dropped. Mirrors
    /// `CountCache::maintenance_point`; the remap completes even when the
    /// thrash guard trips, so the error is propagated *after* the state is
    /// consistent again.
    fn maintain_ids<S: Stepper>(
        &mut self,
        st: &mut S,
        ids: &mut [u32],
    ) -> Result<(), SpannerError> {
        if !st.wants_maintenance() {
            return Ok(());
        }
        self.maint.clear();
        self.maint.extend_from_slice(ids);
        if st.maintain(&mut self.maint) {
            ids.copy_from_slice(&self.maint);
            self.memo.clear();
            // Evictions remap state ids exactly once per clear, so bumping
            // the epoch keeps rows memoized *after* this point valid for the
            // next run against the same cache.
            self.ctx.1 += 1;
            self.checker.note_clear()?;
        }
        Ok(())
    }

    fn maintain_count_frontier<S: Stepper>(&mut self, st: &mut S) -> Result<(), SpannerError> {
        if !st.wants_maintenance() {
            return Ok(());
        }
        let mut ids = std::mem::take(&mut self.next_live);
        ids.clear();
        ids.extend(self.frontier.iter().map(|&(q, _)| q));
        let verdict = self.maintain_ids(st, &mut ids);
        for (slot, &q) in self.frontier.iter_mut().zip(ids.iter()) {
            slot.0 = q;
        }
        self.next_live = ids;
        verdict
    }

    fn maintain_live<S: Stepper>(&mut self, st: &mut S) -> Result<(), SpannerError> {
        if !st.wants_maintenance() {
            return Ok(());
        }
        let mut ids = std::mem::take(&mut self.live);
        let verdict = self.maintain_ids(st, &mut ids);
        // Remapped ids need not preserve order; the fold relies on
        // sortedness for merging.
        ids.sort_unstable();
        self.live = ids;
        verdict
    }

    /// Computes the terminal count row for reading byte `b` from state `q`
    /// into `self.trow`: `Capture` forks `{q: 1}` into `q` plus one entry
    /// per marker pair (the phase-start snapshot means marker steps do not
    /// chain), then `Read` steps every source on `b`'s class.
    fn terminal_count_row<S: Stepper>(&mut self, st: &mut S, b: u8, q: u32) {
        self.srcs.clear();
        self.srcs.push(q);
        let qq = q as usize;
        if st.has_markers(qq) {
            for &(_, r) in st.markers_from(qq) {
                self.srcs.push(r as u32);
            }
        }
        let cls = st.byte_class(b);
        self.trow.clear();
        for i in 0..self.srcs.len() {
            if let Some(t) = st.step_class(self.srcs[i] as usize, cls) {
                self.trow.push((t as u32, 1));
            }
        }
        self.trow.sort_unstable_by_key(|&(p, _)| p);
        merge_sorted_counts_saturating(&mut self.trow);
    }

    /// Set sibling of [`Workspace::terminal_count_row`], into `self.tset`.
    fn terminal_set_row<S: Stepper>(&mut self, st: &mut S, b: u8, q: u32) {
        self.srcs.clear();
        self.srcs.push(q);
        let qq = q as usize;
        if st.has_markers(qq) {
            for &(_, r) in st.markers_from(qq) {
                self.srcs.push(r as u32);
            }
        }
        let cls = st.byte_class(b);
        self.tset.clear();
        for i in 0..self.srcs.len() {
            if let Some(t) = st.step_class(self.srcs[i] as usize, cls) {
                self.tset.push(t as u32);
            }
        }
        self.tset.sort_unstable();
        self.tset.dedup();
    }

    /// The final-`Capturing` weight of state `q`: how many mappings one
    /// partial mapping ending in `q` contributes after the end-of-document
    /// capture step — `[q final] + #{marker pairs of q with a final target}`.
    fn weight<S: Stepper>(&mut self, st: &mut S, q: u32) -> u64 {
        let qq = q as usize;
        let mut w = u64::from(st.is_final(qq));
        if st.has_markers(qq) {
            self.srcs.clear();
            for &(_, r) in st.markers_from(qq) {
                self.srcs.push(r as u32);
            }
            for i in 0..self.srcs.len() {
                w += u64::from(st.is_final(self.srcs[i] as usize));
            }
        }
        w
    }

    fn lookup_count(&self, key: (u64, u32, u32), shared: Option<&RowTables>) -> Option<RowRef> {
        if let Some((a, b)) = self.memo.lookup_count(key) {
            return Some(RowRef::Local(a, b));
        }
        if let Some((a, b)) = shared.and_then(|sh| sh.lookup_count(key)) {
            return Some(RowRef::Shared(a, b));
        }
        None
    }

    fn lookup_set(&self, key: (u64, u32, u32), shared: Option<&RowTables>) -> Option<RowRef> {
        if let Some((a, b)) = self.memo.lookup_set(key) {
            return Some(RowRef::Local(a, b));
        }
        if let Some((a, b)) = shared.and_then(|sh| sh.lookup_set(key)) {
            return Some(RowRef::Shared(a, b));
        }
        None
    }

    /// Memoizes a freshly computed count row, clearing the tables first if
    /// the budget would be exceeded (clear-and-restart: memoized rows are
    /// deterministic, so recomputation on demand is always correct). A
    /// budget clear counts against [`EvalLimits::max_cache_clears`], so
    /// persistent memo thrash surfaces as the same recoverable
    /// `BudgetExceeded` the degradation ladder keys on; the clear completes
    /// before the verdict propagates, leaving the tables consistent.
    fn insert_count_row(
        &mut self,
        key: (u64, u32, u32),
        row: &[(u32, u64)],
    ) -> Result<(), SpannerError> {
        let cost = std::mem::size_of_val(row) + ROW_COST;
        if self.memo.bytes + cost > self.budget && !self.memo.is_empty() {
            self.memo.clear();
            self.clears += 1;
            self.checker.note_clear()?;
        }
        if self.memo.count_offsets.is_empty() {
            self.memo.count_offsets.push(0);
        }
        let ri = (self.memo.count_offsets.len() - 1) as u32;
        self.memo.count_arena.extend_from_slice(row);
        self.memo.count_offsets.push(self.memo.count_arena.len() as u32);
        self.memo.count_index.insert(key, ri);
        self.memo.bytes += cost;
        self.rows_built += 1;
        Ok(())
    }

    /// Set sibling of [`Workspace::insert_count_row`].
    fn insert_set_row(&mut self, key: (u64, u32, u32), row: &[u32]) -> Result<(), SpannerError> {
        let cost = std::mem::size_of_val(row) + ROW_COST;
        if self.memo.bytes + cost > self.budget && !self.memo.is_empty() {
            self.memo.clear();
            self.clears += 1;
            self.checker.note_clear()?;
        }
        if self.memo.set_offsets.is_empty() {
            self.memo.set_offsets.push(0);
        }
        let ri = (self.memo.set_offsets.len() - 1) as u32;
        self.memo.set_arena.extend_from_slice(row);
        self.memo.set_offsets.push(self.memo.set_arena.len() as u32);
        self.memo.set_index.insert(key, ri);
        self.memo.bytes += cost;
        self.rows_built += 1;
        Ok(())
    }

    /// Resolves the count row of `(sym, q)` without descending: terminal
    /// rows are computed inline (into `self.trow`), nonterminal rows come
    /// from the local or shared memo. `None` means "not memoized yet".
    fn quick_count_row<S: Stepper>(
        &mut self,
        st: &mut S,
        gid: u64,
        sym: u32,
        q: u32,
        shared: Option<&RowTables>,
    ) -> Option<RowRef> {
        if sym < FIRST_NONTERMINAL {
            self.terminal_count_row(st, sym as u8, q);
            return Some(RowRef::Term);
        }
        self.lookup_count((gid, sym, q), shared)
    }

    /// Set sibling of [`Workspace::quick_count_row`].
    fn quick_set_row<S: Stepper>(
        &mut self,
        st: &mut S,
        gid: u64,
        sym: u32,
        q: u32,
        shared: Option<&RowTables>,
    ) -> Option<RowRef> {
        if sym < FIRST_NONTERMINAL {
            self.terminal_set_row(st, sym as u8, q);
            return Some(RowRef::Term);
        }
        self.lookup_set((gid, sym, q), shared)
    }

    /// Copies the referenced count row into `out`.
    fn copy_count_row(&self, rref: RowRef, shared: Option<&RowTables>, out: &mut Vec<(u32, u64)>) {
        out.clear();
        match rref {
            RowRef::Term => out.extend_from_slice(&self.trow),
            RowRef::Local(a, b) => out.extend_from_slice(&self.memo.count_arena[a..b]),
            RowRef::Shared(a, b) => {
                out.extend_from_slice(&shared.expect("shared ref").count_arena[a..b])
            }
        }
    }

    /// Copies the referenced set row into `out`.
    fn copy_set_row(&self, rref: RowRef, shared: Option<&RowTables>, out: &mut Vec<u32>) {
        out.clear();
        match rref {
            RowRef::Term => out.extend_from_slice(&self.tset),
            RowRef::Local(a, b) => out.extend_from_slice(&self.memo.set_arena[a..b]),
            RowRef::Shared(a, b) => {
                out.extend_from_slice(&shared.expect("shared ref").set_arena[a..b])
            }
        }
    }

    /// Adds `c ×` the referenced count row into `acc` (checked arithmetic).
    fn accumulate_count(
        &self,
        rref: RowRef,
        c: u64,
        shared: Option<&RowTables>,
        acc: &mut Vec<(u32, u64)>,
    ) -> Result<(), SpannerError> {
        let row: &[(u32, u64)] = match rref {
            RowRef::Term => &self.trow,
            RowRef::Local(a, b) => &self.memo.count_arena[a..b],
            RowRef::Shared(a, b) => &shared.expect("shared ref").count_arena[a..b],
        };
        for &(p, w) in row {
            let v = c.checked_mul(w).ok_or(SpannerError::CountOverflow)?;
            acc.push((p, v));
        }
        Ok(())
    }

    fn take_count_frame(&mut self, sym: u32, q: u32) -> CountFrame {
        let mut f = self.free_frames.pop().unwrap_or_default();
        f.sym = sym;
        f.q = q;
        f.left_ready = false;
        f.idx = 0;
        f.left.clear();
        f.acc.clear();
        f
    }

    fn take_set_frame(&mut self, sym: u32, q: u32) -> SetFrame {
        let mut f = self.free_sframes.pop().unwrap_or_default();
        f.sym = sym;
        f.q = q;
        f.left_ready = false;
        f.idx = 0;
        f.left.clear();
        f.acc.clear();
        f
    }

    /// Aborts an in-flight computation, recycling every frame (capacity
    /// retained) so the evaluator is reusable after an error.
    fn abort_count(&mut self, f: CountFrame) {
        self.free_frames.push(f);
        while let Some(g) = self.frames.pop() {
            self.free_frames.push(g);
        }
    }

    fn abort_set(&mut self, f: SetFrame) {
        self.free_sframes.push(f);
        while let Some(g) = self.sframes.pop() {
            self.free_sframes.push(g);
        }
    }

    /// Computes and memoizes the count row of nonterminal `(root_sym,
    /// root_q)` with an explicit frame stack (Re-Pair grammars can be deep).
    /// Demand-driven: only rows reachable from live frontier states are
    /// computed, which also bounds every intermediate count by a count the
    /// byte engine would hold at some document position.
    fn compute_count_row<S: Stepper>(
        &mut self,
        st: &mut S,
        rules: &SlpRules,
        gid: u64,
        root_sym: u32,
        root_q: u32,
        shared: Option<&RowTables>,
    ) -> Result<(), SpannerError> {
        debug_assert!(self.frames.is_empty());
        let root = self.take_count_frame(root_sym, root_q);
        self.frames.push(root);
        'outer: while let Some(mut f) = self.frames.pop() {
            if let Err(e) = self.checker.tick() {
                self.abort_count(f);
                return Err(e);
            }
            let (lsym, rsym) = rules.rule(f.sym);
            if !f.left_ready {
                match self.quick_count_row(st, gid, lsym, f.q, shared) {
                    Some(rref) => {
                        self.copy_count_row(rref, shared, &mut f.left);
                        f.left_ready = true;
                    }
                    None => {
                        let child = self.take_count_frame(lsym, f.q);
                        self.frames.push(f);
                        self.frames.push(child);
                        continue 'outer;
                    }
                }
            }
            while f.idx < f.left.len() {
                if let Err(e) = self.checker.tick() {
                    self.abort_count(f);
                    return Err(e);
                }
                let (p, c) = f.left[f.idx];
                match self.quick_count_row(st, gid, rsym, p, shared) {
                    Some(rref) => {
                        if let Err(e) = self.accumulate_count(rref, c, shared, &mut f.acc) {
                            self.abort_count(f);
                            return Err(e);
                        }
                        f.idx += 1;
                    }
                    None => {
                        let child = self.take_count_frame(rsym, p);
                        self.frames.push(f);
                        self.frames.push(child);
                        continue 'outer;
                    }
                }
            }
            // All right rows folded in: merge duplicate end states and
            // memoize. The insert always lands (clear-and-restart first if
            // over budget), so the parent's next lookup is a guaranteed hit.
            f.acc.sort_unstable_by_key(|&(p, _)| p);
            if let Err(e) = merge_sorted_counts(&mut f.acc) {
                self.abort_count(f);
                return Err(e);
            }
            if let Err(e) = self.insert_count_row((gid, f.sym, f.q), &f.acc) {
                self.abort_count(f);
                return Err(e);
            }
            self.free_frames.push(f);
        }
        Ok(())
    }

    /// Set sibling of [`Workspace::compute_count_row`].
    fn compute_set_row<S: Stepper>(
        &mut self,
        st: &mut S,
        rules: &SlpRules,
        gid: u64,
        root_sym: u32,
        root_q: u32,
        shared: Option<&RowTables>,
    ) -> Result<(), SpannerError> {
        debug_assert!(self.sframes.is_empty());
        let root = self.take_set_frame(root_sym, root_q);
        self.sframes.push(root);
        'outer: while let Some(mut f) = self.sframes.pop() {
            if let Err(e) = self.checker.tick() {
                self.abort_set(f);
                return Err(e);
            }
            let (lsym, rsym) = rules.rule(f.sym);
            if !f.left_ready {
                match self.quick_set_row(st, gid, lsym, f.q, shared) {
                    Some(rref) => {
                        self.copy_set_row(rref, shared, &mut f.left);
                        f.left_ready = true;
                    }
                    None => {
                        let child = self.take_set_frame(lsym, f.q);
                        self.sframes.push(f);
                        self.sframes.push(child);
                        continue 'outer;
                    }
                }
            }
            while f.idx < f.left.len() {
                if let Err(e) = self.checker.tick() {
                    self.abort_set(f);
                    return Err(e);
                }
                let p = f.left[f.idx];
                match self.quick_set_row(st, gid, rsym, p, shared) {
                    Some(rref) => {
                        match rref {
                            RowRef::Term => f.acc.extend_from_slice(&self.tset),
                            RowRef::Local(a, b) => {
                                f.acc.extend_from_slice(&self.memo.set_arena[a..b])
                            }
                            RowRef::Shared(a, b) => f
                                .acc
                                .extend_from_slice(&shared.expect("shared ref").set_arena[a..b]),
                        }
                        f.idx += 1;
                    }
                    None => {
                        let child = self.take_set_frame(rsym, p);
                        self.sframes.push(f);
                        self.sframes.push(child);
                        continue 'outer;
                    }
                }
            }
            f.acc.sort_unstable();
            f.acc.dedup();
            if let Err(e) = self.insert_set_row((gid, f.sym, f.q), &f.acc) {
                self.abort_set(f);
                return Err(e);
            }
            self.free_sframes.push(f);
        }
        Ok(())
    }

    /// The count row of `(sym, q)`, memoizing nonterminals on first use.
    fn ensure_count_row<S: Stepper>(
        &mut self,
        st: &mut S,
        rules: &SlpRules,
        gid: u64,
        sym: u32,
        q: u32,
        shared: Option<&RowTables>,
    ) -> Result<RowRef, SpannerError> {
        if let Some(rref) = self.quick_count_row(st, gid, sym, q, shared) {
            return Ok(rref);
        }
        self.compute_count_row(st, rules, gid, sym, q, shared)?;
        Ok(self.lookup_count((gid, sym, q), shared).expect("row memoized by compute_count_row"))
    }

    /// Set sibling of [`Workspace::ensure_count_row`].
    fn ensure_set_row<S: Stepper>(
        &mut self,
        st: &mut S,
        rules: &SlpRules,
        gid: u64,
        sym: u32,
        q: u32,
        shared: Option<&RowTables>,
    ) -> Result<RowRef, SpannerError> {
        if let Some(rref) = self.quick_set_row(st, gid, sym, q, shared) {
            return Ok(rref);
        }
        self.compute_set_row(st, rules, gid, sym, q, shared)?;
        Ok(self.lookup_set((gid, sym, q), shared).expect("row memoized by compute_set_row"))
    }

    /// The counting fold: start from `{initial: 1}`, apply each sequence
    /// symbol's memoized row, then apply the final-capture weights —
    /// byte-identical to `CountCache`'s per-byte loop on the decompressed
    /// document (`tests/slp.rs` pins this).
    fn count_run<S: Stepper>(
        &mut self,
        st: &mut S,
        slp: &Slp,
        shared: Option<&RowTables>,
    ) -> Result<u64, SpannerError> {
        // At least one tick per document, so zero deadlines and injected
        // expirations trip even on empty sequences.
        self.checker.tick()?;
        let rules = slp.rules().clone();
        let gid = rules.id();
        let start = st.start_state() as u32;
        self.frontier.clear();
        self.frontier.push((start, 1));
        for &sym in slp.sequence() {
            self.maintain_count_frontier(st)?;
            self.next.clear();
            for fi in 0..self.frontier.len() {
                self.checker.tick()?;
                let (q, c) = self.frontier[fi];
                let rref = self.ensure_count_row(st, &rules, gid, sym, q, shared)?;
                let mut next = std::mem::take(&mut self.next);
                let res = self.accumulate_count(rref, c, shared, &mut next);
                self.next = next;
                res?;
            }
            self.next.sort_unstable_by_key(|&(p, _)| p);
            std::mem::swap(&mut self.frontier, &mut self.next);
            merge_sorted_counts(&mut self.frontier)?;
            if self.frontier.is_empty() {
                return Ok(0);
            }
        }
        self.maintain_count_frontier(st)?;
        let mut total = 0u64;
        for fi in 0..self.frontier.len() {
            let (q, c) = self.frontier[fi];
            let w = self.weight(st, q);
            let add = c.checked_mul(w).ok_or(SpannerError::CountOverflow)?;
            total = total.checked_add(add).ok_or(SpannerError::CountOverflow)?;
        }
        Ok(total)
    }

    /// The acceptance fold: reachable-state sets instead of count vectors
    /// (no overflow), accepting iff any live state has a positive
    /// final-capture weight. Matches `DetSeva::accepts` on the decompressed
    /// document.
    fn accepts_run<S: Stepper>(
        &mut self,
        st: &mut S,
        slp: &Slp,
        shared: Option<&RowTables>,
    ) -> Result<bool, SpannerError> {
        self.checker.tick()?;
        let rules = slp.rules().clone();
        let gid = rules.id();
        let start = st.start_state() as u32;
        self.live.clear();
        self.live.push(start);
        for &sym in slp.sequence() {
            self.maintain_live(st)?;
            self.next_live.clear();
            for li in 0..self.live.len() {
                self.checker.tick()?;
                let q = self.live[li];
                let rref = self.ensure_set_row(st, &rules, gid, sym, q, shared)?;
                let mut next = std::mem::take(&mut self.next_live);
                self.copy_set_row_append(rref, shared, &mut next);
                self.next_live = next;
            }
            self.next_live.sort_unstable();
            self.next_live.dedup();
            std::mem::swap(&mut self.live, &mut self.next_live);
            if self.live.is_empty() {
                return Ok(false);
            }
        }
        self.maintain_live(st)?;
        for li in 0..self.live.len() {
            let q = self.live[li];
            if self.weight(st, q) > 0 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Appends the referenced set row to `out` (no clear — union building).
    fn copy_set_row_append(&self, rref: RowRef, shared: Option<&RowTables>, out: &mut Vec<u32>) {
        match rref {
            RowRef::Term => out.extend_from_slice(&self.tset),
            RowRef::Local(a, b) => out.extend_from_slice(&self.memo.set_arena[a..b]),
            RowRef::Shared(a, b) => {
                out.extend_from_slice(&shared.expect("shared ref").set_arena[a..b])
            }
        }
    }
}

/// Merges adjacent duplicate states of a sorted `(state, count)` row,
/// summing counts with checked arithmetic.
fn merge_sorted_counts(row: &mut Vec<(u32, u64)>) -> Result<(), SpannerError> {
    let mut out = 0usize;
    for i in 0..row.len() {
        if out > 0 && row[out - 1].0 == row[i].0 {
            row[out - 1].1 =
                row[out - 1].1.checked_add(row[i].1).ok_or(SpannerError::CountOverflow)?;
        } else {
            row[out] = row[i];
            out += 1;
        }
    }
    row.truncate(out);
    Ok(())
}

/// [`merge_sorted_counts`] for terminal rows, where every count is `1` and
/// the sum is bounded by the row length — saturation can never be observed,
/// it just keeps this helper infallible.
fn merge_sorted_counts_saturating(row: &mut Vec<(u32, u64)>) {
    let mut out = 0usize;
    for i in 0..row.len() {
        if out > 0 && row[out - 1].0 == row[i].0 {
            row[out - 1].1 = row[out - 1].1.saturating_add(row[i].1);
        } else {
            row[out] = row[i];
            out += 1;
        }
    }
    row.truncate(out);
}

/// The grammar-aware evaluation engine: counts mappings and decides matches
/// over [`Slp`]-compressed documents **without decompressing**, in time
/// proportional to the compressed size once its per-`(symbol, state)` memo
/// is warm.
///
/// Mirrors [`crate::CountCache`]'s embedding idiom: the evaluator owns the
/// per-worker halves of whichever engine it is driven against — a
/// [`LazyCache`] for live lazy automata, a [`FrozenDelta`] for the shared
/// frozen snapshots of the batch runtime — plus the memo tables and scratch,
/// all retained-capacity across documents. Counts are `u64` (the batch
/// runtime's counting type); wider counts can always fall back to the byte
/// engines on the decompressed document.
#[derive(Debug, Default)]
pub struct SlpEvaluator {
    ws: Workspace,
    /// Embedded lazy cache, tagged with the automaton id it belongs to.
    lazy: Option<(u64, LazyCache)>,
    /// Embedded frozen-overflow delta, tagged with the snapshot id.
    frozen: Option<(u64, FrozenDelta)>,
    /// Per-frozen-run generation: delta-local state ids die with the
    /// per-document delta reset, so each frozen run gets a fresh epoch.
    frozen_gen: u64,
    limits: EvalLimits,
    memo_budget: usize,
    memo_budget_override: Option<usize>,
    cache_budget_override: Option<usize>,
}

impl SlpEvaluator {
    /// A fresh evaluator with the default memo budget and no limits.
    pub fn new() -> SlpEvaluator {
        SlpEvaluator { memo_budget: DEFAULT_MEMO_BUDGET, ..SlpEvaluator::default() }
    }

    /// Sets the per-document evaluation limits (steps, deadlines, thrash
    /// guard) applied by subsequent runs.
    pub fn set_limits(&mut self, limits: EvalLimits) {
        self.limits = limits;
    }

    /// Overrides the byte budget of the embedded determinization cache /
    /// overflow delta (`None` restores the automaton's configured budget) —
    /// the degradation-ladder hook, mirroring
    /// [`crate::CountCache::set_cache_budget_override`].
    pub fn set_cache_budget_override(&mut self, budget: Option<usize>) {
        self.cache_budget_override = budget;
    }

    /// Sets the byte budget of the memo tables (rows are cleared and
    /// recomputed on demand past it).
    pub fn set_memo_budget(&mut self, budget: usize) {
        self.memo_budget = budget;
    }

    /// One-off override of the memo budget (`None` restores
    /// [`SlpEvaluator::set_memo_budget`]'s value) — the ladder's boost hook.
    pub fn set_memo_budget_override(&mut self, budget: Option<usize>) {
        self.memo_budget_override = budget;
    }

    /// The memo byte budget subsequent runs will enforce.
    pub fn memo_budget(&self) -> usize {
        self.memo_budget_override.unwrap_or(self.memo_budget)
    }

    /// Approximate bytes currently held by the memo tables.
    pub fn memo_bytes(&self) -> usize {
        self.ws.memo.bytes
    }

    /// Number of `(rule set, symbol, state)` rows currently memoized.
    pub fn memo_rows(&self) -> usize {
        self.ws.memo.num_rows()
    }

    /// Budget-driven memo clears over the evaluator's lifetime (context
    /// switches and eviction-driven invalidations are not counted).
    pub fn memo_clears(&self) -> u64 {
        self.ws.clears
    }

    /// Rows computed over the evaluator's lifetime, including rows rebuilt
    /// after budget clears — `rows_built() - memo_rows()` measures
    /// composition work wasted to memo thrashing.
    pub fn rows_built(&self) -> u64 {
        self.ws.rows_built
    }

    /// Total bytes held: memo tables plus the embedded cache or delta.
    pub fn memory_bytes(&self) -> usize {
        self.ws.memo.bytes
            + self.lazy.as_ref().map_or(0, |(_, c)| c.memory_bytes())
            + self.frozen.as_ref().map_or(0, |(_, d)| d.memory_bytes())
    }

    /// Capacity snapshot for allocation-retention assertions: the embedded
    /// cache/delta buffers in the first eight slots (zeros when the
    /// evaluator has only driven eager automata), the SLP memo arenas in the
    /// last two — the E10b diagnostics see SLP memory through the same lens
    /// as the determinization caches.
    pub fn capacity_signature(&self) -> CapacitySignature {
        let mut sig = match (&self.lazy, &self.frozen) {
            (Some((_, cache)), _) => cache.capacity_signature(),
            (None, Some((_, delta))) => delta.capacity_signature(),
            (None, None) => CapacitySignature([0; 10]),
        };
        sig.0[8] = self.ws.memo.count_arena.capacity();
        sig.0[9] = self.ws.memo.set_arena.capacity();
        sig
    }

    /// Bytes currently held by this evaluator's **governed** memory — the
    /// same total as [`SlpEvaluator::memory_bytes`]: memo tables plus the
    /// embedded determinization cache or overflow delta, all of which a
    /// global [`crate::MemoryGovernor`] can shed.
    pub fn governed_bytes(&self) -> usize {
        self.memory_bytes()
    }

    /// Sheds the determinization-side memory for the global governor
    /// (severity 1, mirrors [`crate::Evaluator::shed_cold_memory`]): drops
    /// the embedded lazy cache and [`FrozenDelta::shed`]s the overflow
    /// delta. The memo tables are untouched — they are severity 2, see
    /// [`SlpEvaluator::shed_memos`]. Returns the bytes freed.
    pub fn shed_cold_memory(&mut self) -> usize {
        let mut freed = 0;
        if let Some((_, cache)) = self.lazy.take() {
            freed += cache.memory_bytes();
        }
        if let Some((_, delta)) = self.frozen.as_mut() {
            freed += delta.shed();
        }
        freed
    }

    /// Sheds the SLP memo tables for the global governor (severity 2 of the
    /// shedding ladder): every memoized row is dropped and recomputed on
    /// demand, exactly as after a budget-driven clear — results stay
    /// byte-identical. Returns the bytes freed. Unlike budget clears, a
    /// governor shed is **not** counted by [`SlpEvaluator::memo_clears`]
    /// and never trips the per-document thrash guard.
    pub fn shed_memos(&mut self) -> usize {
        let freed = self.ws.memo.bytes;
        self.ws.memo.clear();
        freed
    }

    /// The embedded lazy determinization cache, if the evaluator has driven
    /// a lazy automaton (the freeze source of
    /// [`crate::CompiledSpanner::freeze_warm_slp`]).
    pub fn lazy_cache(&self) -> Option<&LazyCache> {
        self.lazy.as_ref().map(|(_, c)| c)
    }

    /// The embedded frozen-overflow delta, if the evaluator has stepped
    /// through a frozen snapshot.
    pub fn frozen_delta(&self) -> Option<&FrozenDelta> {
        self.frozen.as_ref().map(|(_, d)| d)
    }

    /// Snapshots the current memo into an immutable [`SlpSharedMemo`].
    /// Only meaningful right after warm runs against the cache about to be
    /// frozen (freezing preserves state ids, so the rows stay valid against
    /// the snapshot); returns `None` when nothing is memoized.
    pub fn shared_memo_snapshot(&self) -> Option<SlpSharedMemo> {
        if self.ws.memo.is_empty() {
            return None;
        }
        Some(SlpSharedMemo { tables: self.ws.memo.clone() })
    }

    /// Counts `|⟦A⟧(d)|` over the compressed document against an eager
    /// automaton. The memo persists across documents (eager state ids never
    /// move), so a corpus sharing one rule set is composed from one
    /// bottom-up pass.
    pub fn count(&mut self, det: &DetSeva, slp: &Slp) -> Result<u64, SpannerError> {
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, det.id(), 0, budget);
        let mut st: &DetSeva = det;
        self.ws.count_run(&mut st, slp, None)
    }

    /// Whether the spanner produces at least one mapping on the compressed
    /// document (eager automaton).
    pub fn accepts(&mut self, det: &DetSeva, slp: &Slp) -> Result<bool, SpannerError> {
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, det.id(), 0, budget);
        let mut st: &DetSeva = det;
        self.ws.accepts_run(&mut st, slp, None)
    }

    /// [`SlpEvaluator::count`] against a live lazy automaton, determinizing
    /// on demand inside the evaluator's embedded budgeted [`LazyCache`].
    /// Rows are keyed to the cache's eviction epoch: evictions move state
    /// ids, so they drop the memo alongside the evicted states.
    pub fn count_lazy(&mut self, aut: &LazyDetSeva, slp: &Slp) -> Result<u64, SpannerError> {
        let mut cache = match self.lazy.take() {
            Some((id, cache)) if id == aut.id() => cache,
            _ => aut.create_cache(),
        };
        cache.bind(aut);
        cache.set_budget(self.cache_budget_override.unwrap_or(aut.config().memory_budget));
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, aut.id(), cache.clear_count(), budget);
        let mut stepper = LazyStepper::new(aut, &mut cache);
        let result = self.ws.count_run(&mut stepper, slp, None);
        self.lazy = Some((aut.id(), cache));
        result
    }

    /// [`SlpEvaluator::accepts`] against a live lazy automaton.
    pub fn accepts_lazy(&mut self, aut: &LazyDetSeva, slp: &Slp) -> Result<bool, SpannerError> {
        let mut cache = match self.lazy.take() {
            Some((id, cache)) if id == aut.id() => cache,
            _ => aut.create_cache(),
        };
        cache.bind(aut);
        cache.set_budget(self.cache_budget_override.unwrap_or(aut.config().memory_budget));
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, aut.id(), cache.clear_count(), budget);
        let mut stepper = LazyStepper::new(aut, &mut cache);
        let result = self.ws.accepts_run(&mut stepper, slp, None);
        self.lazy = Some((aut.id(), cache));
        result
    }

    /// [`SlpEvaluator::count`] stepping through a shared [`FrozenCache`]
    /// snapshot with the evaluator's private overflow delta — the per-worker
    /// entry point of the batch runtime. Rows memoized by
    /// [`crate::CompiledSpanner::freeze_warm_slp`] are read from the
    /// snapshot's attached [`SlpSharedMemo`]; leftover rows land in the
    /// local memo, which lives one document (delta-local state ids die with
    /// the per-document delta reset).
    pub fn count_frozen(
        &mut self,
        aut: &LazyDetSeva,
        frozen: &FrozenCache,
        slp: &Slp,
    ) -> Result<u64, SpannerError> {
        let mut delta = match self.frozen.take() {
            Some((id, delta)) if id == frozen.id() => delta,
            _ => FrozenDelta::new(),
        };
        delta.bind(frozen, aut);
        delta.set_budget(self.cache_budget_override.unwrap_or(aut.config().memory_budget));
        self.frozen_gen += 1;
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, frozen.id(), self.frozen_gen, budget);
        let shared = frozen.slp_memo().map(|m| &m.tables);
        let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
        let result = self.ws.count_run(&mut stepper, slp, shared);
        self.frozen = Some((frozen.id(), delta));
        result
    }

    /// [`SlpEvaluator::accepts`] through a shared frozen snapshot.
    pub fn accepts_frozen(
        &mut self,
        aut: &LazyDetSeva,
        frozen: &FrozenCache,
        slp: &Slp,
    ) -> Result<bool, SpannerError> {
        let mut delta = match self.frozen.take() {
            Some((id, delta)) if id == frozen.id() => delta,
            _ => FrozenDelta::new(),
        };
        delta.bind(frozen, aut);
        delta.set_budget(self.cache_budget_override.unwrap_or(aut.config().memory_budget));
        self.frozen_gen += 1;
        let budget = self.memo_budget();
        self.ws.begin(&self.limits, frozen.id(), self.frozen_gen, budget);
        let shared = frozen.slp_memo().map(|m| &m.tables);
        let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
        let result = self.ws.accepts_run(&mut stepper, slp, shared);
        self.frozen = Some((frozen.id(), delta));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::count::CountCache;
    use crate::eva::EvaBuilder;
    use crate::markerset::MarkerSet;
    use crate::spanner::{CompiledSpanner, EnginePolicy};
    use crate::variable::VarRegistry;

    /// `Σ* (x{a+}) Σ*`-ish spanner: captures every maximal-ish run of `a`s
    /// (one mapping per (start, end) pair reachable), deterministic.
    fn letter_runs_eva() -> crate::eva::Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_letter(q0, ByteClass::any(), q0);
        b.add_byte(q1, b'a', q1);
        b.add_letter(q2, ByteClass::any(), q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        b.build().unwrap()
    }

    fn doubling_slp(base: &str, doublings: usize) -> Slp {
        // sequence = one symbol expanding to base^(2^doublings)
        let mut rules: Vec<(u32, u32)> = Vec::new();
        let bytes = base.as_bytes();
        // Chain the base string into one symbol.
        let mut cur = bytes[0] as u32;
        for &b in &bytes[1..] {
            rules.push((cur, b as u32));
            cur = FIRST_NONTERMINAL + (rules.len() - 1) as u32;
        }
        for _ in 0..doublings {
            rules.push((cur, cur));
            cur = FIRST_NONTERMINAL + (rules.len() - 1) as u32;
        }
        Slp::new(Arc::new(SlpRules::new(rules).unwrap()), vec![cur]).unwrap()
    }

    #[test]
    fn rules_validation_rejects_forward_references() {
        assert!(SlpRules::new(vec![(256, 97)]).is_err(), "self reference must be rejected");
        assert!(SlpRules::new(vec![(97, 300)]).is_err(), "forward reference must be rejected");
        let rules = Arc::new(SlpRules::new(vec![(97, 98)]).unwrap());
        assert!(Slp::new(rules, vec![257]).is_err(), "undefined sequence symbol must be rejected");
    }

    #[test]
    fn decompress_expands_the_derivation() {
        let slp = doubling_slp("ab", 3);
        assert_eq!(slp.len(), 16);
        assert_eq!(slp.decompress().bytes(), b"abababababababab");
        assert!(slp.compression_ratio() > 1.0);
        let lit = Slp::literal(b"xyz");
        assert_eq!(lit.decompress().bytes(), b"xyz");
        assert_eq!(lit.len(), 3);
    }

    #[test]
    fn count_matches_byte_engine_on_expanded_document() {
        let eva = letter_runs_eva();
        let det = DetSeva::compile(&eva).unwrap();
        let mut ev = SlpEvaluator::new();
        let mut cache: CountCache<u64> = CountCache::new();
        for (base, doublings) in [("ab", 0), ("aab", 2), ("xaay", 3), ("a", 4)] {
            let slp = doubling_slp(base, doublings);
            let doc = slp.decompress();
            let expect: u64 = cache.count(&det, &doc).unwrap();
            assert_eq!(ev.count(&det, &slp).unwrap(), expect, "{base} ^ 2^{doublings}");
            assert_eq!(ev.accepts(&det, &slp).unwrap(), expect > 0);
        }
    }

    #[test]
    fn empty_and_literal_sequences_match_byte_engine() {
        let eva = letter_runs_eva();
        let det = DetSeva::compile(&eva).unwrap();
        let mut ev = SlpEvaluator::new();
        let mut cache: CountCache<u64> = CountCache::new();
        for text in ["", "a", "baaab", "zzz"] {
            let slp = Slp::literal(text.as_bytes());
            let doc = Document::from(text);
            let expect: u64 = cache.count(&det, &doc).unwrap();
            assert_eq!(ev.count(&det, &slp).unwrap(), expect, "{text:?}");
            assert_eq!(ev.accepts(&det, &slp).unwrap(), det.accepts(&doc), "{text:?}");
        }
    }

    #[test]
    fn lazy_and_frozen_paths_match_eager() {
        let eva = letter_runs_eva();
        let spanner = CompiledSpanner::from_eva_with(&eva, EnginePolicy::Lazy).unwrap();
        let lazy = spanner.lazy_automaton().unwrap();
        let det = DetSeva::compile(&eva).unwrap();
        let slps: Vec<Slp> =
            [("aab", 2), ("xaay", 3)].iter().map(|&(base, d)| doubling_slp(base, d)).collect();
        let mut eager = SlpEvaluator::new();
        let mut ev = SlpEvaluator::new();
        for slp in &slps {
            let expect = eager.count(&det, slp).unwrap();
            assert_eq!(ev.count_lazy(lazy, slp).unwrap(), expect);
            assert_eq!(ev.accepts_lazy(lazy, slp).unwrap(), expect > 0);
        }
        // Freeze the warm cache (memo attached) and re-check through the
        // frozen/delta split.
        let frozen = spanner.freeze_warm_slp(&slps).unwrap();
        assert!(frozen.slp_memo().is_some(), "warm freeze must attach a shared memo");
        let mut worker = SlpEvaluator::new();
        for slp in &slps {
            let expect = eager.count(&det, slp).unwrap();
            assert_eq!(worker.count_frozen(lazy, &frozen, slp).unwrap(), expect);
            assert_eq!(worker.accepts_frozen(lazy, &frozen, slp).unwrap(), expect > 0);
        }
    }

    #[test]
    fn tiny_memo_budget_thrashes_but_stays_correct() {
        let eva = letter_runs_eva();
        let det = DetSeva::compile(&eva).unwrap();
        let slp = doubling_slp("aab", 4);
        let mut ev = SlpEvaluator::new();
        let expect = ev.count(&det, &slp).unwrap();
        let mut tiny = SlpEvaluator::new();
        tiny.set_memo_budget(1);
        assert_eq!(tiny.count(&det, &slp).unwrap(), expect);
        assert!(tiny.memo_clears() > 0, "a one-byte budget must thrash the memo");
        assert!(tiny.rows_built() > tiny.memo_rows() as u64, "thrash implies rebuilt rows");
    }

    #[test]
    fn step_budget_trips_and_leaves_the_evaluator_reusable() {
        let eva = letter_runs_eva();
        let det = DetSeva::compile(&eva).unwrap();
        let slp = doubling_slp("aab", 6);
        let expect = SlpEvaluator::new().count(&det, &slp).unwrap();
        // Cold memo: the bottom-up pass needs far more than two ticks.
        let mut ev = SlpEvaluator::new();
        ev.set_limits(EvalLimits::none().with_max_steps(2));
        assert!(matches!(ev.count(&det, &slp), Err(SpannerError::StepBudgetExceeded { .. })));
        ev.set_limits(EvalLimits::none());
        assert_eq!(ev.count(&det, &slp).unwrap(), expect, "evaluator must recover after a trip");
    }

    #[test]
    fn capacity_signature_exposes_memo_arenas_and_stays_stable_when_warm() {
        let eva = letter_runs_eva();
        let det = DetSeva::compile(&eva).unwrap();
        let slp = doubling_slp("aab", 3);
        let mut ev = SlpEvaluator::new();
        let _ = ev.count(&det, &slp).unwrap();
        let _ = ev.accepts(&det, &slp).unwrap();
        let sig = ev.capacity_signature();
        assert!(sig.0[8] > 0, "count arena capacity must be visible");
        assert!(sig.0[9] > 0, "set arena capacity must be visible");
        let rendered = sig.to_string();
        assert!(rendered.contains("slp_counts=") && rendered.contains("slp_sets="), "{rendered}");
        // Warm rerun: no new rows, no reallocation.
        let rows = ev.memo_rows();
        let _ = ev.count(&det, &slp).unwrap();
        assert_eq!(ev.memo_rows(), rows, "warm rerun must not rebuild rows");
        assert_eq!(ev.capacity_signature(), sig, "warm rerun reallocated memo buffers");
    }
}
