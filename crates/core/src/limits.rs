//! Per-document evaluation resource limits: step fuel, wall-clock deadlines,
//! and an eviction-thrash guard.
//!
//! [`EvalLimits`] is carried by an [`Evaluator`](crate::Evaluator) or
//! [`CountCache`](crate::CountCache) and applies to **each document run
//! independently** — the step counter, the clock, and the eviction counter
//! all restart at the beginning of every document. Limits default to
//! unlimited; with no limits configured, the amortized check compiles down
//! to one counter increment and one never-taken compare per executed
//! position, so the skip-scan fast path is untouched (skipped positions are
//! never ticked at all — skip-jump landings pay the same increment-and-
//! compare, with actual clock reads amortized over many landings).
//!
//! Exceeded limits surface as
//! [`SpannerError::StepBudgetExceeded`](crate::SpannerError),
//! [`SpannerError::DeadlineExceeded`](crate::SpannerError) (with a
//! soft/hard flag), or — for the eviction-thrash guard —
//! [`SpannerError::BudgetExceeded`](crate::SpannerError), through the
//! fallible `try_*` entry points of the engines.

use crate::error::SpannerError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many executed positions pass between wall-clock reads once a deadline
/// is configured. The very first executed position always checks the clock,
/// so an already-expired deadline fails deterministically at step one.
const TIME_CHECK_INTERVAL: u64 = 256;

/// How many skip-jump landings pass between wall-clock reads once a deadline
/// is configured. The very first landing always checks the clock, so an
/// already-expired deadline fails deterministically even on a document the
/// scanner never executes a position of.
const JUMP_CHECK_INTERVAL: u64 = 32;

/// Per-document resource limits for one evaluation/counting run.
///
/// All fields default to `None` (unlimited). The wall-clock budgets are
/// durations measured from the start of each document run.
///
/// ```
/// use spanners_core::EvalLimits;
/// use std::time::Duration;
/// let limits = EvalLimits::none()
///     .with_max_steps(1_000_000)
///     .with_deadline(Duration::from_millis(250));
/// assert!(!limits.is_unlimited());
/// assert!(EvalLimits::default().is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum number of *executed* evaluation steps (positions where the
    /// engine performed capture/read work; skipped positions are free).
    /// Exceeding it yields [`SpannerError::StepBudgetExceeded`].
    pub max_steps: Option<u64>,
    /// Hard wall-clock budget for one document. Exceeding it yields
    /// [`SpannerError::DeadlineExceeded`] with `soft: false` — the document
    /// is abandoned, no retry.
    pub deadline: Option<Duration>,
    /// Soft wall-clock budget for one document. Exceeding it yields
    /// [`SpannerError::DeadlineExceeded`] with `soft: true` — a degradation
    /// policy may retry the document on a cheaper path.
    pub soft_deadline: Option<Duration>,
    /// Maximum number of lazy-cache clear-and-restart evictions within one
    /// document — the thrash guard. Exceeding it yields
    /// [`SpannerError::BudgetExceeded`], the signal a degradation policy
    /// treats as "enlarge the budget and retry".
    pub max_cache_clears: Option<u64>,
}

impl EvalLimits {
    /// No limits at all (the default).
    pub fn none() -> EvalLimits {
        EvalLimits::default()
    }

    /// Whether every limit is unset.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.deadline.is_none()
            && self.soft_deadline.is_none()
            && self.max_cache_clears.is_none()
    }

    /// Returns these limits with a step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> EvalLimits {
        self.max_steps = Some(max_steps);
        self
    }

    /// Returns these limits with a hard per-document deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> EvalLimits {
        self.deadline = Some(deadline);
        self
    }

    /// Returns these limits with a soft per-document deadline.
    pub fn with_soft_deadline(mut self, soft_deadline: Duration) -> EvalLimits {
        self.soft_deadline = Some(soft_deadline);
        self
    }

    /// Returns these limits with an eviction-thrash guard.
    pub fn with_max_cache_clears(mut self, max_cache_clears: u64) -> EvalLimits {
        self.max_cache_clears = Some(max_cache_clears);
        self
    }

    /// Returns these limits with the hard deadline clamped to at most
    /// `remaining` — the per-request deadline hook of the streaming runtime:
    /// a request that has already spent part of its wall-clock budget in the
    /// ingress queue evaluates under whatever time is left, never under the
    /// full configured budget. A configured deadline shorter than
    /// `remaining` is kept as-is; with no configured deadline, `remaining`
    /// becomes the deadline.
    pub fn clamp_deadline(mut self, remaining: Duration) -> EvalLimits {
        self.deadline = Some(self.deadline.map_or(remaining, |d| d.min(remaining)));
        self
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// The per-run enforcement state behind [`EvalLimits`]: a step counter with
/// a single fused threshold (`check_at`) covering both the step budget and
/// the amortized clock reads, so the per-position cost with or without
/// limits is one increment and one predictable compare.
#[derive(Debug, Clone)]
pub(crate) struct LimitChecker {
    /// Executed positions so far in this run.
    steps: u64,
    /// Next step count at which the slow path runs (clock read and/or step
    /// budget verdict). `u64::MAX` when nothing can ever trip.
    check_at: u64,
    /// Step budget (`u64::MAX` when unlimited).
    max_steps: u64,
    /// Skip-jump landings so far in this run.
    jumps: u64,
    /// Next landing count at which [`LimitChecker::tick_jump`] reads the
    /// clock. `u64::MAX` when no deadline is configured.
    jump_check_at: u64,
    /// Evictions so far in this run.
    clears: u64,
    /// Eviction budget (`u64::MAX` when unlimited).
    max_clears: u64,
    /// Absolute expiry instants, captured at run start.
    deadline: Option<Instant>,
    soft_deadline: Option<Instant>,
    /// The originating limits, kept for error diagnostics.
    limits: EvalLimits,
}

impl Default for LimitChecker {
    fn default() -> LimitChecker {
        LimitChecker::unlimited()
    }
}

impl LimitChecker {
    /// A checker that never trips — the state engines start with.
    pub(crate) fn unlimited() -> LimitChecker {
        LimitChecker {
            steps: 0,
            check_at: u64::MAX,
            max_steps: u64::MAX,
            jumps: 0,
            jump_check_at: u64::MAX,
            clears: 0,
            max_clears: u64::MAX,
            deadline: None,
            soft_deadline: None,
            limits: EvalLimits::none(),
        }
    }

    /// Starts enforcement for one document run. Reads the clock only when a
    /// deadline is actually configured.
    pub(crate) fn start(limits: &EvalLimits) -> LimitChecker {
        let timed = limits.deadline.is_some() || limits.soft_deadline.is_some();
        let now = if timed { Some(Instant::now()) } else { None };
        let max_steps = limits.max_steps.unwrap_or(u64::MAX);
        // First slow-path visit: step 1 when timed (so pre-expired deadlines
        // trip deterministically), otherwise right past the step budget.
        let check_at = if timed { 1 } else { max_steps.saturating_add(1) };
        LimitChecker {
            steps: 0,
            check_at,
            max_steps,
            jumps: 0,
            jump_check_at: if timed { 1 } else { u64::MAX },
            clears: 0,
            max_clears: limits.max_cache_clears.unwrap_or(u64::MAX),
            deadline: now.and_then(|t| limits.deadline.map(|d| t + d)),
            soft_deadline: now.and_then(|t| limits.soft_deadline.map(|d| t + d)),
            limits: *limits,
        }
    }

    /// Records one executed position. The hot path is an increment plus one
    /// compare; budget verdicts and clock reads happen on the cold path.
    #[inline(always)]
    pub(crate) fn tick(&mut self) -> Result<(), SpannerError> {
        self.steps += 1;
        if self.steps >= self.check_at {
            self.slow_tick()?;
        }
        Ok(())
    }

    #[cold]
    fn slow_tick(&mut self) -> Result<(), SpannerError> {
        if self.steps > self.max_steps {
            return Err(SpannerError::StepBudgetExceeded { limit: self.max_steps });
        }
        self.check_clock()?;
        let next_timed = self.steps.saturating_add(TIME_CHECK_INTERVAL);
        self.check_at = if self.deadline.is_some() || self.soft_deadline.is_some() {
            next_timed.min(self.max_steps.saturating_add(1))
        } else {
            self.max_steps.saturating_add(1)
        };
        Ok(())
    }

    /// Clock check at a skip-jump landing (or class-run skip). Skipped
    /// positions never consume step fuel; landings pay one increment and one
    /// predictable compare, with the actual `Instant` read amortized over
    /// [`JUMP_CHECK_INTERVAL`] landings (the first landing always reads, so
    /// a pre-expired deadline trips deterministically even on documents the
    /// scanner executes no position of).
    #[inline]
    pub(crate) fn tick_jump(&mut self) -> Result<(), SpannerError> {
        self.jumps += 1;
        if self.jumps >= self.jump_check_at {
            self.jump_check_at = self.jumps.saturating_add(JUMP_CHECK_INTERVAL);
            self.check_clock()?;
        }
        Ok(())
    }

    #[cold]
    fn check_clock(&self) -> Result<(), SpannerError> {
        let (Some(hard), Some(soft)) = (self.deadline, self.soft_deadline) else {
            return self.check_clock_single();
        };
        let now = Instant::now();
        if now >= hard {
            return Err(SpannerError::DeadlineExceeded {
                soft: false,
                limit_ms: duration_ms(self.limits.deadline.unwrap_or_default()),
            });
        }
        if now >= soft {
            return Err(SpannerError::DeadlineExceeded {
                soft: true,
                limit_ms: duration_ms(self.limits.soft_deadline.unwrap_or_default()),
            });
        }
        Ok(())
    }

    fn check_clock_single(&self) -> Result<(), SpannerError> {
        if let Some(hard) = self.deadline {
            if Instant::now() >= hard {
                return Err(SpannerError::DeadlineExceeded {
                    soft: false,
                    limit_ms: duration_ms(self.limits.deadline.unwrap_or_default()),
                });
            }
        }
        if let Some(soft) = self.soft_deadline {
            if Instant::now() >= soft {
                return Err(SpannerError::DeadlineExceeded {
                    soft: true,
                    limit_ms: duration_ms(self.limits.soft_deadline.unwrap_or_default()),
                });
            }
        }
        Ok(())
    }

    /// Records one lazy-cache clear-and-restart eviction; trips the thrash
    /// guard once the per-document eviction budget is exhausted.
    #[inline]
    pub(crate) fn note_clear(&mut self) -> Result<(), SpannerError> {
        self.clears += 1;
        if self.clears > self.max_clears {
            return Err(SpannerError::BudgetExceeded {
                what: "lazy-cache evictions in one document (thrash guard)",
                limit: usize::try_from(self.max_clears).unwrap_or(usize::MAX),
            });
        }
        Ok(())
    }
}

/// A process-level memory budget shared by every serving component, with a
/// single atomic byte ledger.
///
/// The per-component accounting already exists — `LazyCache`, `FrozenDelta`
/// and the SLP memo arenas each report their live bytes (the
/// capacity-signature slots) — but each cache previously enforced only its
/// *own* budget, so N components × per-component budget bounded nothing
/// globally. A `MemoryGovernor` aggregates those bytes behind one ledger:
/// components register a [`GovernorHandle`] and `settle` their current byte
/// count after each batch; when the global budget is exceeded, the runtime
/// sheds in severity order (shrink cold frozen deltas, then clear SLP
/// overflow memos, then deny new admissions with a **retryable**
/// [`SpannerError::BudgetExceeded`]) instead of each cache thrashing
/// independently.
///
/// The ledger tracks **settled** bytes only; `pressure` is a separate
/// diagnostic knob (used by the deterministic fault harness to simulate
/// external memory pressure) that influences [`MemoryGovernor::over_budget`]
/// without ever entering the ledger — so "ledger bytes never exceed the
/// budget between batches" stays assertable even under injected pressure.
#[derive(Debug)]
pub struct MemoryGovernor {
    /// The global byte budget.
    budget: usize,
    /// Settled bytes across all registered handles.
    ledger: AtomicUsize,
    /// Injected/external pressure bytes (never part of the ledger).
    pressure: AtomicUsize,
    /// Frozen-delta sheds performed on the governor's behalf (severity 1).
    deltas_shed: AtomicU64,
    /// SLP memo sheds performed on the governor's behalf (severity 2).
    memos_shed: AtomicU64,
    /// Admissions denied while over budget (severity 3).
    denials: AtomicU64,
}

impl MemoryGovernor {
    /// A governor enforcing `budget` bytes across every component that
    /// settles into it.
    pub fn new(budget: usize) -> MemoryGovernor {
        MemoryGovernor {
            budget,
            ledger: AtomicUsize::new(0),
            pressure: AtomicUsize::new(0),
            deltas_shed: AtomicU64::new(0),
            memos_shed: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        }
    }

    /// The configured global byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Settled bytes currently on the ledger (injected pressure excluded).
    pub fn ledger_bytes(&self) -> usize {
        self.ledger.load(Ordering::Acquire)
    }

    /// Whether settled bytes plus injected pressure exceed the budget — the
    /// condition under which the runtime sheds and admissions are denied.
    pub fn over_budget(&self) -> bool {
        self.ledger_bytes().saturating_add(self.pressure.load(Ordering::Acquire)) > self.budget
    }

    /// Sets the injected/external pressure, in bytes (see the type docs).
    pub fn set_pressure(&self, bytes: usize) {
        self.pressure.store(bytes, Ordering::Release);
    }

    /// Moves the ledger from a component's previously settled byte count to
    /// its current one.
    fn account(&self, prev: usize, now: usize) {
        if now >= prev {
            self.ledger.fetch_add(now - prev, Ordering::AcqRel);
        } else {
            self.ledger.fetch_sub(prev - now, Ordering::AcqRel);
        }
    }

    /// Records `n` frozen-delta sheds performed to get back under budget.
    pub fn note_deltas_shed(&self, n: u64) {
        self.deltas_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` SLP memo sheds performed to get back under budget.
    pub fn note_memos_shed(&self, n: u64) {
        self.memos_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Admission gate: `Err` with a **retryable**
    /// [`SpannerError::BudgetExceeded`] while over budget (severity 3 of the
    /// shedding ladder — new work is denied until settling or shedding
    /// brings the ledger back under), `Ok` otherwise.
    pub fn admit(&self) -> Result<(), SpannerError> {
        if self.over_budget() {
            self.denials.fetch_add(1, Ordering::Relaxed);
            return Err(SpannerError::BudgetExceeded {
                what: "global memory budget",
                limit: self.budget,
            });
        }
        Ok(())
    }

    /// A point-in-time snapshot of the governor's counters.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            budget: self.budget,
            ledger_bytes: self.ledger_bytes(),
            pressure_bytes: self.pressure.load(Ordering::Acquire),
            deltas_shed: self.deltas_shed.load(Ordering::Relaxed),
            memos_shed: self.memos_shed.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`MemoryGovernor`] counters (see [`MemoryGovernor::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorStats {
    /// The configured global byte budget.
    pub budget: usize,
    /// Settled bytes on the ledger at snapshot time.
    pub ledger_bytes: usize,
    /// Injected/external pressure bytes at snapshot time.
    pub pressure_bytes: usize,
    /// Frozen-delta sheds performed to get back under budget (severity 1).
    pub deltas_shed: u64,
    /// SLP memo sheds performed to get back under budget (severity 2).
    pub memos_shed: u64,
    /// Admissions denied while over budget (severity 3).
    pub denials: u64,
}

/// One component's registration with a [`MemoryGovernor`]: remembers how
/// many bytes this component last settled so the shared ledger moves by
/// deltas, and settles back to zero on drop (a dropped component frees its
/// memory, so its ledger contribution must vanish with it).
#[derive(Debug)]
pub struct GovernorHandle {
    gov: Arc<MemoryGovernor>,
    accounted: AtomicUsize,
}

impl GovernorHandle {
    /// Registers a component with `gov` (zero bytes settled initially).
    pub fn new(gov: Arc<MemoryGovernor>) -> GovernorHandle {
        GovernorHandle { gov, accounted: AtomicUsize::new(0) }
    }

    /// The shared governor this handle settles into.
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.gov
    }

    /// Settles this component's current byte count into the shared ledger
    /// (replacing whatever it settled last time).
    pub fn settle(&self, now: usize) {
        let prev = self.accounted.swap(now, Ordering::AcqRel);
        self.gov.account(prev, now);
    }
}

impl Drop for GovernorHandle {
    fn drop(&mut self) {
        self.settle(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_checker_never_trips() {
        let mut c = LimitChecker::unlimited();
        for _ in 0..100_000 {
            c.tick().unwrap();
        }
        c.tick_jump().unwrap();
        for _ in 0..1_000 {
            c.note_clear().unwrap();
        }
    }

    #[test]
    fn step_budget_trips_exactly_past_the_limit() {
        let mut c = LimitChecker::start(&EvalLimits::none().with_max_steps(10));
        for _ in 0..10 {
            c.tick().unwrap();
        }
        let err = c.tick().unwrap_err();
        assert_eq!(err, SpannerError::StepBudgetExceeded { limit: 10 });
    }

    #[test]
    fn zero_deadline_trips_at_the_first_executed_step() {
        let mut c = LimitChecker::start(&EvalLimits::none().with_deadline(Duration::ZERO));
        let err = c.tick().unwrap_err();
        assert_eq!(err, SpannerError::DeadlineExceeded { soft: false, limit_ms: 0 });
    }

    #[test]
    fn zero_deadline_trips_at_a_skip_jump() {
        let mut c = LimitChecker::start(&EvalLimits::none().with_deadline(Duration::ZERO));
        let err = c.tick_jump().unwrap_err();
        assert!(matches!(err, SpannerError::DeadlineExceeded { soft: false, .. }));
    }

    #[test]
    fn soft_deadline_trips_soft_and_hard_wins_over_soft() {
        let mut c = LimitChecker::start(&EvalLimits::none().with_soft_deadline(Duration::ZERO));
        assert_eq!(
            c.tick().unwrap_err(),
            SpannerError::DeadlineExceeded { soft: true, limit_ms: 0 }
        );
        let mut c = LimitChecker::start(
            &EvalLimits::none().with_deadline(Duration::ZERO).with_soft_deadline(Duration::ZERO),
        );
        assert!(matches!(
            c.tick().unwrap_err(),
            SpannerError::DeadlineExceeded { soft: false, .. }
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let mut c = LimitChecker::start(
            &EvalLimits::none().with_deadline(Duration::from_secs(3600)).with_max_steps(1 << 20),
        );
        for _ in 0..10_000 {
            c.tick().unwrap();
        }
        c.tick_jump().unwrap();
    }

    #[test]
    fn clear_budget_trips_as_budget_exceeded() {
        let mut c = LimitChecker::start(&EvalLimits::none().with_max_cache_clears(2));
        c.note_clear().unwrap();
        c.note_clear().unwrap();
        assert!(matches!(
            c.note_clear().unwrap_err(),
            SpannerError::BudgetExceeded { what, limit: 2 } if what.contains("evictions")
        ));
    }

    #[test]
    fn clamp_deadline_takes_the_minimum() {
        let base = EvalLimits::none().with_deadline(Duration::from_millis(100));
        assert_eq!(
            base.clamp_deadline(Duration::from_millis(30)).deadline,
            Some(Duration::from_millis(30))
        );
        assert_eq!(
            base.clamp_deadline(Duration::from_millis(500)).deadline,
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            EvalLimits::none().clamp_deadline(Duration::from_millis(7)).deadline,
            Some(Duration::from_millis(7))
        );
    }

    #[test]
    fn limits_builder_and_unlimited_flag() {
        let l = EvalLimits::none()
            .with_max_steps(5)
            .with_deadline(Duration::from_millis(1))
            .with_soft_deadline(Duration::from_micros(500))
            .with_max_cache_clears(3);
        assert_eq!(l.max_steps, Some(5));
        assert!(!l.is_unlimited());
        assert!(EvalLimits::none().is_unlimited());
    }

    #[test]
    fn governor_ledger_moves_by_settled_deltas() {
        let gov = Arc::new(MemoryGovernor::new(1000));
        let a = GovernorHandle::new(Arc::clone(&gov));
        let b = GovernorHandle::new(Arc::clone(&gov));
        a.settle(400);
        b.settle(300);
        assert_eq!(gov.ledger_bytes(), 700);
        assert!(!gov.over_budget());
        a.settle(900);
        assert_eq!(gov.ledger_bytes(), 1200);
        assert!(gov.over_budget());
        a.settle(100);
        assert_eq!(gov.ledger_bytes(), 400);
        drop(b);
        assert_eq!(gov.ledger_bytes(), 100, "a dropped handle settles back to zero");
    }

    #[test]
    fn governor_denies_admission_only_while_over_budget() {
        let gov = Arc::new(MemoryGovernor::new(100));
        let h = GovernorHandle::new(Arc::clone(&gov));
        gov.admit().unwrap();
        h.settle(101);
        let err = gov.admit().unwrap_err();
        assert_eq!(err, SpannerError::BudgetExceeded { what: "global memory budget", limit: 100 });
        assert!(err.is_retryable(), "governor denials must be retryable");
        h.settle(50);
        gov.admit().unwrap();
        assert_eq!(gov.stats().denials, 1);
    }

    #[test]
    fn injected_pressure_trips_over_budget_without_touching_the_ledger() {
        let gov = Arc::new(MemoryGovernor::new(100));
        let h = GovernorHandle::new(Arc::clone(&gov));
        h.settle(60);
        assert!(!gov.over_budget());
        gov.set_pressure(50);
        assert!(gov.over_budget());
        assert_eq!(gov.ledger_bytes(), 60, "pressure never enters the ledger");
        gov.note_deltas_shed(2);
        gov.note_memos_shed(1);
        let stats = gov.stats();
        assert_eq!(
            (stats.pressure_bytes, stats.deltas_shed, stats.memos_shed, stats.denials),
            (50, 2, 1, 0)
        );
    }
}
