//! A dense/sparse *active set* over small integer ids — the classic
//! constant-time set used by production regex engines to drive NFA/DFA
//! simulation over only the **live** states instead of scanning the whole
//! state space.
//!
//! The evaluation loops of Algorithms 1 and 3 touch, at every document
//! position, only the states whose run list (or run count) is non-empty.
//! Tracking that set in a [`SparseSet`] makes the per-byte cost proportional
//! to the number of live states rather than to `num_states`, which is the
//! difference between `O(|A|·|d|)` in theory and in practice for the large
//! automata produced by determinization.
//!
//! Operations: `insert`, `contains`, `clear`, indexed access and iteration
//! are all O(1) (O(len) for iteration), and `clear` does **not** touch the
//! backing memory, so a set can be reused across millions of documents
//! without reallocation.

/// A constant-time set of `usize` ids drawn from a bounded universe
/// `0..universe`, preserving insertion order.
#[derive(Debug, Clone, Default)]
pub struct SparseSet {
    /// The members, in insertion order.
    dense: Vec<u32>,
    /// `sparse[v]` is the index of `v` in `dense`, if `v` is a member.
    /// Entries for non-members are arbitrary (checked against `dense`).
    sparse: Vec<u32>,
}

impl SparseSet {
    /// An empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> SparseSet {
        assert!(universe <= u32::MAX as usize, "SparseSet universe exceeds u32 ids");
        SparseSet { dense: Vec::with_capacity(universe), sparse: vec![0; universe] }
    }

    /// Empties the set and grows the universe to `0..universe` if needed.
    /// Keeps all allocated capacity; reallocates only when the universe grows
    /// beyond any previously seen size.
    pub fn reset(&mut self, universe: usize) {
        assert!(universe <= u32::MAX as usize, "SparseSet universe exceeds u32 ids");
        self.dense.clear();
        if self.sparse.len() < universe {
            self.sparse.resize(universe, 0);
        }
    }

    /// Grows the universe to `0..universe` **without** clearing the members.
    ///
    /// Used by the evaluation engines when a lazily determinized automaton
    /// discovers new states mid-document: the live set must keep its contents
    /// while making room for the fresh ids. Shrinking requests are ignored.
    #[inline]
    pub fn grow(&mut self, universe: usize) {
        assert!(universe <= u32::MAX as usize, "SparseSet universe exceeds u32 ids");
        if self.sparse.len() < universe {
            self.sparse.resize(universe, 0);
        }
    }

    /// The size of the universe (maximum id + 1 the set can hold).
    #[inline]
    pub fn universe(&self) -> usize {
        self.sparse.len()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        debug_assert!(v < self.sparse.len(), "id {v} outside SparseSet universe");
        let slot = self.sparse[v] as usize;
        slot < self.dense.len() && self.dense[slot] as usize == v
    }

    /// Inserts `v`; returns `true` if it was **not** already a member.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        if self.contains(v) {
            return false;
        }
        self.sparse[v] = self.dense.len() as u32;
        self.dense.push(v as u32);
        true
    }

    /// The `i`-th member in insertion order (`i < len`).
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        self.dense[i] as usize
    }

    /// Removes all members in O(1); the backing memory is untouched.
    #[inline]
    pub fn clear(&mut self) {
        self.dense.clear();
    }

    /// Iterates the members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.dense.iter().map(|&v| v as usize)
    }

    /// The members in insertion order, as a slice of raw ids.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut s = SparseSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(7));
        assert!(!s.insert(3), "double insert reports already-present");
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(7));
        assert!(!s.contains(0) && !s.contains(9));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(3), "stale sparse entries are not visible after clear");
        assert!(s.insert(3));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let mut s = SparseSet::new(100);
        for v in [42, 0, 99, 7] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![42, 0, 99, 7]);
        assert_eq!(s.get(2), 99);
        assert_eq!(s.as_slice(), &[42, 0, 99, 7]);
    }

    #[test]
    fn reset_grows_universe_and_clears() {
        let mut s = SparseSet::new(4);
        s.insert(1);
        s.reset(4);
        assert!(s.is_empty());
        s.reset(1000);
        assert_eq!(s.universe(), 1000);
        assert!(s.insert(999));
        assert!(s.contains(999));
        // Shrinking requests keep the larger universe (capacity retention).
        s.reset(2);
        assert_eq!(s.universe(), 1000);
        assert!(s.is_empty());
    }

    #[test]
    fn grow_preserves_members() {
        let mut s = SparseSet::new(4);
        s.insert(3);
        s.insert(0);
        s.grow(100);
        assert_eq!(s.universe(), 100);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 0]);
        assert!(s.insert(99));
        // Shrinking requests are ignored, members untouched.
        s.grow(2);
        assert_eq!(s.universe(), 100);
        assert!(s.contains(99) && s.contains(3) && s.contains(0));
    }

    #[test]
    fn garbage_sparse_entries_never_alias() {
        // Adversarial pattern for the dense/sparse trick: query ids whose
        // uninitialized sparse slot points at a valid dense index.
        let mut s = SparseSet::new(8);
        s.insert(5);
        for v in 0..8 {
            assert_eq!(s.contains(v), v == 5);
        }
    }
}
