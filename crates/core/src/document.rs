//! Documents: the input strings from which spanners extract information.
//!
//! A document is a finite string over a fixed finite alphabet Σ. We use raw
//! bytes as the alphabet, which covers ASCII/UTF-8 text, CSV, logs, JSON, and
//! binary formats alike. Positions and spans are always measured in bytes.

use crate::span::Span;
use std::fmt;

/// An input document: an immutable byte string with span-aware accessors.
///
/// ```
/// use spanners_core::{Document, Span};
/// let d = Document::from("John and Jane");
/// assert_eq!(d.len(), 13);
/// assert_eq!(d.span_bytes(Span::new(0, 4).unwrap()), b"John");
/// assert_eq!(d.span_str(Span::new(9, 13).unwrap()).unwrap(), "Jane");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Document {
    bytes: Vec<u8>,
}

impl Document {
    /// Creates a document from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Document { bytes: bytes.into() }
    }

    /// The empty document ε.
    pub fn empty() -> Self {
        Document { bytes: Vec::new() }
    }

    /// Length of the document in bytes (`|d|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the document is the empty string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The document's raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The byte at 0-based position `pos`, if any.
    #[inline]
    pub fn byte_at(&self, pos: usize) -> Option<u8> {
        self.bytes.get(pos).copied()
    }

    /// Content of the given span, i.e. the paper's `d(s)`.
    ///
    /// # Panics
    /// Panics if the span does not fit the document.
    #[inline]
    pub fn span_bytes(&self, span: Span) -> &[u8] {
        &self.bytes[span.range()]
    }

    /// Content of the given span as UTF-8 text, if it is valid UTF-8.
    pub fn span_str(&self, span: Span) -> Option<&str> {
        std::str::from_utf8(self.span_bytes(span)).ok()
    }

    /// Content of the span delimited by the paper's 1-based positions `⟨i, j⟩`,
    /// i.e. the paper's `d(i, j)`.
    pub fn paper_content(&self, i: usize, j: usize) -> Option<&[u8]> {
        let span = Span::from_paper(i, j).ok()?;
        if span.fits(self.len()) {
            Some(self.span_bytes(span))
        } else {
            None
        }
    }

    /// The span covering the whole document, `[0, |d|⟩` (paper: `⟨1, |d|+1⟩`).
    pub fn full_span(&self) -> Span {
        Span::new_unchecked(0, self.len())
    }

    /// Whether a span fits this document.
    #[inline]
    pub fn accommodates(&self, span: Span) -> bool {
        span.fits(self.len())
    }

    /// The distinct bytes occurring in the document (its effective alphabet).
    pub fn alphabet(&self) -> Vec<u8> {
        let mut seen = [false; 256];
        for &b in &self.bytes {
            seen[b as usize] = true;
        }
        (0u16..256).filter(|&b| seen[b as usize]).map(|b| b as u8).collect()
    }
}

impl From<&str> for Document {
    fn from(s: &str) -> Self {
        Document::new(s.as_bytes().to_vec())
    }
}

impl From<String> for Document {
    fn from(s: String) -> Self {
        Document::new(s.into_bytes())
    }
}

impl From<&[u8]> for Document {
    fn from(b: &[u8]) -> Self {
        Document::new(b.to_vec())
    }
}

impl From<Vec<u8>> for Document {
    fn from(b: Vec<u8>) -> Self {
        Document::new(b)
    }
}

impl AsRef<[u8]> for Document {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The document of Figure 1 in the paper.
    fn figure1() -> Document {
        Document::from("John xj@g.bey, Jane x555-12y")
    }

    #[test]
    fn figure1_length_and_content() {
        let d = figure1();
        assert_eq!(d.len(), 28);
        // d(1,5) = John
        assert_eq!(d.paper_content(1, 5).unwrap(), b"John");
        // d(7,13) = j@g.be
        assert_eq!(d.paper_content(7, 13).unwrap(), b"j@g.be");
        // d(16,20) = Jane
        assert_eq!(d.paper_content(16, 20).unwrap(), b"Jane");
        // d(22,28) = 555-12
        assert_eq!(d.paper_content(22, 28).unwrap(), b"555-12");
    }

    #[test]
    fn empty_document() {
        let d = Document::empty();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.full_span(), Span::new(0, 0).unwrap());
        assert_eq!(d.paper_content(1, 1).unwrap(), b"");
        assert_eq!(d.paper_content(1, 2), None);
    }

    #[test]
    fn empty_span_content_is_empty() {
        let d = figure1();
        assert_eq!(d.paper_content(3, 3).unwrap(), b"");
        assert_eq!(d.span_bytes(Span::empty_at(5)), b"");
    }

    #[test]
    fn span_str_utf8() {
        let d = Document::from("héllo");
        assert_eq!(d.len(), 6); // é is two bytes
        assert_eq!(d.span_str(d.full_span()).unwrap(), "héllo");
        // slicing through the middle of é is not valid UTF-8
        assert!(d.span_str(Span::new(1, 2).unwrap()).is_none());
    }

    #[test]
    fn byte_at_and_accommodates() {
        let d = Document::from("abc");
        assert_eq!(d.byte_at(0), Some(b'a'));
        assert_eq!(d.byte_at(2), Some(b'c'));
        assert_eq!(d.byte_at(3), None);
        assert!(d.accommodates(Span::new(0, 3).unwrap()));
        assert!(!d.accommodates(Span::new(0, 4).unwrap()));
    }

    #[test]
    fn alphabet_is_sorted_and_distinct() {
        let d = Document::from("abacabad");
        assert_eq!(d.alphabet(), vec![b'a', b'b', b'c', b'd']);
        assert!(Document::empty().alphabet().is_empty());
    }

    #[test]
    fn conversions() {
        let a = Document::from("xy");
        let b = Document::from(String::from("xy"));
        let c = Document::from(&b"xy"[..]);
        let d = Document::from(vec![b'x', b'y']);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c, d);
        assert_eq!(a.as_ref(), b"xy");
        assert_eq!(a.to_string(), "xy");
    }
}
