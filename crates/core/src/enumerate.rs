//! Algorithm 1 (Evaluate) and Algorithm 2 (Enumerate) of the paper:
//! linear-time preprocessing followed by constant-delay enumeration.
//!
//! `Evaluate` processes the document once, alternating a `Capturing(i)` phase
//! (simulating the extended variable transitions taken immediately before the
//! `i`-th letter) and a `Reading(i)` phase (simulating the letter transition on
//! the `i`-th letter). While doing so it incrementally builds the *reverse dual
//! DAG* whose nodes are annotated marker sets `(S, i)` and whose sink `⊥`
//! plays the role of the initial product state. The per-state `list_q`
//! structures are singly linked lists supporting the three O(1) operations the
//! paper requires — `add` (prepend), `lazycopy` (copy of the `(start, end)`
//! pair) and `append` (splice another list after the end element).
//!
//! Both phases are driven by a **sparse active-state set** ([`SparseSet`]):
//! only states whose list is non-empty are visited, so the cost per document
//! position is proportional to the number of *live* states (plus the work of
//! their transitions), not to the total number of automaton states. This is
//! the same organisation production regex engines use for NFA simulation and
//! is what makes the `O(|A| × |d|)` preprocessing bound tight in practice.
//!
//! On top of the sparse loop sit two **run-skipping fast paths**. The default
//! is **skip-mask scanning** ([`EngineMode::SkipScan`]): every automaton
//! state carries a bitset of the alphabet classes on which a `(Capturing;
//! Reading)` step is provably a no-op for it ([`DetSeva::skip_mask`]), the
//! active set's bitsets are intersected into one [`ClassMask`] (recomputed
//! only when the active set changes), and the loop jumps from one
//! *interesting* byte to the next with a chunked, memchr-style scanner
//! ([`find_next_interesting`]) — skippable stretches cost a vectorisable LUT
//! scan no matter how many class runs they span. The older **class-run**
//! path ([`EngineMode::ClassRuns`]) bulk-classifies the document
//! ([`crate::byteclass::AlphabetPartition::classify_into`]), walks maximal
//! same-class runs and consumes any run on whose class every live state is
//! [`DetSeva::run_skippable`] in `O(live states)`; it remains as the
//! fallback and differential baseline. Long stretches of "noise" between
//! matches (the common case in Example 2.1-style extraction) then cost
//! almost nothing; the byte-at-a-time loop remains available as
//! [`EngineMode::PerByte`] and for traced runs.
//!
//! The evaluation state (node/cell arenas, list vectors, active sets) lives in
//! a reusable [`Evaluator`], so a long-running service evaluating one compiled
//! spanner over millions of documents performs **no allocation after
//! warm-up** — each [`Evaluator::eval`] call recycles the previous document's
//! capacity. [`EnumerationDag::build`] remains as the one-shot convenience
//! wrapper producing an owned DAG.
//!
//! `Enumerate` then traverses the DAG depth-first from the lists of the final
//! states; every time it reaches `⊥` the markers collected along the path form
//! exactly one output mapping. The delay between two consecutive outputs is
//! bounded by a function of the number of variables only — it does not depend
//! on the document.

use crate::byteclass::ClassRuns;
use crate::det::{DetSeva, SkipScanner, Stepper};
use crate::document::Document;
use crate::error::SpannerError;
use crate::lazy::{FrozenCache, FrozenDelta, FrozenStepper, LazyCache, LazyDetSeva, LazyStepper};
use crate::limits::{EvalLimits, LimitChecker};
use crate::mapping::Mapping;
use crate::markerset::MarkerSet;
use crate::span::Span;
use crate::sparse::SparseSet;
use crate::variable::{VarRegistry, MAX_VARIABLES};

/// Index of a node in the DAG arena. Node 0 is the sink `⊥`.
type NodeId = u32;
/// Index of a list cell in the cell arena.
type CellId = u32;

const BOTTOM: NodeId = 0;

/// Converts an arena length into the id of the element about to be pushed,
/// with a loud debug check instead of a silent wraparound: a document/automaton
/// pair pathological enough to create more than `u32::MAX` nodes or cells
/// would otherwise corrupt the DAG.
#[inline]
fn next_arena_id(len: usize, what: &str) -> u32 {
    debug_assert!(
        len <= u32::MAX as usize,
        "{what} arena overflow: {len} elements exceed the u32 id space"
    );
    len as u32
}

/// A singly linked list of DAG nodes, represented as the `(start, end)` pair of
/// pointers described in the paper. Cheap to copy (`lazycopy` is a bitwise copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ListRef {
    head: CellId,
    tail: CellId,
    /// Empty lists are encoded by `len == 0`; `head`/`tail` are then
    /// meaningless. Saturates at `u32::MAX` — it is a hint for diagnostics
    /// (`StageTrace`), not load-bearing state.
    len_hint: u32,
}

impl ListRef {
    const EMPTY: ListRef = ListRef { head: 0, tail: 0, len_hint: 0 };

    #[inline]
    fn is_empty(&self) -> bool {
        self.len_hint == 0
    }
}

/// One cell of a linked list: a node reference plus the `next` pointer.
/// `next` is written at most once (by `append`), as in the paper.
#[derive(Debug, Clone, Copy)]
struct Cell {
    node: NodeId,
    next: Option<CellId>,
}

/// A DAG node `((S, i), list)`: an annotated marker set plus the list of nodes
/// it points to (the last variable transitions of the runs it extends).
#[derive(Debug, Clone, Copy)]
struct Node {
    markers: MarkerSet,
    pos: u32,
    list: ListRef,
}

/// The arena-backed DAG produced by Algorithm 1: nodes, list cells and the
/// root lists of the final states. Shared by the owned [`EnumerationDag`] and
/// the borrowed [`DagView`] an [`Evaluator`] hands out.
#[derive(Debug, Clone, Default)]
struct DagStore {
    nodes: Vec<Node>,
    cells: Vec<Cell>,
    /// Lists of the final states after the last `Capturing` phase
    /// (the entry points of Algorithm 2), in increasing state order.
    roots: Vec<ListRef>,
}

impl DagStore {
    fn iter(&self) -> MappingIter<'_> {
        MappingIter {
            store: self,
            next_root: 0,
            stack: Vec::with_capacity(2 * MAX_VARIABLES + 2),
            path: Vec::with_capacity(2 * MAX_VARIABLES + 2),
        }
    }

    fn count_paths(&self) -> u128 {
        // Memoized number of paths from each node to ⊥.
        let mut memo: Vec<Option<u128>> = vec![None; self.nodes.len()];
        memo[BOTTOM as usize] = Some(1);
        let mut total = 0u128;
        for root in &self.roots {
            total += self.count_list(*root, &mut memo);
        }
        total
    }

    fn count_list(&self, list: ListRef, memo: &mut Vec<Option<u128>>) -> u128 {
        let mut sum = 0u128;
        for cell in self.list_cells(list) {
            let node = self.cells[cell as usize].node;
            sum += self.count_node(node, memo);
        }
        sum
    }

    fn count_node(&self, node: NodeId, memo: &mut Vec<Option<u128>>) -> u128 {
        if let Some(v) = memo[node as usize] {
            return v;
        }
        let list = self.nodes[node as usize].list;
        let v = self.count_list(list, memo);
        memo[node as usize] = Some(v);
        v
    }

    /// Iterates over the cell ids of a list, honouring the `(start, end)` bounds
    /// (cells appended after `end` by later `append` operations are not visible).
    fn list_cells(&self, list: ListRef) -> ListCellIter<'_> {
        ListCellIter {
            store: self,
            cur: if list.is_empty() { None } else { Some(list.head) },
            tail: list.tail,
        }
    }
}

/// Which inner loop an [`Evaluator`] (or a `CountCache`) drives Algorithm 1 /
/// Algorithm 3 with.
///
/// All modes produce **identical outputs**: the same mappings, the same
/// counts, the same root lists (and, for a fixed automaton state space, the
/// same enumeration order — see `tests/skip_scan.rs` for the one caveat
/// around mid-document eviction of lazily determinized automata). The
/// run-skipping modes may allocate *fewer* DAG nodes/cells, because the
/// per-byte walk also materializes capture attempts that the very next
/// `Reading` phase provably kills (they are unreachable from every root);
/// the skipping loops elide those positions wholesale. Diagnostic arena
/// sizes (`num_nodes`, `num_cells`) are therefore comparable only within
/// one mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Skip-mask scanning — the default. The active set's skippable classes
    /// are maintained as one intersected [`crate::ClassMask`] (one AND per
    /// surviving state, recomputed only when the active set changes), the
    /// mask is expanded into a byte-level [`crate::InterestMask`], and the
    /// loop jumps straight to the next *interesting* byte with the chunked
    /// [`crate::find_next_interesting`] scanner — no `ClassRuns`
    /// materialization, no per-run predicate test, no per-byte work on
    /// skippable stretches.
    /// Skip decisions are byte-for-byte the class-run engine's (the mask
    /// under-approximates with exactly the memoized skip entries), so
    /// outputs are identical; only the scanning cost model changes from
    /// "per run" to "per interesting byte".
    #[default]
    SkipScan,
    /// Iterate the document as run-length-encoded alphabet-class runs
    /// (vectorised bulk classification + `O(live states)` consumption of
    /// runs on which every live state is [`DetSeva::run_skippable`]).
    /// Retained as the first fallback and as the differential baseline for
    /// [`EngineMode::SkipScan`].
    ClassRuns,
    /// The classic byte-at-a-time sparse loop. Used automatically for traced
    /// runs (a [`StageTrace`] needs per-position granularity) and kept
    /// selectable so differential tests can pin the engines against each
    /// other byte for byte.
    PerByte,
}

/// The reusable evaluation engine behind Algorithm 1.
///
/// An `Evaluator` owns every piece of mutable state the `Evaluate` loop needs:
/// the DAG node/cell arenas, the per-state list vectors, and the sparse
/// active-state sets. Calling [`Evaluator::eval`] runs Algorithm 1 and returns
/// a [`DagView`] borrowing the arenas; the next `eval` call reuses all of the
/// retained capacity, so in steady state (same automaton, comparable document
/// sizes) evaluation performs **zero heap allocation**:
///
/// ```
/// # use spanners_core::{EvaBuilder, DetSeva, ByteClass, MarkerSet, VarRegistry, Document};
/// # use spanners_core::Evaluator;
/// # let mut reg = VarRegistry::new();
/// # let x = reg.intern("x").unwrap();
/// # let mut b = EvaBuilder::new(reg);
/// # let q0 = b.add_state();
/// # let q1 = b.add_state();
/// # let q2 = b.add_state();
/// # b.set_initial(q0);
/// # b.set_final(q2);
/// # let any = ByteClass::any();
/// # b.add_letter(q0, any, q0);
/// # b.add_letter(q1, any, q1);
/// # b.add_letter(q2, any, q2);
/// # b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// # b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
/// # let aut = DetSeva::compile(&b.build().unwrap()).unwrap();
/// let mut evaluator = Evaluator::new();
/// for text in ["stream of", "many documents", "served by one cache"] {
///     let doc = Document::from(text);
///     let dag = evaluator.eval(&aut, &doc);
///     let _n = dag.iter().count(); // constant-delay enumeration
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    store: DagStore,
    /// `list_q` for every state (dense, indexed by state id).
    lists: Vec<ListRef>,
    /// Phase-start snapshots of `lists` for the active states.
    old: Vec<ListRef>,
    /// States with a non-empty list in the current phase.
    active: SparseSet,
    /// The active set under construction during a `Reading` phase.
    next_active: SparseSet,
    /// Scratch for collecting `(final state, list)` pairs before sorting.
    root_scratch: Vec<(u32, ListRef)>,
    /// Reusable per-document byte → alphabet-class buffer (the vectorised
    /// classification pass of the class-run engine). Retained across `eval`
    /// calls like the arenas, so steady-state allocation stays zero.
    class_buf: Vec<u8>,
    /// The cached mask state of the scanning engine (see
    /// [`EngineMode::SkipScan`] and `SkipScanner`): the active set's
    /// intersected skippable-class mask, the live snapshot it was built for,
    /// and the derived byte-interest table. Retained like the arenas.
    scanner: SkipScanner,
    /// Scratch for the clear-and-restart eviction protocol of a lazy
    /// automaton: the live state ids handed to [`Stepper::maintain`]…
    maint_ids: Vec<u32>,
    /// …and the live states' lists, saved across the id remap.
    maint_lists: Vec<ListRef>,
    /// The lazy determinization cache of the automaton last evaluated with
    /// [`Evaluator::eval_lazy`], tagged with the automaton's identity so a
    /// different lazy automaton gets a fresh cache. Kept inside the evaluator
    /// because the cache is exactly the same kind of per-worker mutable,
    /// warm-capacity state as the DAG arenas.
    lazy: Option<(u64, LazyCache)>,
    /// The per-worker overflow delta of the [`FrozenCache`] last evaluated
    /// with [`Evaluator::eval_frozen`], tagged with the *snapshot's* identity
    /// (delta state ids are relative to one specific freeze).
    frozen: Option<(u64, FrozenDelta)>,
    /// Which inner loop drives Algorithm 1.
    mode: EngineMode,
    /// Per-document resource limits applied by every run (default: none).
    limits: EvalLimits,
    /// The per-run limit enforcement state, restarted by every run.
    checker: LimitChecker,
    /// One-off lazy-cache/delta byte-budget override for the next runs
    /// (graceful-degradation retries, fault injection); `None` uses the
    /// automaton's configured budget.
    budget_override: Option<usize>,
}

impl Evaluator {
    /// A fresh evaluator with empty arenas, using the default
    /// [`EngineMode::SkipScan`] loop. Arenas grow on first use and are
    /// retained across [`Evaluator::eval`] calls.
    pub fn new() -> Evaluator {
        Evaluator::default()
    }

    /// A fresh evaluator driving Algorithm 1 with the given engine.
    pub fn with_mode(mode: EngineMode) -> Evaluator {
        Evaluator { mode, ..Evaluator::default() }
    }

    /// The engine mode this evaluator runs.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Switches the engine mode for subsequent [`Evaluator::eval`] calls.
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// The per-document resource limits applied by every run.
    pub fn limits(&self) -> EvalLimits {
        self.limits
    }

    /// Sets per-document resource limits for subsequent runs. With limits
    /// configured, use the fallible entry points ([`Evaluator::try_eval`],
    /// [`Evaluator::try_eval_lazy`], [`Evaluator::try_eval_frozen`]); the
    /// infallible ones panic if a limit trips.
    pub fn set_limits(&mut self, limits: EvalLimits) {
        self.limits = limits;
    }

    /// Overrides the lazy-cache/frozen-delta byte budget for subsequent runs
    /// (`None` restores the automaton's configured budget). This is the
    /// degradation-ladder hook: a document that thrashed the cache can be
    /// retried once under an enlarged budget without recompiling anything.
    pub fn set_cache_budget_override(&mut self, budget: Option<usize>) {
        self.budget_override = budget;
    }

    /// The active lazy-cache/frozen-delta byte-budget override, if any.
    pub fn cache_budget_override(&self) -> Option<usize> {
        self.budget_override
    }

    /// Runs Algorithm 1 (`Evaluate`) over the document and returns a view of
    /// the resulting DAG, reusing all previously allocated arena capacity.
    ///
    /// Preprocessing time is `O(|A| × |d|)` in the worst case, and
    /// `O(live states × |d|)` in the common case where only a few automaton
    /// states carry runs at any position.
    pub fn eval<'a>(&'a mut self, aut: &'a DetSeva, doc: &Document) -> DagView<'a> {
        let mut stepper: &DetSeva = aut;
        self.run(&mut stepper, doc, None);
        DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() }
    }

    /// [`Evaluator::eval`] under the configured [`EvalLimits`]: a tripped
    /// step budget or deadline surfaces as an `Err` instead of a panic, and
    /// the evaluator stays reusable (the next run resets all state).
    pub fn try_eval<'a>(
        &'a mut self,
        aut: &'a DetSeva,
        doc: &Document,
    ) -> Result<DagView<'a>, SpannerError> {
        let mut stepper: &DetSeva = aut;
        self.try_run(&mut stepper, doc, None)?;
        Ok(DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() })
    }

    /// Whether the eager automaton accepts `doc`, under the configured
    /// [`EvalLimits`] — the fallible counterpart of [`DetSeva::accepts`],
    /// placed on the evaluator so limits live in one place for all engines.
    pub fn try_accepts(&mut self, aut: &DetSeva, doc: &Document) -> Result<bool, SpannerError> {
        let mut stepper: &DetSeva = aut;
        crate::det::try_accepts_generic(&mut stepper, doc, &self.limits)
    }

    /// Like [`Evaluator::eval`] but moves the finished DAG out as an owned
    /// [`EnumerationDag`], surrendering the arena capacity (the evaluator's
    /// arenas start empty again). Use when the DAG must outlive the evaluator.
    pub fn eval_owned(&mut self, aut: &DetSeva, doc: &Document) -> EnumerationDag {
        let mut stepper: &DetSeva = aut;
        self.run(&mut stepper, doc, None);
        EnumerationDag {
            store: std::mem::take(&mut self.store),
            registry: aut.registry().clone(),
            doc_len: doc.len(),
        }
    }

    /// Runs Algorithm 1 over a **lazily determinized** automaton: subset
    /// states and transition rows are discovered on demand inside the
    /// evaluator's embedded [`LazyCache`] (created on first use, retained —
    /// warm — across documents, and replaced when a different lazy automaton
    /// is evaluated). Behaviour is otherwise identical to [`Evaluator::eval`]:
    /// same engine modes, same zero-steady-state-allocation contract once
    /// both the arenas and the cache are warm.
    pub fn eval_lazy<'a>(&'a mut self, aut: &'a LazyDetSeva, doc: &Document) -> DagView<'a> {
        let mut cache = self.prepare_lazy_cache(aut);
        let mut stepper = LazyStepper::new(aut, &mut cache);
        self.run(&mut stepper, doc, None);
        self.lazy = Some((aut.id(), cache));
        DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() }
    }

    /// [`Evaluator::eval_lazy`] under the configured [`EvalLimits`] (see
    /// [`Evaluator::try_eval`]). The embedded cache survives a tripped limit
    /// — already-interned subset states stay warm for the retry.
    pub fn try_eval_lazy<'a>(
        &'a mut self,
        aut: &'a LazyDetSeva,
        doc: &Document,
    ) -> Result<DagView<'a>, SpannerError> {
        let mut cache = self.prepare_lazy_cache(aut);
        let mut stepper = LazyStepper::new(aut, &mut cache);
        let run = self.try_run(&mut stepper, doc, None);
        self.lazy = Some((aut.id(), cache));
        run?;
        Ok(DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() })
    }

    /// Like [`Evaluator::eval_lazy`] but moving the finished DAG out as an
    /// owned [`EnumerationDag`] (see [`Evaluator::eval_owned`]).
    pub fn eval_lazy_owned(&mut self, aut: &LazyDetSeva, doc: &Document) -> EnumerationDag {
        let mut cache = self.prepare_lazy_cache(aut);
        let mut stepper = LazyStepper::new(aut, &mut cache);
        self.run(&mut stepper, doc, None);
        self.lazy = Some((aut.id(), cache));
        EnumerationDag {
            store: std::mem::take(&mut self.store),
            registry: aut.registry().clone(),
            doc_len: doc.len(),
        }
    }

    /// Whether the lazily determinized automaton accepts `doc`, using (and
    /// warming) the evaluator's embedded [`LazyCache`] — the hot-path match
    /// check: unlike a one-shot `accepts` with a fresh cache, repeated calls
    /// reuse all previously discovered subset states and transition rows.
    pub fn accepts_lazy(&mut self, aut: &LazyDetSeva, doc: &Document) -> bool {
        let mut cache = self.prepare_lazy_cache(aut);
        let accepted = aut.accepts(&mut cache, doc);
        self.lazy = Some((aut.id(), cache));
        accepted
    }

    /// [`Evaluator::accepts_lazy`] under the configured [`EvalLimits`]: the
    /// match check honours step budgets and deadlines like a full run.
    pub fn try_accepts_lazy(
        &mut self,
        aut: &LazyDetSeva,
        doc: &Document,
    ) -> Result<bool, SpannerError> {
        let mut cache = self.prepare_lazy_cache(aut);
        let accepted = {
            let mut stepper = LazyStepper::new(aut, &mut cache);
            crate::det::try_accepts_generic(&mut stepper, doc, &self.limits)
        };
        self.lazy = Some((aut.id(), cache));
        accepted
    }

    /// The embedded lazy determinization cache, if a lazy automaton has been
    /// evaluated (diagnostics: subset-state count, eviction count, capacity
    /// signature for allocation-retention assertions).
    pub fn lazy_cache(&self) -> Option<&LazyCache> {
        self.lazy.as_ref().map(|(_, c)| c)
    }

    /// Installs `cache` as the embedded lazy cache for `aut`, replacing
    /// whatever was there. Subsequent [`Evaluator::eval_lazy`] calls extend
    /// it in place — the warm-up hook of the generational re-freeze path,
    /// which thaws a frozen snapshot (delta evidence merged), replays sample
    /// documents through it here, and freezes the result as the next
    /// generation. A cache bound to a different automaton is reset by the
    /// rebind, exactly as [`LazyCache::bind`] documents.
    pub fn install_lazy_cache(&mut self, aut: &LazyDetSeva, mut cache: LazyCache) {
        cache.bind(aut);
        self.lazy = Some((aut.id(), cache));
    }

    /// Runs Algorithm 1 against a **shared frozen snapshot** of a lazy
    /// determinization cache (see [`LazyCache::freeze`]): every subset state
    /// and row the snapshot holds is a flat shared-table read, and anything
    /// discovered beyond it lives in this evaluator's private, per-document
    /// [`FrozenDelta`] — the parallel-serving counterpart of
    /// [`Evaluator::eval_lazy`]. Because the delta resets (capacity retained)
    /// at the start of every call, the result — mappings, counts **and
    /// enumeration order** — is a pure function of `(frozen, doc)`, identical
    /// across workers and thread counts.
    pub fn eval_frozen<'a>(
        &'a mut self,
        aut: &'a LazyDetSeva,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> DagView<'a> {
        let mut delta = self.prepare_frozen_delta(aut, frozen);
        let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
        self.run(&mut stepper, doc, None);
        self.frozen = Some((frozen.id(), delta));
        DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() }
    }

    /// [`Evaluator::eval_frozen`] under the configured [`EvalLimits`] (see
    /// [`Evaluator::try_eval`]). The per-worker delta survives a tripped
    /// limit; the next frozen run resets it per the determinism contract.
    pub fn try_eval_frozen<'a>(
        &'a mut self,
        aut: &'a LazyDetSeva,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<DagView<'a>, SpannerError> {
        let mut delta = self.prepare_frozen_delta(aut, frozen);
        let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
        let run = self.try_run(&mut stepper, doc, None);
        self.frozen = Some((frozen.id(), delta));
        run?;
        Ok(DagView { store: &self.store, registry: aut.registry(), doc_len: doc.len() })
    }

    /// Whether the automaton accepts `doc`, stepping through the shared
    /// frozen snapshot with this evaluator's private delta — the frozen
    /// counterpart of [`Evaluator::accepts_lazy`].
    pub fn accepts_frozen(
        &mut self,
        aut: &LazyDetSeva,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> bool {
        let mut delta = self.prepare_frozen_delta(aut, frozen);
        let accepted = {
            let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
            crate::det::accepts_generic(&mut stepper, doc)
        };
        self.frozen = Some((frozen.id(), delta));
        accepted
    }

    /// [`Evaluator::accepts_frozen`] under the configured [`EvalLimits`].
    pub fn try_accepts_frozen(
        &mut self,
        aut: &LazyDetSeva,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<bool, SpannerError> {
        let mut delta = self.prepare_frozen_delta(aut, frozen);
        let accepted = {
            let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
            crate::det::try_accepts_generic(&mut stepper, doc, &self.limits)
        };
        self.frozen = Some((frozen.id(), delta));
        accepted
    }

    /// The embedded frozen-overflow delta, if a frozen snapshot has been
    /// evaluated (diagnostics: overflow-state count, eviction count, capacity
    /// signature).
    pub fn frozen_delta(&self) -> Option<&FrozenDelta> {
        self.frozen.as_ref().map(|(_, d)| d)
    }

    /// Bytes currently held by this evaluator's **governed** memory: the
    /// embedded lazy determinization cache plus the frozen-overflow delta —
    /// the caches a global [`crate::MemoryGovernor`] ledgers and can shed.
    /// (The enumeration node store is per-document working memory, not
    /// governed.)
    pub fn governed_bytes(&self) -> usize {
        let lazy = self.lazy.as_ref().map_or(0, |(_, c)| c.memory_bytes());
        let frozen = self.frozen.as_ref().map_or(0, |(_, d)| d.memory_bytes());
        lazy + frozen
    }

    /// Sheds this evaluator's governed memory for the global governor
    /// (severity 1 of the shedding ladder): drops the embedded lazy cache
    /// outright and [`FrozenDelta::shed`]s the frozen-overflow delta.
    /// Returns the bytes freed. The evaluator stays fully usable — the next
    /// lazy run rebuilds its cache from scratch, the next frozen run
    /// re-interns overflow states on demand, and results are unchanged
    /// (byte-identical) because both caches are pure memoization.
    pub fn shed_cold_memory(&mut self) -> usize {
        let mut freed = 0;
        if let Some((_, cache)) = self.lazy.take() {
            freed += cache.memory_bytes();
        }
        if let Some((_, delta)) = self.frozen.as_mut() {
            freed += delta.shed();
        }
        freed
    }

    /// Takes the embedded cache out for an evaluation of `aut`, replacing it
    /// with a fresh one if it belonged to a different lazy automaton.
    fn take_lazy_cache(&mut self, aut: &LazyDetSeva) -> LazyCache {
        match self.lazy.take() {
            Some((id, cache)) if id == aut.id() => cache,
            _ => aut.create_cache(),
        }
    }

    /// Takes the embedded delta out for an evaluation against `frozen`,
    /// replacing it with a fresh one if it belonged to a different snapshot.
    fn take_frozen_delta(&mut self, frozen: &FrozenCache) -> FrozenDelta {
        match self.frozen.take() {
            Some((id, delta)) if id == frozen.id() => delta,
            _ => FrozenDelta::new(),
        }
    }

    /// Takes the embedded cache out, bound to `aut` with the effective byte
    /// budget (the automaton's configured budget, or the evaluator's one-off
    /// override). Binding first makes the budget deterministic per run: a
    /// previous run's override never leaks into an un-overridden run.
    fn prepare_lazy_cache(&mut self, aut: &LazyDetSeva) -> LazyCache {
        let mut cache = self.take_lazy_cache(aut);
        cache.bind(aut);
        cache.set_budget(self.budget_override.unwrap_or(aut.config().memory_budget));
        cache
    }

    /// Takes the embedded delta out, bound to `frozen` with the effective
    /// byte budget (see [`Evaluator::prepare_lazy_cache`]).
    fn prepare_frozen_delta(&mut self, aut: &LazyDetSeva, frozen: &FrozenCache) -> FrozenDelta {
        let mut delta = self.take_frozen_delta(frozen);
        delta.bind(frozen, aut);
        delta.set_budget(self.budget_override.unwrap_or(aut.config().memory_budget));
        delta
    }

    /// Current capacity of the node arena (diagnostics: a warmed-up evaluator
    /// keeps its capacity across documents instead of reallocating).
    pub fn node_capacity(&self) -> usize {
        self.store.nodes.capacity()
    }

    /// Current capacity of the cell arena.
    pub fn cell_capacity(&self) -> usize {
        self.store.cells.capacity()
    }

    /// Current capacity of the byte-class buffer (diagnostics: like the
    /// arenas, it is retained across documents in steady state).
    pub fn class_buf_capacity(&self) -> usize {
        self.class_buf.capacity()
    }

    /// Infallible shim over [`Evaluator::try_run`] for the legacy entry
    /// points: with no [`EvalLimits`] configured (the default) nothing can
    /// trip; with limits configured, a tripped limit panics here — callers
    /// that set limits must use the `try_*` entry points.
    fn run<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
        trace: Option<&mut Vec<StageTrace>>,
    ) {
        if let Err(e) = self.try_run(aut, doc, trace) {
            panic!("evaluation limit tripped on an infallible entry point (use try_eval*): {e}");
        }
    }

    /// The core of Algorithm 1, shared by every public entry point and
    /// generic over the eager/lazy [`Stepper`] seam.
    ///
    /// Traced runs always use the per-byte loop: a [`StageTrace`] records the
    /// list state after *every* `Capturing`/`Reading` phase, which requires
    /// per-position granularity the run-skipping loop deliberately elides.
    ///
    /// Fails only when a configured [`EvalLimits`] trips; on failure the
    /// partially built DAG is abandoned (the next run resets all state, so
    /// the evaluator remains reusable).
    fn try_run<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
        trace: Option<&mut Vec<StageTrace>>,
    ) -> Result<(), SpannerError> {
        self.checker = LimitChecker::start(&self.limits);
        let n_states = aut.state_bound();
        // Reset retained storage without releasing capacity. A lazy stepper
        // may discover states past `n_states` mid-document; `ensure_state`
        // grows the per-state storage on demand.
        self.store.nodes.clear();
        self.store.cells.clear();
        self.store.roots.clear();
        self.lists.clear();
        self.lists.resize(n_states, ListRef::EMPTY);
        self.old.clear();
        self.old.resize(n_states, ListRef::EMPTY);
        self.active.reset(n_states);
        self.next_active.reset(n_states);

        // Node 0 is the sink ⊥; its markers/list are never read.
        self.store.nodes.push(Node { markers: MarkerSet::new(), pos: 0, list: ListRef::EMPTY });
        // list_q for every state q: initially empty except list_{q0} = [⊥].
        self.store.cells.push(Cell { node: BOTTOM, next: None });
        let init = aut.start_state();
        self.ensure_state(init);
        self.lists[init] = ListRef { head: 0, tail: 0, len_hint: 1 };
        self.active.insert(init);

        if self.mode == EngineMode::PerByte || trace.is_some() {
            self.run_per_byte(aut, doc, trace)?;
        } else if self.mode == EngineMode::ClassRuns {
            self.run_class_runs(aut, doc)?;
        } else {
            self.run_skip_scan(aut, doc)?;
        }

        // Roots: the (non-empty) lists of the final states, in state order so
        // enumeration order is independent of active-set insertion order.
        self.root_scratch.clear();
        for idx in 0..self.active.len() {
            let q = self.active.get(idx);
            if aut.is_final(q) {
                self.root_scratch.push((q as u32, self.lists[q]));
            }
        }
        self.root_scratch.sort_unstable_by_key(|&(q, _)| q);
        self.store.roots.extend(self.root_scratch.iter().map(|&(_, l)| l));
        Ok(())
    }

    /// The classic byte-at-a-time sparse loop (kept verbatim as the reference
    /// engine and as the per-position backend of traced runs).
    ///
    /// Loop invariant: `active` holds exactly the states whose list is
    /// non-empty, and `lists[q]` is EMPTY for every inactive q.
    fn run_per_byte<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
        mut trace: Option<&mut Vec<StageTrace>>,
    ) -> Result<(), SpannerError> {
        let bytes = doc.bytes();
        for i in 0..=bytes.len() {
            self.checker.tick()?;
            self.maintenance_point(aut)?;
            self.capture_phase(aut, i);
            if let Some(t) = trace.as_deref_mut() {
                t.push(StageTrace::capture(i, &self.lists));
            }
            if i == bytes.len() {
                break;
            }
            let cls = aut.byte_class(bytes[i]);
            self.read_phase(aut, cls);
            if let Some(t) = trace.as_deref_mut() {
                t.push(StageTrace::read(i, &self.lists));
            }
        }
        Ok(())
    }

    /// The run-skipping loop: classify the whole document into alphabet
    /// classes in one vectorised pass, then walk maximal class runs. Whenever
    /// every live state is [`DetSeva::run_skippable`] on the run's class, the
    /// remainder of the run is consumed in one step — the per-byte walk would
    /// leave every list, the active set, and all reachable DAG structure
    /// bitwise unchanged over those positions (see `run_skippable` for the
    /// proof obligations), so nothing needs to be executed. Positions that
    /// fail the test fall back to the per-byte phases, one byte at a time,
    /// re-testing after each byte (capture transitions mid-run can both
    /// create and destroy skippability).
    fn run_class_runs<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
    ) -> Result<(), SpannerError> {
        let mut class_buf = std::mem::take(&mut self.class_buf);
        aut.classify_document(doc, &mut class_buf);
        let result = self.run_class_runs_inner(aut, doc, &class_buf);
        self.class_buf = class_buf;
        result
    }

    /// Body of [`Evaluator::run_class_runs`], split out so the class buffer
    /// is restored on the error path too.
    fn run_class_runs_inner<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
        class_buf: &[u8],
    ) -> Result<(), SpannerError> {
        for run in ClassRuns::new(class_buf) {
            let cls = run.class as usize;
            let end = run.start + run.len;
            let mut i = run.start;
            while i < end {
                self.maintenance_point(aut)?;
                if self.active.as_slice().iter().all(|&q| aut.run_skippable(q as usize, cls)) {
                    // The rest of the run is a no-op for every live state
                    // (vacuously so once the active set is empty). Skipped
                    // positions cost no step fuel; one clock check covers
                    // the whole consumed run.
                    self.checker.tick_jump()?;
                    break;
                }
                self.checker.tick()?;
                self.capture_phase(aut, i);
                self.read_phase(aut, cls);
                i += 1;
            }
        }
        self.maintenance_point(aut)?;
        self.capture_phase(aut, doc.len());
        Ok(())
    }

    /// The skip-mask scanning loop ([`EngineMode::SkipScan`]): instead of
    /// materializing class runs and testing each one, maintain the active
    /// set's skippable classes as one intersected [`ClassMask`] and jump
    /// straight to the next *interesting* byte.
    ///
    /// Per executed position this costs what the class-run loop costs (one
    /// predicate test per live state, then the `Capturing`/`Reading`
    /// phases); per *skippable* stretch it costs a chunked LUT scan —
    /// `find_next_interesting` — regardless of how many class runs the
    /// stretch spans. The mask is rebuilt only when the active set changes,
    /// and the byte-level interest table only when a skip actually happens,
    /// so dense regions never pay for either.
    ///
    /// Skip decisions are identical to the class-run engine's: a byte is
    /// skipped either because its class is in the mask — which, by the
    /// [`Stepper::skip_mask`] contract, means every live state has a
    /// *memoized* skippable entry for it — or because the same
    /// all-live-states [`Stepper::run_skippable`] test the class-run loop
    /// performs just succeeded. Lazily determinized automata therefore
    /// intern subset states in exactly the same order under both engines.
    fn run_skip_scan<S: Stepper>(
        &mut self,
        aut: &mut S,
        doc: &Document,
    ) -> Result<(), SpannerError> {
        let bytes = doc.bytes();
        self.scanner.reset();
        let mut i = 0usize;
        while i < bytes.len() {
            if aut.wants_maintenance() {
                // Eviction rewrites state ids and forgets memoized skip
                // entries: every cached view is stale. (The re-interned live
                // states are the same subsets under new ids, so a stale mask
                // would still under-approximate — but dropping it keeps the
                // reasoning local.)
                self.maintenance_point(aut)?;
                self.scanner.reset();
            }
            let cls = aut.byte_class(bytes[i]);
            if self.scanner.should_skip(aut, self.active.as_slice(), cls) {
                // Skipped stretches cost no step fuel; the scan that finds
                // the next interesting byte amortizes one clock check.
                self.checker.tick_jump()?;
                match self.scanner.next_interesting(aut.partition(), bytes, i + 1) {
                    Some(j) => i = j,
                    None => break,
                }
                continue;
            }
            self.checker.tick()?;
            self.capture_phase(aut, i);
            self.read_phase(aut, cls);
            self.scanner.executed();
            i += 1;
            if self.active.is_empty() {
                // No live runs, no future output: the rest of the document
                // is vacuously skippable.
                break;
            }
        }
        self.maintenance_point(aut)?;
        self.capture_phase(aut, doc.len());
        Ok(())
    }

    /// Grows the per-state storage (lists, snapshots, active sets) to cover
    /// state id `q` — a no-op for eager automata, whose state space is fixed,
    /// and an amortized bump when a lazy automaton interns fresh subsets.
    #[inline]
    fn ensure_state(&mut self, q: usize) {
        if q >= self.lists.len() {
            let n = q + 1;
            self.lists.resize(n, ListRef::EMPTY);
            self.old.resize(n, ListRef::EMPTY);
            self.active.grow(n);
            self.next_active.grow(n);
        }
    }

    /// Once-per-position cache-budget hook: when a lazy stepper reports it is
    /// over budget, hand it the live state ids, let it clear-and-restart, and
    /// remap the evaluator's per-state structures onto the rewritten ids.
    /// Free for eager automata (`wants_maintenance` is a constant `false`).
    /// Each performed eviction feeds the thrash guard, whose verdict is
    /// returned only after the remap completes — the evaluator's invariants
    /// hold even on the error path.
    #[inline]
    fn maintenance_point<S: Stepper>(&mut self, aut: &mut S) -> Result<(), SpannerError> {
        if !aut.wants_maintenance() {
            return Ok(());
        }
        // Save the live lists in active order and clear the old slots before
        // any new id is written (old and new id ranges overlap).
        let mut ids = std::mem::take(&mut self.maint_ids);
        let mut saved = std::mem::take(&mut self.maint_lists);
        ids.clear();
        ids.extend_from_slice(self.active.as_slice());
        saved.clear();
        for &q in &ids {
            saved.push(self.lists[q as usize]);
            self.lists[q as usize] = ListRef::EMPTY;
        }
        let mut verdict = Ok(());
        if aut.maintain(&mut ids) {
            verdict = self.checker.note_clear();
            self.active.clear();
            for (k, &q) in ids.iter().enumerate() {
                let q = q as usize;
                self.ensure_state(q);
                self.active.insert(q);
                self.lists[q] = saved[k];
            }
        } else {
            // No eviction after all: restore the slots untouched.
            for (k, &q) in ids.iter().enumerate() {
                self.lists[q as usize] = saved[k];
            }
        }
        self.maint_ids = ids;
        self.maint_lists = saved;
        verdict
    }

    /// `Capturing(i)`: the extended variable transitions taken immediately
    /// before letter `i`. Lazycopies the lists of the phase-start active
    /// states (the paper's lazy copy of every list; inactive lists are EMPTY).
    #[inline]
    fn capture_phase<S: Stepper>(&mut self, aut: &mut S, i: usize) {
        let live = self.active.len();
        for idx in 0..live {
            let q = self.active.get(idx);
            self.old[q] = self.lists[q];
        }
        for idx in 0..live {
            let q = self.active.get(idx);
            if !aut.has_markers(q) {
                continue;
            }
            let src = self.old[q];
            for &(markers, p) in aut.markers_from(q) {
                self.ensure_state(p);
                let node_id = next_arena_id(self.store.nodes.len(), "DAG node");
                self.store.nodes.push(Node { markers, pos: i as u32, list: src });
                // list_p.add(node): prepend a fresh cell.
                let cell_id = next_arena_id(self.store.cells.len(), "list cell");
                if self.active.insert(p) {
                    // p had an empty list: start it.
                    self.store.cells.push(Cell { node: node_id, next: None });
                    self.lists[p] = ListRef { head: cell_id, tail: cell_id, len_hint: 1 };
                } else {
                    let cur = self.lists[p];
                    self.store.cells.push(Cell { node: node_id, next: Some(cur.head) });
                    self.lists[p] = ListRef {
                        head: cell_id,
                        tail: cur.tail,
                        len_hint: cur.len_hint.saturating_add(1),
                    };
                }
            }
        }
    }

    /// `Reading(i)`: the letter transition on the byte whose alphabet class
    /// is `cls`.
    #[inline]
    fn read_phase<S: Stepper>(&mut self, aut: &mut S, cls: usize) {
        let live = self.active.len();
        for idx in 0..live {
            let q = self.active.get(idx);
            self.old[q] = self.lists[q];
            self.lists[q] = ListRef::EMPTY;
        }
        self.next_active.clear();
        for idx in 0..live {
            let q = self.active.get(idx);
            if let Some(p) = aut.step_class(q, cls) {
                self.ensure_state(p);
                let src = self.old[q];
                // list_p.append(list_old_q)
                if self.next_active.insert(p) {
                    self.lists[p] = src;
                } else {
                    let cur = self.lists[p];
                    let tail = cur.tail as usize;
                    debug_assert!(
                        self.store.cells[tail].next.is_none(),
                        "append target must end in null"
                    );
                    self.store.cells[tail].next = Some(src.head);
                    self.lists[p] = ListRef {
                        head: cur.head,
                        tail: src.tail,
                        len_hint: cur.len_hint.saturating_add(src.len_hint),
                    };
                }
            }
        }
        std::mem::swap(&mut self.active, &mut self.next_active);
    }
}

/// A borrowed view of the DAG held inside an [`Evaluator`] — the zero-copy
/// result of [`Evaluator::eval`]. Supports the same read operations as
/// [`EnumerationDag`] (enumerate, count, materialize) without owning the
/// arenas, so the evaluator can recycle them for the next document as soon as
/// the view is dropped.
#[derive(Debug, Clone, Copy)]
pub struct DagView<'a> {
    store: &'a DagStore,
    registry: &'a VarRegistry,
    doc_len: usize,
}

impl<'a> DagView<'a> {
    /// The variable registry of the automaton that produced this DAG.
    pub fn registry(&self) -> &'a VarRegistry {
        self.registry
    }

    /// Length of the document this DAG was built over.
    pub fn document_len(&self) -> usize {
        self.doc_len
    }

    /// Number of DAG nodes created (including the sink `⊥`).
    pub fn num_nodes(&self) -> usize {
        self.store.nodes.len()
    }

    /// Number of list cells created.
    pub fn num_cells(&self) -> usize {
        self.store.cells.len()
    }

    /// Number of root lists (non-empty final-state lists).
    pub fn num_roots(&self) -> usize {
        self.store.roots.len()
    }

    /// Whether the spanner produced no output on this document.
    pub fn is_empty(&self) -> bool {
        self.store.roots.is_empty()
    }

    /// Algorithm 2 as a pull-based iterator with constant delay per item.
    pub fn iter(&self) -> MappingIter<'a> {
        self.store.iter()
    }

    /// Materializes all output mappings (in enumeration order).
    pub fn collect_mappings(&self) -> Vec<Mapping> {
        self.iter().collect()
    }

    /// Counts mappings by counting root-to-`⊥` paths (see
    /// [`EnumerationDag::count_paths`]).
    pub fn count_paths(&self) -> u128 {
        self.store.count_paths()
    }
}

/// The output of Algorithm 1: a compact DAG representation of all output
/// mappings of a deterministic sequential eVA over a document.
///
/// Build it with [`EnumerationDag::build`] (one-shot) or keep a reusable
/// [`Evaluator`] when evaluating many documents; enumerate with
/// [`EnumerationDag::iter`] (constant delay per item), count paths with
/// [`EnumerationDag::count_paths`], or materialize with
/// [`EnumerationDag::collect_mappings`].
#[derive(Debug, Clone)]
pub struct EnumerationDag {
    store: DagStore,
    registry: VarRegistry,
    doc_len: usize,
}

impl EnumerationDag {
    /// Runs Algorithm 1 (`Evaluate`) over the document, producing the DAG.
    ///
    /// This is a thin convenience wrapper creating a fresh [`Evaluator`] per
    /// call; preprocessing time is `O(|A| × |d|)`. Hot paths evaluating many
    /// documents should hold on to one [`Evaluator`] instead, which amortizes
    /// every allocation across documents.
    pub fn build(aut: &DetSeva, doc: &Document) -> EnumerationDag {
        Evaluator::new().eval_owned(aut, doc)
    }

    /// Like [`EnumerationDag::build`] but records, after every `Capturing`/
    /// `Reading` phase, which state lists are non-empty and how many cells each
    /// holds. Used by tests that replay the trace of Figure 5 and by the
    /// benchmark harness to report DAG growth; slower than `build`.
    pub fn build_with_trace(aut: &DetSeva, doc: &Document) -> (EnumerationDag, Vec<StageTrace>) {
        let mut traces = Vec::new();
        let mut evaluator = Evaluator::new();
        let mut stepper: &DetSeva = aut;
        evaluator.run(&mut stepper, doc, Some(&mut traces));
        let dag = EnumerationDag {
            store: std::mem::take(&mut evaluator.store),
            registry: aut.registry().clone(),
            doc_len: doc.len(),
        };
        (dag, traces)
    }

    /// The variable registry of the automaton that produced this DAG.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Length of the document this DAG was built over.
    pub fn document_len(&self) -> usize {
        self.doc_len
    }

    /// Number of DAG nodes created (including the sink `⊥`).
    pub fn num_nodes(&self) -> usize {
        self.store.nodes.len()
    }

    /// Number of list cells created.
    pub fn num_cells(&self) -> usize {
        self.store.cells.len()
    }

    /// Number of root lists (non-empty final-state lists).
    pub fn num_roots(&self) -> usize {
        self.store.roots.len()
    }

    /// Whether the spanner produced no output on this document.
    pub fn is_empty(&self) -> bool {
        self.store.roots.is_empty()
    }

    /// Algorithm 2 as a pull-based iterator with constant delay per item.
    pub fn iter(&self) -> MappingIter<'_> {
        self.store.iter()
    }

    /// Materializes all output mappings (in enumeration order).
    pub fn collect_mappings(&self) -> Vec<Mapping> {
        self.iter().collect()
    }

    /// Runs Algorithm 2 with a callback instead of an iterator; stops early if
    /// the callback returns `false`. Returns the number of mappings visited.
    pub fn for_each_mapping<F: FnMut(Mapping) -> bool>(&self, mut f: F) -> usize {
        let mut n = 0;
        for m in self.iter() {
            n += 1;
            if !f(m) {
                break;
            }
        }
        n
    }

    /// Counts the number of output mappings by counting paths from the roots to
    /// `⊥` in the DAG. Because the source automaton is deterministic, paths are
    /// in bijection with output mappings.
    ///
    /// This is an alternative to Algorithm 3 (see [`crate::count`]) that reuses
    /// an already-built DAG; it runs in time linear in the DAG size.
    pub fn count_paths(&self) -> u128 {
        self.store.count_paths()
    }
}

struct ListCellIter<'a> {
    store: &'a DagStore,
    cur: Option<CellId>,
    tail: CellId,
}

impl Iterator for ListCellIter<'_> {
    type Item = CellId;
    fn next(&mut self) -> Option<CellId> {
        let cur = self.cur?;
        self.cur = if cur == self.tail { None } else { self.store.cells[cur as usize].next };
        Some(cur)
    }
}

/// Snapshot of the per-state lists after one phase of Algorithm 1
/// (used to reproduce the trace of Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTrace {
    /// Which phase produced this snapshot.
    pub stage: Stage,
    /// 0-based position of the phase (the paper uses 1-based positions).
    pub pos: usize,
    /// `(state, number of list cells)` for every state with a non-empty list.
    pub nonempty: Vec<(usize, usize)>,
}

/// The two phases of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The `Capturing(i)` phase (variable transitions before letter `i`).
    Capturing,
    /// The `Reading(i)` phase (the letter transition on letter `i`).
    Reading,
}

impl StageTrace {
    fn capture(pos: usize, lists: &[ListRef]) -> StageTrace {
        StageTrace { stage: Stage::Capturing, pos, nonempty: Self::snapshot(lists) }
    }
    fn read(pos: usize, lists: &[ListRef]) -> StageTrace {
        StageTrace { stage: Stage::Reading, pos, nonempty: Self::snapshot(lists) }
    }
    fn snapshot(lists: &[ListRef]) -> Vec<(usize, usize)> {
        lists
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(q, l)| (q, l.len_hint as usize))
            .collect()
    }
}

/// A frame of the depth-first traversal of Algorithm 2.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Next cell to visit in the current list (`None` = list exhausted).
    cursor: Option<CellId>,
    /// Last cell belonging to the current list.
    tail: CellId,
    /// Whether entering this frame pushed an entry onto the marker path.
    pushed: bool,
}

/// Iterator over the output mappings encoded by an [`EnumerationDag`] or a
/// [`DagView`] (Algorithm 2 of the paper).
///
/// Each call to [`next`](Iterator::next) performs a bounded amount of work that
/// depends only on the number of variables of the spanner, never on the
/// document length — this is the constant-delay guarantee.
#[derive(Debug, Clone)]
pub struct MappingIter<'a> {
    store: &'a DagStore,
    next_root: usize,
    stack: Vec<Frame>,
    /// Markers collected along the current DFS path, from the last variable
    /// transition of the run (largest position) down towards `⊥`.
    path: Vec<(MarkerSet, u32)>,
}

impl MappingIter<'_> {
    fn push_list(&mut self, list: ListRef, pushed: bool) {
        debug_assert!(!list.is_empty());
        self.stack.push(Frame { cursor: Some(list.head), tail: list.tail, pushed });
    }

    /// Builds the mapping for the markers currently on `path`.
    ///
    /// The path stores marker sets in decreasing position order, so the close
    /// position of every variable is seen before its open position.
    fn build_mapping(&self) -> Mapping {
        let mut end_pos = [0u32; MAX_VARIABLES];
        let mut mapping = Mapping::new();
        for &(markers, pos) in &self.path {
            for v in markers.closed_vars().iter() {
                end_pos[v.index()] = pos;
            }
            for v in markers.opened_vars().iter() {
                mapping.insert(v, Span::new_unchecked(pos as usize, end_pos[v.index()] as usize));
            }
        }
        mapping
    }
}

impl Iterator for MappingIter<'_> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        loop {
            // Refill from the next root list when the stack is exhausted.
            if self.stack.is_empty() {
                if self.next_root >= self.store.roots.len() {
                    return None;
                }
                let root = self.store.roots[self.next_root];
                self.next_root += 1;
                self.push_list(root, false);
                continue;
            }
            let top = self.stack.last_mut().expect("stack is non-empty");
            let Some(cell_id) = top.cursor else {
                // Current list exhausted: backtrack.
                let frame = self.stack.pop().expect("stack is non-empty");
                if frame.pushed {
                    self.path.pop();
                }
                continue;
            };
            // Advance the cursor within the current list.
            let cell = self.store.cells[cell_id as usize];
            top.cursor = if cell_id == top.tail { None } else { cell.next };

            if cell.node == BOTTOM {
                // A complete path: emit one mapping.
                return Some(self.build_mapping());
            }
            let node = self.store.nodes[cell.node as usize];
            self.path.push((node.markers, node.pos));
            self.push_list(node.list, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::eva::{Eva, EvaBuilder};
    use crate::mapping::dedup_mappings;
    use crate::variable::VarRegistry;

    /// The Figure 3 automaton.
    fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        let ms = MarkerSet::new;
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    fn det(eva: &Eva) -> DetSeva {
        DetSeva::compile(eva).unwrap()
    }

    fn enumerate_sorted(aut: &DetSeva, doc: &Document) -> Vec<Mapping> {
        let dag = EnumerationDag::build(aut, doc);
        let mut out = dag.collect_mappings();
        dedup_mappings(&mut out);
        out
    }

    #[test]
    fn figure3_matches_paper_output() {
        let eva = figure3();
        let aut = det(&eva);
        let doc = Document::from("ab");
        let out = enumerate_sorted(&aut, &doc);
        assert_eq!(out, eva.eval_naive(&doc));
        assert_eq!(out.len(), 3);
        // Spot-check µ3(x) = µ3(y) = [1,3⟩.
        let x = eva.registry().get("x").unwrap();
        let y = eva.registry().get("y").unwrap();
        let mu3 = Mapping::from_pairs([
            (x, Span::from_paper(1, 3).unwrap()),
            (y, Span::from_paper(1, 3).unwrap()),
        ]);
        assert!(out.contains(&mu3));
    }

    #[test]
    fn no_duplicates_are_enumerated() {
        let eva = figure3();
        let aut = det(&eva);
        for text in ["ab", "abab", "aabb", "aaabbb", "ababab"] {
            let doc = Document::from(text);
            let dag = EnumerationDag::build(&aut, &doc);
            let all = dag.collect_mappings();
            let mut deduped = all.clone();
            dedup_mappings(&mut deduped);
            assert_eq!(all.len(), deduped.len(), "duplicates on {text:?}");
        }
    }

    #[test]
    fn agreement_with_naive_on_many_documents() {
        let eva = figure3();
        let aut = det(&eva);
        for text in ["", "a", "b", "ab", "ba", "aa", "bb", "aab", "abb", "abab", "bbaa", "aabab"] {
            let doc = Document::from(text);
            let fast = enumerate_sorted(&aut, &doc);
            let slow = eva.eval_naive(&doc);
            assert_eq!(fast, slow, "mismatch on {text:?}");
        }
    }

    #[test]
    fn empty_output_documents() {
        let eva = figure3();
        let aut = det(&eva);
        let dag = EnumerationDag::build(&aut, &Document::from("zz"));
        assert!(dag.is_empty());
        assert_eq!(dag.collect_mappings(), vec![]);
        assert_eq!(dag.count_paths(), 0);
        let dag = EnumerationDag::build(&aut, &Document::empty());
        assert!(dag.is_empty());
    }

    #[test]
    fn count_paths_matches_enumeration() {
        let eva = figure3();
        let aut = det(&eva);
        for text in ["ab", "abab", "aaabbb", "abababab"] {
            let doc = Document::from(text);
            let dag = EnumerationDag::build(&aut, &doc);
            assert_eq!(dag.count_paths(), dag.collect_mappings().len() as u128, "on {text:?}");
        }
    }

    #[test]
    fn figure5_trace_nonempty_lists() {
        // Reproduces the table of Figure 5: which lists are non-empty after
        // each stage when running the Figure 3 automaton on d = ab.
        let eva = figure3();
        let aut = det(&eva);
        let (_, traces) = EnumerationDag::build_with_trace(&aut, &Document::from("ab"));
        // Stages: Capturing(1), Reading(1), Capturing(2), Reading(2), Capturing(3)
        assert_eq!(traces.len(), 5);

        let states =
            |t: &StageTrace| -> Vec<usize> { t.nonempty.iter().map(|(q, _)| *q).collect() };

        // Capturing(1): q0 (still holds ⊥), q1, q2, q3.
        assert_eq!(traces[0].stage, Stage::Capturing);
        assert_eq!(states(&traces[0]), vec![0, 1, 2, 3]);
        // Reading(1): q3, q4, q5.
        assert_eq!(traces[1].stage, Stage::Reading);
        assert_eq!(states(&traces[1]), vec![3, 4, 5]);
        // Capturing(2): q3, q4, q5, q6, q7, q9.
        assert_eq!(states(&traces[2]), vec![3, 4, 5, 6, 7, 9]);
        // Reading(2): q3, q8 (with two cells: one from q6's list, one from q7's).
        assert_eq!(states(&traces[3]), vec![3, 8]);
        let q8_len = traces[3].nonempty.iter().find(|(q, _)| *q == 8).unwrap().1;
        assert_eq!(q8_len, 2);
        // Capturing(3): q3, q8, q9 (q9's list has the two closing nodes).
        assert_eq!(states(&traces[4]), vec![3, 8, 9]);
        let q9_len = traces[4].nonempty.iter().find(|(q, _)| *q == 9).unwrap().1;
        assert_eq!(q9_len, 2);
    }

    #[test]
    fn figure6_dag_shape() {
        // The DAG of Figure 6 has 8 proper nodes (plus ⊥): {x⊢,1}, {y⊢,1},
        // {x⊢y⊢,1}, {y⊢,2}, {x⊢,2}, {⊣x⊣y,2 via q3}… — concretely, Algorithm 1
        // creates one node per (variable transition, live source) pair:
        //   Capturing(1): 3 nodes, Capturing(2): 3 nodes, Capturing(3): 2 nodes.
        let eva = figure3();
        let aut = det(&eva);
        let dag = EnumerationDag::build(&aut, &Document::from("ab"));
        assert_eq!(dag.num_nodes(), 1 + 8);
        assert_eq!(dag.num_roots(), 1);
        assert_eq!(dag.count_paths(), 3);
    }

    #[test]
    fn enumeration_is_lazy_and_resumable() {
        let eva = figure3();
        let aut = det(&eva);
        let doc = Document::from("ab");
        let dag = EnumerationDag::build(&aut, &doc);
        let total = dag.collect_mappings().len();
        assert!(total > 1);
        let mut it = dag.iter();
        let first = it.next().unwrap();
        let rest: Vec<_> = it.collect();
        assert_eq!(rest.len(), total - 1);
        assert!(!rest.contains(&first));
        // for_each_mapping with early stop
        let visited = dag.for_each_mapping(|_| false);
        assert_eq!(visited, 1);
        let visited = dag.for_each_mapping(|_| true);
        assert_eq!(visited, total);
    }

    #[test]
    fn nested_captures_quadratic_output() {
        // Spanner: Σ* x{ Σ* y{ Σ* } } with x spanning a suffix-prefix structure.
        // Simpler: x captures any prefix boundary… Instead, build the spanner
        // "x captures any span, y captures any sub-span starting where x starts"
        // via a small hand-rolled deterministic seVA:
        //   x opens at any position, y opens with x, y closes anywhere later,
        //   x closes anywhere after y closes.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state(); // before x opens
        let q1 = b.add_state(); // x and y open
        let q2 = b.add_state(); // y closed
        let q3 = b.add_state(); // x closed (final)
        b.set_initial(q0);
        b.set_final(q3);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_letter(q1, any, q1);
        b.add_letter(q2, any, q2);
        b.add_letter(q3, any, q3);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x).with_open(y), q1).unwrap();
        b.add_var(q1, ms().with_close(y), q2).unwrap();
        b.add_var(q2, ms().with_close(x), q3).unwrap();
        // Also allow y and x to close at the same position as they open, etc.
        let eva = b.build().unwrap();
        let aut = DetSeva::compile(&eva).unwrap();
        for n in [0usize, 1, 2, 5, 9] {
            let doc = Document::new(vec![b'a'; n]);
            let out = enumerate_sorted(&aut, &doc);
            // The three variable transitions fire at positions i < j < k (they
            // cannot be consecutive, so at least one letter separates them):
            // x = [i, k⟩, y = [i, j⟩ with 0 ≤ i < j < k ≤ n, i.e. C(n+1, 3) outputs.
            let expected = if n >= 2 { (n + 1) * n * (n - 1) / 6 } else { 0 };
            assert_eq!(out.len(), expected, "n = {n}");
            assert_eq!(out, eva.eval_naive(&doc), "naive mismatch at n = {n}");
        }
    }

    #[test]
    fn delay_is_document_independent() {
        // Not a timing test (that lives in the benches); here we check the
        // *structural* property that the DFS stack depth during enumeration is
        // bounded by the number of variable transitions of a run, not by |d|.
        let eva = figure3();
        let aut = det(&eva);
        for n in [4usize, 16, 64, 256] {
            let text: String = std::iter::repeat_n("ab", n).collect();
            let dag = EnumerationDag::build(&aut, &Document::from(text.as_str()));
            let mut it = dag.iter();
            let mut max_stack = 0;
            while it.next().is_some() {
                max_stack = max_stack.max(it.stack.len());
            }
            // Figure 3 runs contain at most 3 variable transitions, so the stack
            // holds at most 3 node frames plus the root frame.
            assert!(max_stack <= 4, "stack depth {max_stack} at n = {n}");
        }
    }

    #[test]
    fn multiple_final_states_are_all_roots() {
        // Two final states reached through different branches:
        //   q0 -{x⊢}-> q1 -a-> q2 -{⊣x}-> f1       (x = [1,2⟩)
        //   q0 -a-> q3 -{x⊢,⊣x}-> f2                (x = empty span at position 2)
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        let f1 = b.add_state();
        let f2 = b.add_state();
        b.set_initial(q0);
        b.set_final(f1);
        b.set_final(f2);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        b.add_var(q2, ms().with_close(x), f1).unwrap();
        b.add_byte(q0, b'a', q3);
        b.add_var(q3, ms().with_open(x).with_close(x), f2).unwrap();
        let eva = b.build().unwrap();
        assert!(eva.is_sequential());
        let aut = DetSeva::compile(&eva).unwrap();
        let doc = Document::from("a");
        let out = enumerate_sorted(&aut, &doc);
        assert_eq!(out.len(), 2);
        assert_eq!(out, eva.eval_naive(&doc));
        let dag = EnumerationDag::build(&aut, &doc);
        assert_eq!(dag.num_roots(), 2);
    }

    #[test]
    fn build_with_trace_matches_plain_build() {
        let eva = figure3();
        let aut = det(&eva);
        let doc = Document::from("abab");
        let plain = EnumerationDag::build(&aut, &doc);
        let (traced, stages) = EnumerationDag::build_with_trace(&aut, &doc);
        assert_eq!(plain.collect_mappings(), traced.collect_mappings());
        assert_eq!(stages.len(), 2 * 4 + 1);
    }

    #[test]
    fn evaluator_reuse_matches_one_shot_builds() {
        let eva = figure3();
        let aut = det(&eva);
        let mut evaluator = Evaluator::new();
        for text in ["ab", "", "abab", "zz", "aabb", "ababab", "a"] {
            let doc = Document::from(text);
            let reused = evaluator.eval(&aut, &doc);
            let fresh = EnumerationDag::build(&aut, &doc);
            assert_eq!(reused.num_nodes(), fresh.num_nodes(), "nodes on {text:?}");
            assert_eq!(reused.num_cells(), fresh.num_cells(), "cells on {text:?}");
            assert_eq!(reused.num_roots(), fresh.num_roots(), "roots on {text:?}");
            assert_eq!(reused.count_paths(), fresh.count_paths(), "paths on {text:?}");
            assert_eq!(reused.collect_mappings(), fresh.collect_mappings(), "mappings on {text:?}");
        }
    }

    #[test]
    fn evaluator_retains_arena_capacity_across_documents() {
        let eva = figure3();
        let aut = det(&eva);
        let mut evaluator = Evaluator::new();
        // Warm up on the largest document of the batch.
        let big: String = std::iter::repeat_n("ab", 512).collect();
        let _ = evaluator.eval(&aut, &Document::from(big.as_str()));
        let warm_nodes = evaluator.node_capacity();
        let warm_cells = evaluator.cell_capacity();
        assert!(warm_nodes > 0 && warm_cells > 0);
        // Subsequent smaller documents must not grow (or shrink) the arenas.
        for n in [1usize, 17, 100, 512] {
            let text: String = std::iter::repeat_n("ab", n).collect();
            let view = evaluator.eval(&aut, &Document::from(text.as_str()));
            assert!(!view.is_empty());
            assert_eq!(evaluator.node_capacity(), warm_nodes, "node arena reallocated at n={n}");
            assert_eq!(evaluator.cell_capacity(), warm_cells, "cell arena reallocated at n={n}");
        }
    }

    #[test]
    fn evaluator_adapts_to_different_automata() {
        // One evaluator serving two automata of different state counts.
        let f3 = det(&figure3());
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_letter(q1, any, q1);
        b.add_letter(q2, any, q2);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x), q1).unwrap();
        b.add_var(q1, ms().with_close(x), q2).unwrap();
        let small = DetSeva::compile(&b.build().unwrap()).unwrap();

        let mut evaluator = Evaluator::new();
        for _ in 0..3 {
            let doc = Document::from("ab");
            assert_eq!(evaluator.eval(&f3, &doc).count_paths(), 3);
            let doc = Document::from("aaa");
            assert_eq!(
                evaluator.eval(&small, &doc).count_paths(),
                EnumerationDag::build(&small, &doc).count_paths()
            );
        }
    }

    #[test]
    fn eval_owned_produces_independent_dag() {
        let eva = figure3();
        let aut = det(&eva);
        let mut evaluator = Evaluator::new();
        let dag = evaluator.eval_owned(&aut, &Document::from("ab"));
        // The evaluator can immediately be reused…
        let view = evaluator.eval(&aut, &Document::from("abab"));
        // …while the owned DAG remains valid and unchanged.
        assert_eq!(dag.count_paths(), 3);
        assert_eq!(
            view.count_paths(),
            EnumerationDag::build(&aut, &Document::from("abab")).count_paths()
        );
    }
}
