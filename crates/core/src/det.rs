//! Deterministic sequential extended VA in an evaluation-friendly layout.
//!
//! The constant-delay algorithm of Section 3.2 requires its input automaton to
//! be a *deterministic* and *sequential* extended VA. [`DetSeva`] is a compiled
//! form of such an automaton optimised for the two inner loops of Algorithm 1:
//!
//! * `Reading(i)` needs `δ(q, a_i)` — provided by a dense
//!   `state × alphabet-class → state` table (bytes are first mapped to the
//!   automaton's alphabet equivalence classes);
//! * `Capturing(i)` needs `Markers_δ(q)` together with the target of each
//!   marker set — provided as a per-state slice of `(MarkerSet, target)` pairs.

use crate::byteclass::{find_next_interesting, AlphabetPartition, ClassMask, InterestMask};
use crate::document::Document;
use crate::error::SpannerError;
use crate::eva::{Eva, StateId};
use crate::markerset::MarkerSet;
use crate::sparse::SparseSet;
use crate::variable::VarRegistry;

/// Sentinel for "no transition" in the dense letter table.
const NO_STATE: u32 = u32::MAX;

/// A compiled deterministic sequential extended VA.
///
/// Build one with [`DetSeva::compile`] (validates determinism and
/// sequentiality) or [`DetSeva::compile_trusted`] (validates only determinism;
/// use when sequentiality is guaranteed by construction, e.g. for automata
/// produced by the translations of Section 4).
#[derive(Debug, Clone)]
pub struct DetSeva {
    registry: VarRegistry,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    partition: AlphabetPartition,
    /// `letter_table[row_base[q] + class]` is the target state or `NO_STATE`.
    letter_table: Vec<u32>,
    /// Premultiplied row strides: `row_base[q] = q × num_classes`, so the
    /// `Reading` inner loop performs a single add instead of a multiply.
    row_base: Vec<u32>,
    /// `Markers_δ(q)` with targets, flattened CSR-style: the transitions of
    /// state `q` are `var_pairs[var_offsets[q] .. var_offsets[q + 1]]`. One
    /// flat arena keeps the `Capturing` loop a contiguous slice walk instead
    /// of a pointer chase through per-state `Vec`s.
    var_offsets: Vec<u32>,
    /// The flat `(MarkerSet, target)` arena indexed by [`DetSeva::var_offsets`].
    var_pairs: Vec<(MarkerSet, StateId)>,
    /// Whether `Markers_δ(q)` is non-empty, one flag per state (the
    /// common-case filter of the `Capturing` loop, precomputed at compile
    /// time so the hot loops do one load instead of two offset compares).
    has_markers: Vec<bool>,
    /// `skip_table[row_base[q] + cls]`: whether a `(Capturing; Reading)` step
    /// on class `cls` is a no-op for a run living in `q` — `q` self-loops on
    /// `cls` and every extended variable transition of `q` targets a state
    /// with no letter transition on `cls`. See [`DetSeva::run_skippable`].
    skip_table: Vec<bool>,
    /// The same skip metadata as a per-state class bitset: bit `cls` of
    /// `skip_masks[q]` equals `skip_table[row_base[q] + cls]`. The scanning
    /// fast path intersects these across the live states, collapsing the
    /// per-run all-skippable test to one AND per surviving state.
    skip_masks: Vec<ClassMask>,
    /// Number of variables of the underlying registry.
    num_vars: usize,
    /// Size measure `|A|` of the source automaton (states + transitions).
    source_size: usize,
    /// Process-unique identity, drawn from the same counter as lazy-automaton
    /// and frozen-snapshot ids — the SLP memo tables key their rows by it.
    id: u64,
}

impl DetSeva {
    /// Compiles a deterministic **and** sequential eVA.
    ///
    /// Returns [`SpannerError::NotDeterministic`] or
    /// [`SpannerError::NotSequential`] if the input violates either property.
    /// The sequentiality check explores reachable variable configurations and
    /// can be expensive for automata with many variables; prefer
    /// [`DetSeva::compile_trusted`] when sequentiality is known by construction.
    pub fn compile(eva: &Eva) -> Result<Self, SpannerError> {
        eva.check_sequential()?;
        Self::compile_trusted(eva)
    }

    /// Compiles a deterministic eVA, trusting the caller that it is sequential.
    ///
    /// Determinism is always verified because Algorithm 1 silently produces
    /// duplicate outputs on non-deterministic input, which would violate the
    /// enumeration contract.
    pub fn compile_trusted(eva: &Eva) -> Result<Self, SpannerError> {
        eva.check_deterministic()?;
        let classes = eva.letter_classes();
        let partition = AlphabetPartition::from_classes(classes.iter());
        let ncls = partition.num_classes();
        let n = eva.num_states();
        // Reject hostile sizes *before* allocating the dense table: offsets
        // into it (and the premultiplied row bases) are u32, so a state/class
        // product past u32::MAX would corrupt lookups in release builds.
        // checked_mul, not saturating_mul: on 32-bit targets saturation stops
        // at usize::MAX == u32::MAX and the guard could never fire.
        if n.checked_mul(ncls).is_none_or(|p| p > u32::MAX as usize) {
            return Err(SpannerError::BudgetExceeded {
                what: "deterministic letter table (states × alphabet classes)",
                limit: u32::MAX as usize,
            });
        }
        let mut letter_table = vec![NO_STATE; n * ncls];
        for (q, t) in eva.all_letter_transitions() {
            for cls in partition.classes_intersecting(&t.class) {
                let slot = &mut letter_table[q * ncls + cls];
                debug_assert!(
                    *slot == NO_STATE || *slot == t.target as u32,
                    "determinism check should have rejected overlapping classes"
                );
                *slot = t.target as u32;
            }
        }
        let row_base: Vec<u32> = (0..n).map(|q| (q * ncls) as u32).collect();
        let mut var_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut var_pairs: Vec<(MarkerSet, StateId)> = Vec::new();
        var_offsets.push(0);
        for q in 0..n {
            var_pairs.extend(eva.var_transitions(q).iter().map(|t| (t.markers, t.target)));
            if var_pairs.len() > u32::MAX as usize {
                return Err(SpannerError::BudgetExceeded {
                    what: "extended variable transition arena",
                    limit: u32::MAX as usize,
                });
            }
            var_offsets.push(var_pairs.len() as u32);
        }
        let has_markers: Vec<bool> = (0..n).map(|q| var_offsets[q] != var_offsets[q + 1]).collect();
        // Per-(state, class) fast-path test for the run-skipping engines:
        // a `(Capturing; Reading)` step on class `cls` leaves the per-state
        // lists/counts and the active set unchanged — and creates only
        // DAG nodes unreachable from any root — iff the state self-loops on
        // `cls` and every one of its marker targets dies on `cls`. (A marker
        // target can never be another live self-looping state: it has no
        // `cls` transition while every live state loops on `cls`.)
        let mut skip_table = vec![false; n * ncls];
        let mut skip_masks = vec![ClassMask::empty(); n];
        for q in 0..n {
            let pairs = &var_pairs[var_offsets[q] as usize..var_offsets[q + 1] as usize];
            for cls in 0..ncls {
                let skip = letter_table[q * ncls + cls] == q as u32
                    && pairs.iter().all(|&(_, p)| letter_table[p * ncls + cls] == NO_STATE);
                skip_table[q * ncls + cls] = skip;
                if skip {
                    skip_masks[q].insert(cls);
                }
            }
        }
        Ok(DetSeva {
            registry: eva.registry().clone(),
            num_states: n,
            initial: eva.initial(),
            finals: (0..n).map(|q| eva.is_final(q)).collect(),
            partition,
            letter_table,
            row_base,
            var_offsets,
            var_pairs,
            has_markers,
            skip_table,
            skip_masks,
            num_vars: eva.registry().len(),
            source_size: eva.size(),
            id: crate::lazy::next_engine_id(),
        })
    }

    /// The variable registry naming the capture variables.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Process-unique identity of this compiled automaton (shared id space
    /// with lazy automata and frozen snapshots; keys the SLP memo tables).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of capture variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` is final.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// All final states.
    pub fn final_states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.num_states).filter(|&q| self.finals[q])
    }

    /// The deterministic letter transition `δ(q, byte)`, if defined.
    #[inline]
    pub fn step_letter(&self, q: StateId, byte: u8) -> Option<StateId> {
        let cls = self.partition.class_of(byte);
        let t = self.letter_table[self.row_base[q] as usize + cls];
        if t == NO_STATE {
            None
        } else {
            Some(t as usize)
        }
    }

    /// Like [`DetSeva::step_letter`] but on a pre-resolved alphabet class,
    /// letting the evaluation loop hoist `class_of(byte)` out of the per-state
    /// scan (one table lookup per byte instead of one per live state).
    #[inline]
    pub fn step_class(&self, q: StateId, cls: usize) -> Option<StateId> {
        let t = self.letter_table[self.row_base[q] as usize + cls];
        if t == NO_STATE {
            None
        } else {
            Some(t as usize)
        }
    }

    /// Maps a byte to its alphabet equivalence class (for [`DetSeva::step_class`]).
    #[inline]
    pub fn byte_class(&self, byte: u8) -> usize {
        self.partition.class_of(byte)
    }

    /// The alphabet equivalence-class partition of the compiled letter table.
    #[inline]
    pub fn partition(&self) -> &AlphabetPartition {
        &self.partition
    }

    /// Bulk-classifies a whole document into the reusable buffer `out` (one
    /// equivalence-class byte per position) — the vectorised front end of the
    /// run-skipping evaluation loops. See [`AlphabetPartition::classify_into`].
    #[inline]
    pub fn classify_document(&self, doc: &Document, out: &mut Vec<u8>) {
        self.partition.classify_into(doc.bytes(), out);
    }

    /// Whether a `(Capturing; Reading)` evaluation step on alphabet class
    /// `cls` is a **no-op** for a run currently in state `q`:
    ///
    /// * `δ(q, cls) = q` (the state self-loops, so `Reading` moves `q`'s
    ///   list/count onto itself unchanged), and
    /// * every extended variable transition of `q` targets a state with no
    ///   letter transition on `cls` (so anything `Capturing` creates is wiped
    ///   by the following `Reading` before it can reach an output).
    ///
    /// When this holds for *every* live state, an entire run of `cls`-class
    /// bytes can be consumed in one step: lists, counts, the active set and
    /// every enumerable output are provably identical to the per-byte walk.
    /// Precomputed at compile time from the letter table; one flat load.
    #[inline]
    pub fn run_skippable(&self, q: StateId, cls: usize) -> bool {
        self.skip_table[self.row_base[q] as usize + cls]
    }

    /// All classes on which a `(Capturing; Reading)` step is a no-op for a
    /// run living in `q`, as one precomputed bitset — the per-state input of
    /// the skip-mask scanning engine (bit `cls` ⇔
    /// [`DetSeva::run_skippable`]`(q, cls)`).
    #[inline]
    pub fn skip_mask(&self, q: StateId) -> ClassMask {
        self.skip_masks[q]
    }

    /// The extended variable transitions `Markers_δ(q)` (with their targets),
    /// as one contiguous slice of the flat CSR arena.
    #[inline]
    pub fn markers_from(&self, q: StateId) -> &[(MarkerSet, StateId)] {
        &self.var_pairs[self.var_offsets[q] as usize..self.var_offsets[q + 1] as usize]
    }

    /// Whether `Markers_δ(q)` is non-empty (one precomputed load — the
    /// common-case filter of the `Capturing` loop).
    #[inline]
    pub fn has_markers(&self, q: StateId) -> bool {
        self.has_markers[q]
    }

    /// Total number of extended variable transitions across all states.
    pub fn num_var_transitions(&self) -> usize {
        self.var_pairs.len()
    }

    /// Number of alphabet equivalence classes of the compiled letter table.
    pub fn num_alphabet_classes(&self) -> usize {
        self.partition.num_classes()
    }

    /// The paper's size measure `|A|` of the source automaton.
    pub fn source_size(&self) -> usize {
        self.source_size
    }

    /// Runs the letter/marker transition relation over `doc` without producing
    /// output, returning whether the document is *accepted* (i.e. whether
    /// `⟦A⟧(d)` is non-empty). Linear time, used as a cheap pre-check.
    /// One definition of the acceptance loop exists — [`accepts_generic`] —
    /// shared with the lazy engine through the zero-cost `&DetSeva` shim.
    pub fn accepts(&self, doc: &Document) -> bool {
        let mut stepper: &DetSeva = self;
        accepts_generic(&mut stepper, doc)
    }
}

/// The transition interface the evaluation engines (Algorithms 1 and 3) are
/// generic over — the seam between the *eager* [`DetSeva`], the *lazy*
/// hybrid determinization cache ([`crate::lazy::LazyDetSeva`] +
/// [`crate::lazy::LazyCache`]), and the *frozen/delta* split of the parallel
/// batch runtime ([`crate::lazy::FrozenCache`] shared read-only across
/// workers, each stepping a private [`crate::lazy::FrozenDelta`] through a
/// [`crate::lazy::FrozenStepper`]).
///
/// All stepping methods take `&mut self` because a lazy implementation fills
/// transition-table rows (and interns freshly discovered subset states) the
/// first time they are asked for; the eager implementation on `&DetSeva` is a
/// zero-cost forwarding shim. The contract mirrors `DetSeva`'s inherent
/// methods, plus two cache-management hooks:
///
/// * **growing state space** — state ids handed out by `step_class` /
///   `markers_from` may exceed [`Stepper::state_bound`] as observed at the
///   start of evaluation; engines must grow their dense per-state storage on
///   demand;
/// * **clear-and-restart eviction** — when [`Stepper::wants_maintenance`]
///   reports the cache is over budget, the engine calls
///   [`Stepper::maintain`] with its live state ids; the implementation may
///   then clear the cache, re-intern exactly those states, and rewrite each
///   id in place (order preserved). The engine remaps its own per-state
///   structures afterwards. Between maintenance points ids are stable. An
///   implementation may also rewrite only a *suffix* of the id space — the
///   frozen/delta split evicts delta-local ids while the shared frozen ids
///   below them stay fixed; the engines' remap protocol handles both.
pub trait Stepper {
    /// Current upper bound on state ids (may grow during evaluation for a
    /// lazy implementation; fixed for an eager one).
    fn state_bound(&self) -> usize;

    /// The initial state, interning it first if necessary.
    fn start_state(&mut self) -> StateId;

    /// Whether `q` is a final state.
    fn is_final(&self, q: StateId) -> bool;

    /// Maps a byte to its alphabet equivalence class.
    fn byte_class(&self, byte: u8) -> usize;

    /// The alphabet equivalence-class partition backing
    /// [`Stepper::byte_class`] / [`Stepper::classify_document`]. The scanning
    /// fast path uses it to turn the active set's skippable-class mask into a
    /// byte-level interest table
    /// (see [`crate::byteclass::AlphabetPartition::interest_mask_into`]).
    fn partition(&self) -> &AlphabetPartition;

    /// Bulk-classifies a document into the reusable buffer `out`.
    fn classify_document(&self, doc: &Document, out: &mut Vec<u8>);

    /// The deterministic letter transition on alphabet class `cls`.
    fn step_class(&mut self, q: StateId, cls: usize) -> Option<StateId>;

    /// Whether `Markers_δ(q)` is non-empty.
    fn has_markers(&mut self, q: StateId) -> bool;

    /// The extended variable transitions `Markers_δ(q)` with their targets.
    fn markers_from(&mut self, q: StateId) -> &[(MarkerSet, StateId)];

    /// Whether a `(Capturing; Reading)` step on class `cls` is a no-op for a
    /// run living in `q` (see [`DetSeva::run_skippable`]).
    fn run_skippable(&mut self, q: StateId, cls: usize) -> bool;

    /// The classes **known** to be skippable for runs living in `q`, as one
    /// bitset. The contract is conservative: a set bit must mean
    /// [`Stepper::run_skippable`]`(q, cls)` is `true`, but an implementation
    /// may under-approximate — a clear bit means "not skippable *or* not yet
    /// computed", and the engines fall back to the per-class predicate for
    /// those. The eager implementation returns the exact compile-time mask; a
    /// lazy one returns exactly its memoized-yes entries, which keeps the
    /// subset-interning sequence (and therefore state ids) identical to the
    /// class-run engine's. This is a pure read: it must never fill rows or
    /// intern states.
    fn skip_mask(&mut self, q: StateId) -> ClassMask;

    /// Whether the implementation wants a [`Stepper::maintain`] call at the
    /// next safe point (i.e. its cache exceeded the configured budget).
    /// Engines check this once per executed document position.
    #[inline]
    fn wants_maintenance(&self) -> bool {
        false
    }

    /// Clear-and-restart eviction hook. `live` holds the engine's live state
    /// ids; on eviction the implementation re-interns exactly those states
    /// into the fresh cache and rewrites each id in place (order preserved),
    /// returning `true` so the engine can remap its per-state structures.
    /// Returning `false` means ids were left untouched.
    #[inline]
    fn maintain(&mut self, live: &mut [u32]) -> bool {
        let _ = live;
        false
    }
}

/// The eager engine: a compiled [`DetSeva`] is a `Stepper` whose every lookup
/// is a precomputed flat load and whose cache hooks are no-ops (the dense
/// tables are immutable, so the `&mut` receivers never mutate).
impl Stepper for &DetSeva {
    #[inline]
    fn state_bound(&self) -> usize {
        self.num_states
    }

    #[inline]
    fn start_state(&mut self) -> StateId {
        self.initial
    }

    #[inline]
    fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    #[inline]
    fn byte_class(&self, byte: u8) -> usize {
        DetSeva::byte_class(self, byte)
    }

    #[inline]
    fn partition(&self) -> &AlphabetPartition {
        DetSeva::partition(self)
    }

    #[inline]
    fn classify_document(&self, doc: &Document, out: &mut Vec<u8>) {
        DetSeva::classify_document(self, doc, out)
    }

    #[inline]
    fn step_class(&mut self, q: StateId, cls: usize) -> Option<StateId> {
        DetSeva::step_class(self, q, cls)
    }

    #[inline]
    fn has_markers(&mut self, q: StateId) -> bool {
        DetSeva::has_markers(self, q)
    }

    #[inline]
    fn markers_from(&mut self, q: StateId) -> &[(MarkerSet, StateId)] {
        DetSeva::markers_from(self, q)
    }

    #[inline]
    fn run_skippable(&mut self, q: StateId, cls: usize) -> bool {
        DetSeva::run_skippable(self, q, cls)
    }

    #[inline]
    fn skip_mask(&mut self, q: StateId) -> ClassMask {
        DetSeva::skip_mask(self, q)
    }
}

/// The cached mask state of one skip-scanning evaluation
/// ([`crate::EngineMode::SkipScan`]), shared by the enumeration and counting
/// engines so the invalidation protocol lives in exactly one place.
///
/// It maintains three caches with distinct lifetimes:
///
/// * the **intersected skippable-class mask** of the live states, valid until
///   the active set changes ([`SkipScanner::executed`]) or state ids move
///   ([`SkipScanner::reset`]);
/// * the **live snapshot** the mask was built for — when the active set
///   cycles back to the same states (the common shape between isolated
///   matches), one slice compare revalidates the mask instead of a rebuild;
///   sound because every bit is a memoized fact about those states that
///   survives until eviction, and eviction resets everything;
/// * the **byte-level interest table**, rebuilt only when the mask actually
///   changed since it was last expanded.
///
/// The skip decision is deliberately byte-for-byte the class-run engine's:
/// a byte is skipped either because its class is already in the mask (which,
/// by the [`Stepper::skip_mask`] contract, means every live state has a
/// memoized skippable entry for it) or because the same all-live-states
/// [`Stepper::run_skippable`] test just succeeded — so lazily determinized
/// automata intern subset states in the same order under both engines.
#[derive(Debug, Clone, Default)]
pub(crate) struct SkipScanner {
    mask: ClassMask,
    mask_valid: bool,
    /// The live-state snapshot `mask` was computed for. Retained capacity
    /// across documents, like every other engine buffer.
    live: Vec<u32>,
    interest: InterestMask,
    /// The mask `interest` was expanded from (`None` = never expanded).
    interest_src: Option<ClassMask>,
}

impl SkipScanner {
    /// Drops every cached view. Call at the start of a document and after
    /// any maintenance that may rewrite state ids or forget skip memos.
    pub(crate) fn reset(&mut self) {
        self.mask_valid = false;
        self.interest_src = None;
        self.live.clear();
    }

    /// Invalidates the mask after an executed `(Capturing; Reading)` step:
    /// the active set has (potentially) changed. The interest table stays —
    /// it is keyed on the mask contents, not on validity.
    #[inline]
    pub(crate) fn executed(&mut self) {
        self.mask_valid = false;
    }

    /// Whether the byte class `cls` can be skipped for the given active set:
    /// either the (re)validated mask already contains it, or every live
    /// state passes [`Stepper::run_skippable`] — in which case the newly
    /// learned class is folded into the mask.
    #[inline]
    pub(crate) fn should_skip<S: Stepper>(
        &mut self,
        aut: &mut S,
        active: &[u32],
        cls: usize,
    ) -> bool {
        if self.mask_valid && self.mask.contains(cls) {
            return true;
        }
        if !active.iter().all(|&q| aut.run_skippable(q as usize, cls)) {
            return false;
        }
        // All live states skip this class (vacuously so once the active set
        // is empty). Revalidate the mask: if the active set cycled back to
        // exactly the states the mask was built for, one slice compare
        // replaces the rebuild.
        if !self.mask_valid {
            if self.live.as_slice() != active {
                self.mask = ClassMask::all();
                for &q in active {
                    self.mask.intersect_with(&aut.skip_mask(q as usize));
                }
                self.live.clear();
                self.live.extend_from_slice(active);
            }
            self.mask_valid = true;
        }
        self.mask.insert(cls);
        true
    }

    /// Bulk-scans to the next byte the current mask cannot skip, rebuilding
    /// the byte-level interest table first if the mask changed since its
    /// last expansion. Call only after [`SkipScanner::should_skip`] returned
    /// `true` at the current position.
    #[inline]
    pub(crate) fn next_interesting(
        &mut self,
        partition: &AlphabetPartition,
        bytes: &[u8],
        from: usize,
    ) -> Option<usize> {
        if self.interest_src != Some(self.mask) {
            partition.interest_mask_into(&self.mask, &mut self.interest);
            self.interest_src = Some(self.mask);
        }
        find_next_interesting(bytes, from, &self.interest)
    }
}

/// Runs the letter/marker transition relation of any [`Stepper`] over `doc`
/// without producing output, returning whether the document is accepted.
/// Generic backend of [`DetSeva::accepts`] and
/// [`crate::lazy::LazyDetSeva::accepts`]; honours the maintenance hooks, so a
/// lazy implementation stays within its memory budget here too.
pub(crate) fn accepts_generic<S: Stepper>(aut: &mut S, doc: &Document) -> bool {
    try_accepts_generic(aut, doc, &crate::limits::EvalLimits::none())
        .expect("unlimited acceptance run cannot trip a limit")
}

/// [`accepts_generic`] under per-document [`EvalLimits`](crate::EvalLimits):
/// every position ticks the amortized limit checker, and evictions feed the
/// thrash guard.
pub(crate) fn try_accepts_generic<S: Stepper>(
    aut: &mut S,
    doc: &Document,
    limits: &crate::limits::EvalLimits,
) -> Result<bool, SpannerError> {
    let mut checker = crate::limits::LimitChecker::start(limits);
    let mut live = SparseSet::new(aut.state_bound());
    let mut next = SparseSet::new(aut.state_bound());
    let mut maint: Vec<u32> = Vec::new();
    let init = aut.start_state();
    live.grow(init + 1);
    next.grow(init + 1);
    live.insert(init);
    for &b in doc.bytes() {
        checker.tick()?;
        maintain_set(aut, &mut live, &mut maint, &mut checker)?;
        // Capturing: add the one-step marker successors of the states live at
        // phase start (marker steps do not chain within one position).
        let snapshot = live.len();
        for idx in 0..snapshot {
            let q = live.get(idx);
            for &(_, p) in aut.markers_from(q) {
                live.grow(p + 1);
                live.insert(p);
            }
        }
        // Reading.
        let cls = aut.byte_class(b);
        next.clear();
        for idx in 0..live.len() {
            if let Some(p) = aut.step_class(live.get(idx), cls) {
                next.grow(p + 1);
                next.insert(p);
            }
        }
        std::mem::swap(&mut live, &mut next);
        if live.is_empty() {
            return Ok(false);
        }
    }
    // Final capturing step, then the final check.
    maintain_set(aut, &mut live, &mut maint, &mut checker)?;
    let snapshot = live.len();
    for idx in 0..snapshot {
        let q = live.get(idx);
        for &(_, p) in aut.markers_from(q) {
            live.grow(p + 1);
            live.insert(p);
        }
    }
    let accepted = live.iter().any(|q| aut.is_final(q));
    Ok(accepted)
}

/// Maintenance helper for [`accepts_generic`]: runs the clear-and-restart
/// eviction protocol on a bare live set (no per-state payload to remap),
/// feeding each eviction to the thrash guard.
fn maintain_set<S: Stepper>(
    aut: &mut S,
    live: &mut SparseSet,
    scratch: &mut Vec<u32>,
    checker: &mut crate::limits::LimitChecker,
) -> Result<(), SpannerError> {
    if !aut.wants_maintenance() {
        return Ok(());
    }
    scratch.clear();
    scratch.extend_from_slice(live.as_slice());
    if aut.maintain(scratch) {
        live.clear();
        for &q in scratch.iter() {
            live.grow(q as usize + 1);
            live.insert(q as usize);
        }
        checker.note_clear()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::eva::EvaBuilder;
    use crate::markerset::MarkerSet;
    use crate::variable::VarRegistry;

    /// The Figure 3 automaton (copy of the fixture in `eva::tests`).
    fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        let ms = MarkerSet::new;
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn compile_figure3() {
        let eva = figure3();
        let det = DetSeva::compile(&eva).unwrap();
        assert_eq!(det.num_states(), 10);
        assert_eq!(det.num_vars(), 2);
        assert_eq!(det.initial(), 0);
        assert!(det.is_final(9));
        assert_eq!(det.final_states().collect::<Vec<_>>(), vec![9]);
        assert_eq!(det.source_size(), eva.size());
        // Alphabet classes: 'a', 'b', everything else => 3.
        assert_eq!(det.num_alphabet_classes(), 3);
    }

    #[test]
    fn letter_table_lookup() {
        let det = DetSeva::compile(&figure3()).unwrap();
        assert_eq!(det.step_letter(1, b'a'), Some(4));
        assert_eq!(det.step_letter(1, b'b'), None);
        assert_eq!(det.step_letter(3, b'a'), Some(3));
        assert_eq!(det.step_letter(3, b'b'), Some(3));
        assert_eq!(det.step_letter(3, b'z'), None);
        assert_eq!(det.step_letter(0, b'a'), None);
    }

    #[test]
    fn markers_from_lists() {
        let det = DetSeva::compile(&figure3()).unwrap();
        assert_eq!(det.markers_from(0).len(), 3);
        assert_eq!(det.markers_from(4).len(), 1);
        assert!(det.markers_from(1).is_empty());
        let (s, p) = det.markers_from(8)[0];
        assert_eq!(p, 9);
        assert_eq!(s.closed_vars().len(), 2);
    }

    #[test]
    fn rejects_non_deterministic() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q2).unwrap();
        let eva = b.build().unwrap();
        assert!(matches!(DetSeva::compile(&eva), Err(SpannerError::NotDeterministic(_))));
        assert!(matches!(DetSeva::compile_trusted(&eva), Err(SpannerError::NotDeterministic(_))));
    }

    #[test]
    fn rejects_non_sequential() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let eva = b.build().unwrap();
        assert!(matches!(DetSeva::compile(&eva), Err(SpannerError::NotSequential(_))));
        // compile_trusted skips the sequentiality check by design.
        assert!(DetSeva::compile_trusted(&eva).is_ok());
    }

    #[test]
    fn fast_path_metadata() {
        let det = DetSeva::compile(&figure3()).unwrap();
        assert!(det.has_markers(0));
        assert!(det.has_markers(3));
        assert!(!det.has_markers(1));
        for q in 0..det.num_states() {
            assert_eq!(det.has_markers(q), !det.markers_from(q).is_empty());
        }
        let ca = det.byte_class(b'a');
        let cb = det.byte_class(b'b');
        let cz = det.byte_class(b'z');
        // q3 self-loops on both a and b, and its single marker target q9 has
        // no letter transitions at all: skippable on a/b, not on z (no loop).
        assert!(det.run_skippable(3, ca));
        assert!(det.run_skippable(3, cb));
        assert!(!det.run_skippable(3, cz));
        // q0 has no letter transitions: never skippable.
        assert!(!det.run_skippable(0, ca));
        // q1 steps a → q4 (not a self-loop): not skippable.
        assert!(!det.run_skippable(1, ca));
    }

    #[test]
    fn skip_masks_mirror_the_skip_table() {
        let det = DetSeva::compile(&figure3()).unwrap();
        for q in 0..det.num_states() {
            let mask = det.skip_mask(q);
            for cls in 0..det.num_alphabet_classes() {
                assert_eq!(mask.contains(cls), det.run_skippable(q, cls), "state {q}, class {cls}");
            }
        }
        // q3 skips on the a/b classes only.
        let mask = det.skip_mask(3);
        assert!(mask.contains(det.byte_class(b'a')));
        assert!(mask.contains(det.byte_class(b'b')));
        assert!(!mask.contains(det.byte_class(b'z')));
        assert!(det.skip_mask(0).is_empty());
    }

    #[test]
    fn classify_document_matches_byte_class() {
        let det = DetSeva::compile(&figure3()).unwrap();
        let doc = Document::from("abzabbaaz-!ab");
        let mut buf = Vec::new();
        det.classify_document(&doc, &mut buf);
        assert_eq!(buf.len(), doc.len());
        for (i, &b) in doc.bytes().iter().enumerate() {
            assert_eq!(buf[i] as usize, det.byte_class(b), "at {i}");
        }
        det.classify_document(&Document::empty(), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn accepts_matches_naive_nonemptiness() {
        let eva = figure3();
        let det = DetSeva::compile(&eva).unwrap();
        for text in ["ab", "a", "b", "", "ba", "abab", "abc"] {
            let doc = Document::from(text);
            assert_eq!(
                det.accepts(&doc),
                !eva.eval_naive(&doc).is_empty(),
                "acceptance mismatch on {text:?}"
            );
        }
    }
}
