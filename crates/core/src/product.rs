//! The three-phase reference construction of Section 3.2.1 (Figure 4).
//!
//! Before giving the optimized Algorithm 1, the paper explains the idea behind
//! it as an explicit three-step construction:
//!
//! 1. convert the document `d` into a (conceptual) extended VA `A_d` — a chain
//!    of `|d| + 1` positions;
//! 2. build the product `A × A_d`, annotating every variable transition with
//!    the document position at which it fires;
//! 3. replace letters by ε and compute the *forward ε-closure*, after which the
//!    output mappings are exactly the label sequences of paths from the initial
//!    product state to an accepting one.
//!
//! This module implements that construction literally. It materializes the
//! product (so it costs `O(|A| × |d|)` *memory*, unlike Algorithm 1's output
//! DAG which is proportional to the number of variable transitions taken) and
//! is used as an additional oracle in tests and as a pedagogical artefact: the
//! automaton of Figure 4 can be printed from it.

use crate::det::DetSeva;
use crate::document::Document;
use crate::eva::StateId;
use crate::mapping::Mapping;
use crate::markerset::MarkerSet;
use crate::span::Span;

/// A state of the annotated product automaton `A × A_d`: an automaton state
/// paired with a document position (0-based; the paper uses 1-based positions).
pub type ProductState = (StateId, usize);

/// An annotated variable transition of the product: `(source, (S, i), target)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotatedTransition {
    /// Source product state.
    pub from: ProductState,
    /// The marker set fired by the transition.
    pub markers: MarkerSet,
    /// The document position (0-based) at which it fires.
    pub pos: usize,
    /// Target product state.
    pub to: ProductState,
}

/// The annotated product automaton of phase 2 together with its forward
/// ε-closure (phase 3).
#[derive(Debug, Clone)]
pub struct AnnotatedProduct {
    initial: ProductState,
    /// Accepting product states: `(q, |d|)` with `q` final.
    accepting: Vec<ProductState>,
    /// Letter edges of the product (before they are replaced by ε).
    letter_edges: Vec<(ProductState, u8, ProductState)>,
    /// Variable transitions annotated with their positions.
    annotated: Vec<AnnotatedTransition>,
    /// The forward ε-closure: variable transitions whose targets have been
    /// advanced across letter (ε) edges. Contains `annotated` as a subset.
    closure: Vec<AnnotatedTransition>,
}

impl AnnotatedProduct {
    /// Builds the annotated product of a deterministic sequential eVA and a
    /// document, then computes its forward ε-closure (Section 3.2.1).
    pub fn build(aut: &DetSeva, doc: &Document) -> AnnotatedProduct {
        let n = doc.len();
        let initial = (aut.initial(), 0usize);

        // Reachable product states, discovered by forward exploration.
        let mut reachable: Vec<Vec<bool>> = vec![vec![false; n + 1]; aut.num_states()];
        reachable[aut.initial()][0] = true;
        let mut stack: Vec<ProductState> = vec![initial];
        let mut letter_edges = Vec::new();
        let mut annotated = Vec::new();
        while let Some((q, pos)) = stack.pop() {
            // Variable transitions stay at the same position.
            for &(markers, p) in aut.markers_from(q) {
                annotated.push(AnnotatedTransition { from: (q, pos), markers, pos, to: (p, pos) });
                if !reachable[p][pos] {
                    reachable[p][pos] = true;
                    stack.push((p, pos));
                }
            }
            // Letter transitions advance the position.
            if pos < n {
                let byte = doc.bytes()[pos];
                if let Some(p) = aut.step_letter(q, byte) {
                    letter_edges.push(((q, pos), byte, (p, pos + 1)));
                    if !reachable[p][pos + 1] {
                        reachable[p][pos + 1] = true;
                        stack.push((p, pos + 1));
                    }
                }
            }
        }
        // Note: the exploration above allows two variable transitions in a row,
        // which a run of an eVA cannot do; such spurious product transitions are
        // harmless because the ε-closure below only chains a variable transition
        // with *letter* edges, and enumeration only follows closure edges.

        // Forward ε-closure: for every annotated transition ((q,pos),(S,i),(p,pos)),
        // add a transition to every state reachable from (p,pos) using only
        // letter (ε) edges.
        let eps_next: std::collections::HashMap<ProductState, ProductState> =
            letter_edges.iter().map(|&(from, _, to)| (from, to)).collect();
        let mut closure = Vec::new();
        for t in &annotated {
            closure.push(*t);
            let mut cur = t.to;
            while let Some(&next) = eps_next.get(&cur) {
                cur = next;
                closure.push(AnnotatedTransition {
                    from: t.from,
                    markers: t.markers,
                    pos: t.pos,
                    to: cur,
                });
            }
        }
        // The initial state also reaches states through ε edges alone (runs whose
        // first variable transition happens later); model this with a pseudo
        // transition carrying the empty marker set so that enumeration can start
        // anywhere along the initial ε-chain.
        let mut cur = initial;
        while let Some(&next) = eps_next.get(&cur) {
            cur = next;
            closure.push(AnnotatedTransition {
                from: initial,
                markers: MarkerSet::new(),
                pos: 0,
                to: cur,
            });
        }

        let accepting = (0..aut.num_states())
            .filter(|&q| aut.is_final(q) && reachable[q][n])
            .map(|q| (q, n))
            .collect();

        AnnotatedProduct { initial, accepting, letter_edges, annotated, closure }
    }

    /// The initial product state `(q0, 0)`.
    pub fn initial(&self) -> ProductState {
        self.initial
    }

    /// The accepting product states.
    pub fn accepting(&self) -> &[ProductState] {
        &self.accepting
    }

    /// The letter edges of the product (phase 2, before ε-replacement).
    pub fn letter_edges(&self) -> &[(ProductState, u8, ProductState)] {
        &self.letter_edges
    }

    /// The annotated variable transitions of the product (phase 2).
    pub fn annotated_transitions(&self) -> &[AnnotatedTransition] {
        &self.annotated
    }

    /// The forward ε-closure transitions (phase 3).
    pub fn closure_transitions(&self) -> &[AnnotatedTransition] {
        &self.closure
    }

    /// Enumerates the output mappings by walking the ε-closure backwards from
    /// the accepting states, exactly as described at the end of Section 3.2.1.
    ///
    /// This is quadratic-ish and materializes everything; it exists to
    /// cross-check Algorithm 1, not to replace it.
    pub fn enumerate(&self) -> Vec<Mapping> {
        // Index closure transitions by target state.
        let mut by_target: std::collections::HashMap<ProductState, Vec<&AnnotatedTransition>> =
            std::collections::HashMap::new();
        for t in &self.closure {
            by_target.entry(t.to).or_default().push(t);
        }
        let mut out = Vec::new();
        for &acc in &self.accepting {
            let mut path: Vec<(MarkerSet, usize)> = Vec::new();
            self.walk_back(acc, None, &by_target, &mut path, &mut out);
        }
        out
    }

    /// Walks the ε-closure backwards. `limit` is the firing position of the
    /// variable transition taken just *after* `state` in the run (if any):
    /// consecutive variable transitions of a run are separated by at least one
    /// letter, so an incoming transition must fire at a strictly smaller
    /// position than `limit`.
    fn walk_back(
        &self,
        state: ProductState,
        limit: Option<usize>,
        by_target: &std::collections::HashMap<ProductState, Vec<&AnnotatedTransition>>,
        path: &mut Vec<(MarkerSet, usize)>,
        out: &mut Vec<Mapping>,
    ) {
        if state == self.initial {
            out.push(mapping_from_reverse_path(path));
            // The initial state may additionally be the target of closure
            // transitions; a run cannot contain anything before its start, and
            // any such extension is pruned by the position limit below.
        }
        if let Some(incoming) = by_target.get(&state) {
            for t in incoming {
                if t.markers.is_empty() {
                    // Pseudo transition modelling the initial ε-chain: it fires
                    // no markers, so it may only terminate a path at the initial
                    // state, never extend it further.
                    if t.from == self.initial {
                        out.push(mapping_from_reverse_path(path));
                    }
                    continue;
                }
                if let Some(limit) = limit {
                    if t.pos >= limit {
                        continue; // would put two variable transitions at one position
                    }
                }
                path.push((t.markers, t.pos));
                self.walk_back(t.from, Some(t.pos), by_target, path, out);
                path.pop();
            }
        }
    }
}

fn mapping_from_reverse_path(path: &[(MarkerSet, usize)]) -> Mapping {
    // Path entries run from the last variable transition back to the first.
    let mut end_pos = [0usize; crate::variable::MAX_VARIABLES];
    let mut mapping = Mapping::new();
    for &(markers, pos) in path {
        for v in markers.closed_vars().iter() {
            end_pos[v.index()] = pos;
        }
        for v in markers.opened_vars().iter() {
            mapping.insert(v, Span::new_unchecked(pos, end_pos[v.index()]));
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::enumerate::EnumerationDag;
    use crate::eva::{Eva, EvaBuilder};
    use crate::mapping::dedup_mappings;
    use crate::variable::VarRegistry;

    /// The Figure 3 automaton.
    fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        let ms = MarkerSet::new;
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure4_product_shape() {
        // The top half of Figure 4: the annotated product for Figure 3 over "ab"
        // contains, among others, the transition ((q0,p1), ({x⊢}, 1), (q1,p1)).
        let aut = DetSeva::compile(&figure3()).unwrap();
        let doc = Document::from("ab");
        let product = AnnotatedProduct::build(&aut, &doc);
        assert_eq!(product.initial(), (0, 0));
        assert_eq!(product.accepting(), &[(9, 2)]);
        let has = |from: ProductState, pos: usize, to: ProductState| {
            product
                .annotated_transitions()
                .iter()
                .any(|t| t.from == from && t.pos == pos && t.to == to)
        };
        assert!(has((0, 0), 0, (1, 0)));
        assert!(has((0, 0), 0, (2, 0)));
        assert!(has((0, 0), 0, (3, 0)));
        assert!(has((4, 1), 1, (6, 1)));
        assert!(has((8, 2), 2, (9, 2)));
        // The bottom half of Figure 4: the ε-closure contains the transition
        // from (q0,p1) that lands in (q4,p2) — {x⊢} fired at position 1 and the
        // letter `a` skipped over.
        assert!(product
            .closure_transitions()
            .iter()
            .any(|t| t.from == (0, 0) && t.to == (4, 1) && t.pos == 0));
    }

    #[test]
    fn reference_enumeration_matches_algorithm_1() {
        let eva = figure3();
        let aut = DetSeva::compile(&eva).unwrap();
        for text in ["ab", "a", "abab", "aabb", ""] {
            let doc = Document::from(text);
            let product = AnnotatedProduct::build(&aut, &doc);
            let mut reference = product.enumerate();
            dedup_mappings(&mut reference);
            let dag = EnumerationDag::build(&aut, &doc);
            let mut fast = dag.collect_mappings();
            dedup_mappings(&mut fast);
            assert_eq!(reference, fast, "on {text:?}");
            assert_eq!(reference, eva.eval_naive(&doc), "oracle on {text:?}");
        }
    }

    #[test]
    fn product_size_is_linear_in_the_document() {
        let aut = DetSeva::compile(&figure3()).unwrap();
        let mut previous = 0usize;
        for n in [8usize, 16, 32] {
            let text: String = "ab".repeat(n);
            let doc = Document::from(text.as_str());
            let product = AnnotatedProduct::build(&aut, &doc);
            let size = product.annotated_transitions().len() + product.letter_edges().len();
            assert!(size >= previous);
            // Linear in |d|: at most (#transitions of A) per position.
            assert!(size <= aut.source_size() * (doc.len() + 1));
            previous = size;
        }
    }
}
