//! Capture variables and variable markers.
//!
//! Spanners assign spans to *variables*. Inside an automaton we refer to
//! variables by a dense index ([`VarId`]); a [`VarRegistry`] maps between
//! human-readable names (as written in regex formulas, e.g. `email`) and those
//! indices. Opening and closing a variable during a run is expressed through
//! [`Marker`]s: `x⊢` (open) and `⊣x` (close).

use crate::error::SpannerError;
use std::collections::HashMap;
use std::fmt;

/// Maximum number of capture variables supported per automaton.
///
/// Marker sets are packed into a `u64` (one open bit and one close bit per
/// variable), so a single automaton can use at most 32 variables. This is far
/// beyond what rule-based information extraction tasks use in practice and
/// beyond every example in the paper; exceeding it yields
/// [`SpannerError::TooManyVariables`].
pub const MAX_VARIABLES: usize = 32;

/// A dense variable identifier, valid within one [`VarRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u8);

impl VarId {
    /// Creates a variable id from a raw index.
    ///
    /// Returns an error if `index >= MAX_VARIABLES`.
    pub fn new(index: usize) -> Result<Self, SpannerError> {
        if index >= MAX_VARIABLES {
            return Err(SpannerError::TooManyVariables {
                requested: index + 1,
                limit: MAX_VARIABLES,
            });
        }
        Ok(VarId(index as u8))
    }

    /// The raw index of this variable.
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A variable marker: the opening marker `x⊢` or the closing marker `⊣x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Marker {
    /// `x⊢`: the variable starts capturing at the current position.
    Open(VarId),
    /// `⊣x`: the variable stops capturing at the current position.
    Close(VarId),
}

impl Marker {
    /// The variable this marker refers to.
    #[inline]
    pub fn variable(&self) -> VarId {
        match self {
            Marker::Open(v) | Marker::Close(v) => *v,
        }
    }

    /// Whether this is an opening marker.
    #[inline]
    pub fn is_open(&self) -> bool {
        matches!(self, Marker::Open(_))
    }

    /// Whether this is a closing marker.
    #[inline]
    pub fn is_close(&self) -> bool {
        matches!(self, Marker::Close(_))
    }
}

impl fmt::Display for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Marker::Open(v) => write!(f, "{v}⊢"),
            Marker::Close(v) => write!(f, "⊣{v}"),
        }
    }
}

/// A registry interning variable names to dense [`VarId`]s.
///
/// Registries are cheap to clone and are shared between an automaton and the
/// mappings it produces so that results can be rendered with their original
/// variable names.
///
/// ```
/// use spanners_core::VarRegistry;
/// let mut reg = VarRegistry::new();
/// let name = reg.intern("name").unwrap();
/// let email = reg.intern("email").unwrap();
/// assert_ne!(name, email);
/// assert_eq!(reg.intern("name").unwrap(), name); // idempotent
/// assert_eq!(reg.name(name), "name");
/// assert_eq!(reg.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarRegistry {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        VarRegistry::default()
    }

    /// Creates a registry with `n` anonymous variables named `x0 .. x{n-1}`.
    pub fn with_anonymous(n: usize) -> Result<Self, SpannerError> {
        let mut reg = VarRegistry::new();
        for i in 0..n {
            reg.intern(&format!("x{i}"))?;
        }
        Ok(reg)
    }

    /// Interns a variable name, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> Result<VarId, SpannerError> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        let id = VarId::new(self.names.len())?;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a variable by name without interning it.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    /// Panics if the id does not belong to this registry.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of variables registered.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (VarId(i as u8), n.as_str()))
    }

    /// All variable ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(|i| VarId(i as u8))
    }

    /// Merges another registry into this one, returning the id remapping
    /// `other id -> self id` (by name). Used when joining spanners that were
    /// compiled independently.
    pub fn merge(&mut self, other: &VarRegistry) -> Result<Vec<VarId>, SpannerError> {
        other.names.iter().map(|n| self.intern(n)).collect()
    }

    /// Merges another registry into this one with every name prefixed
    /// `"{prefix}.{name}"`, returning the remapping `other id -> self id`.
    ///
    /// This is the multi-tenant namespace merge: two tenants may both capture
    /// a variable called `x`, and prefixing with the tenant id keeps
    /// `tenant0.x` and `tenant1.x` distinct in the shared automaton's
    /// registry, so demultiplexed results never collide.
    pub fn merge_prefixed(
        &mut self,
        prefix: &str,
        other: &VarRegistry,
    ) -> Result<Vec<VarId>, SpannerError> {
        other.names.iter().map(|n| self.intern(&format!("{prefix}.{n}"))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_limit() {
        assert!(VarId::new(0).is_ok());
        assert!(VarId::new(31).is_ok());
        let err = VarId::new(32).unwrap_err();
        assert_eq!(err, SpannerError::TooManyVariables { requested: 33, limit: 32 });
    }

    #[test]
    fn marker_accessors() {
        let x = VarId::new(3).unwrap();
        assert!(Marker::Open(x).is_open());
        assert!(!Marker::Open(x).is_close());
        assert!(Marker::Close(x).is_close());
        assert_eq!(Marker::Open(x).variable(), x);
        assert_eq!(Marker::Close(x).variable(), x);
    }

    #[test]
    fn marker_display() {
        let x = VarId::new(1).unwrap();
        assert_eq!(Marker::Open(x).to_string(), "x1⊢");
        assert_eq!(Marker::Close(x).to_string(), "⊣x1");
    }

    #[test]
    fn registry_intern_is_idempotent() {
        let mut reg = VarRegistry::new();
        let a = reg.intern("a").unwrap();
        let b = reg.intern("b").unwrap();
        assert_eq!(reg.intern("a").unwrap(), a);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a), "a");
        assert_eq!(reg.name(b), "b");
        assert_eq!(reg.get("b"), Some(b));
        assert_eq!(reg.get("c"), None);
    }

    #[test]
    fn registry_limit() {
        let mut reg = VarRegistry::new();
        for i in 0..32 {
            reg.intern(&format!("v{i}")).unwrap();
        }
        assert!(matches!(reg.intern("overflow"), Err(SpannerError::TooManyVariables { .. })));
        // existing names still fine
        assert!(reg.intern("v0").is_ok());
    }

    #[test]
    fn with_anonymous() {
        let reg = VarRegistry::with_anonymous(3).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.name(VarId::new(2).unwrap()), "x2");
        assert!(VarRegistry::with_anonymous(33).is_err());
    }

    #[test]
    fn iter_in_order() {
        let mut reg = VarRegistry::new();
        reg.intern("name").unwrap();
        reg.intern("email").unwrap();
        let pairs: Vec<_> = reg.iter().map(|(id, n)| (id.index(), n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "name".to_string()), (1, "email".to_string())]);
        let ids: Vec<_> = reg.ids().collect();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn merge_maps_by_name() {
        let mut a = VarRegistry::new();
        a.intern("x").unwrap();
        a.intern("y").unwrap();
        let mut b = VarRegistry::new();
        b.intern("y").unwrap();
        b.intern("z").unwrap();
        let remap = a.merge(&b).unwrap();
        // b's y (id 0) maps to a's y (id 1); b's z (id 1) becomes a's new id 2.
        assert_eq!(remap[0], a.get("y").unwrap());
        assert_eq!(remap[1], a.get("z").unwrap());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_var_id() {
        assert_eq!(VarId::new(7).unwrap().to_string(), "x7");
    }
}
