//! Algorithm 3 of the paper: counting the number of output mappings.
//!
//! Theorem 5.1 states that for a deterministic sequential eVA `A` and a
//! document `d`, `|⟦A⟧(d)|` can be computed in time `O(|A| × |d|)`. The
//! algorithm mirrors Algorithm 1 but, instead of the per-state lists that
//! encode the mappings, it keeps a per-state *count* of partial runs: because
//! `A` is sequential every partial run encodes a valid partial mapping, and
//! because `A` is deterministic different runs encode different mappings, so
//! the run counts equal the mapping counts.
//!
//! Like the enumeration engine, counting comes in two forms: the reusable
//! [`CountCache`] (zero steady-state allocation, skip-mask scanning fast
//! path — the serving configuration) and the one-shot [`count_mappings`]
//! convenience wrapper. Run skipping leaves counts unchanged for the same reason it
//! leaves the enumeration lists unchanged: on a skippable class every live
//! state's count moves onto itself and every capture attempt is zeroed by the
//! following `Reading` phase before it can reach a final state.

use crate::byteclass::ClassRuns;
use crate::det::{DetSeva, SkipScanner, Stepper};
use crate::document::Document;
use crate::enumerate::EngineMode;
use crate::error::SpannerError;
use crate::lazy::{FrozenCache, FrozenDelta, FrozenStepper, LazyCache, LazyDetSeva, LazyStepper};
use crate::limits::{EvalLimits, LimitChecker};
use crate::sparse::SparseSet;

/// Numeric types usable as mapping counters.
///
/// The number of output mappings can be as large as `Θ(|d|^{2ℓ})` for a spanner
/// with `ℓ` variables, so callers choose the trade-off: exact checked `u64`,
/// exact wide `u128`, or approximate `f64` (never overflows, loses precision
/// beyond 2⁵³).
pub trait Counter: Clone {
    /// The additive identity.
    fn zero() -> Self;
    /// The count of a single run.
    fn one() -> Self;
    /// Checked addition; `None` signals overflow.
    fn checked_add(&self, other: &Self) -> Option<Self>;
    /// Whether the counter is zero.
    fn is_zero(&self) -> bool;
}

impl Counter for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn checked_add(&self, other: &Self) -> Option<Self> {
        u64::checked_add(*self, *other)
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
}

impl Counter for u128 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn checked_add(&self, other: &Self) -> Option<Self> {
        u128::checked_add(*self, *other)
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
}

impl Counter for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn checked_add(&self, other: &Self) -> Option<Self> {
        Some(self + other)
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

/// Counts `|⟦A⟧(d)|` for a deterministic sequential eVA in `O(|A| × |d|)` time
/// and `O(|Q|)` space (Algorithm 3 / Theorem 5.1).
///
/// Returns [`SpannerError::CountOverflow`] if the chosen [`Counter`] overflows.
///
/// ```
/// # use spanners_core::{EvaBuilder, DetSeva, ByteClass, MarkerSet, VarRegistry, Document};
/// # use spanners_core::count_mappings;
/// // x captures every span of the document: Σ* x{Σ*} Σ*
/// let mut reg = VarRegistry::new();
/// let x = reg.intern("x").unwrap();
/// let mut b = EvaBuilder::new(reg);
/// let q0 = b.add_state();
/// let q1 = b.add_state();
/// let q2 = b.add_state();
/// b.set_initial(q0);
/// b.set_final(q2);
/// let any = ByteClass::any();
/// b.add_letter(q0, any, q0);
/// b.add_letter(q1, any, q1);
/// b.add_letter(q2, any, q2);
/// b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
/// let aut = DetSeva::compile(&b.build().unwrap()).unwrap();
/// // spans [i, j⟩ with i < j (markers cannot be adjacent) … on "abcd" there are C(5,2) = 10.
/// let n: u64 = count_mappings(&aut, &Document::from("abcd")).unwrap();
/// assert_eq!(n, 10);
/// ```
pub fn count_mappings<C: Counter>(aut: &DetSeva, doc: &Document) -> Result<C, SpannerError> {
    CountCache::new().count(aut, doc)
}

/// The reusable engine behind Algorithm 3 — the counting mirror of
/// [`crate::Evaluator`].
///
/// A `CountCache` owns the per-state count vectors, the sparse active sets,
/// and the byte-class buffer of the class-run fast path, all retained across
/// [`CountCache::count`] calls: in steady state (same automaton, comparable
/// document sizes) counting performs **zero heap allocation**. The one-shot
/// [`count_mappings`] wrapper creates a fresh cache per call.
///
/// ```
/// # use spanners_core::{EvaBuilder, DetSeva, ByteClass, MarkerSet, VarRegistry, Document};
/// # use spanners_core::CountCache;
/// # let mut reg = VarRegistry::new();
/// # let x = reg.intern("x").unwrap();
/// # let mut b = EvaBuilder::new(reg);
/// # let q0 = b.add_state();
/// # let q1 = b.add_state();
/// # let q2 = b.add_state();
/// # b.set_initial(q0);
/// # b.set_final(q2);
/// # let any = ByteClass::any();
/// # b.add_letter(q0, any, q0);
/// # b.add_letter(q1, any, q1);
/// # b.add_letter(q2, any, q2);
/// # b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// # b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
/// # let aut = DetSeva::compile(&b.build().unwrap()).unwrap();
/// let mut cache = CountCache::<u64>::new();
/// for text in ["stream of", "many documents", "served by one cache"] {
///     let n = cache.count(&aut, &Document::from(text)).unwrap();
///     assert!(n > 0);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CountCache<C: Counter> {
    /// N[q] = number of partial runs currently ending in q. Dense storage, but
    /// both phases walk only the sparse set of states with a non-zero count —
    /// the same active-state organisation as the enumeration engine.
    counts: Vec<C>,
    /// Phase-start snapshots of `counts` for the active states.
    old: Vec<C>,
    /// States with a (possibly) non-zero count in the current phase.
    active: SparseSet,
    /// The active set under construction during a `Reading` phase.
    next_active: SparseSet,
    /// Reusable byte → alphabet-class buffer of the class-run fast path.
    class_buf: Vec<u8>,
    /// The cached mask state of the scanning engine (mirrors
    /// `Evaluator::scanner`; the protocol lives in `SkipScanner`).
    scanner: SkipScanner,
    /// Live-id scratch of the clear-and-restart eviction protocol (lazy
    /// automata only; see [`Stepper::maintain`]).
    maint_ids: Vec<u32>,
    /// The live states' counts, saved across an eviction's id remap.
    maint_counts: Vec<C>,
    /// The lazy determinization cache of the automaton last counted with
    /// [`CountCache::count_lazy`], tagged with the automaton's identity
    /// (mirrors [`crate::Evaluator`]'s embedded cache).
    lazy: Option<(u64, LazyCache)>,
    /// The per-worker overflow delta of the [`FrozenCache`] last counted
    /// with [`CountCache::count_frozen`], tagged with the snapshot's
    /// identity (mirrors [`crate::Evaluator`]'s embedded delta).
    frozen: Option<(u64, FrozenDelta)>,
    /// Which inner loop drives Algorithm 3.
    mode: EngineMode,
    /// Per-document resource limits applied by every count (default: none).
    limits: EvalLimits,
    /// The per-run limit enforcement state, restarted by every count.
    checker: LimitChecker,
    /// One-off lazy-cache/delta byte-budget override (mirrors
    /// [`crate::Evaluator::set_cache_budget_override`]).
    budget_override: Option<usize>,
}

impl<C: Counter> Default for CountCache<C> {
    fn default() -> Self {
        CountCache {
            counts: Vec::new(),
            old: Vec::new(),
            active: SparseSet::new(0),
            next_active: SparseSet::new(0),
            class_buf: Vec::new(),
            scanner: SkipScanner::default(),
            maint_ids: Vec::new(),
            maint_counts: Vec::new(),
            lazy: None,
            frozen: None,
            mode: EngineMode::default(),
            limits: EvalLimits::none(),
            checker: LimitChecker::unlimited(),
            budget_override: None,
        }
    }
}

impl<C: Counter> CountCache<C> {
    /// A fresh cache using the default [`EngineMode::SkipScan`] loop.
    /// Buffers grow on first use and are retained across calls.
    pub fn new() -> Self {
        CountCache::default()
    }

    /// A fresh cache driving Algorithm 3 with the given engine.
    pub fn with_mode(mode: EngineMode) -> Self {
        CountCache { mode, ..CountCache::default() }
    }

    /// The engine mode this cache runs.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Switches the engine mode for subsequent [`CountCache::count`] calls.
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// The per-document resource limits applied by every count.
    pub fn limits(&self) -> EvalLimits {
        self.limits
    }

    /// Sets per-document resource limits for subsequent counts. Counting
    /// entry points already return `Result`, so tripped limits surface as
    /// ordinary errors ([`SpannerError::StepBudgetExceeded`],
    /// [`SpannerError::DeadlineExceeded`], [`SpannerError::BudgetExceeded`]).
    pub fn set_limits(&mut self, limits: EvalLimits) {
        self.limits = limits;
    }

    /// Overrides the lazy-cache/frozen-delta byte budget for subsequent
    /// counts (mirrors [`crate::Evaluator::set_cache_budget_override`]).
    pub fn set_cache_budget_override(&mut self, budget: Option<usize>) {
        self.budget_override = budget;
    }

    /// The active lazy-cache/frozen-delta byte-budget override, if any.
    pub fn cache_budget_override(&self) -> Option<usize> {
        self.budget_override
    }

    /// Current capacity of the per-state count vector (diagnostics: a warm
    /// cache keeps its capacity across documents instead of reallocating).
    pub fn counts_capacity(&self) -> usize {
        self.counts.capacity()
    }

    /// Current capacity of the byte-class buffer.
    pub fn class_buf_capacity(&self) -> usize {
        self.class_buf.capacity()
    }

    /// Counts `|⟦A⟧(d)|` (Algorithm 3 / Theorem 5.1), reusing all previously
    /// allocated capacity. Returns [`SpannerError::CountOverflow`] if the
    /// counter type overflows.
    pub fn count(&mut self, aut: &DetSeva, doc: &Document) -> Result<C, SpannerError> {
        let mut stepper: &DetSeva = aut;
        self.count_run(&mut stepper, doc)
    }

    /// Like [`CountCache::count`] but over a **lazily determinized**
    /// automaton, using (and retaining, warm) the cache embedded in this
    /// `CountCache` — the Algorithm 3 mirror of
    /// [`crate::Evaluator::eval_lazy`].
    pub fn count_lazy(&mut self, aut: &LazyDetSeva, doc: &Document) -> Result<C, SpannerError> {
        let mut cache = match self.lazy.take() {
            Some((id, cache)) if id == aut.id() => cache,
            _ => aut.create_cache(),
        };
        cache.bind(aut);
        cache.set_budget(self.budget_override.unwrap_or(aut.config().memory_budget));
        let mut stepper = LazyStepper::new(aut, &mut cache);
        let result = self.count_run(&mut stepper, doc);
        self.lazy = Some((aut.id(), cache));
        result
    }

    /// The embedded lazy determinization cache, if a lazy automaton has been
    /// counted (diagnostics; mirrors [`crate::Evaluator::lazy_cache`]).
    pub fn lazy_cache(&self) -> Option<&LazyCache> {
        self.lazy.as_ref().map(|(_, c)| c)
    }

    /// Like [`CountCache::count_lazy`] but stepping through a **shared
    /// frozen snapshot** with this cache's private, per-document
    /// [`FrozenDelta`] — the Algorithm 3 mirror of
    /// [`crate::Evaluator::eval_frozen`]. The count is a pure function of
    /// `(frozen, doc)`, identical across workers and thread counts.
    pub fn count_frozen(
        &mut self,
        aut: &LazyDetSeva,
        frozen: &FrozenCache,
        doc: &Document,
    ) -> Result<C, SpannerError> {
        let mut delta = self.take_frozen_delta(frozen);
        delta.bind(frozen, aut);
        delta.set_budget(self.budget_override.unwrap_or(aut.config().memory_budget));
        let result = {
            let mut stepper = FrozenStepper::new(aut, frozen, &mut delta);
            self.count_run(&mut stepper, doc)
        };
        self.frozen = Some((frozen.id(), delta));
        result
    }

    /// Takes the embedded delta out for a count against `frozen`, replacing
    /// it with a fresh one if it belonged to a different snapshot (mirrors
    /// `Evaluator::take_frozen_delta`).
    fn take_frozen_delta(&mut self, frozen: &FrozenCache) -> FrozenDelta {
        match self.frozen.take() {
            Some((id, delta)) if id == frozen.id() => delta,
            _ => FrozenDelta::new(),
        }
    }

    /// The embedded frozen-overflow delta, if a frozen snapshot has been
    /// counted (diagnostics; mirrors [`crate::Evaluator::frozen_delta`]).
    pub fn frozen_delta(&self) -> Option<&FrozenDelta> {
        self.frozen.as_ref().map(|(_, d)| d)
    }

    /// Bytes currently held by this cache's **governed** memory (mirrors
    /// [`crate::Evaluator::governed_bytes`]): the embedded lazy
    /// determinization cache plus the frozen-overflow delta.
    pub fn governed_bytes(&self) -> usize {
        let lazy = self.lazy.as_ref().map_or(0, |(_, c)| c.memory_bytes());
        let frozen = self.frozen.as_ref().map_or(0, |(_, d)| d.memory_bytes());
        lazy + frozen
    }

    /// Sheds this cache's governed memory for the global governor (mirrors
    /// [`crate::Evaluator::shed_cold_memory`]); returns the bytes freed.
    pub fn shed_cold_memory(&mut self) -> usize {
        let mut freed = 0;
        if let Some((_, cache)) = self.lazy.take() {
            freed += cache.memory_bytes();
        }
        if let Some((_, delta)) = self.frozen.as_mut() {
            freed += delta.shed();
        }
        freed
    }

    /// The Algorithm 3 loop, generic over the eager/lazy [`Stepper`] seam.
    fn count_run<S: Stepper>(&mut self, aut: &mut S, doc: &Document) -> Result<C, SpannerError> {
        self.checker = LimitChecker::start(&self.limits);
        let n_states = aut.state_bound();
        // Reset retained storage without releasing capacity; `ensure_state`
        // grows it when a lazy stepper discovers states mid-document.
        self.counts.clear();
        self.counts.resize(n_states, C::zero());
        self.old.clear();
        self.old.resize(n_states, C::zero());
        self.active.reset(n_states);
        self.next_active.reset(n_states);
        let init = aut.start_state();
        self.ensure_state(init);
        self.counts[init] = C::one();
        self.active.insert(init);

        // Invariant: `active` ⊇ the states with a non-zero count, and
        // counts[q] is zero for every state outside `active`.
        match self.mode {
            EngineMode::PerByte => {
                let bytes = doc.bytes();
                for i in 0..=bytes.len() {
                    self.checker.tick()?;
                    self.maintenance_point(aut)?;
                    self.capture_phase(aut)?;
                    if i == bytes.len() {
                        break;
                    }
                    let cls = aut.byte_class(bytes[i]);
                    self.read_phase(aut, cls)?;
                }
            }
            EngineMode::ClassRuns => {
                // Run-skipping loop: identical counts by the argument in the
                // module docs — a skippable class moves every live count onto
                // itself and zeroes every capture attempt at the next Reading.
                let mut class_buf = std::mem::take(&mut self.class_buf);
                aut.classify_document(doc, &mut class_buf);
                let result = self.count_class_runs(aut, &class_buf);
                self.class_buf = class_buf;
                result?;
            }
            EngineMode::SkipScan => {
                // Skip-mask scanning (the counting mirror of
                // `Evaluator::run_skip_scan`; the mask/interest caching and
                // invalidation protocol is shared via `SkipScanner`): jump
                // straight to the next interesting byte — same skip
                // decisions as the class-run loop, per-interesting-byte cost
                // model.
                let bytes = doc.bytes();
                self.scanner.reset();
                let mut i = 0usize;
                while i < bytes.len() {
                    if aut.wants_maintenance() {
                        self.maintenance_point(aut)?;
                        self.scanner.reset();
                    }
                    let cls = aut.byte_class(bytes[i]);
                    if self.scanner.should_skip(aut, self.active.as_slice(), cls) {
                        self.checker.tick_jump()?;
                        match self.scanner.next_interesting(aut.partition(), bytes, i + 1) {
                            Some(j) => i = j,
                            None => break,
                        }
                        continue;
                    }
                    self.checker.tick()?;
                    self.capture_phase(aut)?;
                    self.read_phase(aut, cls)?;
                    self.scanner.executed();
                    i += 1;
                    if self.active.is_empty() {
                        break;
                    }
                }
                self.maintenance_point(aut)?;
                self.capture_phase(aut)?;
            }
        }

        let mut total = C::zero();
        for idx in 0..self.active.len() {
            let q = self.active.get(idx);
            if aut.is_final(q) {
                total = total.checked_add(&self.counts[q]).ok_or(SpannerError::CountOverflow)?;
            }
        }
        Ok(total)
    }

    /// The class-run counting loop, split out so `count_run` can restore the
    /// classification buffer even when a limit error aborts the document.
    fn count_class_runs<S: Stepper>(
        &mut self,
        aut: &mut S,
        class_buf: &[u8],
    ) -> Result<(), SpannerError> {
        for run in ClassRuns::new(class_buf) {
            let cls = run.class as usize;
            let end = run.start + run.len;
            let mut i = run.start;
            while i < end {
                self.maintenance_point(aut)?;
                if self.active.as_slice().iter().all(|&q| aut.run_skippable(q as usize, cls)) {
                    self.checker.tick_jump()?;
                    break;
                }
                self.checker.tick()?;
                self.capture_phase(aut)?;
                self.read_phase(aut, cls)?;
                i += 1;
            }
        }
        self.maintenance_point(aut)?;
        self.capture_phase(aut)?;
        Ok(())
    }

    /// Grows the per-state storage to cover state id `q` (no-op for eager
    /// automata; amortized bump when a lazy automaton interns fresh subsets).
    #[inline]
    fn ensure_state(&mut self, q: usize) {
        if q >= self.counts.len() {
            let n = q + 1;
            self.counts.resize(n, C::zero());
            self.old.resize(n, C::zero());
            self.active.grow(n);
            self.next_active.grow(n);
        }
    }

    /// Once-per-position cache-budget hook; the counting mirror of
    /// [`crate::Evaluator`]'s maintenance point (counts are saved across the
    /// eviction's id remap instead of lists).
    #[inline]
    fn maintenance_point<S: Stepper>(&mut self, aut: &mut S) -> Result<(), SpannerError> {
        if !aut.wants_maintenance() {
            return Ok(());
        }
        let mut ids = std::mem::take(&mut self.maint_ids);
        let mut saved = std::mem::take(&mut self.maint_counts);
        ids.clear();
        ids.extend_from_slice(self.active.as_slice());
        saved.clear();
        for &q in &ids {
            saved.push(self.counts[q as usize].clone());
            self.counts[q as usize] = C::zero();
        }
        // The remap completes even when the thrash guard trips, so the
        // engine stays internally consistent after an error return.
        let mut verdict = Ok(());
        if aut.maintain(&mut ids) {
            verdict = self.checker.note_clear();
            self.active.clear();
            for (k, &q) in ids.iter().enumerate() {
                let q = q as usize;
                self.ensure_state(q);
                self.active.insert(q);
                self.counts[q] = saved[k].clone();
            }
        } else {
            for (k, &q) in ids.iter().enumerate() {
                self.counts[q as usize] = saved[k].clone();
            }
        }
        self.maint_ids = ids;
        self.maint_counts = saved;
        verdict
    }

    /// `Capturing(i)`: extend runs with extended variable transitions.
    #[inline]
    fn capture_phase<S: Stepper>(&mut self, aut: &mut S) -> Result<(), SpannerError> {
        let live = self.active.len();
        for idx in 0..live {
            let q = self.active.get(idx);
            self.old[q] = self.counts[q].clone();
        }
        for idx in 0..live {
            let q = self.active.get(idx);
            if !aut.has_markers(q) {
                continue;
            }
            for &(_, p) in aut.markers_from(q) {
                self.ensure_state(p);
                self.active.insert(p);
                self.counts[p] =
                    self.counts[p].checked_add(&self.old[q]).ok_or(SpannerError::CountOverflow)?;
            }
        }
        Ok(())
    }

    /// `Reading(i)`: extend runs with the letter transition on class `cls`.
    #[inline]
    fn read_phase<S: Stepper>(&mut self, aut: &mut S, cls: usize) -> Result<(), SpannerError> {
        let live = self.active.len();
        for idx in 0..live {
            let q = self.active.get(idx);
            self.old[q] = self.counts[q].clone();
            self.counts[q] = C::zero();
        }
        self.next_active.clear();
        for idx in 0..live {
            let q = self.active.get(idx);
            if let Some(p) = aut.step_class(q, cls) {
                self.ensure_state(p);
                self.next_active.insert(p);
                self.counts[p] =
                    self.counts[p].checked_add(&self.old[q]).ok_or(SpannerError::CountOverflow)?;
            }
        }
        std::mem::swap(&mut self.active, &mut self.next_active);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::enumerate::EnumerationDag;
    use crate::eva::{Eva, EvaBuilder};
    use crate::markerset::MarkerSet;
    use crate::variable::VarRegistry;

    /// The Figure 3 automaton.
    fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        let ms = MarkerSet::new;
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    /// The "every span into x" spanner over the full byte alphabet.
    fn all_spans_spanner() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_letter(q1, any, q1);
        b.add_letter(q2, any, q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        // Also allow the empty capture {x⊢, ⊣x} in a single step.
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure3_count_is_three() {
        let aut = DetSeva::compile(&figure3()).unwrap();
        let n: u64 = count_mappings(&aut, &Document::from("ab")).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn count_matches_enumeration_and_naive() {
        let eva = figure3();
        let aut = DetSeva::compile(&eva).unwrap();
        for text in ["", "a", "ab", "ba", "abab", "aabb", "ababab", "bbbaaa"] {
            let doc = Document::from(text);
            let n: u64 = count_mappings(&aut, &doc).unwrap();
            let dag = EnumerationDag::build(&aut, &doc);
            assert_eq!(
                n as usize,
                dag.collect_mappings().len(),
                "enumeration mismatch on {text:?}"
            );
            assert_eq!(n as u128, dag.count_paths(), "path count mismatch on {text:?}");
            assert_eq!(n as usize, eva.eval_naive(&doc).len(), "naive mismatch on {text:?}");
        }
    }

    #[test]
    fn all_spans_count_formula() {
        // The all-spans spanner outputs every span [i, j⟩ of d, of which there
        // are (n+1)(n+2)/2 … minus nothing: empty spans are produced by the
        // single-step {x⊢,⊣x} transition, proper spans by the two-step route.
        let aut = DetSeva::compile(&all_spans_spanner()).unwrap();
        for n in [0usize, 1, 2, 3, 10, 50] {
            let doc = Document::new(vec![b'z'; n]);
            let count: u64 = count_mappings(&aut, &doc).unwrap();
            assert_eq!(count as usize, (n + 1) * (n + 2) / 2, "n = {n}");
        }
    }

    #[test]
    fn counts_agree_across_counter_types() {
        let aut = DetSeva::compile(&all_spans_spanner()).unwrap();
        let doc = Document::new(vec![b'q'; 100]);
        let a: u64 = count_mappings(&aut, &doc).unwrap();
        let b: u128 = count_mappings(&aut, &doc).unwrap();
        let c: f64 = count_mappings(&aut, &doc).unwrap();
        assert_eq!(a as u128, b);
        assert_eq!(a as f64, c);
    }

    #[test]
    fn zero_count_on_rejecting_document() {
        let aut = DetSeva::compile(&figure3()).unwrap();
        let n: u64 = count_mappings(&aut, &Document::from("zzz")).unwrap();
        assert_eq!(n, 0);
        let n: u64 = count_mappings(&aut, &Document::empty()).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn counting_scales_to_documents_where_enumeration_cannot() {
        // On a 20k-byte document the all-spans spanner has ~200M outputs —
        // far too many to materialize, but counting them is immediate.
        let aut = DetSeva::compile(&all_spans_spanner()).unwrap();
        let n = 20_000usize;
        let doc = Document::new(vec![b'x'; n]);
        let count: u64 = count_mappings(&aut, &doc).unwrap();
        assert_eq!(count as usize, (n + 1) * (n + 2) / 2);
    }

    #[test]
    fn overflow_is_reported() {
        // A spanner with 4 independent span variables over a long document
        // overflows u64? (n²/2)⁴ ≈ 10²⁹ for n = 10⁴ — too slow to build that
        // way; instead force overflow with a tiny counter type.
        #[derive(Clone)]
        struct Tiny(u8);
        impl Counter for Tiny {
            fn zero() -> Self {
                Tiny(0)
            }
            fn one() -> Self {
                Tiny(1)
            }
            fn checked_add(&self, other: &Self) -> Option<Self> {
                self.0.checked_add(other.0).map(Tiny)
            }
            fn is_zero(&self) -> bool {
                self.0 == 0
            }
        }
        let aut = DetSeva::compile(&all_spans_spanner()).unwrap();
        let doc = Document::new(vec![b'x'; 100]);
        let res: Result<Tiny, _> = count_mappings(&aut, &doc);
        assert!(matches!(res, Err(SpannerError::CountOverflow)));
        // f64 never overflows.
        let res: Result<f64, _> = count_mappings(&aut, &doc);
        assert!(res.is_ok());
    }
}
