//! Spans: intervals `[i, j⟩` over a document.
//!
//! The paper represents a span as a pair `⟨i, j⟩` of **1-based** positions with
//! `1 ≤ i ≤ j ≤ |d| + 1`, whose content is the substring of the document from
//! position `i` to `j − 1`. Internally we store the equivalent **0-based,
//! end-exclusive** byte offsets (`start ≤ end`), which is the natural Rust slice
//! convention; [`Span::paper_start`]/[`Span::paper_end`] and the `Display`
//! implementation recover the paper's notation.

use crate::error::SpannerError;
use std::fmt;

/// A span `[start, end⟩` of a document: a half-open byte interval.
///
/// Offsets are 0-based and end-exclusive, so the span's content in document `d`
/// is `d[start..end]`. The empty span at position `i` is `Span { start: i, end: i }`.
///
/// ```
/// use spanners_core::Span;
/// let s = Span::new(0, 4).unwrap();
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.to_string(), "[1, 5⟩"); // the paper's 1-based notation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    start: u32,
    end: u32,
}

impl Span {
    /// Creates a span from 0-based, end-exclusive byte offsets.
    ///
    /// Returns an error if `start > end` or either offset overflows the
    /// internal 32-bit representation.
    pub fn new(start: usize, end: usize) -> Result<Self, SpannerError> {
        if start > end || end > u32::MAX as usize {
            return Err(SpannerError::InvalidSpan { start, end, doc_len: None });
        }
        Ok(Span { start: start as u32, end: end as u32 })
    }

    /// Creates a span without validating `start <= end`.
    ///
    /// # Panics
    /// Panics in debug builds if `start > end`.
    #[inline]
    pub fn new_unchecked(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        debug_assert!(end <= u32::MAX as usize);
        Span { start: start as u32, end: end as u32 }
    }

    /// Creates a span from the paper's 1-based positions `⟨i, j⟩` with `1 ≤ i ≤ j`.
    pub fn from_paper(i: usize, j: usize) -> Result<Self, SpannerError> {
        if i == 0 || j == 0 || i > j {
            return Err(SpannerError::InvalidSpan { start: i, end: j, doc_len: None });
        }
        Span::new(i - 1, j - 1)
    }

    /// The empty span at byte offset `pos`.
    #[inline]
    pub fn empty_at(pos: usize) -> Self {
        Span::new_unchecked(pos, pos)
    }

    /// 0-based inclusive start offset.
    #[inline]
    pub fn start(&self) -> usize {
        self.start as usize
    }

    /// 0-based exclusive end offset.
    #[inline]
    pub fn end(&self) -> usize {
        self.end as usize
    }

    /// The paper's 1-based start position `i` of `⟨i, j⟩`.
    #[inline]
    pub fn paper_start(&self) -> usize {
        self.start as usize + 1
    }

    /// The paper's 1-based end position `j` of `⟨i, j⟩`.
    #[inline]
    pub fn paper_end(&self) -> usize {
        self.end as usize + 1
    }

    /// Number of bytes covered by the span.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether this span is a span *of* a document of length `doc_len`
    /// (i.e. `end ≤ doc_len`, paper: `j ≤ |d| + 1`).
    #[inline]
    pub fn fits(&self, doc_len: usize) -> bool {
        self.end as usize <= doc_len
    }

    /// Returns this span as a `Range<usize>` usable for slicing.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Concatenation of two adjacent spans (`self.end == other.start`),
    /// mirroring the paper's `s1 · s2`.
    pub fn concat(&self, other: &Span) -> Option<Span> {
        if self.end == other.start {
            Some(Span { start: self.start, end: other.end })
        } else {
            None
        }
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether `self` and `other` share at least one byte position.
    ///
    /// Empty spans cover no byte positions and therefore never overlap anything.
    #[inline]
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end && !self.is_empty() && !other.is_empty()
    }

    /// Whether the byte offset `pos` lies inside the span.
    #[inline]
    pub fn contains_pos(&self, pos: usize) -> bool {
        (self.start as usize) <= pos && pos < self.end as usize
    }
}

impl fmt::Display for Span {
    /// Formats the span in the paper's notation `[i, j⟩` with 1-based positions.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}⟩", self.paper_start(), self.paper_end())
    }
}

impl From<std::ops::Range<usize>> for Span {
    fn from(r: std::ops::Range<usize>) -> Self {
        Span::new(r.start, r.end).expect("range start must not exceed end")
    }
}

/// Returns all spans of a document of length `doc_len`, in lexicographic order.
///
/// There are `(doc_len + 1)(doc_len + 2)/2` of them; this is the set `span(d)` of the
/// paper and is used by the naive reference semantics, never by the fast algorithms.
pub fn all_spans(doc_len: usize) -> Vec<Span> {
    let mut out = Vec::with_capacity((doc_len + 1) * (doc_len + 2) / 2);
    for i in 0..=doc_len {
        for j in i..=doc_len {
            out.push(Span::new_unchecked(i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted() {
        assert!(Span::new(3, 2).is_err());
        assert!(Span::new(2, 3).is_ok());
        assert!(Span::new(2, 2).is_ok());
    }

    #[test]
    fn paper_positions_round_trip() {
        // Figure 1: d(1,5) = "John" corresponds to byte range 0..4.
        let s = Span::from_paper(1, 5).unwrap();
        assert_eq!(s.start(), 0);
        assert_eq!(s.end(), 4);
        assert_eq!(s.paper_start(), 1);
        assert_eq!(s.paper_end(), 5);
        assert_eq!(s.to_string(), "[1, 5⟩");
    }

    #[test]
    fn from_paper_rejects_zero_and_inverted() {
        assert!(Span::from_paper(0, 3).is_err());
        assert!(Span::from_paper(3, 0).is_err());
        assert!(Span::from_paper(4, 3).is_err());
        assert!(Span::from_paper(3, 3).is_ok());
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(2, 6).unwrap().len(), 4);
        assert!(!Span::new(2, 6).unwrap().is_empty());
        assert!(Span::empty_at(5).is_empty());
        assert_eq!(Span::empty_at(5).len(), 0);
    }

    #[test]
    fn fits_document() {
        let s = Span::new(3, 7).unwrap();
        assert!(s.fits(7));
        assert!(s.fits(10));
        assert!(!s.fits(6));
    }

    #[test]
    fn concat_adjacent() {
        let a = Span::new(0, 3).unwrap();
        let b = Span::new(3, 5).unwrap();
        assert_eq!(a.concat(&b), Some(Span::new(0, 5).unwrap()));
        assert_eq!(b.concat(&a), None);
        let c = Span::new(4, 6).unwrap();
        assert_eq!(a.concat(&c), None);
    }

    #[test]
    fn concat_with_empty() {
        let a = Span::new(2, 2).unwrap();
        let b = Span::new(2, 5).unwrap();
        assert_eq!(a.concat(&b), Some(b));
        assert_eq!(b.concat(&Span::empty_at(5)), Some(b));
    }

    #[test]
    fn containment_and_overlap() {
        let outer = Span::new(1, 8).unwrap();
        let inner = Span::new(3, 5).unwrap();
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.overlaps(&inner));
        let disjoint = Span::new(8, 9).unwrap();
        assert!(!outer.overlaps(&disjoint));
        // Empty spans never overlap anything.
        assert!(!outer.overlaps(&Span::empty_at(4)));
    }

    #[test]
    fn contains_pos() {
        let s = Span::new(2, 5).unwrap();
        assert!(!s.contains_pos(1));
        assert!(s.contains_pos(2));
        assert!(s.contains_pos(4));
        assert!(!s.contains_pos(5));
    }

    #[test]
    fn range_slices_document() {
        let doc = b"hello world";
        let s = Span::new(6, 11).unwrap();
        assert_eq!(&doc[s.range()], b"world");
    }

    #[test]
    fn all_spans_count() {
        // |span(d)| = (n+1)(n+2)/2
        for n in 0..6 {
            let spans = all_spans(n);
            assert_eq!(spans.len(), (n + 1) * (n + 2) / 2);
            // all distinct
            let mut dedup = spans.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), spans.len());
            for s in &spans {
                assert!(s.fits(n));
            }
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Span::new(0, 2).unwrap();
        let b = Span::new(0, 3).unwrap();
        let c = Span::new(1, 1).unwrap();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn from_range() {
        let s: Span = (2..7).into();
        assert_eq!(s, Span::new(2, 7).unwrap());
    }
}
