//! Lazy hybrid determinization: subset construction on demand, behind a
//! bounded memory budget (the regex-automata "hybrid" lazy-DFA idiom, adapted
//! to extended VA).
//!
//! [`crate::det::DetSeva`] compiles a *deterministic* automaton into dense
//! tables up front, and the eager subset construction
//! (`spanners_automata::determinize`) that feeds it can blow up exponentially
//! before the first byte of input is read — exactly the cost the
//! constant-delay framework is meant to amortize away. [`LazyDetSeva`] instead
//! keeps the **nondeterministic** (but sequential) eVA in a compact
//! CSR layout and determinizes *during* evaluation:
//!
//! * deterministic states are interned **subset keys** (sorted NFA state
//!   sets) discovered as the document is read;
//! * per-(state, class) letter-table entries and marker-transition CSR rows
//!   are filled the first time they are stepped — including the
//!   `run_skippable` / `has_markers` fast-path metadata, which the eager
//!   compiler precomputes and this cache derives lazily;
//! * everything mutable lives in a [`LazyCache`] governed by a configurable
//!   byte budget ([`LazyConfig`]); when the budget is exceeded the cache is
//!   **cleared and restarted**: the evaluation engine's live states are
//!   re-interned into the fresh cache and every other state is forgotten,
//!   so memory stays bounded no matter how adversarial the automaton is.
//!
//! The cache plugs into the existing evaluation engines
//! ([`crate::Evaluator`], [`crate::CountCache`]) through the
//! [`crate::det::Stepper`] abstraction, so both the per-byte and the
//! class-run run-skipping fast paths work unchanged on lazily determinized
//! automata. Outputs are byte-for-byte the mappings/counts of the eagerly
//! determinized automaton — determinization (lazy or not) preserves the
//! semantics, and subset states make Algorithm 1 duplicate-free even though
//! the source automaton is nondeterministic.
//!
//! # Sharing a warm cache across threads: the frozen/delta split
//!
//! A [`LazyCache`] is inherently single-threaded — every step may mutate it.
//! For batch/serving workloads where N workers evaluate the *same* spanner
//! over many documents, that would mean N caches each re-determinizing the
//! same subsets: exactly the waste the lazy engine exists to avoid. The
//! frozen/delta split amortizes the work instead:
//!
//! * [`LazyCache::freeze`] snapshots a warm cache into a [`FrozenCache`] — an
//!   immutable CSR table of every subset state, transition row and skip entry
//!   discovered so far. A `FrozenCache` is `Send + Sync` (it has no interior
//!   mutability) and is meant to be shared by reference or `Arc` across
//!   worker threads;
//! * each worker owns a small mutable [`FrozenDelta`] holding the *overflow*:
//!   states and rows first stepped after the freeze. Deltas are scratch — they
//!   reset (retaining capacity) at the start of each document, so every
//!   evaluation result is a pure function of `(frozen cache, document)`,
//!   independent of which worker ran it or what it processed before. This is
//!   what makes parallel batch output deterministic and byte-for-byte equal
//!   to a single-threaded run over the same frozen snapshot;
//! * a [`FrozenStepper`] pairs the shared frozen half with one worker's delta
//!   behind the same [`crate::det::Stepper`] seam the other engines use, so
//!   frozen evaluation reuses the per-byte and class-run loops unchanged.
//!
//! A well-chosen freeze point (after warming on representative documents)
//! leaves the delta empty in steady state: stepping is then pure shared-table
//! reads, the per-worker memory cost is a few retained-capacity buffers, and
//! the zero-allocation contract of the warm engines is preserved.

use crate::byteclass::{AlphabetPartition, ClassMask};
use crate::det::{accepts_generic, Stepper};
use crate::document::Document;
use crate::error::SpannerError;
use crate::eva::{Eva, StateId};
use crate::markerset::MarkerSet;
use crate::sparse::SparseSet;
use crate::variable::VarRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no transition" in a lazy letter-table row.
const NO_TARGET: u32 = u32::MAX;
/// Sentinel for "not yet computed" in a lazy letter-table row.
const UNKNOWN: u32 = u32::MAX - 1;
/// Sentinel for "marker row not yet materialized".
const VARS_UNMATERIALIZED: u32 = u32::MAX;
/// Three-valued per-(state, class) skip metadata.
const SKIP_UNKNOWN: u8 = 0;
const SKIP_YES: u8 = 1;
const SKIP_NO: u8 = 2;

/// Monotone source of identities tying a [`LazyCache`] to the [`LazyDetSeva`]
/// whose subset ids it holds (ids from different automata must never mix).
/// [`FrozenCache`] snapshots draw from the same counter: a [`FrozenDelta`]
/// holds state ids relative to one specific freeze, so snapshots need
/// identities of their own.
static NEXT_SEVA_ID: AtomicU64 = AtomicU64::new(1);

/// Draws a fresh process-unique engine/grammar identity from the shared
/// counter — also used by [`crate::slp::SlpRules`] and the eager
/// [`crate::DetSeva`], whose identities key the SLP memo tables alongside
/// lazy-cache and frozen-snapshot ids (one id space, no collisions).
pub(crate) fn next_engine_id() -> u64 {
    NEXT_SEVA_ID.fetch_add(1, Ordering::Relaxed)
}

/// Capacity snapshot of a [`LazyCache`]'s (or [`FrozenDelta`]'s) internal
/// buffers, used by allocation-retention assertions: in steady state — warm
/// cache, no evictions — repeated evaluation must leave the signature
/// unchanged. The `Display` form labels each buffer for bench/diagnostic
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySignature(pub [usize; 10]);

impl fmt::Display for CapacitySignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [keys, offsets, finals, letters, skips, masks, vars, index, slp_counts, slp_sets] =
            self.0;
        write!(
            f,
            "keys={keys} offsets={offsets} finals={finals} letters={letters} \
             skips={skips} masks={masks} vars={vars} index={index} \
             slp_counts={slp_counts} slp_sets={slp_sets}"
        )
    }
}

/// How a [`LazyCache`] reclaims memory once it exceeds its byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Clear-and-restart: forget every interned state except the evaluation
    /// engine's live set and rebuild from scratch. Simple and exact, but a
    /// working set slightly above budget re-determinizes its hottest states
    /// on every clear ([`LazyCache::wasted_states`] measures that waste).
    #[default]
    ClearRestart,
    /// Segmented second-chance: states referenced since the previous eviction
    /// carry a *hot* bit; an eviction keeps the live set plus hot states (in
    /// id order) up to half the byte budget, compacts the survivors in place
    /// (remapping ids and transition targets; rows pointing at evicted states
    /// revert to *unknown*), and clears every hot bit so survivors must be
    /// re-referenced to survive again. Skip metadata is a semantic property
    /// of the surviving subset states, so it is carried over verbatim.
    /// Multi-tenant shared caches want this: one tenant's cold blow-up no
    /// longer wipes the hot states every other tenant is actively using.
    Segmented,
}

/// Configuration of the lazy determinization cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyConfig {
    /// Approximate byte budget of one [`LazyCache`]. When the cached subset
    /// states, transition rows and interning index exceed this many bytes the
    /// cache is evicted (per [`LazyConfig::eviction`]) at the next document
    /// position. The budget is soft: the working set of a single position is
    /// always admitted, so evaluation makes progress even under absurdly
    /// small budgets (it merely thrashes).
    pub memory_budget: usize,
    /// The eviction policy applied when the budget is exceeded.
    pub eviction: EvictionPolicy,
}

impl LazyConfig {
    /// A config with the given byte budget and the default
    /// ([`EvictionPolicy::ClearRestart`]) eviction policy.
    pub fn with_budget(memory_budget: usize) -> Self {
        LazyConfig { memory_budget, ..LazyConfig::default() }
    }

    /// Builder-style override of the eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }
}

impl Default for LazyConfig {
    fn default() -> Self {
        // Matches the regex-automata hybrid default order of magnitude: big
        // enough that realistic spanners never evict, small enough that a
        // pathological blow-up cannot take the process down.
        LazyConfig { memory_budget: 8 * 1024 * 1024, eviction: EvictionPolicy::ClearRestart }
    }
}

/// A sequential (possibly nondeterministic) extended VA prepared for **lazy
/// determinization** — the immutable half of the hybrid engine.
///
/// Construction is linear in the source automaton (no subset construction
/// happens here): the eVA's letter transitions are laid out as a
/// per-(state, alphabet-class) CSR of target lists and its variable
/// transitions as per-state sorted runs, which is exactly what the on-demand
/// subset stepping of [`LazyCache`] consumes. All mutable state lives in the
/// cache, so one `LazyDetSeva` can be shared by many evaluators, each with
/// its own cache (create one with [`LazyDetSeva::create_cache`]).
#[derive(Debug, Clone)]
pub struct LazyDetSeva {
    id: u64,
    registry: VarRegistry,
    partition: AlphabetPartition,
    config: LazyConfig,
    num_nfa_states: usize,
    ncls: usize,
    initial: u32,
    nfa_finals: Vec<bool>,
    /// Letter CSR: targets of NFA state `q` on class `cls` are
    /// `letter_targets[letter_offsets[q*ncls+cls] .. letter_offsets[q*ncls+cls+1]]`.
    letter_offsets: Vec<u32>,
    letter_targets: Vec<u32>,
    /// Variable CSR: `(markers, target)` pairs of NFA state `q`, sorted by
    /// `(markers, target)` so subset grouping is a linear merge.
    var_offsets: Vec<u32>,
    var_pairs: Vec<(MarkerSet, u32)>,
    num_vars: usize,
    source_size: usize,
}

impl LazyDetSeva {
    /// Prepares a sequential eVA for lazy determinization.
    ///
    /// The input may be nondeterministic — that is the point: the subset
    /// construction happens on demand during evaluation instead of up front.
    /// Returns [`SpannerError::NotSequential`] if the automaton is not
    /// sequential (Algorithm 1 requires sequentiality for its outputs to be
    /// exactly the valid runs).
    pub fn new(eva: &Eva, config: LazyConfig) -> Result<Self, SpannerError> {
        eva.check_sequential()?;
        Self::new_trusted(eva, config)
    }

    /// Like [`LazyDetSeva::new`] but trusting the caller that the automaton
    /// is sequential (e.g. guaranteed by construction via the Section 4
    /// translations).
    pub fn new_trusted(eva: &Eva, config: LazyConfig) -> Result<Self, SpannerError> {
        let partition = AlphabetPartition::from_classes(eva.letter_classes().iter());
        let ncls = partition.num_classes();
        let n = eva.num_states();
        // Same hostile-size guard as the eager compiler: CSR offsets are u32.
        if n.checked_mul(ncls).is_none_or(|p| p >= u32::MAX as usize) {
            return Err(SpannerError::BudgetExceeded {
                what: "lazy determinizer letter CSR (states × alphabet classes)",
                limit: u32::MAX as usize,
            });
        }
        // Bucket the letter transitions per (state, class), then flatten.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n * ncls];
        let mut cls_scratch = Vec::new();
        for (q, t) in eva.all_letter_transitions() {
            partition.classes_intersecting_into(&t.class, &mut cls_scratch);
            for &cls in &cls_scratch {
                buckets[q * ncls + cls].push(t.target as u32);
            }
        }
        let mut letter_offsets = Vec::with_capacity(n * ncls + 1);
        let mut letter_targets = Vec::new();
        letter_offsets.push(0);
        for bucket in &mut buckets {
            bucket.sort_unstable();
            bucket.dedup();
            letter_targets.extend_from_slice(bucket);
            if letter_targets.len() > u32::MAX as usize {
                return Err(SpannerError::BudgetExceeded {
                    what: "lazy determinizer letter target arena",
                    limit: u32::MAX as usize,
                });
            }
            letter_offsets.push(letter_targets.len() as u32);
        }
        let mut var_offsets = Vec::with_capacity(n + 1);
        let mut var_pairs: Vec<(MarkerSet, u32)> = Vec::new();
        let mut pair_scratch: Vec<(MarkerSet, u32)> = Vec::new();
        var_offsets.push(0);
        for q in 0..n {
            pair_scratch.clear();
            pair_scratch
                .extend(eva.var_transitions(q).iter().map(|t| (t.markers, t.target as u32)));
            pair_scratch.sort_unstable();
            pair_scratch.dedup();
            var_pairs.extend_from_slice(&pair_scratch);
            if var_pairs.len() > u32::MAX as usize {
                return Err(SpannerError::BudgetExceeded {
                    what: "lazy determinizer variable transition arena",
                    limit: u32::MAX as usize,
                });
            }
            var_offsets.push(var_pairs.len() as u32);
        }
        Ok(LazyDetSeva {
            id: NEXT_SEVA_ID.fetch_add(1, Ordering::Relaxed),
            registry: eva.registry().clone(),
            partition,
            config,
            num_nfa_states: n,
            ncls,
            initial: eva.initial() as u32,
            nfa_finals: (0..n).map(|q| eva.is_final(q)).collect(),
            letter_offsets,
            letter_targets,
            var_offsets,
            var_pairs,
            num_vars: eva.registry().len(),
            source_size: eva.size(),
        })
    }

    /// A unique identity for cache-binding checks (clones share it: they are
    /// the same automaton, so their subset ids are interchangeable).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The variable registry naming the capture variables.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Number of capture variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of states of the underlying nondeterministic eVA.
    #[inline]
    pub fn num_nfa_states(&self) -> usize {
        self.num_nfa_states
    }

    /// Number of alphabet equivalence classes.
    #[inline]
    pub fn num_alphabet_classes(&self) -> usize {
        self.ncls
    }

    /// The configured cache behaviour.
    #[inline]
    pub fn config(&self) -> &LazyConfig {
        &self.config
    }

    /// The paper's size measure `|A|` of the source automaton.
    pub fn source_size(&self) -> usize {
        self.source_size
    }

    /// Creates a cache sized for this automaton. One cache per evaluation
    /// thread; the same cache amortizes determinization across documents.
    pub fn create_cache(&self) -> LazyCache {
        let mut cache = LazyCache::default();
        cache.bind(self);
        cache
    }

    /// Whether the document is accepted (i.e. `⟦A⟧(d)` is non-empty), using
    /// (and lazily extending) `cache`. Linear time, bounded memory.
    pub fn accepts(&self, cache: &mut LazyCache, doc: &Document) -> bool {
        let mut stepper = LazyStepper::new(self, cache);
        accepts_generic(&mut stepper, doc)
    }

    /// NFA letter targets of `q` on alphabet class `cls`.
    #[inline]
    fn letter_targets(&self, q: usize, cls: usize) -> &[u32] {
        let slot = q * self.ncls + cls;
        &self.letter_targets
            [self.letter_offsets[slot] as usize..self.letter_offsets[slot + 1] as usize]
    }

    /// NFA variable transitions of `q`, sorted by `(markers, target)`.
    #[inline]
    fn var_pairs_of(&self, q: usize) -> &[(MarkerSet, u32)] {
        &self.var_pairs[self.var_offsets[q] as usize..self.var_offsets[q + 1] as usize]
    }
}

/// The mutable half of the hybrid engine: interned subset states, lazily
/// filled transition rows, and the byte budget governing them.
///
/// A cache belongs to exactly one [`LazyDetSeva`] at a time (it rebinds —
/// discarding its contents — when used with a different automaton). All
/// storage is retained across documents and across evictions, so a **warm
/// cache performs no heap allocation on hits**: stepping an already-filled
/// row is one flat load, exactly like the eager tables.
#[derive(Debug, Clone)]
pub struct LazyCache {
    seva_id: u64,
    ncls: usize,
    budget: usize,
    policy: EvictionPolicy,
    /// Subset key of det state `q`: `keys[key_offsets[q]..key_offsets[q+1]]`
    /// (sorted NFA state ids).
    key_offsets: Vec<u32>,
    keys: Vec<u32>,
    /// Whether the subset contains a final NFA state (known at intern time).
    finals: Vec<bool>,
    /// Lazily materialized marker rows: `var_pairs[var_starts[q]..+var_lens[q]]`,
    /// or `var_starts[q] == VARS_UNMATERIALIZED`.
    var_starts: Vec<u32>,
    var_lens: Vec<u32>,
    /// `letter_rows[q*ncls+cls]`: target id, `NO_TARGET`, or `UNKNOWN`.
    letter_rows: Vec<u32>,
    /// `skip_rows[q*ncls+cls]`: `SKIP_UNKNOWN` / `SKIP_YES` / `SKIP_NO`.
    skip_rows: Vec<u8>,
    /// Per-state skippable-class bitsets mirroring the memoized `SKIP_YES`
    /// entries of `skip_rows` (a clear bit means *unknown or not skippable*).
    /// The scanning engine intersects these across the live states; keeping
    /// only memoized-yes bits means the mask never triggers a computation the
    /// class-run engine would not also perform, so subset interning order is
    /// identical across engine modes. Cleared with their states on eviction.
    skip_masks: Vec<ClassMask>,
    /// Flat arena of materialized det marker rows, sorted by marker set
    /// within each row (deterministic capture order).
    var_pairs: Vec<(MarkerSet, StateId)>,
    /// Subset key → det state id.
    index: HashMap<Box<[u32]>, u32>,
    /// Second-chance reference bits: `hot[q]` is set when `q` is stepped and
    /// cleared on eviction, so [`EvictionPolicy::Segmented`] keeps exactly
    /// the states referenced since the previous eviction.
    hot: Vec<bool>,
    /// Approximate bytes held by states, rows and index entries.
    bytes: usize,
    clears: u64,
    states_interned: u64,
    // Reusable scratch (retained like everything else).
    set_scratch: SparseSet,
    key_scratch: Vec<u32>,
    group_scratch: Vec<(MarkerSet, u32)>,
    row_scratch: Vec<(MarkerSet, StateId)>,
    target_scratch: Vec<u32>,
    evict_keys: Vec<u32>,
    evict_offsets: Vec<u32>,
    evict_remap: Vec<u32>,
    evict_rows: Vec<(MarkerSet, StateId)>,
}

impl Default for LazyCache {
    fn default() -> Self {
        LazyCache {
            seva_id: 0,
            ncls: 0,
            budget: usize::MAX,
            policy: EvictionPolicy::ClearRestart,
            key_offsets: Vec::new(),
            keys: Vec::new(),
            finals: Vec::new(),
            var_starts: Vec::new(),
            var_lens: Vec::new(),
            letter_rows: Vec::new(),
            skip_rows: Vec::new(),
            skip_masks: Vec::new(),
            var_pairs: Vec::new(),
            index: HashMap::new(),
            hot: Vec::new(),
            bytes: 0,
            clears: 0,
            states_interned: 0,
            set_scratch: SparseSet::new(0),
            key_scratch: Vec::new(),
            group_scratch: Vec::new(),
            row_scratch: Vec::new(),
            target_scratch: Vec::new(),
            evict_keys: Vec::new(),
            evict_offsets: Vec::new(),
            evict_remap: Vec::new(),
            evict_rows: Vec::new(),
        }
    }
}

impl LazyCache {
    /// An unbound cache; it binds to the first automaton it is used with.
    pub fn new() -> LazyCache {
        LazyCache::default()
    }

    /// Number of deterministic subset states currently interned.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// Approximate bytes currently held (states + rows + index entries).
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// How many clear-and-restart evictions have happened over the cache's
    /// lifetime (across rebinds it resets to zero).
    #[inline]
    pub fn clear_count(&self) -> u64 {
        self.clears
    }

    /// Total subset states interned over the cache's lifetime, including
    /// states re-created after evictions — `states_interned() - num_states()`
    /// measures determinization work wasted to thrashing.
    #[inline]
    pub fn states_interned(&self) -> u64 {
        self.states_interned
    }

    /// The byte budget inherited from the bound automaton's [`LazyConfig`].
    #[inline]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Capacity snapshot of every internal buffer, for allocation-retention
    /// assertions (the lazy analogue of the E1b arena-capacity checks): in
    /// steady state — warm cache, no evictions — repeated evaluation must
    /// leave this signature unchanged.
    pub fn capacity_signature(&self) -> CapacitySignature {
        CapacitySignature([
            self.keys.capacity(),
            self.key_offsets.capacity(),
            self.finals.capacity(),
            self.letter_rows.capacity(),
            self.skip_rows.capacity(),
            self.skip_masks.capacity(),
            self.var_pairs.capacity(),
            self.index.capacity(),
            0,
            0,
        ])
    }

    /// Determinization work wasted to clear-and-restart eviction:
    /// `states_interned() - num_states()`, i.e. how many subset states were
    /// built more than once over the cache's lifetime. Zero on a cache whose
    /// budget covers its working set; large values mean the budget is below
    /// the working-set size and eviction tuning is warranted.
    #[inline]
    pub fn wasted_states(&self) -> u64 {
        self.states_interned - self.num_states() as u64
    }

    /// Snapshots this cache into an immutable, shareable [`FrozenCache`].
    ///
    /// The snapshot captures every subset state, every filled transition row
    /// (entries not yet stepped stay "unknown" and are computed by each
    /// worker's [`FrozenDelta`] on demand), the skip metadata, and the
    /// interning index. `seva` must be the automaton this cache is bound to;
    /// an unbound (never used) cache freezes into an empty snapshot, which is
    /// valid — every state then lives in the deltas.
    ///
    /// # Panics
    ///
    /// Panics if the cache is bound to a *different* automaton.
    pub fn freeze(&self, seva: &LazyDetSeva) -> FrozenCache {
        assert!(
            self.seva_id == seva.id || self.seva_id == 0,
            "LazyCache::freeze: cache is bound to a different automaton"
        );
        let ncls = seva.ncls;
        if self.seva_id == 0 {
            return FrozenCache {
                id: NEXT_SEVA_ID.fetch_add(1, Ordering::Relaxed),
                seva_id: seva.id,
                ncls,
                key_offsets: vec![0],
                keys: Vec::new(),
                finals: Vec::new(),
                var_starts: Vec::new(),
                var_lens: Vec::new(),
                letter_rows: Vec::new(),
                skip_rows: Vec::new(),
                skip_masks: Vec::new(),
                var_pairs: Vec::new(),
                index: HashMap::new(),
                slp_memo: None,
            };
        }
        FrozenCache {
            id: NEXT_SEVA_ID.fetch_add(1, Ordering::Relaxed),
            seva_id: self.seva_id,
            ncls: self.ncls,
            key_offsets: self.key_offsets.clone(),
            keys: self.keys.clone(),
            finals: self.finals.clone(),
            var_starts: self.var_starts.clone(),
            var_lens: self.var_lens.clone(),
            letter_rows: self.letter_rows.clone(),
            skip_rows: self.skip_rows.clone(),
            skip_masks: self.skip_masks.clone(),
            var_pairs: self.var_pairs.clone(),
            index: self.index.clone(),
            slp_memo: None,
        }
    }

    /// Binds the cache to `seva`, resetting it if it was bound to a
    /// different automaton.
    pub fn bind(&mut self, seva: &LazyDetSeva) {
        if self.seva_id == seva.id {
            return;
        }
        self.seva_id = seva.id;
        self.ncls = seva.ncls;
        self.budget = seva.config.memory_budget;
        self.policy = seva.config.eviction;
        self.clears = 0;
        self.states_interned = 0;
        self.set_scratch.reset(seva.num_nfa_states);
        self.clear_states();
    }

    /// Overrides the byte budget for subsequent maintenance checks (one-off
    /// degradation retries and deterministic fault injection). [`bind`] to a
    /// *different* automaton resets the budget back to that automaton's
    /// [`LazyConfig`]; rebinding the same automaton keeps the override, so
    /// callers that want it one-off must restore it themselves.
    ///
    /// [`bind`]: LazyCache::bind
    pub(crate) fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// Drops every interned state and row, keeping allocated capacity.
    fn clear_states(&mut self) {
        self.key_offsets.clear();
        self.key_offsets.push(0);
        self.keys.clear();
        self.finals.clear();
        self.var_starts.clear();
        self.var_lens.clear();
        self.letter_rows.clear();
        self.skip_rows.clear();
        self.skip_masks.clear();
        self.var_pairs.clear();
        self.index.clear();
        self.hot.clear();
        self.bytes = 0;
    }

    /// Approximate bytes a fresh state with a `key_len`-element subset key
    /// costs: the key is stored twice (arena + index), the letter/skip rows
    /// and the skippable-class mask are allocated eagerly per state (so cache
    /// hits never allocate), and the index entry carries hash-map overhead.
    #[inline]
    fn state_cost(&self, key_len: usize) -> usize {
        key_len * 8 + self.ncls * 5 + std::mem::size_of::<ClassMask>() + 64
    }

    #[inline]
    fn key_range(&self, q: usize) -> (usize, usize) {
        (self.key_offsets[q] as usize, self.key_offsets[q + 1] as usize)
    }

    /// Looks up or creates the det state for the (sorted) subset `key`.
    fn intern(&mut self, key: &[u32], seva: &LazyDetSeva) -> u32 {
        if let Some(&id) = self.index.get(key) {
            return id;
        }
        let id = self.finals.len();
        assert!(id < (UNKNOWN as usize) - 1, "lazy determinizer exhausted the u32 id space");
        self.keys.extend_from_slice(key);
        self.key_offsets.push(self.keys.len() as u32);
        self.finals.push(key.iter().any(|&q| seva.nfa_finals[q as usize]));
        self.var_starts.push(VARS_UNMATERIALIZED);
        self.var_lens.push(0);
        self.letter_rows.resize(self.letter_rows.len() + self.ncls, UNKNOWN);
        self.skip_rows.resize(self.skip_rows.len() + self.ncls, SKIP_UNKNOWN);
        self.skip_masks.push(ClassMask::empty());
        self.hot.push(false);
        self.index.insert(key.into(), id as u32);
        self.bytes += self.state_cost(key.len());
        self.states_interned += 1;
        id as u32
    }

    /// The det state of the subset `{initial}` (interning it on first use).
    fn start_state(&mut self, seva: &LazyDetSeva) -> StateId {
        let id = self.intern(&[seva.initial], seva) as StateId;
        self.hot[id] = true;
        id
    }

    /// The memoized skippable-class bitset of `q`: exactly the `SKIP_YES`
    /// entries computed so far (a pure read — see [`Stepper::skip_mask`]).
    #[inline]
    fn skip_mask(&self, q: StateId) -> ClassMask {
        self.skip_masks[q]
    }

    /// Lazy `δ(q, cls)`: fills the letter-row entry on first use.
    fn step_class(&mut self, seva: &LazyDetSeva, q: StateId, cls: usize) -> Option<StateId> {
        self.hot[q] = true;
        let slot = q * self.ncls + cls;
        let t = self.letter_rows[slot];
        if t == NO_TARGET {
            return None;
        }
        if t != UNKNOWN {
            return Some(t as StateId);
        }
        // First step of this (state, class): union the NFA targets of every
        // subset member, intern the resulting subset, memoize.
        self.set_scratch.clear();
        let (a, b) = self.key_range(q);
        for i in a..b {
            let nq = self.keys[i] as usize;
            for &t in seva.letter_targets(nq, cls) {
                self.set_scratch.insert(t as usize);
            }
        }
        if self.set_scratch.is_empty() {
            self.letter_rows[slot] = NO_TARGET;
            return None;
        }
        let mut ks = std::mem::take(&mut self.key_scratch);
        ks.clear();
        ks.extend_from_slice(self.set_scratch.as_slice());
        ks.sort_unstable();
        let id = self.intern(&ks, seva);
        self.key_scratch = ks;
        self.letter_rows[slot] = id;
        Some(id as StateId)
    }

    /// Materializes the marker row of `q` (grouping the subset members'
    /// variable transitions by marker set, interning each target subset) and
    /// returns its `(start, len)` extent in the row arena.
    fn materialize_vars(&mut self, seva: &LazyDetSeva, q: StateId) -> (u32, u32) {
        let start = self.var_starts[q];
        if start != VARS_UNMATERIALIZED {
            return (start, self.var_lens[q]);
        }
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        let (a, b) = self.key_range(q);
        for i in a..b {
            let nq = self.keys[i] as usize;
            groups.extend_from_slice(seva.var_pairs_of(nq));
        }
        // Group by marker set; targets of one group become one subset state.
        // The sort also fixes a deterministic (marker-set-ordered) capture
        // order, independent of subset member order.
        groups.sort_unstable();
        groups.dedup();
        let mut row = std::mem::take(&mut self.row_scratch);
        let mut ks = std::mem::take(&mut self.key_scratch);
        row.clear();
        let mut i = 0;
        while i < groups.len() {
            let markers = groups[i].0;
            ks.clear();
            while i < groups.len() && groups[i].0 == markers {
                ks.push(groups[i].1);
                i += 1;
            }
            // Sorted and deduplicated already (inherited from `groups`).
            let id = self.intern(&ks, seva);
            row.push((markers, id as StateId));
        }
        let start = self.var_pairs.len() as u32;
        let len = row.len() as u32;
        self.var_pairs.extend_from_slice(&row);
        self.var_starts[q] = start;
        self.var_lens[q] = len;
        self.bytes += row.len() * std::mem::size_of::<(MarkerSet, StateId)>();
        self.group_scratch = groups;
        self.row_scratch = row;
        self.key_scratch = ks;
        (start, len)
    }

    /// Lazy `Markers_δ(q)` with targets.
    fn markers_from(&mut self, seva: &LazyDetSeva, q: StateId) -> &[(MarkerSet, StateId)] {
        let (start, len) = self.materialize_vars(seva, q);
        &self.var_pairs[start as usize..(start + len) as usize]
    }

    /// Lazy `has_markers(q)` — materializes the row on first use.
    fn has_markers(&mut self, seva: &LazyDetSeva, q: StateId) -> bool {
        self.materialize_vars(seva, q).1 != 0
    }

    /// Lazy `run_skippable(q, cls)` — derives (and memoizes) the same
    /// per-(state, class) predicate the eager compiler precomputes: `q`
    /// self-loops on `cls` and every marker target of `q` dies on `cls`.
    fn run_skippable(&mut self, seva: &LazyDetSeva, q: StateId, cls: usize) -> bool {
        match self.skip_rows[q * self.ncls + cls] {
            SKIP_YES => return true,
            SKIP_NO => return false,
            _ => {}
        }
        let skip = self.compute_skippable(seva, q, cls);
        // Note: `compute_skippable` may intern states, growing `skip_rows`
        // at the end — the slot index for `q` is unaffected.
        self.skip_rows[q * self.ncls + cls] = if skip { SKIP_YES } else { SKIP_NO };
        if skip {
            // Keep the per-state mask in lockstep with the SKIP_YES memo so
            // the scanning engine sees every learned entry.
            self.skip_masks[q].insert(cls);
        }
        skip
    }

    fn compute_skippable(&mut self, seva: &LazyDetSeva, q: StateId, cls: usize) -> bool {
        if self.step_class(seva, q, cls) != Some(q) {
            return false;
        }
        let (start, len) = self.materialize_vars(seva, q);
        let mut targets = std::mem::take(&mut self.target_scratch);
        targets.clear();
        targets.extend(
            self.var_pairs[start as usize..(start + len) as usize].iter().map(|&(_, p)| p as u32),
        );
        let mut skip = true;
        for &p in &targets {
            if self.step_class(seva, p as StateId, cls).is_some() {
                skip = false;
                break;
            }
        }
        self.target_scratch = targets;
        skip
    }

    /// Evicts per the configured [`EvictionPolicy`], rewriting the engine's
    /// `live` ids in place. Always returns `true` (an eviction happened).
    fn evict(&mut self, seva: &LazyDetSeva, live: &mut [u32]) -> bool {
        match self.policy {
            EvictionPolicy::ClearRestart => self.evict_clear_restart(seva, live),
            EvictionPolicy::Segmented => self.evict_segmented(live),
        }
    }

    /// Clear-and-restart eviction: forget everything, re-intern exactly the
    /// `live` states (their subset keys survive the clear via a scratch
    /// snapshot) and rewrite each live id in place. Row contents — including
    /// skip metadata — are recomputed on demand after the restart.
    fn evict_clear_restart(&mut self, seva: &LazyDetSeva, live: &mut [u32]) -> bool {
        let mut ek = std::mem::take(&mut self.evict_keys);
        let mut eo = std::mem::take(&mut self.evict_offsets);
        ek.clear();
        eo.clear();
        eo.push(0);
        for &q in live.iter() {
            let (a, b) = self.key_range(q as usize);
            ek.extend_from_slice(&self.keys[a..b]);
            eo.push(ek.len() as u32);
        }
        self.clear_states();
        for (k, q) in live.iter_mut().enumerate() {
            let key = &ek[eo[k] as usize..eo[k + 1] as usize];
            *q = self.intern(key, seva);
        }
        self.clears += 1;
        self.evict_keys = ek;
        self.evict_offsets = eo;
        true
    }

    /// Segmented second-chance eviction: keep the engine's `live` states
    /// (mandatory) plus hot states — those stepped since the previous
    /// eviction — admitted in id order until the survivors cost half the
    /// budget, then compact every per-state array **in place**. Surviving
    /// states keep their subset keys, final flags, skip metadata and (when
    /// every target also survives) their materialized marker rows, so a warm
    /// working set shared across tenants is not rebuilt from scratch after
    /// each eviction. Letter entries pointing at dropped states revert to
    /// *unknown* and are recomputed on demand. Hot bits reset: a survivor
    /// must be referenced again to survive the next eviction.
    ///
    /// The half-budget target leaves headroom so consecutive maintenance
    /// calls always reclaim memory; like clear-and-restart, the live set is
    /// admitted unconditionally, so budgets below one position's working set
    /// merely thrash (the engines' clear guard still applies, via the same
    /// `maintain → note_clear` path).
    ///
    /// [`FrozenDelta`] keeps plain clear-and-restart: its base states live in
    /// the immutable snapshot, so per-worker overflow is cheap to rebuild.
    fn evict_segmented(&mut self, live: &mut [u32]) -> bool {
        // Remap-table sentinels; real ids are `< UNKNOWN - 1` (see `intern`).
        const DROPPED: u32 = u32::MAX;
        const KEEP: u32 = u32::MAX - 1;
        let n = self.finals.len();
        let pair = std::mem::size_of::<(MarkerSet, StateId)>();
        let mut remap = std::mem::take(&mut self.evict_remap);
        remap.clear();
        remap.resize(n, DROPPED);
        let mut retained = 0usize;
        for &q in live.iter() {
            let q = q as usize;
            if remap[q] == DROPPED {
                remap[q] = KEEP;
                let (a, b) = self.key_range(q);
                retained += self.state_cost(b - a);
            }
        }
        let target = self.budget / 2;
        for (q, slot) in remap.iter_mut().enumerate() {
            if *slot != DROPPED || !self.hot[q] {
                continue;
            }
            let (a, b) = self.key_range(q);
            let cost = self.state_cost(b - a) + self.var_lens[q] as usize * pair;
            if retained + cost > target {
                continue;
            }
            *slot = KEEP;
            retained += cost;
        }
        // Survivors get new ids in old-id order, so `new_id <= old_id` and
        // the forward in-place compaction below never reads a slot it has
        // already overwritten.
        let mut kept = 0u32;
        for slot in remap.iter_mut() {
            if *slot != DROPPED {
                *slot = kept;
                kept += 1;
            }
        }
        let kept = kept as usize;
        let mut rows = std::mem::take(&mut self.evict_rows);
        rows.clear();
        let mut w_key = 0usize;
        let mut bytes = 0usize;
        for q in 0..n {
            if remap[q] == DROPPED {
                continue;
            }
            let nq = remap[q] as usize;
            let (a, b) = self.key_range(q);
            self.keys.copy_within(a..b, w_key);
            w_key += b - a;
            self.key_offsets[nq + 1] = w_key as u32;
            self.finals[nq] = self.finals[q];
            // Skip metadata is a property of the subset's *contents* (does it
            // self-loop, do its marker targets die), independent of state
            // ids, so memoized entries and the mirror mask carry over
            // verbatim and stay in lockstep.
            self.skip_masks[nq] = self.skip_masks[q];
            self.hot[nq] = false;
            for cls in 0..self.ncls {
                let t = self.letter_rows[q * self.ncls + cls];
                self.letter_rows[nq * self.ncls + cls] = if t == NO_TARGET {
                    NO_TARGET
                } else if t == UNKNOWN || remap[t as usize] == DROPPED {
                    UNKNOWN
                } else {
                    remap[t as usize]
                };
                self.skip_rows[nq * self.ncls + cls] = self.skip_rows[q * self.ncls + cls];
            }
            let start = self.var_starts[q];
            let len = self.var_lens[q] as usize;
            if start != VARS_UNMATERIALIZED
                && self.var_pairs[start as usize..start as usize + len]
                    .iter()
                    .all(|&(_, p)| remap[p] != DROPPED)
            {
                let rs = rows.len() as u32;
                rows.extend(
                    self.var_pairs[start as usize..start as usize + len]
                        .iter()
                        .map(|&(m, p)| (m, remap[p] as StateId)),
                );
                self.var_starts[nq] = rs;
                self.var_lens[nq] = len as u32;
                bytes += len * pair;
            } else {
                // Not yet materialized, or some target was dropped: the whole
                // row is recomputed on demand (rows are all-or-nothing).
                self.var_starts[nq] = VARS_UNMATERIALIZED;
                self.var_lens[nq] = 0;
            }
            bytes += self.state_cost(b - a);
        }
        self.keys.truncate(w_key);
        self.key_offsets.truncate(kept + 1);
        self.finals.truncate(kept);
        self.var_starts.truncate(kept);
        self.var_lens.truncate(kept);
        self.letter_rows.truncate(kept * self.ncls);
        self.skip_rows.truncate(kept * self.ncls);
        self.skip_masks.truncate(kept);
        self.hot.truncate(kept);
        std::mem::swap(&mut self.var_pairs, &mut rows);
        // The old arena becomes the next eviction's scratch (capacity kept).
        self.evict_rows = rows;
        self.index.retain(|_, v| remap[*v as usize] != DROPPED);
        for v in self.index.values_mut() {
            *v = remap[*v as usize];
        }
        self.bytes = bytes;
        self.clears += 1;
        for q in live.iter_mut() {
            *q = remap[*q as usize];
        }
        self.evict_remap = remap;
        true
    }
}

/// The pairing of a [`LazyDetSeva`] with a [`LazyCache`] that implements
/// [`Stepper`] — what the evaluation engines actually drive.
///
/// Constructing one binds (and if necessary resets) the cache to the
/// automaton. The stepper borrows both halves for the duration of one
/// evaluation; ids it hands out index the cache.
#[derive(Debug)]
pub struct LazyStepper<'a> {
    seva: &'a LazyDetSeva,
    cache: &'a mut LazyCache,
}

impl<'a> LazyStepper<'a> {
    /// Pairs an automaton with a cache, binding the cache first.
    pub fn new(seva: &'a LazyDetSeva, cache: &'a mut LazyCache) -> Self {
        cache.bind(seva);
        LazyStepper { seva, cache }
    }
}

impl Stepper for LazyStepper<'_> {
    #[inline]
    fn state_bound(&self) -> usize {
        self.cache.num_states()
    }

    #[inline]
    fn start_state(&mut self) -> StateId {
        self.cache.start_state(self.seva)
    }

    #[inline]
    fn is_final(&self, q: StateId) -> bool {
        self.cache.finals[q]
    }

    #[inline]
    fn byte_class(&self, byte: u8) -> usize {
        self.seva.partition.class_of(byte)
    }

    #[inline]
    fn partition(&self) -> &AlphabetPartition {
        &self.seva.partition
    }

    #[inline]
    fn classify_document(&self, doc: &Document, out: &mut Vec<u8>) {
        self.seva.partition.classify_into(doc.bytes(), out);
    }

    #[inline]
    fn step_class(&mut self, q: StateId, cls: usize) -> Option<StateId> {
        self.cache.step_class(self.seva, q, cls)
    }

    #[inline]
    fn has_markers(&mut self, q: StateId) -> bool {
        self.cache.has_markers(self.seva, q)
    }

    #[inline]
    fn markers_from(&mut self, q: StateId) -> &[(MarkerSet, StateId)] {
        self.cache.markers_from(self.seva, q)
    }

    #[inline]
    fn run_skippable(&mut self, q: StateId, cls: usize) -> bool {
        self.cache.run_skippable(self.seva, q, cls)
    }

    #[inline]
    fn skip_mask(&mut self, q: StateId) -> ClassMask {
        self.cache.skip_mask(q)
    }

    #[inline]
    fn wants_maintenance(&self) -> bool {
        self.cache.bytes > self.cache.budget
    }

    #[inline]
    fn maintain(&mut self, live: &mut [u32]) -> bool {
        self.cache.evict(self.seva, live)
    }
}

/// Approximate bytes of one hash-map override entry in a [`FrozenDelta`]
/// (key + value + bucket overhead) — the frozen analogue of the index-entry
/// share of [`LazyCache::state_cost`].
const OVERRIDE_COST: usize = 24;

/// An immutable snapshot of a warm [`LazyCache`]: every subset state,
/// transition row and skip entry discovered up to the freeze point, in the
/// same CSR layout, with the interning index retained for key lookups.
///
/// A `FrozenCache` has no interior mutability, so it is `Send + Sync` and can
/// be shared by plain reference (e.g. across [`std::thread::scope`] workers)
/// or `std::sync::Arc`. Rows the warm cache had not yet filled stay *unknown*
/// in the snapshot; each worker computes those — and any subset state first
/// discovered after the freeze — inside its own private [`FrozenDelta`].
/// Create snapshots with [`LazyCache::freeze`]; drive them through
/// [`FrozenStepper`].
#[derive(Debug, Clone)]
pub struct FrozenCache {
    /// Identity of this snapshot (deltas bind to it: state ids above the
    /// frozen range are meaningful only relative to one specific freeze).
    id: u64,
    /// Identity of the [`LazyDetSeva`] the snapshotted cache was bound to.
    seva_id: u64,
    ncls: usize,
    key_offsets: Vec<u32>,
    keys: Vec<u32>,
    finals: Vec<bool>,
    var_starts: Vec<u32>,
    var_lens: Vec<u32>,
    letter_rows: Vec<u32>,
    skip_rows: Vec<u8>,
    /// Immutable per-state skippable-class masks (the memoized `SKIP_YES`
    /// bits at freeze time), shared read-only by every worker exactly like
    /// the rows — `Send + Sync` because nothing here mutates.
    skip_masks: Vec<ClassMask>,
    var_pairs: Vec<(MarkerSet, StateId)>,
    index: HashMap<Box<[u32]>, u32>,
    /// Warm SLP memo rows computed against the pre-freeze cache (state ids
    /// are preserved by freezing, so the rows remain valid here), shared
    /// read-only by every worker's [`crate::SlpEvaluator`]. Attached by
    /// [`crate::CompiledSpanner::freeze_warm_slp`]; `None` on plain freezes.
    slp_memo: Option<std::sync::Arc<crate::slp::SlpSharedMemo>>,
}

impl FrozenCache {
    /// A unique identity for delta-binding checks.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Identity of the [`LazyDetSeva`] this snapshot belongs to.
    #[inline]
    pub fn seva_id(&self) -> u64 {
        self.seva_id
    }

    /// Number of frozen subset states. Worker deltas hand out ids starting
    /// here.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// Approximate bytes held by the snapshot (states, rows, index).
    pub fn memory_bytes(&self) -> usize {
        self.keys.len() * 8
            + self.key_offsets.len() * 4
            + self.finals.len()
            + self.letter_rows.len() * 4
            + self.skip_rows.len()
            + self.skip_masks.len() * std::mem::size_of::<ClassMask>()
            + self.var_starts.len() * 8
            + self.var_pairs.len() * std::mem::size_of::<(MarkerSet, StateId)>()
            + self.index.len() * 48
            + self.slp_memo.as_ref().map_or(0, |m| m.memory_bytes())
    }

    /// Attaches a warm SLP memo snapshot (see
    /// [`crate::CompiledSpanner::freeze_warm_slp`]).
    pub(crate) fn set_slp_memo(&mut self, memo: std::sync::Arc<crate::slp::SlpSharedMemo>) {
        self.slp_memo = Some(memo);
    }

    /// The attached warm SLP memo, if any.
    pub fn slp_memo(&self) -> Option<&std::sync::Arc<crate::slp::SlpSharedMemo>> {
        self.slp_memo.as_ref()
    }

    /// A fresh per-worker overflow delta bound to this snapshot.
    pub fn create_delta(&self, seva: &LazyDetSeva) -> FrozenDelta {
        let mut delta = FrozenDelta::default();
        delta.bind(self, seva);
        delta
    }

    /// Thaws the snapshot back into a mutable [`LazyCache`] holding exactly
    /// the frozen states and rows — the starting point of a re-freeze
    /// generation when no delta evidence is available.
    pub fn thaw(&self, seva: &LazyDetSeva) -> LazyCache {
        self.thaw_with(None, seva)
    }

    /// Thaws the snapshot **merged with one worker's overflow delta** into a
    /// mutable [`LazyCache`]: the generational re-freeze path. The merged
    /// cache holds every frozen state plus every delta overflow state (ids
    /// preserved — delta-local states already carry absolute ids), with the
    /// delta's row/skip/marker overrides folded into the flat rows and the
    /// delta's skippable-class mask overrides replacing the frozen masks, so
    /// scan coverage learned since the freeze is carried forward into the
    /// next generation instead of being rediscovered from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is bound to a different snapshot, or `seva` is not
    /// the automaton this snapshot was frozen from.
    pub fn thaw_merged(&self, delta: &FrozenDelta, seva: &LazyDetSeva) -> LazyCache {
        assert_eq!(
            delta.frozen_id, self.id,
            "FrozenCache::thaw_merged: delta is bound to a different snapshot"
        );
        self.thaw_with(Some(delta), seva)
    }

    fn thaw_with(&self, delta: Option<&FrozenDelta>, seva: &LazyDetSeva) -> LazyCache {
        assert_eq!(
            self.seva_id, seva.id,
            "FrozenCache::thaw: snapshot belongs to a different automaton"
        );
        let ncls = self.ncls;
        let frozen_keys = self.keys.len() as u32;
        let frozen_pairs = self.var_pairs.len() as u32;

        let mut key_offsets = self.key_offsets.clone();
        let mut keys = self.keys.clone();
        let mut finals = self.finals.clone();
        let mut var_starts = self.var_starts.clone();
        let mut var_lens = self.var_lens.clone();
        let mut letter_rows = self.letter_rows.clone();
        let mut skip_rows = self.skip_rows.clone();
        let mut skip_masks = self.skip_masks.clone();
        let mut var_pairs = self.var_pairs.clone();
        let mut index = self.index.clone();

        if let Some(d) = delta {
            // Overrides of frozen states' unknown slots fold into the rows.
            for (&slot, &t) in &d.letter_overrides {
                letter_rows[slot as usize] = t;
            }
            for (&slot, &s) in &d.skip_overrides {
                skip_rows[slot as usize] = if s { SKIP_YES } else { SKIP_NO };
            }
            // Mask overrides were seeded from the frozen mask, so replacing
            // (not or-ing) carries every memoized bit forward.
            for (&q, &m) in &d.mask_overrides {
                skip_masks[q as usize] = m;
            }
            for (&q, &(start, len)) in &d.var_overrides {
                var_starts[q as usize] = start + frozen_pairs;
                var_lens[q as usize] = len;
            }
            // Overflow states append verbatim: their ids are already absolute
            // (base = frozen state count), so rows and index entries are
            // valid in the merged numbering without rewriting.
            key_offsets.extend(d.key_offsets.iter().skip(1).map(|&o| o + frozen_keys));
            keys.extend_from_slice(&d.keys);
            finals.extend_from_slice(&d.finals);
            var_starts.extend(d.var_starts.iter().map(|&s| {
                if s == VARS_UNMATERIALIZED {
                    s
                } else {
                    s + frozen_pairs
                }
            }));
            var_lens.extend_from_slice(&d.var_lens);
            letter_rows.extend_from_slice(&d.letter_rows);
            skip_rows.extend_from_slice(&d.skip_rows);
            skip_masks.extend_from_slice(&d.skip_masks);
            var_pairs.extend_from_slice(&d.var_pairs);
            for (key, &id) in &d.index {
                index.insert(key.clone(), id);
            }
        }

        let mut cache = LazyCache {
            seva_id: self.seva_id,
            ncls,
            budget: seva.config.memory_budget,
            key_offsets,
            keys,
            finals,
            var_starts,
            var_lens,
            letter_rows,
            skip_rows,
            skip_masks,
            var_pairs,
            index,
            bytes: 0,
            clears: 0,
            states_interned: 0,
            ..LazyCache::default()
        };
        cache.states_interned = cache.num_states() as u64;
        cache.policy = seva.config.eviction;
        // Thawed states start cold: they must be referenced to survive a
        // segmented eviction, exactly like freshly interned states.
        cache.hot.resize(cache.num_states(), false);
        cache.set_scratch.reset(seva.num_nfa_states);
        // Rebuild the byte accounting the way interning + materialization
        // would have: per-state cost plus the materialized marker rows.
        let mut bytes = 0;
        for q in 0..cache.num_states() {
            let (a, b) = cache.key_range(q);
            bytes += cache.state_cost(b - a);
            if cache.var_starts[q] != VARS_UNMATERIALIZED {
                bytes += cache.var_lens[q] as usize * std::mem::size_of::<(MarkerSet, StateId)>();
            }
        }
        cache.bytes = bytes;
        cache
    }
}

/// The per-worker mutable half of the frozen/delta split: subset states and
/// transition rows first needed *after* the freeze.
///
/// A delta owns three kinds of overflow, all retained-capacity buffers:
///
/// * **local states** — subsets absent from the frozen snapshot, with ids
///   `frozen.num_states()..` and the same lazily filled row layout as a
///   [`LazyCache`];
/// * **row overrides** — letter/skip/marker entries of *frozen* states whose
///   slot was still unknown at freeze time (small hash maps keyed by slot);
/// * **scratch** — the reusable buffers of the subset construction.
///
/// Deltas are scratch state: [`FrozenStepper::new`] resets the contents
/// (keeping capacity) at the start of every document, so an evaluation's
/// result — including enumeration order — is a pure function of the frozen
/// snapshot and the document, independent of worker scheduling. A byte budget
/// (inherited from the automaton's [`LazyConfig`]) bounds the delta exactly
/// like a [`LazyCache`]: on overflow the local states are cleared and the
/// engine's live states re-interned, frozen ids staying untouched.
///
/// The subset-construction methods below deliberately mirror [`LazyCache`]'s
/// (they differ in how a state id resolves to its key/row — frozen-then-local
/// with override maps vs. a single arena). **Algorithmic fixes to one must be
/// mirrored in the other**; `tests/batch_runtime.rs` pins the two paths
/// against each other byte for byte.
#[derive(Debug, Clone)]
pub struct FrozenDelta {
    frozen_id: u64,
    base: u32,
    ncls: usize,
    budget: usize,
    // Local states (absolute id = base + local index), LazyCache layout.
    key_offsets: Vec<u32>,
    keys: Vec<u32>,
    finals: Vec<bool>,
    var_starts: Vec<u32>,
    var_lens: Vec<u32>,
    letter_rows: Vec<u32>,
    skip_rows: Vec<u8>,
    /// Per-local-state skippable-class masks, mirroring `skip_rows` exactly
    /// like [`LazyCache::skip_masks`] — rebuilt on eviction with their states.
    skip_masks: Vec<ClassMask>,
    var_pairs: Vec<(MarkerSet, StateId)>,
    index: HashMap<Box<[u32]>, u32>,
    // Overrides for frozen states' unknown slots.
    letter_overrides: HashMap<u32, u32>,
    skip_overrides: HashMap<u32, bool>,
    var_overrides: HashMap<u32, (u32, u32)>,
    /// Frozen states whose skippable-class mask grew after the freeze: the
    /// frozen masks themselves are immutable and shared, so newly memoized
    /// `SKIP_YES` entries land here (keyed by frozen state id, seeded from
    /// the frozen mask). Cleared with the other overrides.
    mask_overrides: HashMap<u32, ClassMask>,
    bytes: usize,
    clears: u64,
    states_interned: u64,
    // Reusable scratch (retained like everything else).
    set_scratch: SparseSet,
    key_scratch: Vec<u32>,
    group_scratch: Vec<(MarkerSet, u32)>,
    row_scratch: Vec<(MarkerSet, StateId)>,
    target_scratch: Vec<u32>,
    evict_keys: Vec<u32>,
    evict_offsets: Vec<u32>,
}

impl Default for FrozenDelta {
    fn default() -> Self {
        FrozenDelta {
            frozen_id: 0,
            base: 0,
            ncls: 0,
            budget: usize::MAX,
            key_offsets: vec![0],
            keys: Vec::new(),
            finals: Vec::new(),
            var_starts: Vec::new(),
            var_lens: Vec::new(),
            letter_rows: Vec::new(),
            skip_rows: Vec::new(),
            skip_masks: Vec::new(),
            var_pairs: Vec::new(),
            index: HashMap::new(),
            letter_overrides: HashMap::new(),
            skip_overrides: HashMap::new(),
            var_overrides: HashMap::new(),
            mask_overrides: HashMap::new(),
            bytes: 0,
            clears: 0,
            states_interned: 0,
            set_scratch: SparseSet::new(0),
            key_scratch: Vec::new(),
            group_scratch: Vec::new(),
            row_scratch: Vec::new(),
            target_scratch: Vec::new(),
            evict_keys: Vec::new(),
            evict_offsets: Vec::new(),
        }
    }
}

impl FrozenDelta {
    /// An unbound delta; it binds to the first frozen snapshot it is used
    /// with (see [`FrozenStepper::new`]).
    pub fn new() -> FrozenDelta {
        FrozenDelta::default()
    }

    /// Identity of the [`FrozenCache`] this delta is bound to (zero when
    /// unbound) — the guard the re-freeze path checks before merging delta
    /// evidence into a new generation.
    #[inline]
    pub fn snapshot_id(&self) -> u64 {
        self.frozen_id
    }

    /// Number of *overflow* states currently held (subsets the frozen
    /// snapshot does not cover). Zero in the steady state of a well-warmed
    /// snapshot.
    #[inline]
    pub fn num_overflow_states(&self) -> usize {
        self.finals.len()
    }

    /// Overflow states interned over the delta's lifetime, including states
    /// re-created after per-document resets and evictions — the measure of
    /// determinization work the freeze failed to amortize.
    #[inline]
    pub fn states_interned(&self) -> u64 {
        self.states_interned
    }

    /// How many budget-driven clear-and-restart evictions have happened
    /// (per-document resets are not counted).
    #[inline]
    pub fn clear_count(&self) -> u64 {
        self.clears
    }

    /// Approximate bytes currently held by overflow states and overrides.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Capacity snapshot of the delta's buffers, for allocation-retention
    /// assertions (mirrors [`LazyCache::capacity_signature`]).
    pub fn capacity_signature(&self) -> CapacitySignature {
        CapacitySignature([
            self.keys.capacity(),
            self.key_offsets.capacity(),
            self.finals.capacity(),
            self.letter_rows.capacity(),
            self.skip_rows.capacity(),
            self.skip_masks.capacity(),
            self.var_pairs.capacity(),
            self.index.capacity(),
            0,
            0,
        ])
    }

    /// Overrides the byte budget for subsequent maintenance checks (see
    /// [`LazyCache::set_budget`]).
    pub(crate) fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// Binds the delta to `frozen`, resetting it if it was bound to a
    /// different snapshot.
    pub(crate) fn bind(&mut self, frozen: &FrozenCache, seva: &LazyDetSeva) {
        assert_eq!(
            frozen.seva_id, seva.id,
            "FrozenStepper: snapshot belongs to a different automaton"
        );
        if self.frozen_id == frozen.id {
            return;
        }
        self.frozen_id = frozen.id;
        self.base = frozen.num_states() as u32;
        self.ncls = frozen.ncls;
        self.budget = seva.config.memory_budget;
        self.clears = 0;
        self.states_interned = 0;
        self.set_scratch.reset(seva.num_nfa_states);
        self.clear_local();
    }

    /// Sheds the delta for the global memory governor: drops every overflow
    /// state and override **and releases the backing allocations** (unlike
    /// the internal evictions, which keep capacity for reuse). Returns the
    /// bytes freed. The delta stays bound to its snapshot and remains fully
    /// usable — subsequent documents re-intern overflow states on demand,
    /// exactly as after a budget eviction.
    ///
    /// Lifetime counters ([`FrozenDelta::states_interned`],
    /// [`FrozenDelta::clear_count`]) are untouched: a governor shed is not a
    /// budget-driven eviction, so it never trips the per-document thrash
    /// guard.
    pub fn shed(&mut self) -> usize {
        let freed = self.bytes;
        self.clear_local();
        self.keys.shrink_to_fit();
        self.key_offsets.shrink_to_fit();
        self.finals.shrink_to_fit();
        self.var_starts.shrink_to_fit();
        self.var_lens.shrink_to_fit();
        self.letter_rows.shrink_to_fit();
        self.skip_rows.shrink_to_fit();
        self.skip_masks.shrink_to_fit();
        self.var_pairs.shrink_to_fit();
        self.index.shrink_to_fit();
        self.letter_overrides.shrink_to_fit();
        self.skip_overrides.shrink_to_fit();
        self.var_overrides.shrink_to_fit();
        self.mask_overrides.shrink_to_fit();
        freed
    }

    /// Drops every overflow state and override, keeping allocated capacity.
    fn clear_local(&mut self) {
        self.key_offsets.clear();
        self.key_offsets.push(0);
        self.keys.clear();
        self.finals.clear();
        self.var_starts.clear();
        self.var_lens.clear();
        self.letter_rows.clear();
        self.skip_rows.clear();
        self.skip_masks.clear();
        self.var_pairs.clear();
        self.index.clear();
        self.letter_overrides.clear();
        self.skip_overrides.clear();
        self.var_overrides.clear();
        self.mask_overrides.clear();
        self.bytes = 0;
    }

    /// Key extent of state `q`: `(lives_in_frozen, start, end)` into the
    /// owning arena's `keys`.
    #[inline]
    fn key_extent(&self, frozen: &FrozenCache, q: usize) -> (bool, usize, usize) {
        let base = self.base as usize;
        if q < base {
            (true, frozen.key_offsets[q] as usize, frozen.key_offsets[q + 1] as usize)
        } else {
            let lq = q - base;
            (false, self.key_offsets[lq] as usize, self.key_offsets[lq + 1] as usize)
        }
    }

    /// Looks up or creates the state for the (sorted) subset `key`: frozen
    /// states are found in the shared index, overflow states in the delta's.
    fn intern(&mut self, key: &[u32], frozen: &FrozenCache, seva: &LazyDetSeva) -> u32 {
        if let Some(&id) = frozen.index.get(key) {
            return id;
        }
        if let Some(&id) = self.index.get(key) {
            return id;
        }
        let id = self.base as usize + self.finals.len();
        assert!(
            id < (UNKNOWN as usize) - 1,
            "frozen-delta determinizer exhausted the u32 id space"
        );
        self.keys.extend_from_slice(key);
        self.key_offsets.push(self.keys.len() as u32);
        self.finals.push(key.iter().any(|&q| seva.nfa_finals[q as usize]));
        self.var_starts.push(VARS_UNMATERIALIZED);
        self.var_lens.push(0);
        self.letter_rows.resize(self.letter_rows.len() + self.ncls, UNKNOWN);
        self.skip_rows.resize(self.skip_rows.len() + self.ncls, SKIP_UNKNOWN);
        self.skip_masks.push(ClassMask::empty());
        self.index.insert(key.into(), id as u32);
        self.bytes += key.len() * 8 + self.ncls * 5 + std::mem::size_of::<ClassMask>() + 64;
        self.states_interned += 1;
        id as u32
    }

    /// The skippable-class bitset of `q` over the frozen/delta split: the
    /// shared frozen mask (plus any delta-local override) for frozen states,
    /// the delta-local mask for overflow states. A pure read, like
    /// [`LazyCache::skip_mask`].
    #[inline]
    fn skip_mask(&self, frozen: &FrozenCache, q: StateId) -> ClassMask {
        let base = self.base as usize;
        if q < base {
            match self.mask_overrides.get(&(q as u32)) {
                Some(&m) => m,
                None => frozen.skip_masks[q],
            }
        } else {
            self.skip_masks[q - base]
        }
    }

    /// Lazy `δ(q, cls)` over the frozen/delta split: frozen rows are flat
    /// loads; unknown frozen slots memoize into the override map; overflow
    /// states use delta-local rows.
    fn step_class(
        &mut self,
        frozen: &FrozenCache,
        seva: &LazyDetSeva,
        q: StateId,
        cls: usize,
    ) -> Option<StateId> {
        let base = self.base as usize;
        let cached = if q < base {
            frozen.letter_rows[q * self.ncls + cls]
        } else {
            self.letter_rows[(q - base) * self.ncls + cls]
        };
        match cached {
            NO_TARGET => return None,
            t if t != UNKNOWN => return Some(t as StateId),
            _ => {}
        }
        if q < base {
            if let Some(&t) = self.letter_overrides.get(&((q * self.ncls + cls) as u32)) {
                return if t == NO_TARGET { None } else { Some(t as StateId) };
            }
        }
        // First step of this (state, class) since the freeze: union the NFA
        // targets of every subset member, intern, memoize.
        self.set_scratch.clear();
        let (in_frozen, a, b) = self.key_extent(frozen, q);
        for i in a..b {
            let nq = (if in_frozen { frozen.keys[i] } else { self.keys[i] }) as usize;
            for &t in seva.letter_targets(nq, cls) {
                self.set_scratch.insert(t as usize);
            }
        }
        let target = if self.set_scratch.is_empty() {
            NO_TARGET
        } else {
            let mut ks = std::mem::take(&mut self.key_scratch);
            ks.clear();
            ks.extend_from_slice(self.set_scratch.as_slice());
            ks.sort_unstable();
            let id = self.intern(&ks, frozen, seva);
            self.key_scratch = ks;
            id
        };
        if q < base {
            self.letter_overrides.insert((q * self.ncls + cls) as u32, target);
            self.bytes += OVERRIDE_COST;
        } else {
            self.letter_rows[(q - base) * self.ncls + cls] = target;
        }
        if target == NO_TARGET {
            None
        } else {
            Some(target as StateId)
        }
    }

    /// Materializes the marker row of `q` into the delta arena (frozen states
    /// with a frozen row never reach here — see [`FrozenDelta::markers_row`]),
    /// returning its `(start, len)` extent.
    fn materialize_vars(
        &mut self,
        frozen: &FrozenCache,
        seva: &LazyDetSeva,
        q: StateId,
    ) -> (u32, u32) {
        let base = self.base as usize;
        if q < base {
            if let Some(&ext) = self.var_overrides.get(&(q as u32)) {
                return ext;
            }
            debug_assert_eq!(frozen.var_starts[q], VARS_UNMATERIALIZED);
        } else {
            let lq = q - base;
            if self.var_starts[lq] != VARS_UNMATERIALIZED {
                return (self.var_starts[lq], self.var_lens[lq]);
            }
        }
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        let (in_frozen, a, b) = self.key_extent(frozen, q);
        for i in a..b {
            let nq = (if in_frozen { frozen.keys[i] } else { self.keys[i] }) as usize;
            groups.extend_from_slice(seva.var_pairs_of(nq));
        }
        groups.sort_unstable();
        groups.dedup();
        let mut row = std::mem::take(&mut self.row_scratch);
        let mut ks = std::mem::take(&mut self.key_scratch);
        row.clear();
        let mut i = 0;
        while i < groups.len() {
            let markers = groups[i].0;
            ks.clear();
            while i < groups.len() && groups[i].0 == markers {
                ks.push(groups[i].1);
                i += 1;
            }
            let id = self.intern(&ks, frozen, seva);
            row.push((markers, id as StateId));
        }
        let start = self.var_pairs.len() as u32;
        let len = row.len() as u32;
        self.var_pairs.extend_from_slice(&row);
        if q < base {
            self.var_overrides.insert(q as u32, (start, len));
            self.bytes += OVERRIDE_COST;
        } else {
            let lq = q - base;
            self.var_starts[lq] = start;
            self.var_lens[lq] = len;
        }
        self.bytes += row.len() * std::mem::size_of::<(MarkerSet, StateId)>();
        self.group_scratch = groups;
        self.row_scratch = row;
        self.key_scratch = ks;
        (start, len)
    }

    /// `Markers_δ(q)` with targets, reading the frozen row when it exists and
    /// the delta row (materializing it first) otherwise.
    fn markers_row<'s>(
        &'s mut self,
        frozen: &'s FrozenCache,
        seva: &LazyDetSeva,
        q: StateId,
    ) -> &'s [(MarkerSet, StateId)] {
        let base = self.base as usize;
        if q < base && frozen.var_starts[q] != VARS_UNMATERIALIZED {
            let start = frozen.var_starts[q] as usize;
            return &frozen.var_pairs[start..start + frozen.var_lens[q] as usize];
        }
        let (start, len) = self.materialize_vars(frozen, seva, q);
        &self.var_pairs[start as usize..(start + len) as usize]
    }

    /// Lazy `has_markers(q)` over the split.
    fn has_markers(&mut self, frozen: &FrozenCache, seva: &LazyDetSeva, q: StateId) -> bool {
        let base = self.base as usize;
        if q < base && frozen.var_starts[q] != VARS_UNMATERIALIZED {
            return frozen.var_lens[q] != 0;
        }
        self.materialize_vars(frozen, seva, q).1 != 0
    }

    /// Lazy `run_skippable(q, cls)` over the split (frozen skip entries are
    /// flat loads; unknown ones memoize into the override map).
    fn run_skippable(
        &mut self,
        frozen: &FrozenCache,
        seva: &LazyDetSeva,
        q: StateId,
        cls: usize,
    ) -> bool {
        let base = self.base as usize;
        let local = if q < base {
            match frozen.skip_rows[q * self.ncls + cls] {
                SKIP_YES => return true,
                SKIP_NO => return false,
                _ => {}
            }
            if let Some(&s) = self.skip_overrides.get(&((q * self.ncls + cls) as u32)) {
                return s;
            }
            None
        } else {
            match self.skip_rows[(q - base) * self.ncls + cls] {
                SKIP_YES => return true,
                SKIP_NO => return false,
                _ => {}
            }
            Some(q - base)
        };
        let skip = self.compute_skippable(frozen, seva, q, cls);
        match local {
            None => {
                self.skip_overrides.insert((q * self.ncls + cls) as u32, skip);
                self.bytes += OVERRIDE_COST;
                if skip {
                    // The frozen per-state mask is immutable; record the newly
                    // learned bit in a delta-local override seeded from it.
                    let mut mask = self
                        .mask_overrides
                        .get(&(q as u32))
                        .copied()
                        .unwrap_or(frozen.skip_masks[q]);
                    mask.insert(cls);
                    if self.mask_overrides.insert(q as u32, mask).is_none() {
                        self.bytes += OVERRIDE_COST + std::mem::size_of::<ClassMask>();
                    }
                }
            }
            Some(lq) => {
                // `compute_skippable` may intern states, growing `skip_rows`
                // at the end — the slot index for `lq` is unaffected.
                self.skip_rows[lq * self.ncls + cls] = if skip { SKIP_YES } else { SKIP_NO };
                if skip {
                    self.skip_masks[lq].insert(cls);
                }
            }
        }
        skip
    }

    fn compute_skippable(
        &mut self,
        frozen: &FrozenCache,
        seva: &LazyDetSeva,
        q: StateId,
        cls: usize,
    ) -> bool {
        if self.step_class(frozen, seva, q, cls) != Some(q) {
            return false;
        }
        let mut targets = std::mem::take(&mut self.target_scratch);
        targets.clear();
        targets.extend(self.markers_row(frozen, seva, q).iter().map(|&(_, p)| p as u32));
        let mut skip = true;
        for &p in &targets {
            if self.step_class(frozen, seva, p as StateId, cls).is_some() {
                skip = false;
                break;
            }
        }
        self.target_scratch = targets;
        skip
    }

    /// Clear-and-restart eviction of the *delta only*: overflow states and
    /// overrides are forgotten, live overflow states re-interned (their ids
    /// rewritten in place); frozen ids — immutable by construction — are left
    /// untouched, so the shared snapshot never churns.
    fn evict(&mut self, frozen: &FrozenCache, seva: &LazyDetSeva, live: &mut [u32]) -> bool {
        let base = self.base;
        let mut ek = std::mem::take(&mut self.evict_keys);
        let mut eo = std::mem::take(&mut self.evict_offsets);
        ek.clear();
        eo.clear();
        eo.push(0);
        for &q in live.iter() {
            if q >= base {
                let lq = (q - base) as usize;
                let (a, b) = (self.key_offsets[lq] as usize, self.key_offsets[lq + 1] as usize);
                ek.extend_from_slice(&self.keys[a..b]);
            }
            eo.push(ek.len() as u32);
        }
        self.clear_local();
        for (k, q) in live.iter_mut().enumerate() {
            if *q >= base {
                let key = &ek[eo[k] as usize..eo[k + 1] as usize];
                *q = self.intern(key, frozen, seva);
            }
        }
        self.clears += 1;
        self.evict_keys = ek;
        self.evict_offsets = eo;
        true
    }
}

/// The pairing of a shared [`FrozenCache`] with one worker's private
/// [`FrozenDelta`] (plus the immutable [`LazyDetSeva`]) that implements
/// [`Stepper`] — the parallel-serving counterpart of [`LazyStepper`].
///
/// Constructing one binds the delta to the snapshot (resetting it if it was
/// bound elsewhere) and then **resets the delta's contents** — capacity
/// retained — so the evaluation about to run depends only on the snapshot
/// and the document, never on what this worker processed before.
#[derive(Debug)]
pub struct FrozenStepper<'a> {
    seva: &'a LazyDetSeva,
    frozen: &'a FrozenCache,
    delta: &'a mut FrozenDelta,
}

impl<'a> FrozenStepper<'a> {
    /// Pairs the three halves, binding and resetting the delta first.
    pub fn new(seva: &'a LazyDetSeva, frozen: &'a FrozenCache, delta: &'a mut FrozenDelta) -> Self {
        delta.bind(frozen, seva);
        delta.clear_local();
        FrozenStepper { seva, frozen, delta }
    }
}

impl Stepper for FrozenStepper<'_> {
    #[inline]
    fn state_bound(&self) -> usize {
        self.frozen.num_states() + self.delta.num_overflow_states()
    }

    #[inline]
    fn start_state(&mut self) -> StateId {
        self.delta.intern(&[self.seva.initial], self.frozen, self.seva) as StateId
    }

    #[inline]
    fn is_final(&self, q: StateId) -> bool {
        let base = self.delta.base as usize;
        if q < base {
            self.frozen.finals[q]
        } else {
            self.delta.finals[q - base]
        }
    }

    #[inline]
    fn byte_class(&self, byte: u8) -> usize {
        self.seva.partition.class_of(byte)
    }

    #[inline]
    fn partition(&self) -> &AlphabetPartition {
        &self.seva.partition
    }

    #[inline]
    fn classify_document(&self, doc: &Document, out: &mut Vec<u8>) {
        self.seva.partition.classify_into(doc.bytes(), out);
    }

    #[inline]
    fn step_class(&mut self, q: StateId, cls: usize) -> Option<StateId> {
        self.delta.step_class(self.frozen, self.seva, q, cls)
    }

    #[inline]
    fn has_markers(&mut self, q: StateId) -> bool {
        self.delta.has_markers(self.frozen, self.seva, q)
    }

    #[inline]
    fn markers_from(&mut self, q: StateId) -> &[(MarkerSet, StateId)] {
        self.delta.markers_row(self.frozen, self.seva, q)
    }

    #[inline]
    fn run_skippable(&mut self, q: StateId, cls: usize) -> bool {
        self.delta.run_skippable(self.frozen, self.seva, q, cls)
    }

    #[inline]
    fn skip_mask(&mut self, q: StateId) -> ClassMask {
        self.delta.skip_mask(self.frozen, q)
    }

    #[inline]
    fn wants_maintenance(&self) -> bool {
        self.delta.bytes > self.delta.budget
    }

    #[inline]
    fn maintain(&mut self, live: &mut [u32]) -> bool {
        self.delta.evict(self.frozen, self.seva, live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byteclass::ByteClass;
    use crate::eva::EvaBuilder;
    use crate::markerset::MarkerSet;
    use crate::variable::VarRegistry;

    /// A small nondeterministic eVA: two overlapping letter ranges from the
    /// same state (cannot be fed to `DetSeva::compile`).
    fn nondet_eva() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        b.set_initial(q0);
        b.set_final(q3);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x), q1).unwrap();
        b.add_letter(q1, ByteClass::range(b'a', b'm'), q1);
        b.add_letter(q1, ByteClass::range(b'g', b'z'), q2);
        b.add_letter(q2, ByteClass::range(b'a', b'z'), q2);
        b.add_var(q1, ms().with_close(x), q3).unwrap();
        b.add_var(q2, ms().with_close(x), q3).unwrap();
        b.add_letter(q3, ByteClass::any(), q3);
        b.build().unwrap()
    }

    #[test]
    fn prepares_without_subset_construction() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        assert_eq!(lazy.num_nfa_states(), 4);
        assert_eq!(lazy.num_vars(), 1);
        assert_eq!(lazy.source_size(), eva.size());
        // No subset states exist until a document is evaluated.
        let cache = lazy.create_cache();
        assert_eq!(cache.num_states(), 0);
        assert_eq!(cache.clear_count(), 0);
    }

    #[test]
    fn accepts_matches_naive_nonemptiness() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let mut cache = lazy.create_cache();
        for text in ["", "a", "g", "z", "ag", "gz", "abcxyz", "A", "a!b"] {
            let doc = Document::from(text);
            assert_eq!(
                lazy.accepts(&mut cache, &doc),
                !eva.eval_naive(&doc).is_empty(),
                "acceptance mismatch on {text:?}"
            );
        }
        assert!(cache.num_states() > 0, "evaluation interned subset states");
    }

    #[test]
    fn accepts_under_tiny_budget_evicts_but_stays_correct() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(1)).unwrap();
        let mut cache = lazy.create_cache();
        let doc = Document::from("agzagzagz");
        assert!(lazy.accepts(&mut cache, &doc));
        assert!(cache.clear_count() > 0, "tiny budget must force evictions");
        assert!(!lazy.accepts(&mut cache, &Document::from("!!!")));
    }

    #[test]
    fn rejects_non_sequential() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let eva = b.build().unwrap();
        assert!(matches!(
            LazyDetSeva::new(&eva, LazyConfig::default()),
            Err(SpannerError::NotSequential(_))
        ));
        assert!(LazyDetSeva::new_trusted(&eva, LazyConfig::default()).is_ok());
    }

    #[test]
    fn cache_rebinds_to_a_different_automaton() {
        let a = LazyDetSeva::new(&nondet_eva(), LazyConfig::default()).unwrap();
        let b = LazyDetSeva::new(&nondet_eva(), LazyConfig::default()).unwrap();
        assert_ne!(a.id(), b.id());
        let mut cache = a.create_cache();
        assert!(a.accepts(&mut cache, &Document::from("az")));
        let populated = cache.num_states();
        assert!(populated > 0);
        // Binding to `b` resets; binding back to `a` resets again.
        let _ = b.accepts(&mut cache, &Document::from("az"));
        assert!(a.accepts(&mut cache, &Document::from("az")));
    }

    #[test]
    fn frozen_snapshot_matches_live_cache_on_acceptance() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let mut cache = lazy.create_cache();
        // Warm on a couple of documents, then freeze.
        for text in ["az", "gz"] {
            let _ = lazy.accepts(&mut cache, &Document::from(text));
        }
        let frozen = cache.freeze(&lazy);
        assert_eq!(frozen.seva_id(), lazy.id());
        assert_eq!(frozen.num_states(), cache.num_states());
        assert!(frozen.memory_bytes() > 0);
        let mut delta = frozen.create_delta(&lazy);
        for text in ["", "a", "g", "z", "ag", "gz", "abcxyz", "A", "a!b", "zzzagq"] {
            let doc = Document::from(text);
            let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
            assert_eq!(
                accepts_generic(&mut stepper, &doc),
                !eva.eval_naive(&doc).is_empty(),
                "frozen acceptance mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn thaw_round_trips_the_frozen_states() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let mut cache = lazy.create_cache();
        for text in ["az", "gz", "abcxyz"] {
            let _ = lazy.accepts(&mut cache, &Document::from(text));
        }
        let frozen = cache.freeze(&lazy);
        let mut thawed = frozen.thaw(&lazy);
        assert_eq!(thawed.num_states(), frozen.num_states());
        assert_eq!(thawed.states_interned(), frozen.num_states() as u64);
        assert!(thawed.memory_bytes() > 0);
        // The thawed cache keeps working as a live cache.
        for text in ["", "az", "gz", "A", "a!b"] {
            let doc = Document::from(text);
            assert_eq!(
                lazy.accepts(&mut thawed, &doc),
                !eva.eval_naive(&doc).is_empty(),
                "thawed acceptance mismatch on {text:?}"
            );
        }
    }

    #[test]
    fn thaw_merged_folds_delta_overflow_into_the_next_generation() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        // Freeze early — off a single short document — so later documents
        // force both overflow states and row overrides into the delta.
        let mut cache = lazy.create_cache();
        let _ = lazy.accepts(&mut cache, &Document::from("a"));
        let frozen = cache.freeze(&lazy);
        let mut delta = frozen.create_delta(&lazy);
        let texts = ["az", "gz", "abcxyz", "zzzagq", "a!b"];
        // Drive one document so the per-document reset of FrozenStepper::new
        // does not wipe the evidence we are about to merge.
        let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
        let _ = accepts_generic(&mut stepper, &Document::from("abcxyz"));
        assert!(
            delta.num_overflow_states() > 0 || !delta.letter_overrides.is_empty(),
            "test premise: the delta must hold evidence to merge"
        );
        assert_eq!(delta.snapshot_id(), frozen.id());

        let merged = frozen.thaw_merged(&delta, &lazy);
        assert_eq!(merged.num_states(), frozen.num_states() + delta.num_overflow_states());
        // Re-freeze the merged cache: the next generation answers everything
        // the old snapshot could, plus what the delta learned.
        let gen2 = merged.freeze(&lazy);
        assert_ne!(gen2.id(), frozen.id());
        assert_eq!(gen2.seva_id(), lazy.id());
        let mut d2 = gen2.create_delta(&lazy);
        for text in texts.iter().chain(["", "g", "A"].iter()) {
            let doc = Document::from(*text);
            let mut stepper = FrozenStepper::new(&lazy, &gen2, &mut d2);
            assert_eq!(
                accepts_generic(&mut stepper, &doc),
                !eva.eval_naive(&doc).is_empty(),
                "gen2 acceptance mismatch on {text:?}"
            );
        }
        // The warmed snapshot covers the replayed document: re-running it
        // creates no overflow states in a fresh delta.
        let mut d3 = gen2.create_delta(&lazy);
        let mut stepper = FrozenStepper::new(&lazy, &gen2, &mut d3);
        let _ = accepts_generic(&mut stepper, &Document::from("abcxyz"));
        assert_eq!(d3.num_overflow_states(), 0, "merged generation must absorb the delta");
    }

    #[test]
    #[should_panic(expected = "bound to a different snapshot")]
    fn thaw_merged_rejects_a_foreign_delta() {
        let lazy = LazyDetSeva::new(&nondet_eva(), LazyConfig::default()).unwrap();
        let frozen_a = lazy.create_cache().freeze(&lazy);
        let frozen_b = lazy.create_cache().freeze(&lazy);
        let delta = frozen_a.create_delta(&lazy);
        let _ = frozen_b.thaw_merged(&delta, &lazy);
    }

    #[test]
    fn empty_freeze_evaluates_entirely_in_the_delta() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let frozen = lazy.create_cache().freeze(&lazy);
        assert_eq!(frozen.num_states(), 0);
        let mut delta = FrozenDelta::new();
        let doc = Document::from("agz");
        let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
        assert!(accepts_generic(&mut stepper, &doc));
        assert!(delta.num_overflow_states() > 0, "all states must live in the delta");
    }

    #[test]
    fn delta_resets_per_document_and_keeps_capacity() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        let frozen = lazy.create_cache().freeze(&lazy);
        let mut delta = FrozenDelta::new();
        let doc = Document::from("agzagz");
        for round in 0..3 {
            let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
            assert!(accepts_generic(&mut stepper, &doc), "round {round}");
        }
        // Three identical documents: the per-document reset makes the third
        // run intern exactly what the first did, with warm capacity.
        let sig = delta.capacity_signature();
        let per_doc = delta.states_interned() / 3;
        assert_eq!(delta.states_interned(), per_doc * 3, "interning is not per-document stable");
        let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
        assert!(accepts_generic(&mut stepper, &doc));
        assert_eq!(delta.capacity_signature(), sig, "warm delta reallocated");
    }

    #[test]
    fn delta_eviction_under_tiny_budget_stays_correct() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(1)).unwrap();
        let frozen = lazy.create_cache().freeze(&lazy);
        let mut delta = FrozenDelta::new();
        let doc = Document::from("agzagzagz");
        let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
        assert!(accepts_generic(&mut stepper, &doc));
        assert!(delta.clear_count() > 0, "a 1-byte budget must force delta evictions");
        let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
        assert!(!accepts_generic(&mut stepper, &Document::from("!!!")));
    }

    #[test]
    fn frozen_cache_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<FrozenCache>();
        check::<LazyDetSeva>();
        check::<FrozenDelta>();
        check::<LazyCache>();
    }

    #[test]
    fn wasted_states_and_signature_display() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::with_budget(1)).unwrap();
        let mut cache = lazy.create_cache();
        let doc = Document::from("agzagzagz");
        assert!(lazy.accepts(&mut cache, &doc));
        assert!(cache.clear_count() > 0);
        assert_eq!(cache.wasted_states(), cache.states_interned() - cache.num_states() as u64);
        assert!(cache.wasted_states() > 0, "thrashing must waste interned states");
        let rendered = cache.capacity_signature().to_string();
        assert!(rendered.contains("keys=") && rendered.contains("index="), "{rendered}");
    }

    #[test]
    fn skip_masks_mirror_memoized_entries_and_survive_freezing() {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).unwrap();
        // Drive the scanning engine so `run_skippable` memoizes entries: the
        // `!` tail leaves only the final `Σ`-looping subset live, which is
        // skippable on the non-letter class once its capture row is empty.
        let mut evaluator = crate::Evaluator::new();
        for text in ["agz!!!!!!", "zzzzzagq!!!!"] {
            let _ = evaluator.eval_lazy(&lazy, &Document::from(text)).num_nodes();
        }
        let cache = evaluator.lazy_cache().expect("lazy evaluation populated the cache");
        let ncls = lazy.num_alphabet_classes();
        let mut memoized_yes = 0;
        for q in 0..cache.num_states() {
            let mask = cache.skip_mask(q);
            for cls in 0..ncls {
                let memo = cache.skip_rows[q * ncls + cls];
                assert_eq!(
                    mask.contains(cls),
                    memo == SKIP_YES,
                    "mask out of lockstep with memo, state {q}, class {cls}"
                );
                memoized_yes += (memo == SKIP_YES) as usize;
            }
        }
        assert!(memoized_yes > 0, "the documents above must memoize at least one skip entry");
        // Freezing carries the masks verbatim into the shared snapshot.
        let frozen = cache.freeze(&lazy);
        assert_eq!(frozen.skip_masks, cache.skip_masks);
        // A delta-local state's mask starts empty and fills with its memos.
        let delta = frozen.create_delta(&lazy);
        assert_eq!(delta.skip_mask(&frozen, 0), frozen.skip_masks[0]);
    }

    #[test]
    fn clones_share_identity_and_caches() {
        let a = LazyDetSeva::new(&nondet_eva(), LazyConfig::default()).unwrap();
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        let mut cache = a.create_cache();
        assert!(a.accepts(&mut cache, &Document::from("az")));
        let warm = cache.num_states();
        assert!(b.accepts(&mut cache, &Document::from("az")));
        assert_eq!(cache.num_states(), warm, "clone reused the warm cache without rebinding");
    }

    /// Sorted mapping sets of the given documents under one config — the
    /// oracle shape for the segmented-eviction differential tests.
    fn mapping_sets(config: LazyConfig, docs: &[&str]) -> Vec<Vec<crate::Mapping>> {
        let eva = nondet_eva();
        let lazy = LazyDetSeva::new(&eva, config).unwrap();
        let mut evaluator = crate::Evaluator::new();
        docs.iter()
            .map(|text| {
                let mut out: Vec<_> =
                    evaluator.eval_lazy(&lazy, &Document::from(*text)).iter().collect();
                out.sort_unstable();
                out
            })
            .collect()
    }

    #[test]
    fn segmented_eviction_preserves_mappings_byte_for_byte() {
        let docs = ["agzagzagz", "abcxyz", "", "a!b", "zzzzzagqagqagq", "gggggggg"];
        let oracle = mapping_sets(LazyConfig::default(), &docs);
        for budget in [1, 200, 400, 800] {
            let config = LazyConfig::with_budget(budget).with_eviction(EvictionPolicy::Segmented);
            assert_eq!(
                mapping_sets(config, &docs),
                oracle,
                "segmented eviction changed outputs at budget {budget}"
            );
        }
    }

    #[test]
    fn segmented_eviction_spares_hot_states() {
        // A budget just below the warm working set: both policies evict on
        // every document cycle, but segmented carries the hot core across
        // evictions instead of re-interning it each time.
        let eva = nondet_eva();
        let doc = Document::from("agzagzagzagzagzagz");
        let waste_of = |policy: EvictionPolicy| {
            let config = LazyConfig::with_budget(500).with_eviction(policy);
            let lazy = LazyDetSeva::new(&eva, config).unwrap();
            let mut cache = lazy.create_cache();
            for _ in 0..8 {
                assert!(lazy.accepts(&mut cache, &doc));
            }
            assert!(cache.clear_count() > 0, "budget must force evictions under {policy:?}");
            cache.wasted_states()
        };
        let clear_restart = waste_of(EvictionPolicy::ClearRestart);
        let segmented = waste_of(EvictionPolicy::Segmented);
        assert!(
            segmented < clear_restart,
            "segmented ({segmented} wasted) must beat clear-restart ({clear_restart} wasted)"
        );
    }

    #[test]
    fn freeze_after_segmented_eviction_stays_correct() {
        let eva = nondet_eva();
        let config = LazyConfig::with_budget(500).with_eviction(EvictionPolicy::Segmented);
        let lazy = LazyDetSeva::new(&eva, config).unwrap();
        let mut cache = lazy.create_cache();
        for text in ["agzagzagzagzagzagz", "abcxyz", "zzzzzagq"] {
            let _ = lazy.accepts(&mut cache, &Document::from(text));
        }
        assert!(cache.clear_count() > 0, "test premise: the snapshot saw an eviction");
        // The compacted survivor table freezes into a consistent snapshot:
        // every document still evaluates to the naive-oracle answer.
        let frozen = cache.freeze(&lazy);
        let mut delta = frozen.create_delta(&lazy);
        for text in ["", "a", "g", "z", "ag", "gz", "abcxyz", "A", "a!b", "agzagzagz"] {
            let doc = Document::from(text);
            let mut stepper = FrozenStepper::new(&lazy, &frozen, &mut delta);
            assert_eq!(
                accepts_generic(&mut stepper, &doc),
                !eva.eval_naive(&doc).is_empty(),
                "post-eviction frozen acceptance mismatch on {text:?}"
            );
        }
    }
}
