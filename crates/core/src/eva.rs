//! Extended variable-set automata (eVA), the paper's Section 3.1.
//!
//! An extended VA is a finite-state automaton whose transitions are either
//! *letter transitions* `(q, C, q')` — labelled here by a [`ByteClass`] `C`
//! rather than a single symbol, exactly as production regex engines do — or
//! *extended variable transitions* `(q, S, q')` labelled by a non-empty set
//! `S` of variable markers. A run over a document `d = a1 … an` alternates
//! variable steps (possibly skipped) and letter steps:
//!
//! ```text
//! ρ = q0 -S1-> p0 -a1-> q1 -S2-> p1 -a2-> … -an-> qn -S(n+1)-> pn
//! ```
//!
//! The run is *valid* if markers open and close variables in a correct manner,
//! and *accepting* if `pn` is final. The mapping `µρ` assigns `x ↦ [i, j⟩`
//! whenever `x⊢ ∈ Si` and `⊣x ∈ Sj`. The semantics `⟦A⟧(d)` is the set of
//! mappings of valid accepting runs.
//!
//! This module provides the automaton representation, a builder, run-based
//! *reference* semantics (used as a test oracle; exponential in general), and
//! the structural analyses the paper relies on: determinism, sequentiality and
//! functionality.

use crate::byteclass::ByteClass;
use crate::document::Document;
use crate::error::SpannerError;
use crate::mapping::{dedup_mappings, Mapping};
use crate::markerset::{MarkerSet, VarSet, VariableStatus};
use crate::span::Span;
use crate::variable::VarRegistry;
use std::collections::HashSet;
use std::fmt;

/// Identifier of an automaton state (dense index, `0 ..= num_states - 1`).
pub type StateId = usize;

/// A letter transition `(source, class, target)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetterTransition {
    /// Byte class labelling the transition.
    pub class: ByteClass,
    /// Target state.
    pub target: StateId,
}

/// An extended variable transition `(source, markers, target)` with `markers ≠ ∅`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarTransition {
    /// The non-empty set of markers executed by the transition.
    pub markers: MarkerSet,
    /// Target state.
    pub target: StateId,
}

/// An extended variable-set automaton.
///
/// Construct one through [`EvaBuilder`]. The structure is immutable after
/// construction; the translation and algebra crates produce new automata
/// rather than mutating existing ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eva {
    registry: VarRegistry,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    letter_trans: Vec<Vec<LetterTransition>>,
    var_trans: Vec<Vec<VarTransition>>,
}

impl Eva {
    /// The variable registry naming this automaton's capture variables.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state `q0`.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` is a final state.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// All final states.
    pub fn final_states(&self) -> Vec<StateId> {
        (0..self.num_states).filter(|&q| self.finals[q]).collect()
    }

    /// Letter transitions leaving `q`.
    pub fn letter_transitions(&self, q: StateId) -> &[LetterTransition] {
        &self.letter_trans[q]
    }

    /// Extended variable transitions leaving `q`.
    pub fn var_transitions(&self, q: StateId) -> &[VarTransition] {
        &self.var_trans[q]
    }

    /// The marker sets available from `q` — the paper's `Markers_δ(q)`.
    pub fn markers_from(&self, q: StateId) -> impl Iterator<Item = MarkerSet> + '_ {
        self.var_trans[q].iter().map(|t| t.markers)
    }

    /// Total number of transitions (letter + variable).
    pub fn num_transitions(&self) -> usize {
        self.letter_trans.iter().map(Vec::len).sum::<usize>()
            + self.var_trans.iter().map(Vec::len).sum::<usize>()
    }

    /// The paper's size measure `|A|`: number of states plus number of transitions.
    pub fn size(&self) -> usize {
        self.num_states + self.num_transitions()
    }

    /// The set of variables mentioned by some transition, the paper's `var(A)`.
    pub fn variables(&self) -> VarSet {
        let mut vars = VarSet::new();
        for ts in &self.var_trans {
            for t in ts {
                vars = vars.union(&t.markers.opened_vars()).union(&t.markers.closed_vars());
            }
        }
        vars
    }

    /// All distinct byte classes used on letter transitions.
    pub fn letter_classes(&self) -> Vec<ByteClass> {
        let mut out: Vec<ByteClass> = Vec::new();
        for ts in &self.letter_trans {
            for t in ts {
                if !out.contains(&t.class) {
                    out.push(t.class);
                }
            }
        }
        out
    }

    /// Iterates over every letter transition as `(source, &transition)`.
    pub fn all_letter_transitions(&self) -> impl Iterator<Item = (StateId, &LetterTransition)> {
        self.letter_trans.iter().enumerate().flat_map(|(q, ts)| ts.iter().map(move |t| (q, t)))
    }

    /// Iterates over every variable transition as `(source, &transition)`.
    pub fn all_var_transitions(&self) -> impl Iterator<Item = (StateId, &VarTransition)> {
        self.var_trans.iter().enumerate().flat_map(|(q, ts)| ts.iter().map(move |t| (q, t)))
    }

    /// Converts back into a builder with identical contents (used by the
    /// translation crate to derive modified automata).
    pub fn to_builder(&self) -> EvaBuilder {
        EvaBuilder {
            registry: self.registry.clone(),
            num_states: self.num_states,
            initial: self.initial,
            finals: self.finals.clone(),
            letter_trans: self.letter_trans.clone(),
            var_trans: self.var_trans.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Structural analyses
    // ------------------------------------------------------------------

    /// Checks that the automaton is *deterministic*: the transition relation is
    /// a partial function on `Q × (Σ ∪ 2^Markers \ {∅})`.
    ///
    /// With byte-class labels this means that, for every state, (a) the classes
    /// of its letter transitions are pairwise disjoint and (b) no two variable
    /// transitions carry the same marker set.
    pub fn check_deterministic(&self) -> Result<(), SpannerError> {
        for q in 0..self.num_states {
            let lts = &self.letter_trans[q];
            for i in 0..lts.len() {
                for j in (i + 1)..lts.len() {
                    if lts[i].class.intersects(&lts[j].class) {
                        return Err(SpannerError::NotDeterministic(format!(
                            "state {q} has overlapping letter transitions ({} and {})",
                            lts[i].class, lts[j].class
                        )));
                    }
                }
            }
            let vts = &self.var_trans[q];
            for i in 0..vts.len() {
                for j in (i + 1)..vts.len() {
                    if vts[i].markers == vts[j].markers {
                        return Err(SpannerError::NotDeterministic(format!(
                            "state {q} has two transitions labelled {}",
                            vts[i].markers
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton is deterministic.
    pub fn is_deterministic(&self) -> bool {
        self.check_deterministic().is_ok()
    }

    /// Checks that the automaton is *sequential*: every accepting run is valid.
    ///
    /// The check explores the reachable `(state, variable-status)` configurations;
    /// a configuration that becomes invalid is tracked separately (its precise
    /// status no longer matters). The automaton is not sequential iff an
    /// accepting configuration is reachable that is invalid or leaves a variable
    /// open.
    pub fn check_sequential(&self) -> Result<(), SpannerError> {
        // Valid configurations: (state, status, just_did_var).
        let mut seen: HashSet<(StateId, VariableStatus, bool)> = HashSet::new();
        let mut stack: Vec<(StateId, VariableStatus, bool)> = Vec::new();
        // Invalid-prefix configurations: (state, just_did_var).
        let mut invalid_seen: HashSet<(StateId, bool)> = HashSet::new();
        let mut invalid_stack: Vec<(StateId, bool)> = Vec::new();

        let start = (self.initial, VariableStatus::new(), false);
        seen.insert(start);
        stack.push(start);

        while let Some((q, status, just_var)) = stack.pop() {
            if self.finals[q] && !status.is_complete() {
                return Err(SpannerError::NotSequential(format!(
                    "an accepting run can leave variables {} open",
                    status.open
                )));
            }
            // Letter transitions are always allowed.
            for t in &self.letter_trans[q] {
                let c = (t.target, status, false);
                if seen.insert(c) {
                    stack.push(c);
                }
            }
            // Variable transitions only if the previous step was not a variable step.
            if !just_var {
                for t in &self.var_trans[q] {
                    match status.apply(t.markers) {
                        Some(next) => {
                            let c = (t.target, next, true);
                            if seen.insert(c) {
                                stack.push(c);
                            }
                        }
                        None => {
                            let c = (t.target, true);
                            if invalid_seen.insert(c) {
                                invalid_stack.push(c);
                            }
                        }
                    }
                }
            }
        }

        // Propagate invalid prefixes: can they reach a final state?
        while let Some((q, just_var)) = invalid_stack.pop() {
            if self.finals[q] {
                return Err(SpannerError::NotSequential(format!(
                    "an accepting run opens/closes variables incorrectly (reaches final state {q})"
                )));
            }
            for t in &self.letter_trans[q] {
                let c = (t.target, false);
                if invalid_seen.insert(c) {
                    invalid_stack.push(c);
                }
            }
            if !just_var {
                for t in &self.var_trans[q] {
                    let c = (t.target, true);
                    if invalid_seen.insert(c) {
                        invalid_stack.push(c);
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton is sequential.
    pub fn is_sequential(&self) -> bool {
        self.check_sequential().is_ok()
    }

    /// Checks that the automaton is *functional*: every accepting run is valid
    /// and mentions **all** variables in `var(A)` (opens and closes each exactly once).
    pub fn check_functional(&self) -> Result<(), SpannerError> {
        self.check_sequential()
            .map_err(|e| SpannerError::NotFunctional(format!("not sequential: {e}")))?;
        let all_vars = self.variables();
        // Re-explore valid configurations; sequentiality guarantees no invalid
        // accepting run exists, so we only check totality at final states.
        let mut seen: HashSet<(StateId, VariableStatus, bool)> = HashSet::new();
        let mut stack = vec![(self.initial, VariableStatus::new(), false)];
        seen.insert(stack[0]);
        while let Some((q, status, just_var)) = stack.pop() {
            if self.finals[q] && status.closed != all_vars {
                let missing = all_vars.difference(&status.closed);
                return Err(SpannerError::NotFunctional(format!(
                    "an accepting run does not assign variables {missing}"
                )));
            }
            for t in &self.letter_trans[q] {
                let c = (t.target, status, false);
                if seen.insert(c) {
                    stack.push(c);
                }
            }
            if !just_var {
                for t in &self.var_trans[q] {
                    if let Some(next) = status.apply(t.markers) {
                        let c = (t.target, next, true);
                        if seen.insert(c) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the automaton is functional.
    pub fn is_functional(&self) -> bool {
        self.check_functional().is_ok()
    }

    /// States reachable from the initial state (ignoring run alternation).
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut reach = vec![false; self.num_states];
        let mut stack = vec![self.initial];
        reach[self.initial] = true;
        while let Some(q) = stack.pop() {
            for t in &self.letter_trans[q] {
                if !reach[t.target] {
                    reach[t.target] = true;
                    stack.push(t.target);
                }
            }
            for t in &self.var_trans[q] {
                if !reach[t.target] {
                    reach[t.target] = true;
                    stack.push(t.target);
                }
            }
        }
        reach
    }

    /// States from which a final state is reachable (ignoring run alternation).
    pub fn coreachable_states(&self) -> Vec<bool> {
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states];
        for (q, t) in self.all_letter_transitions() {
            rev[t.target].push(q);
        }
        for (q, t) in self.all_var_transitions() {
            rev[t.target].push(q);
        }
        let mut co = vec![false; self.num_states];
        let mut stack: Vec<StateId> = (0..self.num_states).filter(|&q| self.finals[q]).collect();
        for &q in &stack {
            co[q] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q] {
                if !co[p] {
                    co[p] = true;
                    stack.push(p);
                }
            }
        }
        co
    }

    /// Whether any final state is reachable at all (the automaton's language
    /// over at least one document is non-empty).
    pub fn is_trim_nonempty(&self) -> bool {
        let reach = self.reachable_states();
        (0..self.num_states).any(|q| reach[q] && self.finals[q])
    }

    // ------------------------------------------------------------------
    // Reference (naive) run semantics
    // ------------------------------------------------------------------

    /// Enumerates **all accepting runs** of the automaton over `d`, valid or not.
    ///
    /// This is the reference semantics used by tests and by the baseline
    /// evaluators; it is exponential in the worst case and must not be used on
    /// large inputs. The constant-delay pipeline never calls it.
    pub fn accepting_runs(&self, doc: &Document) -> Vec<EvaRun> {
        let mut out = Vec::new();
        let mut steps: Vec<RunStep> = Vec::new();
        self.runs_rec(doc, 0, self.initial, false, &mut steps, &mut out);
        out
    }

    fn runs_rec(
        &self,
        doc: &Document,
        pos: usize,
        state: StateId,
        just_var: bool,
        steps: &mut Vec<RunStep>,
        out: &mut Vec<EvaRun>,
    ) {
        if pos == doc.len() && self.finals[state] {
            out.push(EvaRun { steps: steps.clone(), final_state: state });
        }
        // Variable step (if the previous step was not already a variable step).
        if !just_var {
            for t in &self.var_trans[state] {
                steps.push(RunStep::Markers { markers: t.markers, pos });
                self.runs_rec(doc, pos, t.target, true, steps, out);
                steps.pop();
            }
        }
        // Letter step.
        if let Some(b) = doc.byte_at(pos) {
            for t in &self.letter_trans[state] {
                if t.class.contains(b) {
                    steps.push(RunStep::Letter { byte: b, pos });
                    self.runs_rec(doc, pos + 1, t.target, false, steps, out);
                    steps.pop();
                }
            }
        }
    }

    /// Evaluates the spanner naively: the set of mappings of all **valid**
    /// accepting runs over `d`, without duplicates. Reference semantics only.
    pub fn eval_naive(&self, doc: &Document) -> Vec<Mapping> {
        let mut out: Vec<Mapping> =
            self.accepting_runs(doc).iter().filter_map(|r| r.mapping()).collect();
        dedup_mappings(&mut out);
        out
    }
}

impl fmt::Display for Eva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "eVA: {} states, {} transitions, initial q{}, finals {:?}",
            self.num_states,
            self.num_transitions(),
            self.initial,
            self.final_states()
        )?;
        for q in 0..self.num_states {
            for t in &self.letter_trans[q] {
                writeln!(f, "  q{q} --{}--> q{}", t.class, t.target)?;
            }
            for t in &self.var_trans[q] {
                writeln!(
                    f,
                    "  q{q} --{}--> q{}",
                    t.markers.display_with(|v| self.registry.name(v).to_string()),
                    t.target
                )?;
            }
        }
        Ok(())
    }
}

/// One step of an eVA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStep {
    /// An extended variable transition executed before reading the byte at `pos`.
    Markers {
        /// The marker set of the transition.
        markers: MarkerSet,
        /// 0-based document position at which the markers fire.
        pos: usize,
    },
    /// A letter transition reading `byte` at position `pos`.
    Letter {
        /// The byte read.
        byte: u8,
        /// 0-based position of the byte.
        pos: usize,
    },
}

/// A complete accepting run of an [`Eva`] over a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaRun {
    /// The steps of the run, in order.
    pub steps: Vec<RunStep>,
    /// The state in which the run ended (always a final state).
    pub final_state: StateId,
}

impl EvaRun {
    /// The sequence of `(marker set, position)` pairs of the run — the paper's
    /// `Out(ρ)` encoding of the (partial) mapping.
    pub fn out(&self) -> Vec<(MarkerSet, usize)> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                RunStep::Markers { markers, pos } => Some((*markers, *pos)),
                RunStep::Letter { .. } => None,
            })
            .collect()
    }

    /// Whether the run is valid: markers open and close variables correctly
    /// and no variable is left open.
    pub fn is_valid(&self) -> bool {
        self.mapping().is_some()
    }

    /// The mapping `µρ` defined by the run, or `None` if the run is invalid.
    pub fn mapping(&self) -> Option<Mapping> {
        let mut status = VariableStatus::new();
        let mut open_pos: [usize; crate::variable::MAX_VARIABLES] =
            [0; crate::variable::MAX_VARIABLES];
        let mut mapping = Mapping::new();
        for (markers, pos) in self.out() {
            status = status.apply(markers)?;
            for v in markers.opened_vars().iter() {
                open_pos[v.index()] = pos;
            }
            for v in markers.closed_vars().iter() {
                let start = open_pos[v.index()];
                mapping.insert(v, Span::new_unchecked(start, pos));
            }
        }
        if status.is_complete() {
            Some(mapping)
        } else {
            None
        }
    }
}

/// Builder for [`Eva`] automata.
///
/// ```
/// use spanners_core::{EvaBuilder, ByteClass, MarkerSet, VarRegistry};
/// let mut reg = VarRegistry::new();
/// let x = reg.intern("x").unwrap();
/// let mut b = EvaBuilder::new(reg);
/// let q0 = b.add_state();
/// let q1 = b.add_state();
/// let q2 = b.add_state();
/// let q3 = b.add_state();
/// b.set_initial(q0);
/// b.set_final(q3);
/// b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// b.add_letter(q1, ByteClass::singleton(b'a'), q2);
/// b.add_var(q2, MarkerSet::new().with_close(x), q3).unwrap();
/// let eva = b.build().unwrap();
/// assert!(eva.is_deterministic());
/// assert!(eva.is_sequential());
/// assert!(eva.is_functional());
/// ```
#[derive(Debug, Clone)]
pub struct EvaBuilder {
    registry: VarRegistry,
    num_states: usize,
    initial: StateId,
    finals: Vec<bool>,
    letter_trans: Vec<Vec<LetterTransition>>,
    var_trans: Vec<Vec<VarTransition>>,
}

impl EvaBuilder {
    /// Creates a builder over the given variable registry.
    pub fn new(registry: VarRegistry) -> Self {
        EvaBuilder {
            registry,
            num_states: 0,
            initial: 0,
            finals: Vec::new(),
            letter_trans: Vec::new(),
            var_trans: Vec::new(),
        }
    }

    /// Access to the builder's variable registry (e.g. to intern more variables).
    pub fn registry_mut(&mut self) -> &mut VarRegistry {
        &mut self.registry
    }

    /// Read access to the builder's variable registry.
    pub fn registry(&self) -> &VarRegistry {
        &self.registry
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.num_states;
        self.num_states += 1;
        self.finals.push(false);
        self.letter_trans.push(Vec::new());
        self.var_trans.push(Vec::new());
        id
    }

    /// Adds `n` fresh states and returns their ids.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Declares the initial state.
    pub fn set_initial(&mut self, q: StateId) {
        self.initial = q;
    }

    /// Marks a state as final.
    pub fn set_final(&mut self, q: StateId) {
        self.finals[q] = true;
    }

    /// Marks a state as non-final.
    pub fn clear_final(&mut self, q: StateId) {
        self.finals[q] = false;
    }

    /// Whether a state is currently marked final.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q]
    }

    /// Adds a letter transition labelled by a byte class.
    ///
    /// Empty classes are ignored (they can never fire). Duplicate transitions
    /// are kept as given; determinism is checked on the finished automaton.
    pub fn add_letter(&mut self, from: StateId, class: ByteClass, to: StateId) {
        if class.is_empty() {
            return;
        }
        self.letter_trans[from].push(LetterTransition { class, target: to });
    }

    /// Adds a letter transition for a single byte.
    pub fn add_byte(&mut self, from: StateId, byte: u8, to: StateId) {
        self.add_letter(from, ByteClass::singleton(byte), to);
    }

    /// Adds letter transitions spelling out the bytes of `word` through fresh
    /// intermediate states, returning the state reached after the last byte.
    pub fn add_word(&mut self, from: StateId, word: &[u8], to: StateId) {
        if word.is_empty() {
            // An empty word cannot be represented by letter transitions; the
            // caller should connect the states directly instead. We make this
            // a no-op to keep the builder total.
            return;
        }
        let mut cur = from;
        for (i, &b) in word.iter().enumerate() {
            let next = if i + 1 == word.len() { to } else { self.add_state() };
            self.add_byte(cur, b, next);
            cur = next;
        }
    }

    /// Adds an extended variable transition. The marker set must be non-empty.
    pub fn add_var(
        &mut self,
        from: StateId,
        markers: MarkerSet,
        to: StateId,
    ) -> Result<(), SpannerError> {
        if markers.is_empty() {
            return Err(SpannerError::EmptyMarkerTransition);
        }
        // Skip exact duplicates to keep automata tidy.
        if !self.var_trans[from].iter().any(|t| t.markers == markers && t.target == to) {
            self.var_trans[from].push(VarTransition { markers, target: to });
        }
        Ok(())
    }

    /// Finalizes the automaton, validating state references.
    pub fn build(self) -> Result<Eva, SpannerError> {
        if self.num_states == 0 {
            return Err(SpannerError::InvalidState { state: 0, num_states: 0 });
        }
        let check = |q: StateId| -> Result<(), SpannerError> {
            if q >= self.num_states {
                Err(SpannerError::InvalidState { state: q, num_states: self.num_states })
            } else {
                Ok(())
            }
        };
        check(self.initial)?;
        for ts in &self.letter_trans {
            for t in ts {
                check(t.target)?;
            }
        }
        for ts in &self.var_trans {
            for t in ts {
                check(t.target)?;
            }
        }
        Ok(Eva {
            registry: self.registry,
            num_states: self.num_states,
            initial: self.initial,
            finals: self.finals,
            letter_trans: self.letter_trans,
            var_trans: self.var_trans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::VarId;

    fn ms() -> MarkerSet {
        MarkerSet::new()
    }

    /// The extended functional VA of Figure 3 in the paper, over variables x, y.
    ///
    /// States: q0..q9. Transitions:
    ///   q0 -{x⊢}-> q1, q0 -{y⊢}-> q2, q0 -{x⊢,y⊢}-> q3
    ///   q1 -a-> q4, q2 -a-> q5, q3 -a,b-> q3 (self loop on a and b)
    ///   q4 -{y⊢}-> q6, q5 -{x⊢}-> q7
    ///   q6 -b-> q8, q7 -b-> q8
    ///   q8 -{⊣x,⊣y}-> q9, q3 -{⊣x,⊣y}-> q9
    pub(crate) fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q: Vec<StateId> = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_basic_properties() {
        let a = figure3();
        assert_eq!(a.num_states(), 10);
        assert_eq!(a.initial(), 0);
        assert!(a.is_final(9));
        assert!(!a.is_final(0));
        assert_eq!(a.final_states(), vec![9]);
        // 7 variable transitions + 5 letter transitions (the a/b self loop on q3
        // is a single byte-class transition).
        assert_eq!(a.num_transitions(), 12);
        assert_eq!(a.size(), 22);
        assert_eq!(a.variables().len(), 2);
        assert!(a.is_trim_nonempty());
    }

    #[test]
    fn figure3_is_deterministic_sequential_functional() {
        let a = figure3();
        assert!(a.is_deterministic());
        assert!(a.is_sequential());
        assert!(a.is_functional());
    }

    #[test]
    fn figure3_semantics_on_ab() {
        // Section 3.2.2 example: ⟦A⟧(ab) = {µ1, µ2, µ3} with
        //   µ1(x) = [1,3⟩, µ1(y) = [2,3⟩
        //   µ2(x) = [2,3⟩, µ2(y) = [1,3⟩
        //   µ3(x) = [1,3⟩, µ3(y) = [1,3⟩
        let a = figure3();
        let x = a.registry().get("x").unwrap();
        let y = a.registry().get("y").unwrap();
        let doc = Document::from("ab");
        let mut expected = vec![
            Mapping::from_pairs([
                (x, Span::from_paper(1, 3).unwrap()),
                (y, Span::from_paper(2, 3).unwrap()),
            ]),
            Mapping::from_pairs([
                (x, Span::from_paper(2, 3).unwrap()),
                (y, Span::from_paper(1, 3).unwrap()),
            ]),
            Mapping::from_pairs([
                (x, Span::from_paper(1, 3).unwrap()),
                (y, Span::from_paper(1, 3).unwrap()),
            ]),
        ];
        dedup_mappings(&mut expected);
        assert_eq!(a.eval_naive(&doc), expected);
    }

    #[test]
    fn figure3_no_results_on_other_documents() {
        let a = figure3();
        // "a" alone: no run can reach q9 through q8 (needs b), but the q3 loop
        // accepts any non-empty word, so "a" still yields the both-variables span.
        let out = a.eval_naive(&Document::from("a"));
        assert_eq!(out.len(), 1);
        // The empty document: the q3 route needs at least one letter? No — the
        // run q0 -{x⊢,y⊢}-> q3 -{⊣x,⊣y}-> q9 is not allowed because two variable
        // transitions may not be consecutive.
        let out = a.eval_naive(&Document::empty());
        assert!(out.is_empty());
    }

    #[test]
    fn accepting_runs_include_all_alternatives() {
        let a = figure3();
        let runs = a.accepting_runs(&Document::from("ab"));
        // Three distinct accepting runs, one per mapping (A is deterministic).
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.is_valid()));
        assert!(runs.iter().all(|r| r.final_state == 9));
    }

    #[test]
    fn run_out_encoding() {
        let a = figure3();
        let runs = a.accepting_runs(&Document::from("ab"));
        for r in &runs {
            let out = r.out();
            // positions must be non-decreasing
            for w in out.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            // each run ends with the closing markers at position 2
            let (last_markers, last_pos) = *out.last().unwrap();
            assert_eq!(last_pos, 2);
            assert_eq!(last_markers.closed_vars().len(), 2);
        }
    }

    #[test]
    fn invalid_run_has_no_mapping() {
        let x = VarId::new(0).unwrap();
        let run = EvaRun {
            steps: vec![
                RunStep::Markers { markers: ms().with_close(x), pos: 0 },
                RunStep::Letter { byte: b'a', pos: 0 },
            ],
            final_state: 1,
        };
        assert!(!run.is_valid());
        assert!(run.mapping().is_none());
        // leaving a variable open is also invalid
        let run = EvaRun {
            steps: vec![RunStep::Markers { markers: ms().with_open(x), pos: 0 }],
            final_state: 1,
        };
        assert!(run.mapping().is_none());
    }

    #[test]
    fn empty_capture_same_step() {
        // {x⊢, ⊣x} in one step produces an empty span.
        let x = VarId::new(0).unwrap();
        let run = EvaRun {
            steps: vec![RunStep::Markers { markers: ms().with_open(x).with_close(x), pos: 3 }],
            final_state: 0,
        };
        let m = run.mapping().unwrap();
        assert_eq!(m.get(x), Some(Span::empty_at(3)));
    }

    #[test]
    fn non_deterministic_detected_on_letters() {
        let mut b = EvaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_letter(q0, ByteClass::range(b'a', b'f'), q1);
        b.add_letter(q0, ByteClass::range(b'e', b'k'), q2);
        let a = b.build().unwrap();
        assert!(!a.is_deterministic());
        assert!(matches!(a.check_deterministic(), Err(SpannerError::NotDeterministic(_))));
    }

    #[test]
    fn non_deterministic_detected_on_markers() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_var(q0, ms().with_open(x).with_close(x), q1).unwrap();
        b.add_var(q0, ms().with_open(x).with_close(x), q2).unwrap();
        let a = b.build().unwrap();
        assert!(!a.is_deterministic());
        // but disjoint marker sets are fine
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_var(q0, ms().with_open(x).with_close(x), q1).unwrap();
        b.add_var(q0, ms().with_open(y).with_close(y), q1).unwrap();
        assert!(b.build().unwrap().is_deterministic());
    }

    #[test]
    fn non_sequential_detected() {
        // q0 -{x⊢}-> q1 -a-> q2(final): x is never closed => accepting invalid run.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, ms().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let a = b.build().unwrap();
        assert!(!a.is_sequential());
        assert!(!a.is_functional());
    }

    #[test]
    fn close_before_open_not_sequential() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, ms().with_close(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let a = b.build().unwrap();
        assert!(!a.is_sequential());
    }

    #[test]
    fn sequential_but_not_functional() {
        // Two branches: one assigns x, the other does not. All accepting runs
        // are valid, but not all mention x.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        // branch 1: open+close x, then read a
        b.add_var(q0, ms().with_open(x).with_close(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        // branch 2: read a directly
        b.add_byte(q0, b'a', q2);
        let a = b.build().unwrap();
        assert!(a.is_sequential());
        assert!(!a.is_functional());
        let out = a.eval_naive(&Document::from("a"));
        assert_eq!(out.len(), 2); // {x → [1,1⟩} and {}
    }

    #[test]
    fn unreachable_bad_state_does_not_break_sequentiality() {
        // A state that would violate sequentiality but is unreachable.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let dead = b.add_state();
        let dead2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.add_byte(q0, b'a', q1);
        b.add_var(dead, ms().with_close(x), dead2).unwrap();
        b.set_final(dead2);
        let a = b.build().unwrap();
        assert!(a.is_sequential());
    }

    #[test]
    fn empty_marker_transition_rejected() {
        let mut b = EvaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        let q1 = b.add_state();
        assert_eq!(b.add_var(q0, ms(), q1), Err(SpannerError::EmptyMarkerTransition));
    }

    #[test]
    fn build_rejects_empty_automaton() {
        let b = EvaBuilder::new(VarRegistry::new());
        assert!(b.build().is_err());
    }

    #[test]
    fn add_word_spells_out_letters() {
        let mut b = EvaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        let qf = b.add_state();
        b.set_initial(q0);
        b.set_final(qf);
        b.add_word(q0, b"abc", qf);
        let a = b.build().unwrap();
        assert_eq!(a.num_states(), 4); // two intermediate states added
        assert_eq!(a.eval_naive(&Document::from("abc")), vec![Mapping::new()]);
        assert!(a.eval_naive(&Document::from("abd")).is_empty());
        assert!(a.eval_naive(&Document::from("ab")).is_empty());
    }

    #[test]
    fn reachable_and_coreachable() {
        let a = figure3();
        let reach = a.reachable_states();
        assert!(reach.iter().all(|&r| r)); // every state of Figure 3 is reachable
        let co = a.coreachable_states();
        assert!(co.iter().all(|&c| c));
        // Add an unreachable state.
        let mut b = a.to_builder();
        let orphan = b.add_state();
        let a2 = b.build().unwrap();
        assert!(!a2.reachable_states()[orphan]);
        assert!(!a2.coreachable_states()[orphan]);
    }

    #[test]
    fn letter_classes_and_display() {
        let a = figure3();
        let classes = a.letter_classes();
        // {a}, {b}, {a,b} — three distinct classes
        assert_eq!(classes.len(), 3);
        let rendered = a.to_string();
        assert!(rendered.contains("q0"));
        assert!(rendered.contains("⊣"));
    }

    #[test]
    fn to_builder_round_trip() {
        let a = figure3();
        let b = a.to_builder();
        let a2 = b.build().unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn ordinary_regular_language_no_variables() {
        // An eVA with no variables behaves like an NFA: outputs the empty
        // mapping iff the whole document matches.
        let mut b = EvaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        b.set_initial(q0);
        b.set_final(q0);
        b.add_letter(q0, ByteClass::singleton(b'a'), q0);
        let a = b.build().unwrap();
        assert_eq!(a.eval_naive(&Document::from("aaa")), vec![Mapping::new()]);
        assert!(a.eval_naive(&Document::from("ab")).is_empty());
        assert_eq!(a.eval_naive(&Document::empty()), vec![Mapping::new()]);
        assert!(a.is_functional()); // vacuously: no variables
    }
}
