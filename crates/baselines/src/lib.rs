//! # spanners-baselines
//!
//! Baseline evaluation algorithms that the paper's constant-delay algorithm is
//! compared against in the benchmark harness:
//!
//! * [`naive_enumerate`] — backtrack over **all runs** and deduplicate with a
//!   hash set (the strawman of the introduction; exponential for
//!   non-deterministic automata, output must be fully materialized);
//! * [`materialize_enumerate`] — one pass over the document keeping the **set
//!   of partial mappings** per state (linear number of passes, but
//!   output-sized intermediate memory and no delay guarantee);
//! * [`PolyDelayEnumerator`] — enumeration over the trimmed
//!   automaton × position product with reachability pruning, giving
//!   **polynomial delay** per output in the spirit of
//!   Freydenberger–Kimelfeld–Peterfreund ([13] in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod materialize;
pub mod naive;
pub mod polydelay;

pub use materialize::materialize_enumerate;
pub use naive::{naive_enumerate, NaiveStats};
pub use polydelay::PolyDelayEnumerator;
