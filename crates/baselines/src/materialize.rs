//! The "materialize everything" baseline.
//!
//! A single left-to-right pass over the document that keeps, for every automaton
//! state, the **set of partial mappings** of the runs reaching that state — i.e.
//! it stores the expanded output instead of the compact DAG built by
//! Algorithm 1. Total work and memory are `Θ(|A| × |d| × |output|)` in the worst
//! case; the point of the comparison is that the constant-delay algorithm does
//! the same single pass but with O(1) work per (state, transition, position).

use spanners_core::{DetSeva, Document, Mapping, Span, SparseSet};

/// A partial mapping under construction: spans already closed plus the start
/// positions of currently-open variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Partial {
    mapping: Mapping,
    open_starts: Vec<(u8, u32)>, // (variable index, start position)
}

impl Partial {
    fn new() -> Self {
        Partial { mapping: Mapping::new(), open_starts: Vec::new() }
    }
}

/// Evaluates `⟦A⟧(d)` by materializing all partial mappings state by state.
///
/// The input automaton must be deterministic and sequential (same contract as
/// the constant-delay evaluator), which guarantees that no deduplication is
/// needed: distinct runs produce distinct mappings.
pub fn materialize_enumerate(aut: &DetSeva, doc: &Document) -> Vec<Mapping> {
    let n_states = aut.num_states();
    let mut per_state: Vec<Vec<Partial>> = vec![Vec::new(); n_states];
    per_state[aut.initial()].push(Partial::new());
    // Same sparse active-state organisation as the constant-delay engine:
    // both phases walk only the states holding at least one partial mapping.
    let mut active = SparseSet::new(n_states);
    let mut next_active = SparseSet::new(n_states);
    active.insert(aut.initial());

    let bytes = doc.bytes();
    for i in 0..=bytes.len() {
        // Capturing(i): extend with variable transitions. Only the partials
        // present at phase start are extended (`snapshot` lengths).
        let live = active.len();
        let snapshot: Vec<usize> = (0..live).map(|idx| per_state[active.get(idx)].len()).collect();
        for (idx, &snap_len) in snapshot.iter().enumerate() {
            let q = active.get(idx);
            for &(markers, p) in aut.markers_from(q) {
                active.insert(p);
                for k in 0..snap_len {
                    let mut partial = per_state[q][k].clone();
                    for v in markers.opened_vars().iter() {
                        partial.open_starts.push((v.index() as u8, i as u32));
                    }
                    for v in markers.closed_vars().iter() {
                        let idx = partial
                            .open_starts
                            .iter()
                            .position(|(vi, _)| *vi as usize == v.index())
                            .expect("sequential automaton closes only open variables");
                        let (_, start) = partial.open_starts.swap_remove(idx);
                        partial.mapping.insert(v, Span::new_unchecked(start as usize, i));
                    }
                    per_state[p].push(partial);
                }
            }
        }
        if i == bytes.len() {
            break;
        }
        // Reading(i): move sets along the letter transition.
        let cls = aut.byte_class(bytes[i]);
        let live = active.len();
        let mut moved: Vec<Vec<Partial>> = Vec::with_capacity(live);
        for idx in 0..live {
            let q = active.get(idx);
            moved.push(std::mem::take(&mut per_state[q]));
        }
        next_active.clear();
        for (idx, mut partials) in moved.into_iter().enumerate() {
            let q = active.get(idx);
            if partials.is_empty() {
                continue;
            }
            if let Some(p) = aut.step_class(q, cls) {
                next_active.insert(p);
                per_state[p].append(&mut partials);
            }
        }
        std::mem::swap(&mut active, &mut next_active);
    }

    let mut out = Vec::new();
    for q in aut.final_states() {
        for partial in &per_state[q] {
            if partial.open_starts.is_empty() {
                out.push(partial.mapping.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{dedup_mappings, EnumerationDag};
    use spanners_regex::compile;

    #[test]
    fn agrees_with_constant_delay_algorithm() {
        for (pattern, docs) in [
            (".*!x{[0-9]+}.*", vec!["a1b22", "", "123", "abc"]),
            (".*!x{a}.*!y{b}.*", vec!["ab", "aabb", "ba"]),
            ("!w{.*}", vec!["", "xy"]),
        ] {
            let spanner = compile(pattern).unwrap();
            for text in docs {
                let doc = Document::from(text);
                let mut expected = spanner.mappings(&doc);
                dedup_mappings(&mut expected);
                let mut got =
                    materialize_enumerate(spanner.try_automaton().expect("eager engine"), &doc);
                dedup_mappings(&mut got);
                assert_eq!(got, expected, "pattern {pattern:?} on {text:?}");
            }
        }
    }

    #[test]
    fn no_duplicates_for_deterministic_input() {
        let spanner = compile(".*!x{[ab]+}.*").unwrap();
        let doc = Document::from("abab");
        let got = materialize_enumerate(spanner.try_automaton().expect("eager engine"), &doc);
        let mut dedup = got.clone();
        dedup_mappings(&mut dedup);
        assert_eq!(got.len(), dedup.len());
        let dag = EnumerationDag::build(spanner.try_automaton().expect("eager engine"), &doc);
        assert_eq!(got.len(), dag.collect_mappings().len());
    }

    #[test]
    fn empty_results() {
        let spanner = compile("!x{[0-9]+}").unwrap();
        assert!(materialize_enumerate(
            spanner.try_automaton().expect("eager engine"),
            &Document::from("abc")
        )
        .is_empty());
        assert!(materialize_enumerate(
            spanner.try_automaton().expect("eager engine"),
            &Document::empty()
        )
        .is_empty());
    }
}
