//! The "materialize everything" baseline.
//!
//! A single left-to-right pass over the document that keeps, for every automaton
//! state, the **set of partial mappings** of the runs reaching that state — i.e.
//! it stores the expanded output instead of the compact DAG built by
//! Algorithm 1. Total work and memory are `Θ(|A| × |d| × |output|)` in the worst
//! case; the point of the comparison is that the constant-delay algorithm does
//! the same single pass but with O(1) work per (state, transition, position).

use spanners_core::{DetSeva, Document, Mapping, Span};

/// A partial mapping under construction: spans already closed plus the start
/// positions of currently-open variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Partial {
    mapping: Mapping,
    open_starts: Vec<(u8, u32)>, // (variable index, start position)
}

impl Partial {
    fn new() -> Self {
        Partial { mapping: Mapping::new(), open_starts: Vec::new() }
    }
}

/// Evaluates `⟦A⟧(d)` by materializing all partial mappings state by state.
///
/// The input automaton must be deterministic and sequential (same contract as
/// the constant-delay evaluator), which guarantees that no deduplication is
/// needed: distinct runs produce distinct mappings.
pub fn materialize_enumerate(aut: &DetSeva, doc: &Document) -> Vec<Mapping> {
    let n_states = aut.num_states();
    let mut per_state: Vec<Vec<Partial>> = vec![Vec::new(); n_states];
    per_state[aut.initial()].push(Partial::new());

    let bytes = doc.bytes();
    for i in 0..=bytes.len() {
        // Capturing(i): extend with variable transitions.
        let snapshot: Vec<usize> = per_state.iter().map(Vec::len).collect();
        for q in 0..n_states {
            if snapshot[q] == 0 {
                continue;
            }
            for &(markers, p) in aut.markers_from(q) {
                for k in 0..snapshot[q] {
                    let mut partial = per_state[q][k].clone();
                    for v in markers.opened_vars().iter() {
                        partial.open_starts.push((v.index() as u8, i as u32));
                    }
                    for v in markers.closed_vars().iter() {
                        let idx = partial
                            .open_starts
                            .iter()
                            .position(|(vi, _)| *vi as usize == v.index())
                            .expect("sequential automaton closes only open variables");
                        let (_, start) = partial.open_starts.swap_remove(idx);
                        partial.mapping.insert(v, Span::new_unchecked(start as usize, i));
                    }
                    per_state[p].push(partial);
                }
            }
        }
        if i == bytes.len() {
            break;
        }
        // Reading(i): move sets along the letter transition.
        let mut next: Vec<Vec<Partial>> = vec![Vec::new(); n_states];
        for q in 0..n_states {
            if per_state[q].is_empty() {
                continue;
            }
            if let Some(p) = aut.step_letter(q, bytes[i]) {
                next[p].append(&mut per_state[q]);
            }
        }
        per_state = next;
    }

    let mut out = Vec::new();
    for q in aut.final_states() {
        for partial in &per_state[q] {
            if partial.open_starts.is_empty() {
                out.push(partial.mapping.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{dedup_mappings, EnumerationDag};
    use spanners_regex::compile;

    #[test]
    fn agrees_with_constant_delay_algorithm() {
        for (pattern, docs) in [
            (".*!x{[0-9]+}.*", vec!["a1b22", "", "123", "abc"]),
            (".*!x{a}.*!y{b}.*", vec!["ab", "aabb", "ba"]),
            ("!w{.*}", vec!["", "xy"]),
        ] {
            let spanner = compile(pattern).unwrap();
            for text in docs {
                let doc = Document::from(text);
                let mut expected = spanner.mappings(&doc);
                dedup_mappings(&mut expected);
                let mut got = materialize_enumerate(spanner.automaton(), &doc);
                dedup_mappings(&mut got);
                assert_eq!(got, expected, "pattern {pattern:?} on {text:?}");
            }
        }
    }

    #[test]
    fn no_duplicates_for_deterministic_input() {
        let spanner = compile(".*!x{[ab]+}.*").unwrap();
        let doc = Document::from("abab");
        let got = materialize_enumerate(spanner.automaton(), &doc);
        let mut dedup = got.clone();
        dedup_mappings(&mut dedup);
        assert_eq!(got.len(), dedup.len());
        let dag = EnumerationDag::build(spanner.automaton(), &doc);
        assert_eq!(got.len(), dag.collect_mappings().len());
    }

    #[test]
    fn empty_results() {
        let spanner = compile("!x{[0-9]+}").unwrap();
        assert!(materialize_enumerate(spanner.automaton(), &Document::from("abc")).is_empty());
        assert!(materialize_enumerate(spanner.automaton(), &Document::empty()).is_empty());
    }
}
