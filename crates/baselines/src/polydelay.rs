//! A polynomial-delay enumeration baseline, in the spirit of
//! Freydenberger–Kimelfeld–Peterfreund ([13] in the paper).
//!
//! The enumerator works directly on the product of the automaton and the
//! document positions, **without** building the reverse-dual DAG of
//! Algorithm 1. A preprocessing pass computes which `(state, position)` pairs
//! can still reach an accepting configuration; enumeration is then a DFS over
//! the trimmed product in which every root-to-accepting path spells out one
//! output mapping. Because a path has length `Θ(|d|)`, the delay between two
//! consecutive outputs is `O(|A| × |d|)` — polynomial, not constant — which is
//! exactly the regime the paper's algorithm improves on.

use spanners_core::{DetSeva, Document, Mapping, MarkerSet, Span};

/// A polynomial-delay enumerator over a deterministic sequential eVA.
pub struct PolyDelayEnumerator<'a> {
    aut: &'a DetSeva,
    doc: &'a Document,
    /// `useful[pos * num_states + q]`: whether some accepting configuration is
    /// reachable from state `q` at document position `pos` *before* the
    /// capturing step of that position.
    useful: Vec<bool>,
}

impl<'a> PolyDelayEnumerator<'a> {
    /// Preprocesses the document in `O(|A| × |d|)` time (backward reachability).
    pub fn new(aut: &'a DetSeva, doc: &'a Document) -> Self {
        let n_states = aut.num_states();
        let n = doc.len();
        let mut useful = vec![false; (n + 1) * n_states];
        // Backward pass. At position n (all input consumed) a state is useful if
        // it is final or one variable transition away from a final state.
        for q in 0..n_states {
            let ok = aut.is_final(q) || aut.markers_from(q).iter().any(|&(_, p)| aut.is_final(p));
            useful[n * n_states + q] = ok;
        }
        for pos in (0..n).rev() {
            let b = doc.bytes()[pos];
            for q in 0..n_states {
                // Reading directly.
                let mut ok =
                    aut.step_letter(q, b).is_some_and(|p| useful[(pos + 1) * n_states + p]);
                // Or capturing first, then reading.
                if !ok {
                    ok = aut.markers_from(q).iter().any(|&(_, r)| {
                        aut.step_letter(r, b).is_some_and(|p| useful[(pos + 1) * n_states + p])
                    });
                }
                useful[pos * n_states + q] = ok;
            }
        }
        PolyDelayEnumerator { aut, doc, useful }
    }

    fn is_useful(&self, pos: usize, q: usize) -> bool {
        self.useful[pos * self.aut.num_states() + q]
    }

    /// Enumerates all output mappings through a callback. Returns the number of
    /// mappings produced.
    pub fn enumerate<F: FnMut(Mapping)>(&self, mut emit: F) -> usize {
        let mut path: Vec<(MarkerSet, usize)> = Vec::new();
        let mut count = 0usize;
        self.dfs(self.aut.initial(), 0, false, &mut path, &mut count, &mut emit);
        count
    }

    /// Materializes all output mappings.
    pub fn collect(&self) -> Vec<Mapping> {
        let mut out = Vec::new();
        self.enumerate(|m| out.push(m));
        out
    }

    fn dfs<F: FnMut(Mapping)>(
        &self,
        state: usize,
        pos: usize,
        just_var: bool,
        path: &mut Vec<(MarkerSet, usize)>,
        count: &mut usize,
        emit: &mut F,
    ) {
        if pos == self.doc.len() && self.aut.is_final(state) {
            *count += 1;
            emit(mapping_from_path(path));
        }
        if !just_var {
            for &(markers, p) in self.aut.markers_from(state) {
                // Prune branches that cannot reach an accepting configuration.
                let viable = if pos == self.doc.len() {
                    self.aut.is_final(p)
                } else {
                    self.aut
                        .step_letter(p, self.doc.bytes()[pos])
                        .is_some_and(|r| self.is_useful(pos + 1, r))
                };
                if viable {
                    path.push((markers, pos));
                    self.dfs(p, pos, true, path, count, emit);
                    path.pop();
                }
            }
        }
        if pos < self.doc.len() {
            if let Some(p) = self.aut.step_letter(state, self.doc.bytes()[pos]) {
                if self.is_useful(pos + 1, p) {
                    self.dfs(p, pos + 1, false, path, count, emit);
                }
            }
        }
    }
}

fn mapping_from_path(path: &[(MarkerSet, usize)]) -> Mapping {
    let mut open_pos = [0usize; spanners_core::MAX_VARIABLES];
    let mut mapping = Mapping::new();
    for &(markers, pos) in path {
        for v in markers.opened_vars().iter() {
            open_pos[v.index()] = pos;
        }
        for v in markers.closed_vars().iter() {
            mapping.insert(v, Span::new_unchecked(open_pos[v.index()], pos));
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::dedup_mappings;
    use spanners_regex::compile;

    #[test]
    fn agrees_with_constant_delay_algorithm() {
        for (pattern, docs) in [
            (".*!x{[0-9]+}.*", vec!["a1b22", "", "123", "abc"]),
            (".*!x{a+}.*!y{b+}.*", vec!["ab", "aabb", "ba", "abab"]),
            ("!w{.*}", vec!["", "xy", "xyz"]),
        ] {
            let spanner = compile(pattern).unwrap();
            for text in docs {
                let doc = Document::from(text);
                let mut expected = spanner.mappings(&doc);
                dedup_mappings(&mut expected);
                let enumerator =
                    PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), &doc);
                let mut got = enumerator.collect();
                dedup_mappings(&mut got);
                assert_eq!(got, expected, "pattern {pattern:?} on {text:?}");
                assert_eq!(
                    enumerator.collect().len(),
                    expected.len(),
                    "dup check {pattern:?} {text:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_never_explores_dead_documents() {
        let spanner = compile("!x{[0-9]+}").unwrap();
        let doc = Document::from("abcdef");
        let enumerator =
            PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), &doc);
        assert!(enumerator.collect().is_empty());
        // The initial configuration itself is already known to be useless.
        assert!(!enumerator.is_useful(0, spanner.try_automaton().expect("eager engine").initial()));
    }

    #[test]
    fn early_stop_via_callback_side_channel() {
        let spanner = compile(".*!x{[ab]+}.*").unwrap();
        let doc = Document::from("abab");
        let enumerator =
            PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), &doc);
        let total = enumerator.collect().len();
        assert!(total > 3);
        let mut first_three = Vec::new();
        enumerator.enumerate(|m| {
            if first_three.len() < 3 {
                first_three.push(m);
            }
        });
        assert_eq!(first_three.len(), 3);
    }
}
