//! The strawman baseline: enumerate all accepting runs by backtracking and
//! deduplicate their mappings with a hash set.
//!
//! This is the algorithm the introduction of the paper argues against: its
//! running time is proportional to the number of *runs* (not outputs), it must
//! materialize every output before reporting the first one to guarantee
//! deduplication, and it is exponential for non-deterministic automata.

use spanners_core::markerset::VariableStatus;
use spanners_core::{Document, Eva, Mapping, MarkerSet, Span};
use std::collections::HashSet;

/// Statistics gathered by a naive evaluation, useful for benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Number of accepting runs explored (valid or not).
    pub runs_explored: usize,
    /// Number of distinct output mappings.
    pub distinct_outputs: usize,
}

/// Enumerates `⟦A⟧(d)` by exploring every run of the eVA and deduplicating.
///
/// Returns the sorted, distinct output mappings and exploration statistics.
pub fn naive_enumerate(eva: &Eva, doc: &Document) -> (Vec<Mapping>, NaiveStats) {
    let mut seen: HashSet<Mapping> = HashSet::new();
    let mut stats = NaiveStats::default();
    let mut path: Vec<(MarkerSet, usize)> = Vec::new();
    explore(
        eva,
        doc,
        eva.initial(),
        0,
        false,
        VariableStatus::new(),
        &mut path,
        &mut seen,
        &mut stats,
    );
    let mut out: Vec<Mapping> = seen.into_iter().collect();
    out.sort();
    stats.distinct_outputs = out.len();
    (out, stats)
}

#[allow(clippy::too_many_arguments)]
fn explore(
    eva: &Eva,
    doc: &Document,
    state: usize,
    pos: usize,
    just_var: bool,
    status: VariableStatus,
    path: &mut Vec<(MarkerSet, usize)>,
    seen: &mut HashSet<Mapping>,
    stats: &mut NaiveStats,
) {
    if pos == doc.len() && eva.is_final(state) {
        stats.runs_explored += 1;
        if status.is_complete() {
            seen.insert(mapping_from_path(path));
        }
    }
    if !just_var {
        for t in eva.var_transitions(state) {
            // Only valid marker applications can lead to valid runs; invalid
            // prefixes are pruned (they can never produce an output).
            if let Some(next) = status.apply(t.markers) {
                path.push((t.markers, pos));
                explore(eva, doc, t.target, pos, true, next, path, seen, stats);
                path.pop();
            }
        }
    }
    if let Some(b) = doc.byte_at(pos) {
        for t in eva.letter_transitions(state) {
            if t.class.contains(b) {
                explore(eva, doc, t.target, pos + 1, false, status, path, seen, stats);
            }
        }
    }
}

fn mapping_from_path(path: &[(MarkerSet, usize)]) -> Mapping {
    let mut open_pos = [0usize; spanners_core::MAX_VARIABLES];
    let mut mapping = Mapping::new();
    for &(markers, pos) in path {
        for v in markers.opened_vars().iter() {
            open_pos[v.index()] = pos;
        }
        for v in markers.closed_vars().iter() {
            mapping.insert(v, Span::new_unchecked(open_pos[v.index()], pos));
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{ByteClass, EvaBuilder, VarRegistry};

    /// Figure 3 automaton.
    fn figure3() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q = b.add_states(10);
        b.set_initial(q[0]);
        b.set_final(q[9]);
        let ms = MarkerSet::new;
        b.add_var(q[0], ms().with_open(x), q[1]).unwrap();
        b.add_var(q[0], ms().with_open(y), q[2]).unwrap();
        b.add_var(q[0], ms().with_open(x).with_open(y), q[3]).unwrap();
        b.add_letter(q[3], ByteClass::from_bytes(b"ab"), q[3]);
        b.add_byte(q[1], b'a', q[4]);
        b.add_byte(q[2], b'a', q[5]);
        b.add_var(q[4], ms().with_open(y), q[6]).unwrap();
        b.add_var(q[5], ms().with_open(x), q[7]).unwrap();
        b.add_byte(q[6], b'b', q[8]);
        b.add_byte(q[7], b'b', q[8]);
        b.add_var(q[8], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.add_var(q[3], ms().with_close(x).with_close(y), q[9]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_reference_semantics() {
        let eva = figure3();
        for text in ["", "a", "ab", "abab", "ba"] {
            let doc = Document::from(text);
            let (got, _) = naive_enumerate(&eva, &doc);
            assert_eq!(got, eva.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn stats_report_runs_and_outputs() {
        let eva = figure3();
        let (out, stats) = naive_enumerate(&eva, &Document::from("ab"));
        assert_eq!(out.len(), 3);
        assert_eq!(stats.distinct_outputs, 3);
        assert_eq!(stats.runs_explored, 3);
    }

    #[test]
    fn deduplicates_nondeterministic_runs() {
        // A non-deterministic automaton where two runs produce the same mapping.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1a = b.add_state();
        let q1b = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x), q1a).unwrap();
        b.add_var(q0, ms().with_open(x), q1b).unwrap();
        b.add_byte(q1a, b'a', q0);
        b.add_byte(q1b, b'a', q0);
        // close x right before accepting
        let q3 = b.add_state();
        b.add_var(q0, ms().with_open(x), q3).unwrap();
        b.add_byte(q3, b'a', q3);
        b.add_var(q3, ms().with_close(x), q2).unwrap();
        let eva = b.build().unwrap();
        let (out, stats) = naive_enumerate(&eva, &Document::from("aa"));
        assert!(stats.runs_explored >= out.len());
        assert_eq!(out, eva.eval_naive(&Document::from("aa")));
    }
}
