//! # spanners-regex
//!
//! **Regex formulas** (RGX) with capture variables: the concrete syntax, the
//! reference semantics of Table 1, and compilation into variable-set automata
//! feeding the constant-delay evaluation pipeline of the paper.
//!
//! Quick start:
//!
//! ```
//! use spanners_regex::compile;
//! use spanners_core::Document;
//!
//! // Extract key/value pairs: a lowercase key, an '=', a numeric value.
//! let spanner = compile(".*!key{[a-z]+}=!value{[0-9]+}.*").unwrap();
//! let doc = Document::from("retries=3 timeout=250");
//! let results = spanner.mappings(&doc);
//! assert_eq!(spanner.count_u64(&doc).unwrap() as usize, results.len());
//! let key = spanner.registry().get("key").unwrap();
//! assert!(results.iter().any(|m| doc.span_bytes(m.get(key).unwrap()) == b"retries"));
//! ```
//!
//! * [`parse`] — concrete syntax → [`RegexAst`];
//! * [`eval_regex`] — Table 1 reference semantics (test oracle);
//! * [`regex_to_va`] — linear translation to a classical VA;
//! * [`compile`] — the whole pipeline to a [`spanners_core::CompiledSpanner`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod compile;
pub mod parser;
pub mod semantics;

pub use ast::RegexAst;
pub use compile::{compile, compile_ast, compile_with_options, regex_to_va};
pub use parser::parse;
pub use semantics::{eval_regex, eval_rel};
