//! A hand-written recursive-descent parser for regex formulas.
//!
//! Concrete syntax (a pragmatic superset of the paper's grammar):
//!
//! ```text
//! formula     ::= alternation
//! alternation ::= sequence ('|' sequence)*
//! sequence    ::= repeated*
//! repeated    ::= atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom        ::= '(' alternation ')'            grouping
//!               | '!' ident '{' alternation '}'  variable capture  !x{…}
//!               | '[' class ']'                  character class   [a-z0-9_], [^…]
//!               | '.'                            any byte
//!               | '\' escape                     \d \w \s \n \t \r \xHH and escaped metacharacters
//!               | literal byte
//! ```
//!
//! The empty pattern and the empty group `()` denote ε.

use crate::ast::RegexAst;
use spanners_core::{ByteClass, ParseError};

/// Parses a regex formula from its concrete syntax.
pub fn parse(pattern: &str) -> Result<RegexAst, ParseError> {
    let mut p = Parser { input: pattern.as_bytes(), pos: 0 };
    let ast = p.parse_alternation()?;
    if p.pos != p.input.len() {
        return Err(ParseError::new(p.pos, format!("unexpected character `{}`", p.peek_char())));
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_char(&self) -> char {
        self.peek().map(|b| b as char).unwrap_or('␄')
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(b) if b == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(ParseError::new(
                self.pos,
                format!("expected `{}`, found `{}`", expected as char, self.peek_char()),
            )),
        }
    }

    fn parse_alternation(&mut self) -> Result<RegexAst, ParseError> {
        let mut branches = vec![self.parse_sequence()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_sequence()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("length checked")
        } else {
            RegexAst::Alternation(branches)
        })
    }

    fn parse_sequence(&mut self) -> Result<RegexAst, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' || b == b'}' {
                break;
            }
            parts.push(self.parse_repeated()?);
        }
        Ok(RegexAst::concat(parts))
    }

    fn parse_repeated(&mut self) -> Result<RegexAst, ParseError> {
        let mut ast = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    ast = RegexAst::Star(Box::new(ast));
                }
                Some(b'+') => {
                    self.bump();
                    ast = RegexAst::Plus(Box::new(ast));
                }
                Some(b'?') => {
                    self.bump();
                    ast = RegexAst::Optional(Box::new(ast));
                }
                Some(b'{') if self.looks_like_counted_repeat() => {
                    self.bump();
                    let min = self.parse_number()?;
                    let max = if self.peek() == Some(b',') {
                        self.bump();
                        if self.peek() == Some(b'}') {
                            None
                        } else {
                            Some(self.parse_number()?)
                        }
                    } else {
                        Some(min)
                    };
                    self.eat(b'}')?;
                    if let Some(max) = max {
                        if max < min {
                            return Err(ParseError::new(
                                self.pos,
                                format!("invalid repetition range {{{min},{max}}}"),
                            ));
                        }
                    }
                    ast = RegexAst::Repeat { inner: Box::new(ast), min, max };
                }
                _ => break,
            }
        }
        Ok(ast)
    }

    /// Distinguishes `a{2,3}` (counted repetition) from a literal `{`.
    fn looks_like_counted_repeat(&self) -> bool {
        let mut i = self.pos + 1;
        let mut digits = 0;
        while let Some(&b) = self.input.get(i) {
            match b {
                b'0'..=b'9' => {
                    digits += 1;
                    i += 1;
                }
                b',' if digits > 0 => {
                    i += 1;
                    while let Some(&b2) = self.input.get(i) {
                        match b2 {
                            b'0'..=b'9' => i += 1,
                            b'}' => return true,
                            _ => return false,
                        }
                    }
                    return false;
                }
                b'}' => return digits > 0,
                _ => return false,
            }
        }
        false
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(ParseError::new(self.pos, "expected a number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse()
            .map_err(|_| ParseError::new(start, "repetition count too large"))
    }

    fn parse_atom(&mut self) -> Result<RegexAst, ParseError> {
        match self.peek() {
            None => Err(ParseError::new(self.pos, "unexpected end of pattern")),
            Some(b'(') => {
                self.bump();
                let inner = self.parse_alternation()?;
                self.eat(b')')?;
                Ok(inner)
            }
            Some(b'!') => {
                self.bump();
                let name = self.parse_ident()?;
                self.eat(b'{')?;
                let inner = self.parse_alternation()?;
                self.eat(b'}')?;
                Ok(RegexAst::capture(&name, inner))
            }
            Some(b'[') => {
                self.bump();
                let class = self.parse_class()?;
                Ok(RegexAst::Class(class))
            }
            Some(b'.') => {
                self.bump();
                Ok(RegexAst::Class(ByteClass::any()))
            }
            Some(b'\\') => {
                self.bump();
                let class = self.parse_escape()?;
                Ok(RegexAst::Class(class))
            }
            Some(b) if b"*+?)|]}".contains(&b) => Err(ParseError::new(
                self.pos,
                format!(
                    "unexpected `{}` (escape it with a backslash to match it literally)",
                    b as char
                ),
            )),
            Some(b) => {
                self.bump();
                Ok(RegexAst::byte(b))
            }
        }
    }

    fn parse_ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseError::new(self.pos, "expected a variable name after `!`"));
        }
        Ok(String::from_utf8(self.input[start..self.pos].to_vec()).expect("ASCII identifier"))
    }

    fn parse_escape(&mut self) -> Result<ByteClass, ParseError> {
        match self.bump() {
            None => Err(ParseError::new(self.pos, "dangling escape at end of pattern")),
            Some(b'd') => Ok(ByteClass::ascii_digits()),
            Some(b'w') => Ok(ByteClass::ascii_word()),
            Some(b's') => Ok(ByteClass::ascii_space()),
            Some(b'D') => Ok(ByteClass::ascii_digits().complement()),
            Some(b'W') => Ok(ByteClass::ascii_word().complement()),
            Some(b'S') => Ok(ByteClass::ascii_space().complement()),
            Some(b'n') => Ok(ByteClass::singleton(b'\n')),
            Some(b't') => Ok(ByteClass::singleton(b'\t')),
            Some(b'r') => Ok(ByteClass::singleton(b'\r')),
            Some(b'0') => Ok(ByteClass::singleton(0)),
            Some(b'x') => {
                let hi = self.parse_hex_digit()?;
                let lo = self.parse_hex_digit()?;
                Ok(ByteClass::singleton(hi * 16 + lo))
            }
            Some(b) if b.is_ascii_alphanumeric() => {
                Err(ParseError::new(self.pos - 1, format!("unknown escape `\\{}`", b as char)))
            }
            Some(b) => Ok(ByteClass::singleton(b)),
        }
    }

    fn parse_hex_digit(&mut self) -> Result<u8, ParseError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(ParseError::new(self.pos, "expected a hexadecimal digit")),
        }
    }

    fn parse_class(&mut self) -> Result<ByteClass, ParseError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut class = ByteClass::empty();
        if self.peek() == Some(b']') {
            // A literal `]` is allowed as the first member.
            self.bump();
            class.insert(b']');
        }
        loop {
            match self.peek() {
                None => return Err(ParseError::new(self.pos, "unterminated character class")),
                Some(b']') => {
                    self.bump();
                    break;
                }
                _ => {
                    let lo = self.parse_class_member()?;
                    if self.peek() == Some(b'-')
                        && self.input.get(self.pos + 1).is_some_and(|&b| b != b']')
                    {
                        self.bump();
                        let hi_class = self.parse_class_member()?;
                        let (Some(lo), Some(hi)) = (single(&lo), single(&hi_class)) else {
                            return Err(ParseError::new(
                                self.pos,
                                "character ranges require single characters on both sides",
                            ));
                        };
                        if hi < lo {
                            return Err(ParseError::new(self.pos, "invalid character range"));
                        }
                        class = class.union(&ByteClass::range(lo, hi));
                    } else {
                        class = class.union(&lo);
                    }
                }
            }
        }
        Ok(if negated { class.complement() } else { class })
    }

    fn parse_class_member(&mut self) -> Result<ByteClass, ParseError> {
        match self.bump() {
            None => Err(ParseError::new(self.pos, "unterminated character class")),
            Some(b'\\') => {
                self.pos -= 1;
                self.bump();
                self.parse_escape()
            }
            Some(b) => Ok(ByteClass::singleton(b)),
        }
    }
}

fn single(c: &ByteClass) -> Option<u8> {
    if c.len() == 1 {
        c.first()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::RegexAst as R;

    #[test]
    fn parse_literals_and_concat() {
        assert_eq!(parse("").unwrap(), R::Epsilon);
        assert_eq!(parse("a").unwrap(), R::byte(b'a'));
        assert_eq!(parse("abc").unwrap(), R::literal(b"abc"));
        assert_eq!(parse("()").unwrap(), R::Epsilon);
    }

    #[test]
    fn parse_alternation_and_grouping() {
        let ast = parse("ab|c").unwrap();
        assert_eq!(ast, R::alternation(vec![R::literal(b"ab"), R::byte(b'c')]));
        let ast = parse("a(b|c)d").unwrap();
        assert_eq!(
            ast,
            R::concat(vec![
                R::byte(b'a'),
                R::alternation(vec![R::byte(b'b'), R::byte(b'c')]),
                R::byte(b'd'),
            ])
        );
    }

    #[test]
    fn parse_postfix_operators() {
        assert_eq!(parse("a*").unwrap(), R::Star(Box::new(R::byte(b'a'))));
        assert_eq!(parse("a+").unwrap(), R::Plus(Box::new(R::byte(b'a'))));
        assert_eq!(parse("a?").unwrap(), R::Optional(Box::new(R::byte(b'a'))));
        assert_eq!(parse("(ab)*").unwrap(), R::Star(Box::new(R::literal(b"ab"))));
        // double postfix
        assert_eq!(parse("a*?").unwrap(), R::Optional(Box::new(R::Star(Box::new(R::byte(b'a'))))));
    }

    #[test]
    fn parse_counted_repetition() {
        assert_eq!(
            parse("a{3}").unwrap(),
            R::Repeat { inner: Box::new(R::byte(b'a')), min: 3, max: Some(3) }
        );
        assert_eq!(
            parse("a{2,5}").unwrap(),
            R::Repeat { inner: Box::new(R::byte(b'a')), min: 2, max: Some(5) }
        );
        assert_eq!(
            parse("a{2,}").unwrap(),
            R::Repeat { inner: Box::new(R::byte(b'a')), min: 2, max: None }
        );
        assert!(parse("a{5,2}").is_err());
        // `{` not followed by a count is a literal brace
        assert_eq!(parse("a{b").unwrap(), R::literal(b"a{b"));
    }

    #[test]
    fn parse_captures() {
        let ast = parse("!x{a}").unwrap();
        assert_eq!(ast, R::capture("x", R::byte(b'a')));
        let ast = parse("!name{[a-z]+}").unwrap();
        assert_eq!(
            ast,
            R::capture("name", R::Plus(Box::new(R::Class(ByteClass::range(b'a', b'z')))))
        );
        // nested captures
        let ast = parse("!x{a!y{b}c}").unwrap();
        assert_eq!(
            ast,
            R::capture(
                "x",
                R::concat(vec![R::byte(b'a'), R::capture("y", R::byte(b'b')), R::byte(b'c')])
            )
        );
        assert!(parse("!{a}").is_err()); // missing name
        assert!(parse("!x{a").is_err()); // unterminated
    }

    #[test]
    fn parse_classes() {
        assert_eq!(parse("[abc]").unwrap(), R::Class(ByteClass::from_bytes(b"abc")));
        assert_eq!(parse("[a-c]").unwrap(), R::Class(ByteClass::range(b'a', b'c')));
        assert_eq!(
            parse("[a-cx]").unwrap(),
            R::Class(ByteClass::range(b'a', b'c').union(&ByteClass::singleton(b'x')))
        );
        // negation
        let ast = parse("[^a]").unwrap();
        match ast {
            R::Class(c) => {
                assert!(!c.contains(b'a'));
                assert!(c.contains(b'b'));
                assert_eq!(c.len(), 255);
            }
            other => panic!("expected class, got {other:?}"),
        }
        // leading ] is literal
        assert_eq!(parse("[]a]").unwrap(), R::Class(ByteClass::from_bytes(b"]a")));
        // escapes inside classes
        assert_eq!(
            parse("[\\d_]").unwrap(),
            R::Class(ByteClass::ascii_digits().union(&ByteClass::singleton(b'_')))
        );
        // trailing dash is literal
        assert_eq!(parse("[a-]").unwrap(), R::Class(ByteClass::from_bytes(b"a-")));
        assert!(parse("[abc").is_err());
        assert!(parse("[c-a]").is_err());
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(parse("\\d").unwrap(), R::Class(ByteClass::ascii_digits()));
        assert_eq!(parse("\\w").unwrap(), R::Class(ByteClass::ascii_word()));
        assert_eq!(parse("\\s").unwrap(), R::Class(ByteClass::ascii_space()));
        assert_eq!(parse("\\.").unwrap(), R::byte(b'.'));
        assert_eq!(parse("\\\\").unwrap(), R::byte(b'\\'));
        assert_eq!(parse("\\n").unwrap(), R::byte(b'\n'));
        assert_eq!(parse("\\x41").unwrap(), R::byte(b'A'));
        match parse("\\D").unwrap() {
            R::Class(c) => {
                assert!(!c.contains(b'5'));
                assert!(c.contains(b'a'));
            }
            other => panic!("expected class, got {other:?}"),
        }
        assert!(parse("\\q").is_err());
        assert!(parse("\\x4").is_err());
        assert!(parse("\\").is_err());
    }

    #[test]
    fn parse_dot() {
        assert_eq!(parse(".").unwrap(), R::Class(ByteClass::any()));
        assert_eq!(parse(".*").unwrap(), R::Star(Box::new(R::Class(ByteClass::any()))));
    }

    #[test]
    fn errors_report_offsets() {
        let err = parse("a)").unwrap_err();
        assert_eq!(err.offset, 1);
        let err = parse("(a").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = parse("*a").unwrap_err();
        assert_eq!(err.offset, 0);
        let err = parse("a|*").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn example_2_1_pattern_parses() {
        // The Example 2.1 formula: Σ* name{γn} ␣ ⟨(email{γe} ∨ phone{γp})⟩ Σ*
        // rendered in our concrete syntax.
        let pattern = r".*!name{[A-Z][a-z]+} <(!email{[a-z.]+@[a-z.]+}|!phone{[0-9-]+})>.*";
        let ast = parse(pattern).unwrap();
        let vars: Vec<String> = ast.variables().into_iter().collect();
        assert_eq!(vars, vec!["email", "name", "phone"]);
        assert!(!ast.is_functional()); // email/phone are alternatives, so not functional
    }

    #[test]
    fn round_trip_display_then_parse() {
        for pattern in [
            "abc",
            "a|b|c",
            "(ab)*c+d?",
            "!x{[a-z]+}@!y{[a-z]+}",
            ".*!n{\\d{2,4}}.*",
            "[^x]*",
            "a{2,}",
        ] {
            let ast = parse(pattern).unwrap();
            let rendered = ast.to_string();
            let reparsed = parse(&rendered).unwrap_or_else(|e| {
                panic!("re-parsing {rendered:?} (from {pattern:?}) failed: {e}")
            });
            assert_eq!(ast, reparsed, "round trip of {pattern:?} via {rendered:?}");
        }
    }
}
