//! The reference semantics of regex formulas (Table 1 of the paper).
//!
//! `⟦γ⟧(d)` is defined through the auxiliary relation `[γ](d)` of pairs
//! `(s, µ)` where `s` is a span of `d` matched by `γ` and `µ` the mapping
//! produced as a side effect. This module implements that definition literally,
//! by structural induction — it is intentionally naive (worst-case exponential)
//! and serves as the ground-truth oracle for differential tests against the
//! automaton pipeline. Never use it on large documents.

use crate::ast::RegexAst;
use spanners_core::{Document, Mapping, Span, SpannerError, VarRegistry};
use std::collections::BTreeSet;

/// A set of `(span, mapping)` pairs — the value of `[γ](d)` in Table 1.
type Rel = BTreeSet<(Span, Mapping)>;

/// Evaluates a regex formula over a document according to Table 1, returning
/// `⟦γ⟧(d)` (the mappings of matches covering the whole document), together
/// with the registry that maps the formula's variable names to ids.
pub fn eval_regex(
    ast: &RegexAst,
    doc: &Document,
) -> Result<(Vec<Mapping>, VarRegistry), SpannerError> {
    let mut registry = VarRegistry::new();
    for name in ast.variables() {
        registry.intern(&name)?;
    }
    let rel = eval_rel(ast, doc, &registry)?;
    let full = doc.full_span();
    let out: Vec<Mapping> = rel.into_iter().filter(|(s, _)| *s == full).map(|(_, m)| m).collect();
    Ok((out, registry))
}

/// Evaluates the auxiliary relation `[γ](d)`.
pub fn eval_rel(
    ast: &RegexAst,
    doc: &Document,
    registry: &VarRegistry,
) -> Result<Rel, SpannerError> {
    Ok(match ast {
        RegexAst::Epsilon => (0..=doc.len()).map(|i| (Span::empty_at(i), Mapping::new())).collect(),
        RegexAst::Class(c) => (0..doc.len())
            .filter(|&i| c.contains(doc.bytes()[i]))
            .map(|i| (Span::new_unchecked(i, i + 1), Mapping::new()))
            .collect(),
        RegexAst::Capture(name, inner) => {
            let var = registry.get(name).ok_or_else(|| SpannerError::InvalidVariable {
                var: 0,
                num_vars: registry.len(),
            })?;
            eval_rel(inner, doc, registry)?
                .into_iter()
                .filter(|(_, m)| !m.contains(var))
                .map(|(s, m)| (s, m.with(var, s)))
                .collect()
        }
        RegexAst::Concat(parts) => {
            let mut acc: Rel =
                (0..=doc.len()).map(|i| (Span::empty_at(i), Mapping::new())).collect();
            for p in parts {
                let next = eval_rel(p, doc, registry)?;
                acc = combine(&acc, &next);
            }
            acc
        }
        RegexAst::Alternation(parts) => {
            let mut acc = Rel::new();
            for p in parts {
                acc.extend(eval_rel(p, doc, registry)?);
            }
            acc
        }
        RegexAst::Star(inner) => star(&eval_rel(inner, doc, registry)?, doc),
        RegexAst::Plus(inner) => {
            let base = eval_rel(inner, doc, registry)?;
            combine(&base, &star(&base, doc))
        }
        RegexAst::Optional(inner) => {
            let mut acc: Rel =
                (0..=doc.len()).map(|i| (Span::empty_at(i), Mapping::new())).collect();
            acc.extend(eval_rel(inner, doc, registry)?);
            acc
        }
        RegexAst::Repeat { inner, min, max } => {
            let base = eval_rel(inner, doc, registry)?;
            let eps: Rel = (0..=doc.len()).map(|i| (Span::empty_at(i), Mapping::new())).collect();
            let mut acc = eps.clone();
            for _ in 0..*min {
                acc = combine(&acc, &base);
            }
            match max {
                None => combine(&acc, &star(&base, doc)),
                Some(max) => {
                    let mut result = acc.clone();
                    for _ in *min..*max {
                        acc = combine(&acc, &base);
                        result.extend(acc.clone());
                    }
                    result
                }
            }
        }
    })
}

/// The concatenation rule of Table 1: join adjacent spans with disjoint-domain
/// mappings.
fn combine(left: &Rel, right: &Rel) -> Rel {
    let mut out = Rel::new();
    for (s1, m1) in left {
        for (s2, m2) in right {
            if let Some(s) = s1.concat(s2) {
                if m1.domain().is_disjoint(&m2.domain()) {
                    let merged = m1.union(m2).expect("disjoint domains are always compatible");
                    out.insert((s, merged));
                }
            }
        }
    }
    out
}

/// The Kleene-star rule of Table 1: `[γ*] = [ε] ∪ [γ] ∪ [γ²] ∪ …`, computed as
/// a least fixpoint (the chain stabilises because spans and domains are finite).
fn star(base: &Rel, doc: &Document) -> Rel {
    let mut acc: Rel = (0..=doc.len()).map(|i| (Span::empty_at(i), Mapping::new())).collect();
    loop {
        let next = combine(&acc, base);
        let before = acc.len();
        acc.extend(next);
        if acc.len() == before {
            return acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval(pattern: &str, doc: &str) -> Vec<Mapping> {
        let ast = parse(pattern).unwrap();
        let (mut out, _) = eval_regex(&ast, &Document::from(doc)).unwrap();
        out.sort();
        out
    }

    fn eval_named(pattern: &str, doc: &str) -> (Vec<Mapping>, VarRegistry) {
        let ast = parse(pattern).unwrap();
        let (mut out, reg) = eval_regex(&ast, &Document::from(doc)).unwrap();
        out.sort();
        (out, reg)
    }

    #[test]
    fn plain_regular_expressions_boolean_semantics() {
        // Without variables, ⟦γ⟧(d) is {∅} if d matches γ entirely, {} otherwise.
        assert_eq!(eval("abc", "abc"), vec![Mapping::new()]);
        assert!(eval("abc", "abd").is_empty());
        assert!(eval("abc", "ab").is_empty());
        assert_eq!(eval("a*", ""), vec![Mapping::new()]);
        assert_eq!(eval("a*", "aaaa"), vec![Mapping::new()]);
        assert!(eval("a*", "ab").is_empty());
        assert_eq!(eval("a|b", "b"), vec![Mapping::new()]);
        assert_eq!(eval("(ab)+", "abab"), vec![Mapping::new()]);
        assert!(eval("(ab)+", "").is_empty());
        assert_eq!(eval("a?b", "b"), vec![Mapping::new()]);
        assert_eq!(eval("a{2,3}", "aa"), vec![Mapping::new()]);
        assert_eq!(eval("a{2,3}", "aaa"), vec![Mapping::new()]);
        assert!(eval("a{2,3}", "aaaa").is_empty());
        assert!(eval("a{2}", "a").is_empty());
        assert_eq!(eval("a{2,}", "aaaaa"), vec![Mapping::new()]);
    }

    #[test]
    fn single_capture_every_position() {
        // .*!x{a}.* captures every occurrence of `a`.
        let (out, reg) = eval_named(".*!x{a}.*", "abca");
        let x = reg.get("x").unwrap();
        let spans: Vec<Span> = out.iter().map(|m| m.get(x).unwrap()).collect();
        assert_eq!(spans, vec![Span::new(0, 1).unwrap(), Span::new(3, 4).unwrap()]);
    }

    #[test]
    fn all_spans_capture_quadratic() {
        // The introduction's example: Σ* x{Σ*} Σ* captures every span.
        let (out, _) = eval_named(".*!x{.*}.*", "abc");
        // (n+1)(n+2)/2 spans for n = 3.
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn nested_captures_cubic() {
        // Σ* x1{Σ* x2{Σ*} Σ*} Σ*: x2 inside x1 — Ω(|d|²) and more outputs.
        let (out, reg) = eval_named(".*!x1{.*!x2{.*}.*}.*", "ab");
        let x1 = reg.get("x1").unwrap();
        let x2 = reg.get("x2").unwrap();
        for m in &out {
            let s1 = m.get(x1).unwrap();
            let s2 = m.get(x2).unwrap();
            assert!(s1.start() <= s2.start() && s2.end() <= s1.end(), "x2 nested in x1");
        }
        // number of pairs (s1 ⊇ s2) over a length-2 document: enumerate spans of
        // "ab": 6 spans; pairs with containment: Σ over s1 of #subspans.
        // spans: [0,0⟩ [0,1⟩ [0,2⟩ [1,1⟩ [1,2⟩ [2,2⟩ → subspan counts 1,3,6,1,3,1 = 15.
        assert_eq!(out.len(), 15);
    }

    #[test]
    fn capture_under_alternation() {
        let (out, reg) = eval_named("!x{a}|!y{b}", "a");
        let x = reg.get("x").unwrap();
        let y = reg.get("y").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(x), Some(Span::new(0, 1).unwrap()));
        assert_eq!(out[0].get(y), None);
        let (out, _) = eval_named("!x{a}|!y{b}", "b");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(reg.get("y").unwrap_or(y)));
    }

    #[test]
    fn capture_of_empty_span() {
        let (out, reg) = eval_named("a!x{}b", "ab");
        let x = reg.get("x").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(x), Some(Span::new(1, 1).unwrap()));
    }

    #[test]
    fn optional_capture_produces_partial_mappings() {
        // (!x{a})? on "a": either the branch with x or the ε branch — but the ε
        // branch only matches the empty document, so here only the capture.
        let (out, reg) = eval_named("(!x{a})?", "a");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(reg.get("x").unwrap()));
        // On the empty document both branches match but produce {} and {x→ε}… the
        // capture branch matches the empty document only if `a` can match ε — it
        // cannot, so only the empty mapping remains.
        let (out, _) = eval_named("(!x{a})?", "");
        assert_eq!(out, vec![Mapping::new()]);
    }

    #[test]
    fn starred_capture_at_most_once() {
        // (!x{a})* : iterations must use disjoint domains, so x can be captured at
        // most once; the star therefore matches ε or a single `a`.
        let (out, _) = eval_named("(!x{a})*", "a");
        assert_eq!(out.len(), 1);
        assert!(eval("(!x{a})*", "aa").is_empty());
        let (out, _) = eval_named("(!x{a})*", "");
        assert_eq!(out, vec![Mapping::new()]);
    }

    #[test]
    fn repeated_capture_in_concat_yields_nothing() {
        // !x{a}!x{a}: the two captures clash (domains not disjoint), so no output.
        assert!(eval("!x{a}!x{a}", "aa").is_empty());
        // but the same span captured twice through an alternation is fine
        assert_eq!(eval("!x{a}|!x{a}", "a").len(), 1);
    }

    #[test]
    fn figure_1_example() {
        // The paper's running example (Figure 1 / Example 2.1), with simplified
        // sub-formulas for names, e-mails and phone numbers.
        let doc = "John xj@g.bey, Jane x555-12y";
        let pattern = ".*!name{[A-Z][a-z]+} x(!email{[a-z.@]+}|!phone{[0-9-]+})y.*";
        let (out, reg) = eval_named(pattern, doc);
        let name = reg.get("name").unwrap();
        let email = reg.get("email").unwrap();
        let phone = reg.get("phone").unwrap();
        // µ1: name → [1,5⟩, email → [7,13⟩ ; µ2: name → [16,20⟩, phone → [22,28⟩
        let mu1 = Mapping::from_pairs([
            (name, Span::from_paper(1, 5).unwrap()),
            (email, Span::from_paper(7, 13).unwrap()),
        ]);
        let mu2 = Mapping::from_pairs([
            (name, Span::from_paper(16, 20).unwrap()),
            (phone, Span::from_paper(22, 28).unwrap()),
        ]);
        assert!(out.contains(&mu1), "µ1 missing from {out:?}");
        assert!(out.contains(&mu2), "µ2 missing from {out:?}");
    }

    #[test]
    fn word_boundaries_with_classes() {
        let (out, reg) = eval_named("[^0-9]*!num{[0-9]+}[^0-9]*", "ab123cd");
        let num = reg.get("num").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(num), Some(Span::new(2, 5).unwrap()));
    }

    #[test]
    fn unknown_variables_are_impossible_by_construction() {
        // eval_regex interns every variable of the formula, so Capture always
        // resolves; this test simply exercises a formula with several variables.
        let (out, reg) = eval_named("!a{x}!b{y}!c{z}", "xyz");
        assert_eq!(reg.len(), 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }
}
