//! The abstract syntax of regex formulas (RGX).
//!
//! The paper's grammar is `γ ::= ε | a | x{γ} | γ·γ | γ∨γ | γ*`. We extend it
//! with the practical sugar every extraction engine supports — character
//! classes, `+`, `?`, bounded repetition — all of which desugar to the core
//! grammar. Captures are written `!name{γ}` in the concrete syntax (REmatch
//! style) to keep them unambiguous; the AST stores the variable name.

use spanners_core::ByteClass;
use std::collections::BTreeSet;
use std::fmt;

/// A regex formula with capture variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexAst {
    /// The empty word ε.
    Epsilon,
    /// A single byte drawn from a byte class (a literal letter `a` is the
    /// singleton class `{a}`; `.` is the full class Σ).
    Class(ByteClass),
    /// A variable capture `!x{γ}`.
    Capture(String, Box<RegexAst>),
    /// Concatenation `γ1 · γ2 · …` (empty list = ε).
    Concat(Vec<RegexAst>),
    /// Alternation `γ1 ∨ γ2 ∨ …` (at least two branches after parsing).
    Alternation(Vec<RegexAst>),
    /// Kleene star `γ*`.
    Star(Box<RegexAst>),
    /// One-or-more `γ+` (sugar for `γ · γ*`).
    Plus(Box<RegexAst>),
    /// Zero-or-one `γ?` (sugar for `γ ∨ ε`).
    Optional(Box<RegexAst>),
    /// Bounded repetition `γ{m}`, `γ{m,}` or `γ{m,n}`.
    Repeat {
        /// The repeated sub-formula.
        inner: Box<RegexAst>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions (`None` = unbounded).
        max: Option<u32>,
    },
}

impl RegexAst {
    /// A literal byte.
    pub fn byte(b: u8) -> RegexAst {
        RegexAst::Class(ByteClass::singleton(b))
    }

    /// A literal byte string (concatenation of its bytes).
    pub fn literal(s: &[u8]) -> RegexAst {
        match s.len() {
            0 => RegexAst::Epsilon,
            1 => RegexAst::byte(s[0]),
            _ => RegexAst::Concat(s.iter().map(|&b| RegexAst::byte(b)).collect()),
        }
    }

    /// The capture `!name{inner}`.
    pub fn capture(name: &str, inner: RegexAst) -> RegexAst {
        RegexAst::Capture(name.to_string(), Box::new(inner))
    }

    /// Concatenation of the given formulas (flattening nested concatenations).
    pub fn concat(parts: Vec<RegexAst>) -> RegexAst {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                RegexAst::Concat(inner) => flat.extend(inner),
                RegexAst::Epsilon => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => RegexAst::Epsilon,
            1 => flat.pop().expect("length checked"),
            _ => RegexAst::Concat(flat),
        }
    }

    /// Alternation of the given formulas (flattening nested alternations).
    pub fn alternation(parts: Vec<RegexAst>) -> RegexAst {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                RegexAst::Alternation(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => RegexAst::Epsilon,
            1 => flat.pop().expect("length checked"),
            _ => RegexAst::Alternation(flat),
        }
    }

    /// The set of variable names occurring in the formula, the paper's `var(γ)`,
    /// in sorted order.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<String>) {
        match self {
            RegexAst::Epsilon | RegexAst::Class(_) => {}
            RegexAst::Capture(name, inner) => {
                out.insert(name.clone());
                inner.collect_variables(out);
            }
            RegexAst::Concat(parts) | RegexAst::Alternation(parts) => {
                for p in parts {
                    p.collect_variables(out);
                }
            }
            RegexAst::Star(inner)
            | RegexAst::Plus(inner)
            | RegexAst::Optional(inner)
            | RegexAst::Repeat { inner, .. } => inner.collect_variables(out),
        }
    }

    /// The paper's size measure `|γ|`: number of alphabet symbols (byte classes)
    /// and operators in the formula.
    pub fn size(&self) -> usize {
        match self {
            RegexAst::Epsilon | RegexAst::Class(_) => 1,
            RegexAst::Capture(_, inner) => 1 + inner.size(),
            RegexAst::Concat(parts) | RegexAst::Alternation(parts) => {
                parts.len().saturating_sub(1) + parts.iter().map(RegexAst::size).sum::<usize>()
            }
            RegexAst::Star(inner)
            | RegexAst::Plus(inner)
            | RegexAst::Optional(inner)
            | RegexAst::Repeat { inner, .. } => 1 + inner.size(),
        }
    }

    /// Syntactic functionality check (Fagin et al.): whether every mapping
    /// produced by the formula is guaranteed to assign **all** its variables.
    ///
    /// * a capture is functional if its body is and does not re-capture the
    ///   same variable;
    /// * a concatenation is functional if its parts are and use disjoint
    ///   variables;
    /// * an alternation is functional if its branches are and use the *same*
    ///   variables;
    /// * starred / optional / repeated sub-formulas must not capture at all
    ///   (except `γ{m,n}` with `m ≥ 1` and `n = 1`, which is just `γ`).
    pub fn is_functional(&self) -> bool {
        self.functional_check().is_some()
    }

    /// Returns the variable set if functional, `None` otherwise.
    fn functional_check(&self) -> Option<BTreeSet<String>> {
        match self {
            RegexAst::Epsilon | RegexAst::Class(_) => Some(BTreeSet::new()),
            RegexAst::Capture(name, inner) => {
                let mut vars = inner.functional_check()?;
                if vars.contains(name) {
                    return None;
                }
                vars.insert(name.clone());
                Some(vars)
            }
            RegexAst::Concat(parts) => {
                let mut vars: BTreeSet<String> = BTreeSet::new();
                for p in parts {
                    let pv = p.functional_check()?;
                    if !vars.is_disjoint(&pv) {
                        return None;
                    }
                    vars.extend(pv);
                }
                Some(vars)
            }
            RegexAst::Alternation(parts) => {
                let mut iter = parts.iter();
                let first = iter.next()?.functional_check()?;
                for p in iter {
                    if p.functional_check()? != first {
                        return None;
                    }
                }
                Some(first)
            }
            RegexAst::Star(inner) | RegexAst::Optional(inner) => {
                let vars = inner.functional_check()?;
                if vars.is_empty() {
                    Some(vars)
                } else {
                    None
                }
            }
            RegexAst::Plus(inner) => {
                // γ+ = γ · γ*: functional iff γ is functional and γ* is, i.e.
                // γ has no variables — unless the star part can only repeat 0
                // times, which we cannot know syntactically, so require no vars.
                let vars = inner.functional_check()?;
                if vars.is_empty() {
                    Some(vars)
                } else {
                    None
                }
            }
            RegexAst::Repeat { inner, min, max } => {
                let vars = inner.functional_check()?;
                if vars.is_empty() || (*min == 1 && *max == Some(1)) {
                    Some(vars)
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for RegexAst {
    /// Renders the formula back into the concrete syntax accepted by the parser.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_group(ast: &RegexAst) -> bool {
            matches!(ast, RegexAst::Concat(_) | RegexAst::Alternation(_))
        }
        fn write_atom(ast: &RegexAst, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if needs_group(ast) {
                write!(f, "({ast})")
            } else {
                write!(f, "{ast}")
            }
        }
        match self {
            RegexAst::Epsilon => write!(f, "()"),
            RegexAst::Class(c) => {
                if *c == ByteClass::any() {
                    write!(f, ".")
                } else if c.len() == 1 {
                    let b = c.first().expect("non-empty class");
                    if b"()[]{}|*+?.!\\".contains(&b) {
                        write!(f, "\\{}", b as char)
                    } else if b.is_ascii_graphic() || b == b' ' {
                        write!(f, "{}", b as char)
                    } else {
                        write!(f, "\\x{b:02x}")
                    }
                } else {
                    write!(f, "{c}")
                }
            }
            RegexAst::Capture(name, inner) => write!(f, "!{name}{{{inner}}}"),
            RegexAst::Concat(parts) => {
                for p in parts {
                    if matches!(p, RegexAst::Alternation(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            RegexAst::Alternation(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            RegexAst::Star(inner) => {
                write_atom(inner, f)?;
                write!(f, "*")
            }
            RegexAst::Plus(inner) => {
                write_atom(inner, f)?;
                write!(f, "+")
            }
            RegexAst::Optional(inner) => {
                write_atom(inner, f)?;
                write!(f, "?")
            }
            RegexAst::Repeat { inner, min, max } => {
                write_atom(inner, f)?;
                match max {
                    Some(max) if max == min => write!(f, "{{{min}}}"),
                    Some(max) => write!(f, "{{{min},{max}}}"),
                    None => write!(f, "{{{min},}}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_byte() {
        assert_eq!(RegexAst::literal(b""), RegexAst::Epsilon);
        assert_eq!(RegexAst::literal(b"a"), RegexAst::byte(b'a'));
        assert_eq!(
            RegexAst::literal(b"ab"),
            RegexAst::Concat(vec![RegexAst::byte(b'a'), RegexAst::byte(b'b')])
        );
    }

    #[test]
    fn concat_flattens() {
        let inner = RegexAst::concat(vec![RegexAst::byte(b'a'), RegexAst::byte(b'b')]);
        let outer = RegexAst::concat(vec![inner, RegexAst::Epsilon, RegexAst::byte(b'c')]);
        assert_eq!(outer, RegexAst::literal(b"abc"));
        assert_eq!(RegexAst::concat(vec![]), RegexAst::Epsilon);
        assert_eq!(RegexAst::concat(vec![RegexAst::byte(b'x')]), RegexAst::byte(b'x'));
    }

    #[test]
    fn alternation_flattens() {
        let inner = RegexAst::alternation(vec![RegexAst::byte(b'a'), RegexAst::byte(b'b')]);
        let outer = RegexAst::alternation(vec![inner, RegexAst::byte(b'c')]);
        match outer {
            RegexAst::Alternation(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn variables_collected_in_order() {
        let ast = RegexAst::concat(vec![
            RegexAst::capture("b", RegexAst::byte(b'x')),
            RegexAst::capture("a", RegexAst::capture("c", RegexAst::byte(b'y'))),
        ]);
        let vars: Vec<String> = ast.variables().into_iter().collect();
        assert_eq!(vars, vec!["a", "b", "c"]);
    }

    #[test]
    fn size_measure() {
        // a · b has two symbols and one operator.
        assert_eq!(RegexAst::literal(b"ab").size(), 3);
        assert_eq!(RegexAst::Epsilon.size(), 1);
        let ast = RegexAst::capture("x", RegexAst::Star(Box::new(RegexAst::byte(b'a'))));
        assert_eq!(ast.size(), 3);
    }

    #[test]
    fn functional_checks() {
        // !x{a} is functional.
        assert!(RegexAst::capture("x", RegexAst::byte(b'a')).is_functional());
        // !x{a} · !y{b} is functional.
        assert!(RegexAst::concat(vec![
            RegexAst::capture("x", RegexAst::byte(b'a')),
            RegexAst::capture("y", RegexAst::byte(b'b')),
        ])
        .is_functional());
        // !x{a} · !x{b} is not (variable reused in a concatenation).
        assert!(!RegexAst::concat(vec![
            RegexAst::capture("x", RegexAst::byte(b'a')),
            RegexAst::capture("x", RegexAst::byte(b'b')),
        ])
        .is_functional());
        // !x{a} ∨ !x{b} is functional (same variables on both branches).
        assert!(RegexAst::alternation(vec![
            RegexAst::capture("x", RegexAst::byte(b'a')),
            RegexAst::capture("x", RegexAst::byte(b'b')),
        ])
        .is_functional());
        // !x{a} ∨ b is not (branches differ in variables).
        assert!(!RegexAst::alternation(vec![
            RegexAst::capture("x", RegexAst::byte(b'a')),
            RegexAst::byte(b'b'),
        ])
        .is_functional());
        // (!x{a})* is not functional; a* is.
        assert!(
            !RegexAst::Star(Box::new(RegexAst::capture("x", RegexAst::byte(b'a')))).is_functional()
        );
        assert!(RegexAst::Star(Box::new(RegexAst::byte(b'a'))).is_functional());
        // nested capture of the same name is not functional.
        assert!(
            !RegexAst::capture("x", RegexAst::capture("x", RegexAst::byte(b'a'))).is_functional()
        );
        // optional captures are not functional.
        assert!(!RegexAst::Optional(Box::new(RegexAst::capture("x", RegexAst::byte(b'a'))))
            .is_functional());
    }

    #[test]
    fn display_round_trippable_forms() {
        let ast = RegexAst::concat(vec![
            RegexAst::Star(Box::new(RegexAst::Class(ByteClass::any()))),
            RegexAst::capture(
                "x",
                RegexAst::Plus(Box::new(RegexAst::Class(ByteClass::ascii_digits()))),
            ),
        ]);
        let rendered = ast.to_string();
        assert!(rendered.contains(".*"));
        assert!(rendered.contains("!x{"));
        // escaped metacharacter
        assert_eq!(RegexAst::byte(b'.').to_string(), "\\.");
        assert_eq!(RegexAst::byte(b'a').to_string(), "a");
        // repetition forms
        let r = RegexAst::Repeat { inner: Box::new(RegexAst::byte(b'a')), min: 2, max: Some(4) };
        assert_eq!(r.to_string(), "a{2,4}");
        let r = RegexAst::Repeat { inner: Box::new(RegexAst::byte(b'a')), min: 3, max: Some(3) };
        assert_eq!(r.to_string(), "a{3}");
        let r = RegexAst::Repeat { inner: Box::new(RegexAst::byte(b'a')), min: 1, max: None };
        assert_eq!(r.to_string(), "a{1,}");
    }

    #[test]
    fn alternation_inside_concat_is_grouped() {
        let ast = RegexAst::concat(vec![
            RegexAst::byte(b'a'),
            RegexAst::alternation(vec![RegexAst::byte(b'b'), RegexAst::byte(b'c')]),
        ]);
        assert_eq!(ast.to_string(), "a(b|c)");
    }
}
