//! Compilation of regex formulas into classical variable-set automata.
//!
//! The paper notes (Section 4, citing Fagin et al.) that RGX formulas translate
//! into VA in linear time. We use the standard Thompson construction over an
//! intermediate ε-NFA whose labels are byte classes or variable markers, then
//! eliminate ε-transitions to obtain a [`Va`]. Combined with
//! `spanners_automata::compile_va` this yields the end-to-end pipeline
//! *pattern → VA → deterministic sequential eVA → constant-delay evaluation*.

use crate::ast::RegexAst;
use spanners_automata::{compile_va, CompileOptions, Va, VaBuilder};
use spanners_core::{ByteClass, CompiledSpanner, Marker, SpannerError, VarRegistry};

/// Labels of the intermediate Thompson ε-NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EpsLabel {
    Eps,
    Class(ByteClass),
    Marker(Marker),
}

/// The intermediate Thompson automaton.
struct EpsNfa {
    transitions: Vec<Vec<(EpsLabel, usize)>>,
}

impl EpsNfa {
    fn new() -> Self {
        EpsNfa { transitions: Vec::new() }
    }

    fn add_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn add(&mut self, from: usize, label: EpsLabel, to: usize) {
        self.transitions[from].push((label, to));
    }
}

/// A compiled fragment with unique entry and exit states.
#[derive(Clone, Copy)]
struct Frag {
    start: usize,
    end: usize,
}

/// Translates a regex formula into an equivalent classical VA (linear time in
/// the size of the formula, up to the expansion of counted repetitions).
pub fn regex_to_va(ast: &RegexAst) -> Result<Va, SpannerError> {
    // Intern the formula's variables in sorted-name order so that the automaton
    // registry matches the one produced by the reference semantics.
    let mut registry = VarRegistry::new();
    for name in ast.variables() {
        registry.intern(&name)?;
    }

    let mut nfa = EpsNfa::new();
    let frag = build(ast, &mut nfa, &registry)?;

    // ε-elimination: keep the original states, add, for every state q and every
    // state p in its ε-closure, the non-ε transitions of p; a state is final if
    // its ε-closure contains the fragment's exit state.
    let closures: Vec<Vec<usize>> =
        (0..nfa.transitions.len()).map(|q| eps_closure(&nfa, q)).collect();

    let mut builder = VaBuilder::new(registry);
    let states: Vec<usize> = (0..nfa.transitions.len()).map(|_| builder.add_state()).collect();
    builder.set_initial(states[frag.start]);
    for q in 0..nfa.transitions.len() {
        if closures[q].contains(&frag.end) {
            builder.set_final(states[q]);
        }
        for &p in &closures[q] {
            for (label, to) in &nfa.transitions[p] {
                match label {
                    EpsLabel::Eps => {}
                    EpsLabel::Class(c) => builder.add_letter(states[q], *c, states[*to]),
                    EpsLabel::Marker(m) => builder.add_marker(states[q], *m, states[*to]),
                }
            }
        }
    }
    builder.build()
}

/// Parses and compiles a pattern all the way to a [`CompiledSpanner`] ready for
/// constant-delay evaluation: pattern → RGX → VA → deterministic sequential eVA.
pub fn compile(pattern: &str) -> Result<CompiledSpanner, SpannerError> {
    compile_with_options(pattern, CompileOptions::default())
}

/// Like [`compile`], with explicit resource limits for the automaton
/// constructions (Section 4 translations are exponential in the worst case).
pub fn compile_with_options(
    pattern: &str,
    opts: CompileOptions,
) -> Result<CompiledSpanner, SpannerError> {
    let ast = crate::parser::parse(pattern)?;
    compile_ast(&ast, opts)
}

/// Compiles an already-parsed formula to a [`CompiledSpanner`].
pub fn compile_ast(ast: &RegexAst, opts: CompileOptions) -> Result<CompiledSpanner, SpannerError> {
    let va = regex_to_va(ast)?;
    let det = compile_va(&va, opts)?;
    Ok(CompiledSpanner::from_det(det))
}

fn build(ast: &RegexAst, nfa: &mut EpsNfa, registry: &VarRegistry) -> Result<Frag, SpannerError> {
    Ok(match ast {
        RegexAst::Epsilon => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add(s, EpsLabel::Eps, e);
            Frag { start: s, end: e }
        }
        RegexAst::Class(c) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add(s, EpsLabel::Class(*c), e);
            Frag { start: s, end: e }
        }
        RegexAst::Capture(name, inner) => {
            let var = registry
                .get(name)
                .ok_or(SpannerError::InvalidVariable { var: 0, num_vars: registry.len() })?;
            let f = build(inner, nfa, registry)?;
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add(s, EpsLabel::Marker(Marker::Open(var)), f.start);
            nfa.add(f.end, EpsLabel::Marker(Marker::Close(var)), e);
            Frag { start: s, end: e }
        }
        RegexAst::Concat(parts) => {
            let mut frags = Vec::with_capacity(parts.len());
            for p in parts {
                frags.push(build(p, nfa, registry)?);
            }
            match frags.len() {
                0 => build(&RegexAst::Epsilon, nfa, registry)?,
                _ => {
                    for w in frags.windows(2) {
                        nfa.add(w[0].end, EpsLabel::Eps, w[1].start);
                    }
                    Frag { start: frags[0].start, end: frags[frags.len() - 1].end }
                }
            }
        }
        RegexAst::Alternation(parts) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for p in parts {
                let f = build(p, nfa, registry)?;
                nfa.add(s, EpsLabel::Eps, f.start);
                nfa.add(f.end, EpsLabel::Eps, e);
            }
            Frag { start: s, end: e }
        }
        RegexAst::Star(inner) => {
            let f = build(inner, nfa, registry)?;
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add(s, EpsLabel::Eps, e);
            nfa.add(s, EpsLabel::Eps, f.start);
            nfa.add(f.end, EpsLabel::Eps, f.start);
            nfa.add(f.end, EpsLabel::Eps, e);
            Frag { start: s, end: e }
        }
        RegexAst::Plus(inner) => {
            let f = build(inner, nfa, registry)?;
            let e = nfa.add_state();
            nfa.add(f.end, EpsLabel::Eps, f.start);
            nfa.add(f.end, EpsLabel::Eps, e);
            Frag { start: f.start, end: e }
        }
        RegexAst::Optional(inner) => {
            let f = build(inner, nfa, registry)?;
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add(s, EpsLabel::Eps, f.start);
            nfa.add(s, EpsLabel::Eps, e);
            nfa.add(f.end, EpsLabel::Eps, e);
            Frag { start: s, end: e }
        }
        RegexAst::Repeat { inner, min, max } => {
            // Expand into `min` mandatory copies followed by either a star
            // (unbounded) or `max - min` optional copies.
            let mut parts: Vec<RegexAst> = Vec::new();
            for _ in 0..*min {
                parts.push((**inner).clone());
            }
            match max {
                None => parts.push(RegexAst::Star(inner.clone())),
                Some(max) => {
                    for _ in *min..*max {
                        parts.push(RegexAst::Optional(inner.clone()));
                    }
                }
            }
            let expanded = RegexAst::concat(parts);
            build(&expanded, nfa, registry)?
        }
    })
}

/// The ε-closure of a state (including the state itself).
fn eps_closure(nfa: &EpsNfa, q: usize) -> Vec<usize> {
    let mut seen = vec![false; nfa.transitions.len()];
    let mut stack = vec![q];
    seen[q] = true;
    let mut out = vec![q];
    while let Some(p) = stack.pop() {
        for (label, to) in &nfa.transitions[p] {
            if *label == EpsLabel::Eps && !seen[*to] {
                seen[*to] = true;
                out.push(*to);
                stack.push(*to);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::semantics::eval_regex;
    use spanners_core::{dedup_mappings, Document, Mapping};

    /// Differential check: the full constant-delay pipeline must agree with the
    /// Table 1 reference semantics (after aligning variable registries, which
    /// both sides intern in sorted-name order).
    fn assert_pipeline_matches_semantics(pattern: &str, docs: &[&str]) {
        let ast = parse(pattern).unwrap();
        let spanner = compile(pattern).unwrap();
        for text in docs {
            let doc = Document::from(*text);
            let (mut expected, _) = eval_regex(&ast, &doc).unwrap();
            dedup_mappings(&mut expected);
            let mut got = spanner.mappings(&doc);
            dedup_mappings(&mut got);
            assert_eq!(got, expected, "pattern {pattern:?} on document {text:?}");
            // Counting agrees too (Theorem 5.1).
            assert_eq!(
                spanner.count_u64(&doc).unwrap() as usize,
                expected.len(),
                "count mismatch for {pattern:?} on {text:?}"
            );
        }
    }

    #[test]
    fn regex_to_va_produces_matching_naive_semantics() {
        for (pattern, doc) in [
            ("abc", "abc"),
            ("a*", "aaa"),
            ("!x{a+}b", "aab"),
            ("!x{a}|!y{b}", "b"),
            (".*!x{\\d+}.*", "ab12c"),
        ] {
            let ast = parse(pattern).unwrap();
            let va = regex_to_va(&ast).unwrap();
            let d = Document::from(doc);
            let (mut expected, _) = eval_regex(&ast, &d).unwrap();
            dedup_mappings(&mut expected);
            assert_eq!(va.eval_naive(&d), expected, "pattern {pattern:?} on {doc:?}");
        }
    }

    #[test]
    fn plain_regular_expressions() {
        assert_pipeline_matches_semantics("abc", &["abc", "abd", "ab", "abcd", ""]);
        assert_pipeline_matches_semantics("a*b+c?", &["b", "aabbc", "c", "abc", ""]);
        assert_pipeline_matches_semantics("(ab|cd)*", &["", "ab", "abcd", "abc", "cdab"]);
        assert_pipeline_matches_semantics("a{2,3}", &["a", "aa", "aaa", "aaaa"]);
    }

    #[test]
    fn single_capture_patterns() {
        assert_pipeline_matches_semantics(".*!x{a}.*", &["", "a", "banana", "xyz"]);
        assert_pipeline_matches_semantics(".*!x{\\d+}.*", &["ab", "a1b22c", "123"]);
        assert_pipeline_matches_semantics("!x{.*}", &["", "ab", "abc"]);
    }

    #[test]
    fn multi_capture_patterns() {
        assert_pipeline_matches_semantics(
            ".*!x{[a-z]+}=!y{[0-9]+}.*",
            &["k=1", "key=42;other=7", "=", "noequals"],
        );
        assert_pipeline_matches_semantics("!a{.}!b{.}!c{.}", &["xyz", "xy", "wxyz"]);
    }

    #[test]
    fn nested_and_overlapping_captures() {
        assert_pipeline_matches_semantics(".*!x{.*!y{.*}.*}.*", &["", "a", "ab"]);
        assert_pipeline_matches_semantics(".*!x{a.*}.*!y{.*b}.*", &["ab", "ba", "aabb"]);
    }

    #[test]
    fn alternation_of_captures_partial_mappings() {
        assert_pipeline_matches_semantics(
            ".*(!email{\\w+@\\w+}|!phone{\\d+-\\d+}).*",
            &["bob@host", "555-12", "x", "a@b 1-2"],
        );
    }

    #[test]
    fn empty_span_captures() {
        assert_pipeline_matches_semantics("a!x{}b", &["ab", "b", "aab"]);
        assert_pipeline_matches_semantics("!x{a?}", &["", "a", "aa"]);
    }

    #[test]
    fn figure1_example_through_pipeline() {
        let pattern = ".*!name{[A-Z][a-z]+} x(!email{[a-z.@]+}|!phone{[0-9-]+})y.*";
        let doc = Document::from("John xj@g.bey, Jane x555-12y");
        let spanner = compile(pattern).unwrap();
        let reg = spanner.registry();
        let name = reg.get("name").unwrap();
        let email = reg.get("email").unwrap();
        let phone = reg.get("phone").unwrap();
        let mut got = spanner.mappings(&doc);
        dedup_mappings(&mut got);
        use spanners_core::Span;
        let mu1 = Mapping::from_pairs([
            (name, Span::from_paper(1, 5).unwrap()),
            (email, Span::from_paper(7, 13).unwrap()),
        ]);
        let mu2 = Mapping::from_pairs([
            (name, Span::from_paper(16, 20).unwrap()),
            (phone, Span::from_paper(22, 28).unwrap()),
        ]);
        assert!(got.contains(&mu1));
        assert!(got.contains(&mu2));
        assert_eq!(got.len(), 2);
        assert_eq!(spanner.count_u64(&doc).unwrap(), 2);
    }

    #[test]
    fn counted_repetitions_with_captures() {
        assert_pipeline_matches_semantics(".*!ip{\\d{1,3}\\.\\d{1,3}}.*", &["10.25", "1.2.3", "x"]);
    }

    #[test]
    fn starred_capture_agrees_with_semantics() {
        // Degenerate but well-defined per Table 1: a starred capture can fire at
        // most once (iterations must have disjoint domains).
        assert_pipeline_matches_semantics("(!x{a})*", &["", "a", "aa"]);
        assert_pipeline_matches_semantics("(!x{a}|b)*", &["", "b", "ab", "bab", "aa"]);
    }

    #[test]
    fn invalid_pattern_is_reported() {
        assert!(compile("(a").is_err());
        assert!(compile("!x{a").is_err());
        assert!(matches!(compile("(a"), Err(SpannerError::Parse(_))));
    }

    #[test]
    fn functional_patterns_compile_without_sequentialization_blowup() {
        // A functional pattern stays functional through regex_to_va.
        let ast = parse("!x{[a-z]+}@!y{[a-z]+}").unwrap();
        assert!(ast.is_functional());
        let va = regex_to_va(&ast).unwrap();
        assert!(va.is_functional());
        assert!(va.is_sequential());
    }

    #[test]
    fn matches_and_counts_on_larger_document() {
        // End-to-end smoke test on a larger synthetic document: the number of
        // digit-run captures equals the number of (start, end) pairs of runs.
        let spanner = compile(".*!x{\\d+}.*").unwrap();
        let text = "a1b22c333d".repeat(20);
        let doc = Document::from(text.as_str());
        let count = spanner.count_u64(&doc).unwrap();
        let enumerated = spanner.mappings(&doc).len() as u64;
        assert_eq!(count, enumerated);
        // Each maximal run of k digits contributes k(k+1)/2 sub-runs.
        let expected: u64 = 20 * (1 + 3 + 6);
        assert_eq!(count, expected);
    }
}
