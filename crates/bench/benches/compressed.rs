//! Experiment E16: grammar-aware evaluation over SLP-compressed corpora.
//!
//! * **E16 — grammar-aware `count` vs decompress-then-skip-scan.** A
//!   repetitive log corpus (≥ 20× compressible with the Re-Pair-style
//!   [`SlpBuilder`]) is counted two ways: composing the grammar bottom-up
//!   with a warm [`SlpEvaluator`] memo — O(#rules) per document once the
//!   shared rule set is memoized — against decompressing each document and
//!   running the skip-mask scanning count loop (the serving default) over
//!   the raw bytes. Counts are asserted identical every iteration; the
//!   grammar-aware path should win by ≥ 5× at this compressibility.
//! * **E16b — batch entry point.** The same corpus through
//!   [`BatchSpanner::count_slp_batch`] at 1/2/4 worker threads, pool,
//!   limits and report pipeline included.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanners_core::{CountCache, SlpEvaluator};
use spanners_runtime::{BatchOptions, BatchSpanner};
use spanners_workloads::{
    corpus_bytes, corpus_compression_ratio, repetitive_log_corpus, SlpBuilder,
};
use std::time::Duration;

/// E16: per-document counting, grammar-aware vs decompress-then-skip-scan.
fn bench_grammar_aware_vs_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_compressed_logs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let corpus = repetitive_log_corpus(0xE16, 16, 2_000);
    let slps = SlpBuilder::new().build_corpus(&corpus).expect("log corpus compresses");
    let ratio = corpus_compression_ratio(&slps);
    assert!(ratio >= 20.0, "E16 needs a ≥ 20× compressible corpus, got {ratio:.1}×");
    let bytes = corpus_bytes(&corpus);
    group.throughput(Throughput::Bytes(bytes as u64));
    let spanner = spanners_bench::digit_spanner();
    let expected: u64 = corpus.iter().map(|d| spanner.count::<u64>(d).unwrap()).sum();

    let mut evaluator = SlpEvaluator::new();
    group.bench_with_input(
        BenchmarkId::new("grammar_aware_count", format!("{ratio:.0}x")),
        &slps,
        |b, slps| {
            b.iter(|| {
                let total: u64 =
                    slps.iter().map(|s| spanner.count_slp_with(&mut evaluator, s).unwrap()).sum();
                assert_eq!(total, expected);
                total
            })
        },
    );
    let mut cache = CountCache::<u64>::new();
    group.bench_with_input(
        BenchmarkId::new("decompress_then_skip_scan", format!("{ratio:.0}x")),
        &slps,
        |b, slps| {
            b.iter(|| {
                let total: u64 = slps
                    .iter()
                    .map(|s| spanner.count_with(&mut cache, &s.decompress()).unwrap())
                    .sum();
                assert_eq!(total, expected);
                total
            })
        },
    );
    group.finish();
}

/// E16b: the batch entry point (pools + report pipeline) at 1/2/4 threads.
fn bench_slp_batch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16b_slp_batch_threads");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let corpus = repetitive_log_corpus(0xE16B, 64, 500);
    let slps = SlpBuilder::new().build_corpus(&corpus).expect("log corpus compresses");
    group.throughput(Throughput::Bytes(corpus_bytes(&corpus) as u64));
    let spanner = spanners_bench::digit_spanner();
    let expected: u64 = corpus.iter().map(|d| spanner.count::<u64>(d).unwrap()).sum();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("count_slp_batch", threads), &slps, |b, slps| {
            b.iter(|| {
                let total: u64 = spanner
                    .count_slp_batch(slps, &BatchOptions::threads(threads))
                    .unwrap()
                    .iter()
                    .sum();
                assert_eq!(total, expected);
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grammar_aware_vs_decompress, bench_slp_batch_threads);
criterion_main!(benches);
