//! Experiment E5: the constant-delay algorithm against the baseline evaluators.
//!
//! * `naive` — backtrack over all runs, deduplicate with a hash set;
//! * `materialize` — keep sets of partial mappings per state;
//! * `polydelay` — product-graph DFS with reachability pruning (delay
//!   `O(|A|·|d|)` per output);
//! * `constant_delay` — Algorithms 1 + 2 of the paper.
//!
//! The shape to look for: all four agree on small inputs; as the document (and
//! output) grows, `naive` falls behind first, then `materialize` (memory-bound),
//! while `polydelay` pays an extra `Θ(|d|)` factor per output; the constant-delay
//! algorithm scales with `|A|·|d| + |output|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanners_baselines::{materialize_enumerate, naive_enumerate, PolyDelayEnumerator};
use spanners_bench::{contact_doc, contact_spanner, digit_spanner};
use spanners_core::CompiledSpanner;
use spanners_workloads::{all_spans_eva, random_text};
use std::time::Duration;

fn bench_contact_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_baselines_contact_directory");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = contact_spanner();
    let eva_for_naive = {
        // The naive baseline works on the (non-deterministic) eVA produced by
        // translation; here the compiled automaton is already deterministic, so
        // we reuse it — the comparison still reflects run-by-run backtracking.
        spanner.clone()
    };
    for &n in &[2_000usize, 20_000] {
        let doc = contact_doc(n);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("constant_delay", n), &doc, |b, d| {
            b.iter(|| spanner.evaluate(d).iter().count())
        });
        group.bench_with_input(BenchmarkId::new("materialize", n), &doc, |b, d| {
            b.iter(|| {
                materialize_enumerate(spanner.try_automaton().expect("eager engine"), d).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("polydelay", n), &doc, |b, d| {
            b.iter(|| {
                PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), d)
                    .collect()
                    .len()
            })
        });
        let _ = &eva_for_naive;
    }
    group.finish();
}

fn bench_dense_output(c: &mut Criterion) {
    // The all-spans spanner has Θ(|d|²) outputs: this is where delay guarantees
    // matter most. The naive baseline is only run on the smallest size.
    let mut group = c.benchmark_group("e5_baselines_dense_output");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    let eva = all_spans_eva();
    for &n in &[64usize, 192, 384] {
        let doc = random_text(3, n, b"xyz");
        let outputs = ((n + 1) * (n + 2) / 2) as u64;
        group.throughput(Throughput::Elements(outputs));
        group.bench_with_input(BenchmarkId::new("constant_delay", n), &doc, |b, d| {
            b.iter(|| spanner.evaluate(d).iter().count())
        });
        group.bench_with_input(BenchmarkId::new("materialize", n), &doc, |b, d| {
            b.iter(|| {
                materialize_enumerate(spanner.try_automaton().expect("eager engine"), d).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("polydelay", n), &doc, |b, d| {
            b.iter(|| {
                PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), d)
                    .collect()
                    .len()
            })
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("naive_backtracking", n), &doc, |b, d| {
                b.iter(|| naive_enumerate(&eva, d).0.len())
            });
        }
    }
    group.finish();
}

fn bench_sparse_output(c: &mut Criterion) {
    // Few outputs on a large document: preprocessing dominates; all reasonable
    // algorithms are close, the naive baseline still pays for exploring runs.
    let mut group = c.benchmark_group("e5_baselines_sparse_output");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = digit_spanner();
    for &n in &[10_000usize, 100_000] {
        let doc = random_text(4, n, b"abcdefghijklmnopqrstuvwxy5");
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("constant_delay", n), &doc, |b, d| {
            b.iter(|| spanner.evaluate(d).iter().count())
        });
        group.bench_with_input(BenchmarkId::new("materialize", n), &doc, |b, d| {
            b.iter(|| {
                materialize_enumerate(spanner.try_automaton().expect("eager engine"), d).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("polydelay", n), &doc, |b, d| {
            b.iter(|| {
                PolyDelayEnumerator::new(spanner.try_automaton().expect("eager engine"), d)
                    .collect()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contact_directory, bench_dense_output, bench_sparse_output);
criterion_main!(benches);
