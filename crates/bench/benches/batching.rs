//! Experiment E11: the parallel batch/serving runtime.
//!
//! * **E11 — thread scaling over multi-document corpora.** One
//!   [`SpannerServer`] evaluates/counts a corpus of ≥ 1000 small contact
//!   documents (the Example 2.1 serving workload) at 1/2/4/8 worker threads;
//!   aggregate MB/s should grow with the thread count up to the machine's
//!   core count (and degrade gracefully, not collapse, beyond it).
//! * **E11b — frozen-cache sharing.** A lazy-backed spanner (the
//!   `.*a.{n}`-style exponential family, eagerly indeterminizable) over a
//!   corpus: the server's shared frozen snapshot plus per-worker deltas
//!   against the naive serving shape — a cold evaluator (and hence a cold
//!   private determinization cache) per document — at a single thread, so
//!   the comparison isolates cache amortization from parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanners_core::{CompiledSpanner, Document, Evaluator, LazyConfig};
use spanners_runtime::{BatchOptions, SpannerServer};
use spanners_workloads::{contact_corpus, corpus_bytes, exp_blowup_eva, text_corpus};
use std::time::Duration;

fn contact_spanner() -> CompiledSpanner {
    spanners_bench::contact_spanner()
}

/// E11: aggregate throughput of `evaluate_batch`/`count_batch` over a corpus
/// of small documents as the worker count sweeps 1 → 8.
fn bench_batch_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_batch_thread_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let (corpus, entries) = contact_corpus(0xBA7C4, 1_000, 12);
    let bytes = corpus_bytes(&corpus);
    group.throughput(Throughput::Bytes(bytes as u64));
    for &threads in &[1usize, 2, 4, 8] {
        let server = SpannerServer::with_options(contact_spanner(), BatchOptions::threads(threads));
        server.warm(&corpus[..4]);
        group.bench_with_input(
            BenchmarkId::new("evaluate_batch_1000_docs", threads),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let nodes: usize =
                        server.evaluate_batch(corpus, |_, dag| dag.num_nodes()).iter().sum();
                    nodes
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("count_batch_1000_docs", threads),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let total: u64 = server.count_batch(corpus).unwrap().iter().sum();
                    assert_eq!(total, entries as u64);
                    total
                })
            },
        );
    }
    group.finish();
}

/// E11b: what the shared frozen snapshot buys on a lazy spanner — server
/// (one freeze, per-worker deltas) vs. a cold evaluator per document (each
/// re-determinizing privately), both single-threaded.
fn bench_frozen_cache_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11b_frozen_cache_sharing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let eva = exp_blowup_eva(12);
    let corpus: Vec<Document> = text_corpus(0xF40, 400, 100, 400, b"abcd");
    let bytes = corpus_bytes(&corpus);
    group.throughput(Throughput::Bytes(bytes as u64));
    let spanner = CompiledSpanner::from_eva_lazy(&eva, LazyConfig::default()).unwrap();
    let server = SpannerServer::with_options(spanner.clone(), BatchOptions::threads(1));
    server.warm(&corpus[..8]);
    group.bench_with_input(BenchmarkId::new("frozen_shared", 1), &corpus, |b, corpus| {
        b.iter(|| {
            let nodes: usize = server.evaluate_batch(corpus, |_, dag| dag.num_nodes()).iter().sum();
            nodes
        })
    });
    group.bench_with_input(BenchmarkId::new("cold_cache_per_doc", 1), &corpus, |b, corpus| {
        b.iter(|| {
            let mut nodes = 0usize;
            for doc in corpus.iter() {
                // The naive serving shape: a fresh evaluator — and thus a
                // cold private determinization cache — per document.
                nodes += Evaluator::new()
                    .eval_lazy(spanner.lazy_automaton().expect("lazy engine"), doc)
                    .num_nodes();
            }
            nodes
        })
    });
    if let Some(states) = server.frozen_states() {
        println!("e11b frozen snapshot: {states} subset states shared across workers");
    }
    group.finish();
}

criterion_group!(benches, bench_batch_thread_scaling, bench_frozen_cache_sharing);
criterion_main!(benches);
