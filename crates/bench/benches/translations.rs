//! Experiments E6 and E7: the cost of the Section 4 translations.
//!
//! * **E6** — the `2^ℓ` blow-up of sequential VA → eVA (Proposition 4.2,
//!   Figure 7 family) and the subset-construction cost for functional VA
//!   (Proposition 4.3).
//! * **E7** — the algebra constructions of Proposition 4.4 (join, union,
//!   projection) and the two whole-expression compilation strategies of
//!   Propositions 4.5/4.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanners_algebra::{AlgebraExpr, CompileStrategy};
use spanners_automata::{
    compile_va, determinize, join, union, union_deterministic, va_to_eva, CompileOptions,
};
use spanners_workloads::{figure3_eva, prop42_va, random_functional_va};
use std::time::Duration;

/// E6a: Proposition 4.2 — translating the Figure 7 family for growing ℓ.
fn bench_prop42_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_prop42_va_to_eva_blowup");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for ell in [2usize, 4, 6, 8, 10] {
        let va = prop42_va(ell).unwrap();
        group.bench_with_input(BenchmarkId::new("va_to_eva", ell), &va, |b, va| {
            b.iter(|| va_to_eva(va).unwrap().num_transitions())
        });
    }
    group.finish();
}

/// E6b: Proposition 4.3 — determinizing random functional VA of growing size.
fn bench_functional_determinization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_functional_va_determinization");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for blocks in [2usize, 4, 6, 8] {
        let va = random_functional_va(blocks as u64, blocks, blocks.min(4)).unwrap();
        group.bench_with_input(
            BenchmarkId::new(
                "compile_va_pipeline",
                format!("blocks{blocks}_states{}", va.num_states()),
            ),
            &va,
            |b, va| b.iter(|| compile_va(va, CompileOptions::default()).unwrap().num_states()),
        );
    }
    group.finish();
}

/// E7a: Proposition 4.4 — join/union construction cost on functional eVA.
fn bench_algebra_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_prop44_constructions");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let a = figure3_eva();
    let b_aut = {
        let va = random_functional_va(7, 3, 2).unwrap();
        va_to_eva(&va).unwrap()
    };
    group.bench_function("join_figure3_random", |bench| {
        bench.iter(|| join(&a, &b_aut).unwrap().num_states())
    });
    group.bench_function("union_linear", |bench| {
        bench.iter(|| union(&a, &b_aut).unwrap().num_states())
    });
    group.bench_function("union_deterministic_lemma_b2", |bench| {
        bench.iter(|| union_deterministic(&a, &b_aut).unwrap().num_states())
    });
    group.bench_function("determinize_join_result", |bench| {
        let joined = join(&a, &b_aut).unwrap();
        bench.iter(|| determinize(&joined, 1 << 20).unwrap().num_states())
    });
    group.finish();
}

/// E7b: Propositions 4.5/4.6 — whole-expression compilation, late vs. early
/// determinization, as the number of joined atoms grows.
fn bench_algebra_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_algebra_compilation_strategies");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let atoms = [".*!a{[0-9]+}.*", ".*!b{[a-z]+}.*", ".*!c{[A-Z]+}.*"];
    for k in 1..=atoms.len() {
        let mut expr = AlgebraExpr::regex(atoms[0]).unwrap();
        for atom in &atoms[1..k] {
            expr = expr.join(AlgebraExpr::regex(atom).unwrap());
        }
        group.bench_with_input(BenchmarkId::new("determinize_late_prop45", k), &expr, |b, e| {
            b.iter(|| {
                e.compile(CompileOptions::default(), CompileStrategy::DeterminizeLate)
                    .unwrap()
                    .try_automaton()
                    .expect("eager engine")
                    .num_states()
            })
        });
        group.bench_with_input(BenchmarkId::new("determinize_early_prop46", k), &expr, |b, e| {
            b.iter(|| {
                e.compile(CompileOptions::default(), CompileStrategy::DeterminizeEarly)
                    .unwrap()
                    .try_automaton()
                    .expect("eager engine")
                    .num_states()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prop42_blowup,
    bench_functional_determinization,
    bench_algebra_constructions,
    bench_algebra_strategies
);
criterion_main!(benches);
