//! Experiments E1, E2, E3, E8, E9: the core claims of Section 3.
//!
//! * **E1 — linear preprocessing.** Algorithm 1 (`EnumerationDag::build`) over
//!   documents of growing size: time per input byte should stay flat.
//! * **E2 — constant delay.** Full enumeration over the all-spans spanner:
//!   time per *output* should stay flat as the document (and hence the output)
//!   grows — the delay is independent of `|d|`.
//! * **E3 — total enumeration time.** Preprocessing + full enumeration compared
//!   against output size.
//! * **E8 — end-to-end extraction.** The Example 2.1 contact pipeline on
//!   synthetic directories (compile + evaluate + stream).
//! * **E9 — run skipping vs. match density.** The class-run engine against the
//!   per-byte engine as the fraction of marker-active positions sweeps
//!   0% → 100%: big wins on sparse-match documents, graceful degradation to
//!   per-byte speed at full density.
//! * **E10 — lazy vs. eager determinization.** End-to-end (compile + evaluate)
//!   on the exponential-blowup family across automaton sizes, plus warm-cache
//!   lazy evaluation against the eagerly determinized automaton across match
//!   densities: the eager columns pay `Θ(2ⁿ)` subset construction up front,
//!   the lazy columns only ever materialize the subsets the document visits.
//! * **E12 — skip-mask scanning vs. match density.** The skip-scanning
//!   engine (`EngineMode::SkipScan`, the default) against the class-run and
//!   per-byte engines on long sparse-match documents as the density of
//!   marker-active bytes sweeps 0% → 100%, for both the eager tables and a
//!   warm lazy cache: at low density the scanner touches only the
//!   interesting bytes (one chunked LUT scan per skippable stretch, no
//!   `ClassRuns` materialization), at 100% it degrades to class-run speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanners_automata::determinize;
use spanners_bench::{contact_doc, contact_spanner, digit_spanner, drain, DOC_SIZES};
use spanners_core::{
    CompiledSpanner, CountCache, DetSeva, Document, EngineMode, EnumerationDag, EvalLimits,
    Evaluator, LazyConfig, LazyDetSeva,
};
use spanners_workloads::{
    all_spans_eva, exp_blowup_eva, figure3_eva, random_text, sparse_match_text,
};
use std::time::Duration;

/// E1: preprocessing time as a function of |d| (bytes/second reported).
fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_preprocessing_linear_in_document");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let figure3 = CompiledSpanner::from_eva(&figure3_eva()).unwrap();
    let digits = digit_spanner();
    let contacts = contact_spanner();
    for &n in DOC_SIZES {
        group.throughput(Throughput::Bytes(n as u64));
        let ab_doc = random_text(1, n, b"ab");
        group.bench_with_input(BenchmarkId::new("figure3_automaton", n), &ab_doc, |b, doc| {
            b.iter(|| {
                EnumerationDag::build(figure3.try_automaton().expect("eager engine"), doc)
                    .num_nodes()
            })
        });
        let text_doc = random_text(2, n, b"abc0123456789 ");
        group.bench_with_input(BenchmarkId::new("digit_runs_regex", n), &text_doc, |b, doc| {
            b.iter(|| {
                EnumerationDag::build(digits.try_automaton().expect("eager engine"), doc)
                    .num_nodes()
            })
        });
        let dir = contact_doc(n);
        group.throughput(Throughput::Bytes(dir.len() as u64));
        group.bench_with_input(BenchmarkId::new("contact_directory", n), &dir, |b, doc| {
            b.iter(|| {
                EnumerationDag::build(contacts.try_automaton().expect("eager engine"), doc)
                    .num_nodes()
            })
        });
    }
    group.finish();
}

/// E1b: the same preprocessing through a warm reusable [`Evaluator`] — the
/// serving configuration. Also asserts the zero-allocation contract: after
/// warm-up, repeated `eval` calls must not reallocate the node/cell arenas.
fn bench_preprocessing_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1b_preprocessing_evaluator_reuse");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let digits = digit_spanner();
    let mut evaluator = Evaluator::new();
    for &n in DOC_SIZES {
        group.throughput(Throughput::Bytes(n as u64));
        let doc = random_text(2, n, b"abc0123456789 ");
        // Warm the arenas, then record the capacity the steady state must keep.
        drain(evaluator.eval(digits.try_automaton().expect("eager engine"), &doc).iter());
        let warm =
            (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity());
        group.bench_with_input(BenchmarkId::new("digit_runs_reused", n), &doc, |b, doc| {
            b.iter(|| {
                evaluator.eval(digits.try_automaton().expect("eager engine"), doc).num_nodes()
            })
        });
        assert_eq!(
            (evaluator.node_capacity(), evaluator.cell_capacity(), evaluator.class_buf_capacity()),
            warm,
            "evaluator reallocated its arenas or class buffer during steady-state reuse"
        );
    }
    group.finish();
}

/// E2: per-output delay independence from |d| — enumerate the Θ(|d|²) outputs
/// of the all-spans spanner and report throughput in *outputs per second*.
fn bench_constant_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_delay_per_output");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    for &n in &[200usize, 400, 800] {
        let doc = Document::new(vec![b'z'; n]);
        let outputs = (n + 1) * (n + 2) / 2;
        group.throughput(Throughput::Elements(outputs as u64));
        // Pre-build the DAG so only the enumeration phase (Algorithm 2) is measured.
        let dag = spanner.evaluate(&doc);
        group.bench_with_input(BenchmarkId::new("enumerate_only", n), &dag, |b, dag| {
            b.iter(|| drain(dag.iter()))
        });
    }
    group.finish();
}

/// E3: total evaluation time (preprocessing + enumeration) against output size.
fn bench_total_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_total_time_preprocessing_plus_output");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = digit_spanner();
    for &n in &[1_000usize, 10_000, 100_000] {
        // ~1 digit in 15 characters: output grows linearly with |d| here.
        let doc = random_text(3, n, b"abcdefghijklmn5");
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("digit_runs_full", n), &doc, |b, doc| {
            b.iter(|| {
                let dag = spanner.evaluate(doc);
                drain(dag.iter())
            })
        });
    }
    group.finish();
}

/// E8: the Example 2.1 contact-extraction pipeline end to end.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_end_to_end_contact_extraction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let spanner = contact_spanner();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let doc = contact_doc(n);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("evaluate_and_stream", n), &doc, |b, doc| {
            b.iter(|| {
                let dag = spanner.evaluate(doc);
                drain(dag.iter())
            })
        });
        group.bench_with_input(BenchmarkId::new("count_only", n), &doc, |b, doc| {
            b.iter(|| spanner.count_u64(doc).unwrap())
        });
    }
    group.finish();
}

/// E9: run-skipping throughput as a function of match density. Documents of a
/// fixed size sweep the fraction of marker-active (digit) positions from 0%
/// to 100%; the class-run engine is benchmarked against the per-byte engine
/// on identical documents. At 0% almost every position is skippable; at 100%
/// none is, and the class-run loop must degrade gracefully to per-byte speed
/// (its only extra costs are the bulk classification pass and the
/// one-load-per-state skip test).
fn bench_run_skipping_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_run_skipping_vs_match_density");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let digits = digit_spanner();
    let n = 100_000usize;
    // Alphabets with 0/4, 1/4, 2/4, 3/4, 4/4 digit characters: the expected
    // fraction of marker-active positions in the random text.
    let sweeps: &[(&str, &[u8])] = &[
        ("density_000", b"abcd"),
        ("density_025", b"0abc"),
        ("density_050", b"01ab"),
        ("density_075", b"012a"),
        ("density_100", b"0123"),
    ];
    let mut skipping = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut per_byte = Evaluator::with_mode(EngineMode::PerByte);
    for &(label, alphabet) in sweeps {
        let doc = random_text(9, n, alphabet);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("class_runs", label), &doc, |b, doc| {
            b.iter(|| skipping.eval(digits.try_automaton().expect("eager engine"), doc).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("per_byte", label), &doc, |b, doc| {
            b.iter(|| per_byte.eval(digits.try_automaton().expect("eager engine"), doc).num_nodes())
        });
    }
    group.finish();
}

/// E10a: end-to-end cost — compile (eager subset construction vs. lazy
/// preparation) plus one evaluation — on the `.*a.{n}`-style exponential
/// family as the window width `n` grows. The eager column is only run for
/// sizes whose `2ⁿ` subset construction stays tractable; larger sizes would
/// trip the determinization budget, which is precisely the gap the lazy
/// engine closes.
fn bench_lazy_vs_eager_compile_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_lazy_vs_eager_determinization");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let doc = random_text(77, 20_000, b"abcdefgh");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    for &n in &[4usize, 8, 12, 16] {
        let eva = exp_blowup_eva(n);
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("eager_compile_plus_eval", n), &doc, |b, d| {
                b.iter(|| {
                    let det = determinize(&eva, 1 << 20).expect("within budget at this size");
                    let aut = DetSeva::compile_trusted(&det).expect("determinized input");
                    Evaluator::new().eval(&aut, d).num_nodes()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("lazy_compile_plus_eval", n), &doc, |b, d| {
            b.iter(|| {
                let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).expect("sequential");
                Evaluator::new().eval_lazy(&lazy, d).num_nodes()
            })
        });
    }
    group.finish();
}

/// E10b: steady-state evaluation (warm evaluator, warm lazy cache) against
/// the eagerly determinized automaton, as the density of subset-churning
/// bytes (`a`) sweeps up. Also covers warm lazy counting.
fn bench_lazy_warm_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10b_lazy_warm_vs_eager_density");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let n = 12usize;
    let eva = exp_blowup_eva(n);
    let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).expect("sequential");
    let det = determinize(&eva, 1 << 20).expect("2^12 subsets fit the budget");
    let eager = DetSeva::compile_trusted(&det).expect("determinized input");
    let size = 100_000usize;
    let sweeps: &[(&str, &[u8])] =
        &[("density_006", b"abcdefghijklmnop"), ("density_025", b"abcd"), ("density_050", b"ab")];
    let mut lazy_eval = Evaluator::new();
    let mut eager_eval = Evaluator::new();
    let mut lazy_counts = CountCache::<u64>::new();
    for &(label, alphabet) in sweeps {
        let doc = random_text(13, size, alphabet);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("lazy_warm_eval", label), &doc, |b, d| {
            b.iter(|| lazy_eval.eval_lazy(&lazy, d).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("eager_eval", label), &doc, |b, d| {
            b.iter(|| eager_eval.eval(&eager, d).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("lazy_warm_count", label), &doc, |b, d| {
            b.iter(|| lazy_counts.count_lazy(&lazy, d).unwrap())
        });
    }
    // Cache-waste diagnostics (the eviction-tuning metric from the ROADMAP):
    // states interned more than once over the run, plus the buffer-capacity
    // signature the allocation-retention assertions pin.
    if let Some(cache) = lazy_eval.lazy_cache() {
        println!(
            "e10b lazy cache: {} live states, {} interned, {} wasted to eviction, \
             {} clears, capacities [{}]",
            cache.num_states(),
            cache.states_interned(),
            cache.wasted_states(),
            cache.clear_count(),
            cache.capacity_signature()
        );
    }
    group.finish();
}

/// E12: skip-mask scanning vs. the class-run and per-byte engines, on long
/// (512 kB) sparse-match documents whose digit density sweeps 0% → 100%.
/// Both automaton flavours are measured: the eager dense tables (exact
/// compile-time masks) and a warm lazy cache (masks memoized on first use).
/// The interesting regime is ≤ 1% density, where the class-run engine still
/// pays a scalar run-length walk over every byte while the scanner jumps
/// between interesting bytes with a chunked LUT loop; at 100% density all
/// engines execute every position and should sit within noise of each other.
fn bench_skip_scan_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_skip_scan_vs_density");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let digits = digit_spanner();
    let eager = digits.try_automaton().expect("eager engine");
    // The same workload through the undeterminized pipeline for the lazy rows.
    let ast = spanners_regex::parse(spanners_workloads::digit_runs_pattern()).expect("parses");
    let va = spanners_regex::regex_to_va(&ast).expect("builds");
    let eva = spanners_automata::va_to_eva(&va).expect("translates");
    let lazy = LazyDetSeva::new(&eva, LazyConfig::default()).expect("sequential");
    let n = 512 * 1024usize;
    let sweeps: &[(&str, usize)] = &[
        ("density_0000", 0),
        ("density_0001", 10),  // 0.1%
        ("density_0010", 100), // 1%
        ("density_0100", 1_000),
        ("density_1000", 10_000),
    ];
    let mut scan = Evaluator::with_mode(EngineMode::SkipScan);
    let mut runs = Evaluator::with_mode(EngineMode::ClassRuns);
    let mut bytes = Evaluator::with_mode(EngineMode::PerByte);
    let mut lazy_scan = Evaluator::with_mode(EngineMode::SkipScan);
    let mut lazy_runs = Evaluator::with_mode(EngineMode::ClassRuns);
    for &(label, per_10k) in sweeps {
        let doc = sparse_match_text(12, n, per_10k);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("skip_scan", label), &doc, |b, d| {
            b.iter(|| scan.eval(eager, d).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("class_runs", label), &doc, |b, d| {
            b.iter(|| runs.eval(eager, d).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("per_byte", label), &doc, |b, d| {
            b.iter(|| bytes.eval(eager, d).num_nodes())
        });
        // Warm-lazy rows: the first iteration of each bench warms the
        // embedded cache; steady state is what the sampling measures.
        group.bench_with_input(BenchmarkId::new("lazy_warm_skip_scan", label), &doc, |b, d| {
            b.iter(|| lazy_scan.eval_lazy(&lazy, d).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("lazy_warm_class_runs", label), &doc, |b, d| {
            b.iter(|| lazy_runs.eval_lazy(&lazy, d).num_nodes())
        });
    }
    group.finish();
}

/// E13: overhead of the per-document limit checker on the skip-scan floor.
///
/// The amortized `LimitChecker` (fused step/clock checks on executed
/// positions, a single clock probe per skip-jump landing) must not tax the
/// sparse regime the scanner exists for: with generous limits armed, the
/// 0%-density throughput should stay within ~5% of the limits-off floor,
/// and the 1%-density mixed regime within noise of it.
fn bench_limits_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_limits_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let digits = digit_spanner();
    let eager = digits.try_automaton().expect("eager engine");
    let n = 512 * 1024usize;
    // Generous enough that nothing ever trips — the bench measures pure
    // bookkeeping, not degradation.
    let fuel = EvalLimits::none().with_max_steps(u64::MAX / 2);
    let full = EvalLimits::none()
        .with_max_steps(u64::MAX / 2)
        .with_deadline(Duration::from_secs(600))
        .with_soft_deadline(Duration::from_secs(300))
        .with_max_cache_clears(u64::MAX / 2);
    let mut ev = Evaluator::with_mode(EngineMode::SkipScan);
    for &(label, per_10k) in &[("density_0000", 0usize), ("density_0010", 100)] {
        let doc = sparse_match_text(13, n, per_10k);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::new("limits_off", label), &doc, |b, d| {
            ev.set_limits(EvalLimits::none());
            b.iter(|| ev.try_eval(eager, d).unwrap().num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("step_budget_on", label), &doc, |b, d| {
            ev.set_limits(fuel);
            b.iter(|| ev.try_eval(eager, d).unwrap().num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("all_limits_on", label), &doc, |b, d| {
            ev.set_limits(full);
            b.iter(|| ev.try_eval(eager, d).unwrap().num_nodes())
        });
    }
    ev.set_limits(EvalLimits::none());
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocessing,
    bench_preprocessing_reuse,
    bench_constant_delay,
    bench_total_enumeration,
    bench_end_to_end,
    bench_run_skipping_density,
    bench_lazy_vs_eager_compile_eval,
    bench_lazy_warm_density,
    bench_skip_scan_density,
    bench_limits_overhead
);
criterion_main!(benches);
