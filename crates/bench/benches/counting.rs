//! Experiment E4: Algorithm 3 (Theorem 5.1) — counting `|⟦A⟧(d)|` in
//! `O(|A| × |d|)`, regardless of how astronomically large the output is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spanners_bench::{contact_doc, contact_spanner, digit_spanner};
use spanners_core::{count_mappings, CompiledSpanner, CountCache, Document};
use spanners_regex::compile;
use spanners_workloads::{all_spans_eva, random_text};
use std::time::Duration;

/// Counting scales linearly with the document, for outputs of very different
/// sizes. Runs through reusable [`CountCache`]s — the serving configuration —
/// so the numbers measure the counting loop, not per-call allocation.
fn bench_count_vs_document(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_count_linear_in_document");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let all_spans = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    let digits = digit_spanner();
    let contacts = contact_spanner();
    let mut wide_cache = CountCache::<u128>::new();
    let mut cache = CountCache::<u64>::new();
    for &n in &[10_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Bytes(n as u64));
        let plain = Document::new(vec![b'z'; n]);
        group.bench_with_input(
            BenchmarkId::new("all_spans_quadratic_output", n),
            &plain,
            |b, d| {
                b.iter(|| {
                    wide_cache.count(all_spans.try_automaton().expect("eager engine"), d).unwrap()
                })
            },
        );
        let text = random_text(11, n, b"abcdefghij0123456789");
        group.bench_with_input(BenchmarkId::new("digit_runs", n), &text, |b, d| {
            b.iter(|| cache.count(digits.try_automaton().expect("eager engine"), d).unwrap())
        });
        let dir = contact_doc(n);
        group.bench_with_input(BenchmarkId::new("contact_directory", n), &dir, |b, d| {
            b.iter(|| cache.count(contacts.try_automaton().expect("eager engine"), d).unwrap())
        });
        // The one-shot wrapper for comparison: same engine, fresh buffers.
        group.bench_with_input(BenchmarkId::new("contact_directory_one_shot", n), &dir, |b, d| {
            b.iter(|| {
                count_mappings::<u64>(contacts.try_automaton().expect("eager engine"), d).unwrap()
            })
        });
    }
    group.finish();
}

/// Counting time as the *spanner* grows (nested captures: more variables and
/// states), at fixed document size: linear in |A|.
fn bench_count_vs_automaton(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_count_vs_automaton_size");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let doc = random_text(5, 50_000, b"ab");
    for depth in 1..=4usize {
        let pattern = spanners_workloads::nested_captures_pattern(depth);
        let spanner = compile(&pattern).unwrap();
        let size = spanner.try_automaton().expect("eager engine").source_size();
        group.bench_with_input(
            BenchmarkId::new("nested_captures", format!("depth{depth}_size{size}")),
            &doc,
            |b, d| {
                b.iter(|| {
                    count_mappings::<f64>(spanner.try_automaton().expect("eager engine"), d)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Counting versus full enumeration on the same instance: the crossover the
/// paper motivates (counting never pays the output size).
fn bench_count_vs_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_count_vs_enumerate");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let all_spans = CompiledSpanner::from_eva(&all_spans_eva()).unwrap();
    let mut cache = CountCache::<u64>::new();
    for &n in &[100usize, 400, 1600] {
        let doc = Document::new(vec![b'q'; n]);
        group.bench_with_input(BenchmarkId::new("count", n), &doc, |b, d| {
            b.iter(|| cache.count(all_spans.try_automaton().expect("eager engine"), d).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("enumerate", n), &doc, |b, d| {
            b.iter(|| {
                let dag = all_spans.evaluate(d);
                dag.iter().count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_count_vs_document,
    bench_count_vs_automaton,
    bench_count_vs_enumerate
);
criterion_main!(benches);
