//! # spanners-bench
//!
//! Shared helpers for the Criterion benchmark harness. The benchmarks
//! themselves live in `benches/` and are indexed, experiment by experiment, in
//! the repository-level `EXPERIMENTS.md`:
//!
//! | bench target | experiments |
//! |---|---|
//! | `evaluation`   | E1 (linear preprocessing), E2 (constant delay), E3 (enumeration total time), E8 (end-to-end extraction) |
//! | `counting`     | E4 (Algorithm 3 scaling) |
//! | `baselines`    | E5 (constant delay vs. naive / materialize / poly-delay) |
//! | `translations` | E6 (Propositions 4.2/4.3 blow-ups), E7 (algebra compilation, Propositions 4.4–4.6) |

#![forbid(unsafe_code)]

use spanners_core::{CompiledSpanner, Document};

/// Standard document sizes (bytes) used by the scaling benchmarks.
pub const DOC_SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// Builds the Example 2.1 contact spanner once.
pub fn contact_spanner() -> CompiledSpanner {
    spanners_regex::compile(spanners_workloads::contact_pattern())
        .expect("contact pattern compiles")
}

/// Builds the digit-run spanner `Σ* !num{[0-9]+} Σ*`.
pub fn digit_spanner() -> CompiledSpanner {
    spanners_regex::compile(spanners_workloads::digit_runs_pattern())
        .expect("digit pattern compiles")
}

/// A contact directory document of roughly `target_bytes` bytes.
pub fn contact_doc(target_bytes: usize) -> Document {
    // Each entry is ~19 bytes on average.
    let entries = (target_bytes / 19).max(1);
    spanners_workloads::contact_directory(0xBEEF, entries).0
}

/// Consumes an iterator fully, returning how many items were produced
/// (prevents the optimizer from discarding enumeration work).
pub fn drain<I: Iterator>(iter: I) -> usize {
    iter.count()
}
