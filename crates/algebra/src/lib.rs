//! # spanners-algebra
//!
//! The spanner algebra `{π, ∪, ⋈}` over regex-formula and automaton atoms
//! (Section 2 "Spanner algebras" and Section 4, Propositions 4.4–4.6).
//!
//! An [`AlgebraExpr`] combines *atoms* — regex formulas or extended VA — with
//! unions, natural joins and projections. Two evaluation paths are provided:
//!
//! * [`AlgebraExpr::compile`] compiles the whole expression into a **single
//!   deterministic sequential eVA** using the automaton-level constructions of
//!   Proposition 4.4, then hands it to the constant-delay machinery
//!   (Propositions 4.5/4.6 describe the cost of the two compilation strategies);
//! * [`AlgebraExpr::eval_set`] evaluates every atom separately and combines the
//!   *mapping sets* with set-level join/union/projection — the straightforward
//!   semantics used as a test oracle and baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use spanners_automata::{
    determinize, join, project, trim, union, union_deterministic, va_to_eva, CompileOptions,
};
use spanners_core::{
    join_mapping_sets, project_mapping_set, union_mapping_sets, CompiledSpanner, DetSeva, Document,
    Eva, Mapping, Span, SpannerError, VarRegistry, VarSet,
};
use spanners_regex::{parse, regex_to_va, RegexAst};
use std::collections::{BTreeMap, BTreeSet};

/// How [`AlgebraExpr::compile`] orders determinization and the algebraic
/// constructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompileStrategy {
    /// Proposition 4.5: apply join/union/projection on (non-deterministic)
    /// functional eVA bottom-up, determinize once at the very end.
    /// Worst case `2^(n^k)` states but often small in practice.
    #[default]
    DeterminizeLate,
    /// Proposition 4.6: determinize the atoms first and use the
    /// determinism-preserving join and union (Lemma B.2); projections force a
    /// re-determinization of their operand. Worst case `2^(n·k)` states.
    DeterminizeEarly,
}

/// A spanner-algebra expression.
#[derive(Debug, Clone)]
pub enum AlgebraExpr {
    /// A regex-formula atom.
    Regex(RegexAst),
    /// An extended-VA atom (must be functional for joins and projections,
    /// as required by Proposition 4.4).
    Automaton(Eva),
    /// Union of two sub-expressions.
    Union(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Natural join of two sub-expressions (shared variables must agree).
    Join(Box<AlgebraExpr>, Box<AlgebraExpr>),
    /// Projection of a sub-expression onto the named variables.
    Projection(Vec<String>, Box<AlgebraExpr>),
}

impl AlgebraExpr {
    /// An atom from a regex-formula pattern.
    pub fn regex(pattern: &str) -> Result<Self, SpannerError> {
        Ok(AlgebraExpr::Regex(parse(pattern)?))
    }

    /// An atom from an extended VA.
    pub fn automaton(eva: Eva) -> Self {
        AlgebraExpr::Automaton(eva)
    }

    /// `self ∪ other`.
    pub fn union(self, other: AlgebraExpr) -> Self {
        AlgebraExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ⋈ other`.
    pub fn join(self, other: AlgebraExpr) -> Self {
        AlgebraExpr::Join(Box::new(self), Box::new(other))
    }

    /// `π_vars(self)`.
    pub fn project(self, vars: &[&str]) -> Self {
        AlgebraExpr::Projection(vars.iter().map(|s| s.to_string()).collect(), Box::new(self))
    }

    /// All variable names mentioned in the expression (after projections).
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            AlgebraExpr::Regex(ast) => ast.variables(),
            AlgebraExpr::Automaton(eva) => {
                eva.registry().iter().map(|(_, n)| n.to_string()).collect()
            }
            AlgebraExpr::Union(a, b) | AlgebraExpr::Join(a, b) => {
                a.variables().union(&b.variables()).cloned().collect()
            }
            AlgebraExpr::Projection(vars, inner) => {
                let inner_vars = inner.variables();
                vars.iter().filter(|v| inner_vars.contains(*v)).cloned().collect()
            }
        }
    }

    /// The paper's size measure `|e|`: sum of atom sizes plus number of operators.
    pub fn size(&self) -> usize {
        match self {
            AlgebraExpr::Regex(ast) => ast.size(),
            AlgebraExpr::Automaton(eva) => eva.size(),
            AlgebraExpr::Union(a, b) | AlgebraExpr::Join(a, b) => 1 + a.size() + b.size(),
            AlgebraExpr::Projection(_, inner) => 1 + inner.size(),
        }
    }

    /// Compiles the expression into a single extended VA (not yet determinized),
    /// using the constructions of Proposition 4.4.
    #[allow(clippy::only_used_in_recursion)] // kept for API stability; atoms may use it later
    pub fn to_eva(&self, opts: CompileOptions) -> Result<Eva, SpannerError> {
        match self {
            AlgebraExpr::Regex(ast) => {
                let va = regex_to_va(ast)?;
                va_to_eva(&va)
            }
            AlgebraExpr::Automaton(eva) => Ok(eva.clone()),
            AlgebraExpr::Union(a, b) => union(&a.to_eva(opts)?, &b.to_eva(opts)?),
            AlgebraExpr::Join(a, b) => join(&a.to_eva(opts)?, &b.to_eva(opts)?),
            AlgebraExpr::Projection(vars, inner) => {
                let names: Vec<&str> = vars.iter().map(String::as_str).collect();
                project(&inner.to_eva(opts)?, &names)
            }
        }
    }

    /// Compiles the expression into a deterministic sequential eVA following the
    /// chosen [`CompileStrategy`], ready for constant-delay evaluation.
    pub fn compile(
        &self,
        opts: CompileOptions,
        strategy: CompileStrategy,
    ) -> Result<CompiledSpanner, SpannerError> {
        let det: DetSeva = match strategy {
            CompileStrategy::DeterminizeLate => {
                let eva = self.to_eva(opts)?;
                let det = determinize(&eva, opts.max_states)?;
                DetSeva::compile_trusted(&trim(&det)?)?
            }
            CompileStrategy::DeterminizeEarly => {
                let eva = self.compile_early(opts)?;
                let det = determinize(&eva, opts.max_states)?; // cheap if already deterministic
                DetSeva::compile_trusted(&trim(&det)?)?
            }
        };
        Ok(CompiledSpanner::from_det(det))
    }

    /// Bottom-up compilation that keeps intermediate automata deterministic
    /// (Proposition 4.6): atoms are determinized eagerly, unions use Lemma B.2,
    /// joins preserve determinism, projections re-determinize their operand.
    fn compile_early(&self, opts: CompileOptions) -> Result<Eva, SpannerError> {
        match self {
            AlgebraExpr::Regex(_) | AlgebraExpr::Automaton(_) => {
                let eva = self.to_eva(opts)?;
                trim(&determinize(&eva, opts.max_states)?)
            }
            AlgebraExpr::Union(a, b) => {
                union_deterministic(&a.compile_early(opts)?, &b.compile_early(opts)?)
            }
            AlgebraExpr::Join(a, b) => join(&a.compile_early(opts)?, &b.compile_early(opts)?),
            AlgebraExpr::Projection(vars, inner) => {
                let names: Vec<&str> = vars.iter().map(String::as_str).collect();
                let projected = project(&inner.compile_early(opts)?, &names)?;
                trim(&determinize(&projected, opts.max_states)?)
            }
        }
    }

    /// Evaluates the expression by materializing and combining mapping sets —
    /// the direct set-level semantics of Section 2, used as an oracle/baseline.
    ///
    /// Returns the mapping set together with the registry (variables interned in
    /// sorted-name order over the whole expression).
    pub fn eval_set(&self, doc: &Document) -> Result<(Vec<Mapping>, VarRegistry), SpannerError> {
        let mut registry = VarRegistry::new();
        for name in self.all_atom_variables() {
            registry.intern(&name)?;
        }
        let set = self.eval_set_inner(doc, &registry)?;
        Ok((set, registry))
    }

    /// Variables of all atoms (before projection), needed to build a stable
    /// registry for set-level evaluation.
    fn all_atom_variables(&self) -> BTreeSet<String> {
        match self {
            AlgebraExpr::Regex(ast) => ast.variables(),
            AlgebraExpr::Automaton(eva) => {
                eva.registry().iter().map(|(_, n)| n.to_string()).collect()
            }
            AlgebraExpr::Union(a, b) | AlgebraExpr::Join(a, b) => {
                a.all_atom_variables().union(&b.all_atom_variables()).cloned().collect()
            }
            AlgebraExpr::Projection(_, inner) => inner.all_atom_variables(),
        }
    }

    fn eval_set_inner(
        &self,
        doc: &Document,
        registry: &VarRegistry,
    ) -> Result<Vec<Mapping>, SpannerError> {
        match self {
            AlgebraExpr::Regex(ast) => {
                let (mappings, atom_reg) = spanners_regex::eval_regex(ast, doc)?;
                rename_mappings(&mappings, &atom_reg, registry)
            }
            AlgebraExpr::Automaton(eva) => {
                let mappings = eva.eval_naive(doc);
                rename_mappings(&mappings, eva.registry(), registry)
            }
            AlgebraExpr::Union(a, b) => Ok(union_mapping_sets(
                &a.eval_set_inner(doc, registry)?,
                &b.eval_set_inner(doc, registry)?,
            )),
            AlgebraExpr::Join(a, b) => Ok(join_mapping_sets(
                &a.eval_set_inner(doc, registry)?,
                &b.eval_set_inner(doc, registry)?,
            )),
            AlgebraExpr::Projection(vars, inner) => {
                let keep: VarSet = vars.iter().filter_map(|v| registry.get(v)).collect();
                Ok(project_mapping_set(&inner.eval_set_inner(doc, registry)?, &keep))
            }
        }
    }
}

/// Remaps a set of mappings from one registry into another (by variable name).
///
/// Fallible: a variable of `from` that is absent from `to` yields a typed
/// [`SpannerError::UnknownVariable`] instead of panicking — `eval_set` runs
/// inside serving workers, where an `expect` here would take down a whole
/// batch worker over one malformed registry pair.
pub fn rename_mappings(
    mappings: &[Mapping],
    from: &VarRegistry,
    to: &VarRegistry,
) -> Result<Vec<Mapping>, SpannerError> {
    mappings
        .iter()
        .map(|m| {
            m.iter()
                .map(|(v, s)| {
                    let name = from.name(v);
                    match to.get(name) {
                        Some(target) => Ok((target, s)),
                        None => Err(SpannerError::UnknownVariable { variable: name.to_string() }),
                    }
                })
                .collect()
        })
        .collect()
}

/// Converts mappings into name-keyed span maps, convenient for comparing results
/// produced under different registries (e.g. compiled vs. set-level evaluation).
pub fn named_mappings(mappings: &[Mapping], registry: &VarRegistry) -> Vec<BTreeMap<String, Span>> {
    let mut out: Vec<BTreeMap<String, Span>> = mappings
        .iter()
        .map(|m| m.iter().map(|(v, s)| (registry.name(v).to_string(), s)).collect())
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    /// Compares compiled evaluation against set-level evaluation on several documents.
    fn assert_compiled_matches_set(expr: &AlgebraExpr, docs: &[&str], strategy: CompileStrategy) {
        let spanner = expr.compile(opts(), strategy).expect("compilation succeeds");
        for text in docs {
            let doc = Document::from(*text);
            let (set, set_reg) = expr.eval_set(&doc).expect("set evaluation succeeds");
            let expected = named_mappings(&set, &set_reg);
            let got = named_mappings(&spanner.mappings(&doc), spanner.registry());
            assert_eq!(got, expected, "strategy {strategy:?} on document {text:?}");
            assert_eq!(
                spanner.count_u64(&doc).unwrap() as usize,
                expected.len(),
                "count mismatch ({strategy:?}) on {text:?}"
            );
        }
    }

    fn digits() -> AlgebraExpr {
        AlgebraExpr::regex(".*!num{[0-9]+}.*").unwrap()
    }

    fn words() -> AlgebraExpr {
        AlgebraExpr::regex(".*!word{[a-z]+}.*").unwrap()
    }

    #[test]
    fn union_of_regex_atoms() {
        let expr = digits().union(words());
        for strategy in [CompileStrategy::DeterminizeLate, CompileStrategy::DeterminizeEarly] {
            assert_compiled_matches_set(&expr, &["a1", "abc", "123", "", "x9y"], strategy);
        }
    }

    #[test]
    fn join_of_regex_atoms() {
        let expr = digits().join(words());
        for strategy in [CompileStrategy::DeterminizeLate, CompileStrategy::DeterminizeEarly] {
            assert_compiled_matches_set(&expr, &["a1", "ab12", "zzz", "1"], strategy);
        }
    }

    #[test]
    fn projection_after_join() {
        let expr = digits().join(words()).project(&["num"]);
        assert_eq!(expr.variables(), ["num".to_string()].into_iter().collect());
        for strategy in [CompileStrategy::DeterminizeLate, CompileStrategy::DeterminizeEarly] {
            assert_compiled_matches_set(&expr, &["a1", "ab12", "zzz"], strategy);
        }
    }

    #[test]
    fn join_with_shared_variable() {
        // Both atoms capture `x`; the join intersects their span sets.
        let alnum = AlgebraExpr::regex(".*!x{[a-z0-9]+}.*").unwrap();
        let digits_x = AlgebraExpr::regex(".*!x{[0-9]+}.*").unwrap();
        let expr = alnum.join(digits_x);
        for strategy in [CompileStrategy::DeterminizeLate, CompileStrategy::DeterminizeEarly] {
            assert_compiled_matches_set(&expr, &["a1b2", "abc", "99"], strategy);
        }
    }

    #[test]
    fn nested_expression() {
        // (digits ⋈ words) ∪ π_{num}(digits)
        let expr = digits().join(words()).union(digits().project(&["num"]));
        assert_compiled_matches_set(&expr, &["a1", "1", "a", ""], CompileStrategy::DeterminizeLate);
    }

    #[test]
    fn union_is_commutative_semantically() {
        let e1 = digits().union(words());
        let e2 = words().union(digits());
        let doc = Document::from("a1b");
        let (s1, r1) = e1.eval_set(&doc).unwrap();
        let (s2, r2) = e2.eval_set(&doc).unwrap();
        assert_eq!(named_mappings(&s1, &r1), named_mappings(&s2, &r2));
        let c1 = e1.compile(opts(), CompileStrategy::DeterminizeLate).unwrap();
        let c2 = e2.compile(opts(), CompileStrategy::DeterminizeLate).unwrap();
        assert_eq!(
            named_mappings(&c1.mappings(&doc), c1.registry()),
            named_mappings(&c2.mappings(&doc), c2.registry())
        );
    }

    #[test]
    fn join_is_associative_semantically() {
        let a = digits();
        let b = words();
        let c = AlgebraExpr::regex(".*!cap{[A-Z]+}.*").unwrap();
        let left = a.clone().join(b.clone()).join(c.clone());
        let right = a.join(b.join(c));
        let doc = Document::from("Ab1");
        let (s1, r1) = left.eval_set(&doc).unwrap();
        let (s2, r2) = right.eval_set(&doc).unwrap();
        assert_eq!(named_mappings(&s1, &r1), named_mappings(&s2, &r2));
        assert!(!s1.is_empty());
    }

    #[test]
    fn projection_to_missing_variable_is_empty_domain() {
        let expr = digits().project(&["nonexistent"]);
        assert!(expr.variables().is_empty());
        let doc = Document::from("a1");
        let (set, reg) = expr.eval_set(&doc).unwrap();
        // Projecting away everything yields the boolean spanner: {∅} iff the
        // inner expression matched at all.
        assert_eq!(named_mappings(&set, &reg), vec![BTreeMap::new()]);
    }

    #[test]
    fn automaton_atoms_participate() {
        // Use a regex-compiled VA converted to an eVA as an explicit automaton atom.
        let ast = spanners_regex::parse(".*!x{[0-9]+}.*").unwrap();
        let va = regex_to_va(&ast).unwrap();
        let eva = va_to_eva(&va).unwrap();
        let expr = AlgebraExpr::automaton(eva).join(words());
        assert_compiled_matches_set(&expr, &["a1", "7z"], CompileStrategy::DeterminizeLate);
    }

    #[test]
    fn expression_size_and_variables() {
        let expr = digits().join(words()).project(&["num"]);
        assert!(expr.size() > digits().size() + words().size());
        assert_eq!(expr.variables().into_iter().collect::<Vec<_>>(), vec!["num".to_string()]);
        let expr = digits().union(words());
        assert_eq!(expr.variables().len(), 2);
    }

    #[test]
    fn rename_into_missing_variable_is_a_typed_error() {
        // Regression: `rename_mappings` used to `.expect` the target registry
        // to contain every atom variable, panicking a serving worker on a
        // malformed registry pair. It must surface a typed error instead.
        let mut from = VarRegistry::new();
        let num = from.intern("num").unwrap();
        let mut to = VarRegistry::new();
        to.intern("word").unwrap();
        let mappings = vec![Mapping::new().with(num, Span::new(0, 1).unwrap())];
        let err = rename_mappings(&mappings, &from, &to).unwrap_err();
        assert_eq!(err, SpannerError::UnknownVariable { variable: "num".into() });
        // The happy path still renames by name.
        let mut to_ok = VarRegistry::new();
        to_ok.intern("other").unwrap();
        let renamed_num = to_ok.intern("num").unwrap();
        let renamed = rename_mappings(&mappings, &from, &to_ok).unwrap();
        assert_eq!(renamed, vec![Mapping::new().with(renamed_num, Span::new(0, 1).unwrap())]);
    }

    #[test]
    fn trimmed_intermediates_fit_tighter_budgets() {
        // Regression: before the ops in `spanners-automata` trimmed their
        // outputs, this triple join handed determinize an 88-state automaton
        // (16 of them dead product states) and tripped `max_states = 80`
        // with `BudgetExceeded`; trimmed, the same expression needs 72
        // states and compiles.
        let expr = digits().join(words()).join(AlgebraExpr::regex(".*!cap{[A-Z]+}.*").unwrap());
        let spanner = expr
            .compile(CompileOptions::with_max_states(80), CompileStrategy::DeterminizeLate)
            .expect("fits the budget once intermediates are trimmed");
        for text in ["Ab1", "aB2c", "zzz"] {
            let doc = Document::from(text);
            let (set, set_reg) = expr.eval_set(&doc).expect("set evaluation succeeds");
            assert_eq!(
                named_mappings(&spanner.mappings(&doc), spanner.registry()),
                named_mappings(&set, &set_reg),
                "on {text:?}"
            );
        }
    }

    #[test]
    fn budget_is_respected() {
        let expr = digits().join(words()).join(AlgebraExpr::regex(".*!z{[A-Z]+}.*").unwrap());
        let err =
            expr.compile(CompileOptions::with_max_states(3), CompileStrategy::DeterminizeLate);
        assert!(err.is_err());
    }
}
