//! Multi-tenant serving: one document pass for many spanners.
//!
//! Serving deployments rarely run a single extraction rule: each *tenant*
//! (customer, rule set, dashboard panel) registers its own spanner, and every
//! incoming document must be evaluated against all of them. Running the
//! tenants sequentially re-scans the document once per tenant; the marginal
//! cost of a tenant is a full pass. [`MultiSpanner`] instead compiles the
//! registered spanners into **shared automata** — the algebra-path union of
//! per-tenant automata, with namespaces kept apart — so one evaluation pass
//! over the document serves every tenant at once, and the per-tenant results
//! are recovered by demultiplexing the shared output.
//!
//! # Construction
//!
//! Each tenant's eVA is *branded* before the union:
//!
//! * its capture variables are re-interned as `"{tenant}.{var}"` via
//!   [`VarRegistry::merge_prefixed`], so two tenants both capturing `x`
//!   occupy distinct slots of the shared registry;
//! * a fresh **route variable** named after the tenant id is folded into the
//!   first variable transition of every accepting run (capturing the empty
//!   span `[0, 0⟩`). Every output mapping of the shared automaton therefore
//!   carries exactly one route variable, identifying the tenant whose
//!   spanner produced it.
//!
//! The branded automata are folded with the Proposition 4.4 union and
//! compiled into one lazily-determinized engine per **shard**. Sharding
//! exists because marker sets are bit-packed
//! ([`spanners_core::MAX_VARIABLES`] = 32 variables per automaton): tenants
//! are greedily packed into shards so that Σ(tenant variables + 1 route
//! variable) stays within the limit. A shard holding a single tenant skips
//! branding entirely — no route variable, no renaming, zero overhead over
//! serving that tenant alone.
//!
//! # Demultiplexing
//!
//! The shared pass enumerates the union's mappings; each mapping is routed
//! by its route variable, the route variable is stripped, and the remaining
//! `tenant.var` entries are renamed back to the tenant's own registry. Each
//! tenant's bucket is then sorted, making the output a pure function of
//! (spanner, document) — independent of shard layout, worker count and
//! enumeration order, and byte-identical to sorting that tenant's standalone
//! output.
//!
//! Per-tenant **counts** ride the same pass: the shared enumeration is
//! walked once, incrementing the routed tenant's counter (a single-tenant
//! shard uses the Algorithm 3 counter directly, since there is nothing to
//! demultiplex).
//!
//! # Serving
//!
//! [`MultiSpannerServer`] wraps one [`SpannerServer`] per shard, so the
//! fault-tolerance machinery of the batch runtime — per-document limits, the
//! degradation ladder, panic quarantine — applies to the shared pass: a
//! document that fails in shard *k* fails for shard *k*'s tenants only, and
//! only for that document. [`MultiStreamingServer`] does the same for the
//! streaming service, including generational snapshot re-freezing.

use crate::admission::Governance;
use crate::batch::BatchOptions;
use crate::report::{BatchReport, TenantSlot};
use crate::server::SpannerServer;
use crate::streaming::{StreamingOptions, StreamingServer, StreamingStats, Ticket};
use spanners_automata::{remap_markers, union};
use spanners_core::{
    CompiledSpanner, Document, Eva, EvaBuilder, EvictionPolicy, LazyConfig, Mapping, Marker,
    MarkerSet, SpannerError, VarId, VarRegistry, MAX_VARIABLES,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// MultiSpanner: compilation
// ---------------------------------------------------------------------------

/// One registered tenant of a [`MultiSpanner`].
#[derive(Debug)]
struct TenantInfo {
    /// The tenant id as registered (also the route variable's name).
    id: String,
    /// The tenant's own registry — the namespace its results are returned in.
    registry: VarRegistry,
    /// Which shard serves this tenant.
    shard: usize,
}

/// How a shard's shared output maps back to its tenants.
#[derive(Debug)]
enum Routing {
    /// Single-tenant shard: no branding happened; every mapping belongs to
    /// slot 0 verbatim.
    Single,
    /// Multi-tenant shard: mappings are routed by route variable and renamed.
    Branded {
        /// Shard variable index → tenant slot, for route variables only.
        route_slot: Vec<Option<u32>>,
        /// Shard variable index → the tenant-local id of a capture variable
        /// (meaningless for route variables, which are stripped).
        rename: Vec<VarId>,
    },
}

/// One shared automaton serving a group of tenants.
#[derive(Debug)]
struct Shard {
    /// The compiled union of the shard's branded tenant automata.
    spanner: CompiledSpanner,
    /// Global tenant indices served by this shard, in slot order.
    tenants: Vec<usize>,
    routing: Routing,
}

/// A set of tenant spanners compiled into shared automata that evaluate each
/// document **once**, demultiplexing mappings and counts per tenant.
///
/// See the [module docs](self) for the construction. Results are always
/// indexed by *global tenant index* — the position of the tenant in the
/// slice passed to [`MultiSpanner::compile`] (see
/// [`MultiSpanner::tenant_index`]).
///
/// ```
/// use spanners_core::{ByteClass, Document, EvaBuilder, MarkerSet, VarRegistry};
/// use spanners_runtime::MultiSpanner;
///
/// // Two tenants, both capturing a variable called `x`: one matches runs of
/// // `a`, the other runs of `b`.
/// let eva = |byte: u8| {
///     let mut reg = VarRegistry::new();
///     let x = reg.intern("x").unwrap();
///     let mut b = EvaBuilder::new(reg);
///     let (q0, q1, q2) = (b.add_state(), b.add_state(), b.add_state());
///     b.set_initial(q0);
///     b.set_final(q2);
///     b.add_letter(q0, ByteClass::any(), q0);
///     b.add_byte(q1, byte, q1);
///     b.add_letter(q2, ByteClass::any(), q2);
///     b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
///     b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
///     b.build().unwrap()
/// };
/// let (a, b) = (eva(b'a'), eva(b'b'));
/// let multi = MultiSpanner::compile(&[("alpha", &a), ("beta", &b)]).unwrap();
/// assert_eq!(multi.num_tenants(), 2);
/// assert_eq!(multi.num_shards(), 1); // one shared pass
///
/// let per_tenant = multi.evaluate(&Document::from("ab"));
/// assert_eq!(per_tenant[0].len(), 1); // alpha: x = [0, 1⟩ (the `a`)
/// assert_eq!(per_tenant[1].len(), 1); // beta:  x = [1, 2⟩ (the `b`)
/// // Results come back in each tenant's own registry: just `x`, no prefixes.
/// assert_eq!(multi.tenant_registry(0).len(), 1);
/// ```
#[derive(Debug)]
pub struct MultiSpanner {
    tenants: Vec<TenantInfo>,
    shards: Vec<Shard>,
}

/// Validates a tenant id: non-empty, no `.` (reserved as the namespace
/// separator), unique among the registered ids.
fn validate_tenant_id(id: &str, seen: &[TenantInfo]) -> Result<(), SpannerError> {
    if id.is_empty() {
        return Err(SpannerError::InvalidTenantId {
            id: id.to_string(),
            reason: "tenant ids must be non-empty",
        });
    }
    if id.contains('.') {
        return Err(SpannerError::InvalidTenantId {
            id: id.to_string(),
            reason: "tenant ids must not contain `.` (reserved as the namespace separator)",
        });
    }
    if seen.iter().any(|t| t.id == id) {
        return Err(SpannerError::InvalidTenantId {
            id: id.to_string(),
            reason: "tenant ids must be unique",
        });
    }
    Ok(())
}

/// Brands one tenant's eVA for a shared multi-tenant shard: prefixes its
/// capture variables with the tenant id and folds the route variable (named
/// by the tenant id, capturing `[0, 0⟩`) into the start of every run.
///
/// The eVA model forbids consecutive variable transitions, so the route
/// markers cannot be a standalone first transition followed by the tenant's
/// own first variable transition. Instead the new initial state mirrors the
/// original initial state's variable transitions with the route markers
/// folded in (runs whose first step opens variables), plus a single
/// `{open, close}` route transition to a pass-through state that mirrors the
/// original initial state's letter transitions and finality (runs whose
/// first step reads a letter, and runs accepting the empty mapping).
fn brand(id: &str, eva: &Eva) -> Result<Eva, SpannerError> {
    let mut reg = VarRegistry::new();
    let route = reg.intern(id)?;
    let map = reg.merge_prefixed(id, eva.registry())?;
    let mut b = EvaBuilder::new(reg);
    let states = b.add_states(eva.num_states());
    let entry = b.add_state();
    let pass = b.add_state();
    b.set_initial(entry);
    for q in 0..eva.num_states() {
        if eva.is_final(q) {
            b.set_final(states[q]);
        }
        for t in eva.letter_transitions(q) {
            b.add_letter(states[q], t.class, states[t.target]);
        }
        for t in eva.var_transitions(q) {
            b.add_var(states[q], remap_markers(t.markers, &map), states[t.target])?;
        }
    }
    let init = eva.initial();
    for t in eva.var_transitions(init) {
        let mut markers = remap_markers(t.markers, &map);
        markers.insert(Marker::Open(route));
        markers.insert(Marker::Close(route));
        b.add_var(entry, markers, states[t.target])?;
    }
    b.add_var(entry, MarkerSet::new().with_open(route).with_close(route), pass)?;
    if eva.is_final(init) {
        b.set_final(pass);
    }
    for t in eva.letter_transitions(init) {
        b.add_letter(pass, t.class, states[t.target]);
    }
    b.build()
}

impl MultiSpanner {
    /// Compiles tenant spanners into shared automata with the default lazy
    /// configuration and the [`EvictionPolicy::Segmented`] cache policy —
    /// under memory pressure the shared determinization cache spares the
    /// hottest subset states *across tenants* instead of clearing wholesale.
    ///
    /// Tenants are identified by id (non-empty, unique, no `.`); results are
    /// indexed by position in `tenants`. Fails on an invalid id, an eVA that
    /// is not sequential, or a single tenant exceeding the variable limit.
    pub fn compile(tenants: &[(&str, &Eva)]) -> Result<MultiSpanner, SpannerError> {
        MultiSpanner::compile_with(
            tenants,
            LazyConfig::default().with_eviction(EvictionPolicy::Segmented),
        )
    }

    /// [`MultiSpanner::compile`] with an explicit lazy-determinization
    /// configuration for the shard engines.
    pub fn compile_with(
        tenants: &[(&str, &Eva)],
        config: LazyConfig,
    ) -> Result<MultiSpanner, SpannerError> {
        if tenants.is_empty() {
            return Err(SpannerError::InvalidConfig { what: "at least one tenant is required" });
        }
        let mut infos: Vec<TenantInfo> = Vec::with_capacity(tenants.len());
        for (id, eva) in tenants {
            validate_tenant_id(id, &infos)?;
            infos.push(TenantInfo {
                id: id.to_string(),
                registry: eva.registry().clone(),
                shard: usize::MAX,
            });
        }

        // First-fit-*decreasing* shard packing: a tenant costs its variable
        // count plus one route variable, tenants are placed widest-first
        // (stable on input order for equal widths), and each tenant goes
        // into the first open shard with room — narrow tenants fill the gaps
        // the wide ones leave, so skewed tenant populations need fewer
        // shards than closing-shard first-fit would. A tenant too wide to
        // share (cost > limit) lands alone and is served unbranded, which
        // needs no route variable. Tenants inside a shard keep input order
        // (the fold and routing tables rely on it).
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(tenants[i].1.registry().len()));
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_used: Vec<usize> = Vec::new();
        for &i in &order {
            let cost = tenants[i].1.registry().len() + 1;
            match group_used.iter().position(|&used| used + cost <= MAX_VARIABLES) {
                Some(g) => {
                    groups[g].push(i);
                    group_used[g] += cost;
                }
                None => {
                    groups.push(vec![i]);
                    group_used.push(cost);
                }
            }
        }
        for group in &mut groups {
            group.sort_unstable();
        }

        let mut shards = Vec::with_capacity(groups.len());
        for group in groups {
            let shard_idx = shards.len();
            for &i in &group {
                infos[i].shard = shard_idx;
            }
            let shard = if let [only] = group[..] {
                Shard {
                    spanner: CompiledSpanner::from_eva_lazy(tenants[only].1, config)?,
                    tenants: group,
                    routing: Routing::Single,
                }
            } else {
                let mut folded: Option<Eva> = None;
                for &i in &group {
                    let branded = brand(&infos[i].id, tenants[i].1)?;
                    folded = Some(match folded {
                        None => branded,
                        Some(acc) => union(&acc, &branded)?,
                    });
                }
                let folded = folded.expect("group is non-empty");
                let shared_reg = folded.registry();
                let mut route_slot = vec![None; shared_reg.len()];
                let mut rename = vec![VarId::new(0)?; shared_reg.len()];
                for (slot, &i) in group.iter().enumerate() {
                    let info = &infos[i];
                    let route = shared_reg
                        .get(&info.id)
                        .expect("route variable is interned during branding");
                    route_slot[route.index()] = Some(slot as u32);
                    for (local, name) in info.registry.iter() {
                        let shared = shared_reg
                            .get(&format!("{}.{}", info.id, name))
                            .expect("prefixed variable is interned during branding");
                        rename[shared.index()] = local;
                    }
                }
                Shard {
                    spanner: CompiledSpanner::from_eva_lazy(&folded, config)?,
                    tenants: group,
                    routing: Routing::Branded { route_slot, rename },
                }
            };
            shards.push(shard);
        }
        Ok(MultiSpanner { tenants: infos, shards })
    }

    /// Number of registered tenants.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Number of shared automata (shards) backing the tenants.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Tenant ids in registration (= result index) order.
    pub fn tenant_ids(&self) -> impl Iterator<Item = &str> {
        self.tenants.iter().map(|t| t.id.as_str())
    }

    /// The global index of a tenant id, if registered.
    pub fn tenant_index(&self, id: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.id == id)
    }

    /// The registry a tenant's results are expressed in — the tenant's own
    /// namespace, free of `tenant.var` prefixes and route variables.
    pub fn tenant_registry(&self, tenant: usize) -> &VarRegistry {
        &self.tenants[tenant].registry
    }

    /// Which shard serves a tenant.
    pub fn shard_of(&self, tenant: usize) -> usize {
        self.tenants[tenant].shard
    }

    /// The shared compiled spanner of a shard (diagnostics; its registry is
    /// the shared namespace, not a tenant namespace).
    pub fn shard_spanner(&self, shard: usize) -> &CompiledSpanner {
        &self.shards[shard].spanner
    }

    /// Demultiplexes one shared-pass enumeration into per-slot buckets of
    /// tenant-namespace mappings, each bucket sorted.
    fn demux_mappings<I>(&self, shard: usize, mappings: I) -> Vec<Vec<Mapping>>
    where
        I: IntoIterator<Item = Mapping>,
    {
        let sh = &self.shards[shard];
        let mut per: Vec<Vec<Mapping>> = vec![Vec::new(); sh.tenants.len()];
        match &sh.routing {
            Routing::Single => per[0].extend(mappings),
            Routing::Branded { route_slot, rename } => {
                for m in mappings {
                    let Some(slot) = m.iter().find_map(|(v, _)| route_slot[v.index()]) else {
                        debug_assert!(false, "shared-pass mapping without a route variable");
                        continue;
                    };
                    per[slot as usize].push(
                        m.iter()
                            .filter(|(v, _)| route_slot[v.index()].is_none())
                            .map(|(v, span)| (rename[v.index()], span))
                            .collect(),
                    );
                }
            }
        }
        for bucket in &mut per {
            bucket.sort_unstable();
        }
        per
    }

    /// Evaluates one document with **one pass per shard**, returning each
    /// tenant's mappings (global tenant order, each tenant's bucket sorted,
    /// expressed in that tenant's own registry).
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<Mapping>> {
        let mut out: Vec<Vec<Mapping>> = vec![Vec::new(); self.tenants.len()];
        for (s, sh) in self.shards.iter().enumerate() {
            let dag = sh.spanner.evaluate(doc);
            for (slot, bucket) in self.demux_mappings(s, dag.iter()).into_iter().enumerate() {
                out[sh.tenants[slot]] = bucket;
            }
        }
        out
    }

    /// Counts each tenant's mappings with one pass per shard. Single-tenant
    /// shards use the Algorithm 3 counter (no enumeration); shared shards
    /// walk the shared enumeration once, incrementing the routed tenant.
    pub fn count(&self, doc: &Document) -> Result<Vec<u64>, SpannerError> {
        let mut out = vec![0u64; self.tenants.len()];
        for sh in &self.shards {
            match &sh.routing {
                Routing::Single => out[sh.tenants[0]] = sh.spanner.count_u64(doc)?,
                Routing::Branded { route_slot, .. } => {
                    let dag = sh.spanner.evaluate(doc);
                    for m in dag.iter() {
                        if let Some(slot) = m.iter().find_map(|(v, _)| route_slot[v.index()]) {
                            out[sh.tenants[slot as usize]] += 1;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Batch serving
// ---------------------------------------------------------------------------

/// The outcome of a multi-tenant batch: per-document × per-tenant results,
/// plus the aggregated per-tenant slots and fault-tolerance counters of the
/// underlying shard passes.
///
/// `results[doc][tenant]` is the outcome of `doc` for `tenant` (global
/// tenant order). A document that failed in shard *k* is `Err` for exactly
/// shard *k*'s tenants — tenant routing never leaks a failure across shards.
#[derive(Debug)]
pub struct MultiBatchReport {
    /// `results[doc][tenant]`: that tenant's sorted mappings for that
    /// document, or the shard-level per-document error.
    pub results: Vec<Vec<Result<Vec<Mapping>, SpannerError>>>,
    /// Per-tenant accounting, in global tenant order.
    pub tenants: Vec<TenantSlot>,
    /// Documents that succeeded only after a degraded retry, summed over
    /// shard passes.
    pub degraded: usize,
    /// Retry attempts spent, summed over shard passes.
    pub retried: usize,
    /// Engines quarantined by contained panics, summed over shard passes.
    pub quarantined: usize,
}

impl MultiBatchReport {
    /// Whether every document succeeded for every tenant.
    pub fn is_fully_ok(&self) -> bool {
        self.tenants.iter().all(|t| t.failed == 0)
    }

    /// One tenant's per-document outcomes, in document order.
    pub fn tenant_results(
        &self,
        tenant: usize,
    ) -> impl Iterator<Item = &Result<Vec<Mapping>, SpannerError>> {
        self.results.iter().map(move |row| &row[tenant])
    }
}

/// The long-lived serving form of a [`MultiSpanner`]: one [`SpannerServer`]
/// per shard, so warm engine pools, shared frozen snapshots, per-document
/// limits, the degradation ladder and panic quarantine all apply to the
/// shared passes.
#[derive(Debug)]
pub struct MultiSpannerServer {
    multi: Arc<MultiSpanner>,
    servers: Vec<SpannerServer>,
}

impl MultiSpannerServer {
    /// Creates a server with default [`BatchOptions`].
    pub fn new(multi: MultiSpanner) -> MultiSpannerServer {
        MultiSpannerServer::with_options(multi, BatchOptions::default())
    }

    /// Creates a server with explicit batch options (applied to every shard).
    pub fn with_options(multi: MultiSpanner, opts: BatchOptions) -> MultiSpannerServer {
        let multi = Arc::new(multi);
        let servers = multi
            .shards
            .iter()
            .map(|sh| SpannerServer::with_options(sh.spanner.clone(), opts))
            .collect();
        MultiSpannerServer { multi, servers }
    }

    /// The compiled multi-spanner this server fronts.
    pub fn multi(&self) -> &MultiSpanner {
        &self.multi
    }

    /// Warms every shard's frozen snapshot on sample documents.
    pub fn warm(&self, docs: &[Document]) {
        for server in &self.servers {
            server.warm(docs);
        }
    }

    /// Evaluates one shard's shared pass over a batch, demultiplexing inside
    /// the workers: the report's `results[doc]` holds per-*slot* buckets
    /// (shard slot order) and [`BatchReport::tenants`] is filled with the
    /// shard's per-tenant slots.
    pub fn evaluate_shard_report(
        &self,
        shard: usize,
        docs: &[Document],
    ) -> Result<BatchReport<Vec<Vec<Mapping>>>, SpannerError> {
        let multi = &self.multi;
        let mut report = self.servers[shard]
            .evaluate_batch_report(docs, |_, view| multi.demux_mappings(shard, view.iter()))?;
        let sh = &multi.shards[shard];
        let mut slots: Vec<TenantSlot> = sh
            .tenants
            .iter()
            .map(|&g| TenantSlot { id: multi.tenants[g].id.clone(), ok: 0, failed: 0, mappings: 0 })
            .collect();
        for result in &report.results {
            match result {
                Ok(per) => {
                    for (slot, bucket) in per.iter().enumerate() {
                        slots[slot].ok += 1;
                        slots[slot].mappings += bucket.len();
                    }
                }
                Err(_) => {
                    for slot in &mut slots {
                        slot.failed += 1;
                    }
                }
            }
        }
        report.tenants = slots;
        Ok(report)
    }

    /// Evaluates a batch of documents — **one pass per shard, not per
    /// tenant** — and returns per-document × per-tenant outcomes. Fails only
    /// on invalid batch options.
    pub fn evaluate_batch_report(
        &self,
        docs: &[Document],
    ) -> Result<MultiBatchReport, SpannerError> {
        // Per-document × per-tenant fill-in slots; every tenant belongs to
        // exactly one shard, so each slot is written exactly once.
        type Slots = Vec<Option<Result<Vec<Mapping>, SpannerError>>>;
        let n = self.multi.num_tenants();
        let mut results: Vec<Slots> =
            (0..docs.len()).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut tenants: Vec<Option<TenantSlot>> = (0..n).map(|_| None).collect();
        let (mut degraded, mut retried, mut quarantined) = (0, 0, 0);
        for (s, sh) in self.multi.shards.iter().enumerate() {
            let report = self.evaluate_shard_report(s, docs)?;
            degraded += report.degraded;
            retried += report.retried;
            quarantined += report.quarantined;
            for (slot, &g) in sh.tenants.iter().enumerate() {
                tenants[g] = Some(report.tenants[slot].clone());
            }
            for (d, result) in report.results.into_iter().enumerate() {
                match result {
                    Ok(per) => {
                        for (slot, bucket) in per.into_iter().enumerate() {
                            results[d][sh.tenants[slot]] = Some(Ok(bucket));
                        }
                    }
                    Err(e) => {
                        for &g in &sh.tenants {
                            results[d][g] = Some(Err(e.clone()));
                        }
                    }
                }
            }
        }
        Ok(MultiBatchReport {
            results: results
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|cell| cell.expect("every tenant belongs to exactly one shard"))
                        .collect()
                })
                .collect(),
            tenants: tenants
                .into_iter()
                .map(|slot| slot.expect("every tenant belongs to exactly one shard"))
                .collect(),
            degraded,
            retried,
            quarantined,
        })
    }
}

// ---------------------------------------------------------------------------
// Streaming serving
// ---------------------------------------------------------------------------

/// A claim ticket for one document submitted to a [`MultiStreamingServer`]:
/// one underlying [`Ticket`] per shard.
#[derive(Debug)]
pub struct MultiTicket {
    multi: Arc<MultiSpanner>,
    tickets: Vec<Ticket<Vec<Vec<Mapping>>>>,
}

impl MultiTicket {
    /// Whether every shard's result is already available.
    pub fn is_done(&self) -> bool {
        self.tickets.iter().all(Ticket::is_done)
    }

    /// Blocks until every shard finished the document, returning per-tenant
    /// outcomes in global tenant order. A shard-level failure is reported
    /// for exactly that shard's tenants.
    pub fn wait(self) -> Vec<Result<Vec<Mapping>, SpannerError>> {
        let MultiTicket { multi, tickets } = self;
        let results: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        MultiTicket::demux(&multi, results)
    }

    /// Bounded [`MultiTicket::wait`]: blocks up to `timeout` for **every**
    /// shard's result. A timeout returns [`SpannerError::WaitTimedOut`]
    /// without consuming anything — the document stays in flight on every
    /// shard and the caller may wait again. Once all shards are done the
    /// per-tenant outcomes are claimed exactly like [`MultiTicket::wait`]
    /// (waiting again after that panics).
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Vec<Result<Vec<Mapping>, SpannerError>>, SpannerError> {
        let deadline = Instant::now() + timeout;
        for ticket in &self.tickets {
            if !ticket.wait_done_until(deadline) {
                return Err(SpannerError::WaitTimedOut {
                    waited_ms: u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
                });
            }
        }
        let results: Vec<_> = self
            .tickets
            .iter()
            .map(|t| t.take_ready().expect("all shard tickets checked done above"))
            .collect();
        Ok(MultiTicket::demux(&self.multi, results))
    }

    /// Routes per-shard shared-pass results back to global tenant order
    /// (shard-level failures land on exactly that shard's tenants).
    fn demux(
        multi: &MultiSpanner,
        results: Vec<Result<Vec<Vec<Mapping>>, SpannerError>>,
    ) -> Vec<Result<Vec<Mapping>, SpannerError>> {
        let mut out: Vec<Option<Result<Vec<Mapping>, SpannerError>>> =
            (0..multi.num_tenants()).map(|_| None).collect();
        for (s, result) in results.into_iter().enumerate() {
            let sh = &multi.shards[s];
            match result {
                Ok(per) => {
                    for (slot, bucket) in per.into_iter().enumerate() {
                        out[sh.tenants[slot]] = Some(Ok(bucket));
                    }
                }
                Err(e) => {
                    for &g in &sh.tenants {
                        out[g] = Some(Err(e.clone()));
                    }
                }
            }
        }
        out.into_iter()
            .map(|cell| cell.expect("every tenant belongs to exactly one shard"))
            .collect()
    }
}

/// The streaming form of multi-tenant serving: one [`StreamingServer`] per
/// shard, each running the shared pass and demultiplexing on the worker that
/// evaluated the document. Bounded ingress, micro-batching, per-document
/// deadlines and generational re-freezing all apply per shard.
#[derive(Debug)]
pub struct MultiStreamingServer {
    multi: Arc<MultiSpanner>,
    servers: Vec<StreamingServer<Vec<Vec<Mapping>>>>,
}

impl MultiStreamingServer {
    /// Starts one streaming service per shard with the given options.
    pub fn start(
        multi: MultiSpanner,
        opts: StreamingOptions,
    ) -> Result<MultiStreamingServer, SpannerError> {
        MultiStreamingServer::start_governed(multi, opts, Governance::none())
    }

    /// [`MultiStreamingServer::start`] with overload governance: the
    /// admission controller (when present) gates the whole multi-shard
    /// submission **once** — it is attached to shard 0, whose completed
    /// micro-batches drive the batch-clocked admission sequence (every
    /// shard sees the same documents, so shard 0's batch cadence is
    /// representative) — while the memory governor is shared by every
    /// shard's engine pool through per-shard ledger handles.
    pub fn start_governed(
        multi: MultiSpanner,
        opts: StreamingOptions,
        governance: Governance,
    ) -> Result<MultiStreamingServer, SpannerError> {
        let multi = Arc::new(multi);
        let servers = multi
            .shards
            .iter()
            .enumerate()
            .map(|(s, sh)| {
                let demux = Arc::clone(&multi);
                let shard_governance = if s == 0 {
                    governance.clone()
                } else {
                    Governance { admission: None, governor: governance.governor.clone() }
                };
                StreamingServer::start_governed(
                    sh.spanner.clone(),
                    opts,
                    shard_governance,
                    move |_, view| demux.demux_mappings(s, view.iter()),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiStreamingServer { multi, servers })
    }

    /// The compiled multi-spanner this service fronts.
    pub fn multi(&self) -> &MultiSpanner {
        &self.multi
    }

    /// Submits one document to every shard (cloning it per shard), blocking
    /// while any shard's queue is full. On error, shards that already
    /// accepted the document still evaluate it; their results are discarded
    /// with the returned tickets. Equivalent to
    /// [`MultiStreamingServer::submit_for`] with the anonymous (empty)
    /// tenant id.
    pub fn submit(
        &self,
        doc: &Document,
        deadline: Option<Duration>,
    ) -> Result<MultiTicket, SpannerError> {
        self.submit_for("", doc, deadline)
    }

    /// [`MultiStreamingServer::submit`] on behalf of `tenant`: the
    /// tenant's circuit breaker and quotas (see [`crate::admission`]) gate
    /// the whole multi-shard submission once, at shard 0 — an admission
    /// rejection surfaces before any shard accepts the document, leaving
    /// nothing in flight anywhere.
    pub fn submit_for(
        &self,
        tenant: &str,
        doc: &Document,
        deadline: Option<Duration>,
    ) -> Result<MultiTicket, SpannerError> {
        let mut tickets = Vec::with_capacity(self.servers.len());
        for (s, server) in self.servers.iter().enumerate() {
            tickets.push(if s == 0 {
                server.submit_for(tenant, doc.clone(), deadline)?
            } else {
                server.submit(doc.clone(), deadline)?
            });
        }
        Ok(MultiTicket { multi: Arc::clone(&self.multi), tickets })
    }

    /// Snapshot of every shard's streaming counters.
    pub fn stats(&self) -> Vec<StreamingStats> {
        self.servers.iter().map(StreamingServer::stats).collect()
    }

    /// Stops accepting new documents on every shard (already-accepted work
    /// still completes; call [`MultiStreamingServer::drain`] to finish).
    pub fn begin_drain(&self) {
        for server in &self.servers {
            server.begin_drain();
        }
    }

    /// Graceful shutdown: drains every shard and returns their final stats.
    pub fn drain(self) -> Vec<StreamingStats> {
        self.servers.into_iter().map(StreamingServer::drain).collect()
    }

    /// Immediate shutdown: aborts every shard (queued documents resolve
    /// their tickets with [`SpannerError::ShuttingDown`]).
    pub fn abort(self) -> Vec<StreamingStats> {
        self.servers.into_iter().map(StreamingServer::abort).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::ByteClass;

    /// An eVA capturing every maximal-free span of `byte`-runs: `x` matches
    /// any run of the given byte (`.*!x{b+}.*` in regex-formula terms, minus
    /// the maximality — all sub-runs match).
    fn run_eva(var: &str, byte: u8) -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern(var).unwrap();
        let mut b = EvaBuilder::new(reg);
        let (q0, q1, q2) = (b.add_state(), b.add_state(), b.add_state());
        b.set_initial(q0);
        b.set_final(q2);
        b.add_letter(q0, ByteClass::any(), q0);
        b.add_byte(q1, byte, q1);
        b.add_letter(q2, ByteClass::any(), q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        b.build().unwrap()
    }

    fn sorted_single(eva: &Eva, doc: &Document) -> Vec<Mapping> {
        let spanner = CompiledSpanner::from_eva_lazy(eva, LazyConfig::default()).unwrap();
        let mut out = spanner.mappings(doc);
        out.sort_unstable();
        out
    }

    #[test]
    fn tenant_id_validation() {
        let eva = run_eva("x", b'a');
        let empty = MultiSpanner::compile(&[("", &eva)]).unwrap_err();
        assert!(matches!(empty, SpannerError::InvalidTenantId { .. }));
        let dotted = MultiSpanner::compile(&[("a.b", &eva)]).unwrap_err();
        assert!(matches!(dotted, SpannerError::InvalidTenantId { .. }));
        let dup = MultiSpanner::compile(&[("t", &eva), ("t", &eva)]).unwrap_err();
        assert!(matches!(dup, SpannerError::InvalidTenantId { .. }));
        assert!(matches!(MultiSpanner::compile(&[]), Err(SpannerError::InvalidConfig { .. })));
    }

    #[test]
    fn shared_pass_matches_per_tenant_passes() {
        let a = run_eva("x", b'a');
        let b = run_eva("x", b'b');
        let c = run_eva("y", b'c');
        let multi = MultiSpanner::compile(&[("t0", &a), ("t1", &b), ("t2", &c)]).unwrap();
        assert_eq!(multi.num_shards(), 1, "three 1-var tenants share one pass");
        for text in ["", "abc", "aabbcc", "cabacaba", "zzz"] {
            let doc = Document::from(text);
            let got = multi.evaluate(&doc);
            let counts = multi.count(&doc).unwrap();
            for (i, eva) in [&a, &b, &c].into_iter().enumerate() {
                let expected = sorted_single(eva, &doc);
                assert_eq!(got[i], expected, "tenant {i} on {text:?}");
                assert_eq!(counts[i], expected.len() as u64, "tenant {i} count on {text:?}");
            }
        }
    }

    #[test]
    fn results_come_back_in_tenant_namespaces() {
        let a = run_eva("x", b'a');
        let b = run_eva("x", b'b');
        let multi = MultiSpanner::compile(&[("t0", &a), ("t1", &b)]).unwrap();
        for tenant in 0..2 {
            let reg = multi.tenant_registry(tenant);
            assert_eq!(reg.len(), 1);
            assert_eq!(reg.name(reg.get("x").unwrap()), "x");
        }
        // The shared shard registry, by contrast, holds routes + prefixes.
        let shared = multi.shard_spanner(0).registry();
        assert!(shared.get("t0").is_some());
        assert!(shared.get("t0.x").is_some());
        assert!(shared.get("x").is_none());
    }

    #[test]
    fn wide_tenants_split_into_shards_and_single_shards_skip_branding() {
        let wide = |seed: usize| {
            let mut reg = VarRegistry::new();
            for v in 0..20 {
                reg.intern(&format!("v{seed}_{v}")).unwrap();
            }
            let x = reg.get(&format!("v{seed}_0")).unwrap();
            let mut b = EvaBuilder::new(reg);
            let (q0, q1) = (b.add_state(), b.add_state());
            b.set_initial(q0);
            b.set_final(q1);
            b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
            b.add_byte(q1, b'a', q1);
            b.build().unwrap()
        };
        let (w0, w1) = (wide(0), wide(1));
        let multi = MultiSpanner::compile(&[("t0", &w0), ("t1", &w1)]).unwrap();
        assert_eq!(multi.num_shards(), 2, "20+1 vars each cannot share a 32-var shard");
        // Single-tenant shards are unbranded: no route variable interned.
        assert!(multi.shard_spanner(0).registry().get("t0").is_none());
        let doc = Document::from("aaa");
        let got = multi.evaluate(&doc);
        assert_eq!(got[0], sorted_single(&w0, &doc));
        assert_eq!(got[1], sorted_single(&w1, &doc));
    }

    #[test]
    fn skewed_tenants_pack_first_fit_decreasing() {
        // Tenant shard costs (vars + 1 route) of [12, 12, 20, 20] against the
        // 32-variable limit: arrival-order first-fit opens a shard with the
        // two narrow tenants (cost 24), neither wide tenant fits beside them,
        // and the layout needs 3 shards. First-fit-*decreasing* places the
        // wide tenants first and slots one narrow tenant next to each — the
        // optimal 2 shards. This pins the FFD layout and that demuxed
        // results are unaffected by the packing order.
        let tenant = |seed: usize, vars: usize, byte: u8| {
            let mut reg = VarRegistry::new();
            for v in 0..vars {
                reg.intern(&format!("v{seed}_{v}")).unwrap();
            }
            let x = reg.get(&format!("v{seed}_0")).unwrap();
            let mut b = EvaBuilder::new(reg);
            let (q0, q1, q2) = (b.add_state(), b.add_state(), b.add_state());
            b.set_initial(q0);
            b.set_final(q2);
            b.add_letter(q0, ByteClass::any(), q0);
            b.add_byte(q1, byte, q1);
            b.add_letter(q2, ByteClass::any(), q2);
            b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
            b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
            b.build().unwrap()
        };
        let evas =
            [tenant(0, 11, b'a'), tenant(1, 11, b'b'), tenant(2, 19, b'c'), tenant(3, 19, b'd')];
        let tenants: Vec<(&str, &Eva)> = ["t0", "t1", "t2", "t3"].into_iter().zip(&evas).collect();
        let multi = MultiSpanner::compile(&tenants).unwrap();
        assert_eq!(multi.num_shards(), 2, "FFD must pack [12,12,20,20] into 2 shards");
        for text in ["", "abcd", "ccaadbba", "dddd"] {
            let doc = Document::from(text);
            let got = multi.evaluate(&doc);
            let counts = multi.count(&doc).unwrap();
            for (i, eva) in evas.iter().enumerate() {
                let expected = sorted_single(eva, &doc);
                assert_eq!(got[i], expected, "tenant {i} on {text:?}");
                assert_eq!(counts[i], expected.len() as u64, "tenant {i} count on {text:?}");
            }
        }
    }

    #[test]
    fn batch_server_demuxes_and_fills_tenant_slots() {
        let a = run_eva("x", b'a');
        let b = run_eva("x", b'b');
        let multi = MultiSpanner::compile(&[("t0", &a), ("t1", &b)]).unwrap();
        let server = MultiSpannerServer::with_options(multi, BatchOptions::threads(2));
        let docs: Vec<Document> =
            ["ab", "", "ba", "aaa"].iter().map(|t| Document::from(*t)).collect();
        let report = server.evaluate_batch_report(&docs).unwrap();
        assert!(report.is_fully_ok());
        assert_eq!(report.results.len(), docs.len());
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].id, "t0");
        assert_eq!(report.tenants[0].ok, docs.len());
        for (d, doc) in docs.iter().enumerate() {
            assert_eq!(report.results[d][0].as_ref().unwrap(), &sorted_single(&a, doc));
            assert_eq!(report.results[d][1].as_ref().unwrap(), &sorted_single(&b, doc));
        }
        let total: usize = report.results.iter().map(|r| r[0].as_ref().unwrap().len()).sum();
        assert_eq!(report.tenants[0].mappings, total);
    }

    #[test]
    fn streaming_server_demuxes_per_tenant() {
        let a = run_eva("x", b'a');
        let b = run_eva("x", b'b');
        let multi = MultiSpanner::compile(&[("t0", &a), ("t1", &b)]).unwrap();
        let server = MultiStreamingServer::start(multi, StreamingOptions::workers(2)).unwrap();
        let docs: Vec<Document> = ["ab", "bb", "xyz"].iter().map(|t| Document::from(*t)).collect();
        let tickets: Vec<MultiTicket> =
            docs.iter().map(|d| server.submit(d, None).unwrap()).collect();
        for (ticket, doc) in tickets.into_iter().zip(&docs) {
            let per = ticket.wait();
            assert_eq!(per[0].as_ref().unwrap(), &sorted_single(&a, doc));
            assert_eq!(per[1].as_ref().unwrap(), &sorted_single(&b, doc));
        }
        let stats = server.drain();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].completed, docs.len() as u64);
    }
}
