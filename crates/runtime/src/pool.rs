//! Checkout/checkin pools of warm per-worker evaluation engines.
//!
//! A pool is the serving-side answer to "one warm [`Evaluator`] per worker":
//! workers check an engine out for a document (or a run of documents), and
//! the drop of the guard checks it back in with **all retained capacity** —
//! DAG arenas, per-state buffers, class buffers, lazy caches and frozen
//! deltas included. In steady state a pool stops allocating entirely: the
//! same engines cycle between workers, and a batch of N threads creates at
//! most N engines over the pool's lifetime no matter how many documents it
//! serves.

use spanners_core::{CountCache, Counter, EngineMode, Evaluator, SlpEvaluator};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a pool mutex, recovering from poisoning: the pooled engines are
/// plain data whose invariants cannot be broken mid-operation, so a panic in
/// some other worker never invalidates the freelist itself.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A pool of warm [`Evaluator`]s (Algorithm 1 engines).
///
/// ```
/// use spanners_runtime::EvaluatorPool;
/// let pool = EvaluatorPool::new();
/// {
///     let mut evaluator = pool.checkout(); // fresh engine: the pool was empty
///     let _ = &mut *evaluator;             // …use it…
/// } // drop checks it back in, capacity retained
/// assert_eq!(pool.idle(), 1);
/// assert_eq!(pool.engines_created(), 1);
/// let _again = pool.checkout(); // the same warm engine, not a new one
/// assert_eq!(pool.engines_created(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EvaluatorPool {
    /// Idle engines, each tagged with the serving generation it last ran
    /// under (`0` for untagged batch work). Tag-aware checkouts prefer an
    /// engine of their own generation — its [`spanners_core::FrozenDelta`]
    /// is already bound to that generation's snapshot, so no rebind-reset.
    idle: Mutex<Vec<(u64, Evaluator)>>,
    mode: EngineMode,
    created: AtomicUsize,
    quarantined: AtomicUsize,
}

impl EvaluatorPool {
    /// An empty pool handing out engines in the default
    /// [`EngineMode::SkipScan`].
    pub fn new() -> EvaluatorPool {
        EvaluatorPool::default()
    }

    /// An empty pool whose engines run the given mode.
    pub fn with_mode(mode: EngineMode) -> EvaluatorPool {
        EvaluatorPool { mode, ..EvaluatorPool::default() }
    }

    /// Checks an engine out: a warm one when available, a fresh one
    /// otherwise. The returned guard checks it back in on drop.
    pub fn checkout(&self) -> PooledEvaluator<'_> {
        self.checkout_tagged(0)
    }

    /// Checks an engine out preferring one last used under generation `tag`
    /// (falling back to any warm engine, then to a fresh one). The guard
    /// remembers the tag and checks the engine back in under it.
    pub fn checkout_tagged(&self, tag: u64) -> PooledEvaluator<'_> {
        crate::faults::checkout_fault();
        let engine = {
            let mut idle = lock(&self.idle);
            match idle.iter().rposition(|&(t, _)| t == tag) {
                Some(i) => Some(idle.swap_remove(i).1),
                None => idle.pop().map(|(_, e)| e),
            }
        };
        let engine = engine.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Evaluator::with_mode(self.mode)
        });
        PooledEvaluator { pool: self, engine: Some(engine), tag }
    }

    /// Number of engines currently checked in.
    pub fn idle(&self) -> usize {
        lock(&self.idle).len()
    }

    /// Total engines ever created — the warm-reuse diagnostic: a pool serving
    /// from warm engines stops incrementing this.
    pub fn engines_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Total engines quarantined (see [`PooledEvaluator::quarantine`]) — each
    /// was dropped instead of checked back in, and a fresh replacement was
    /// checked in pre-emptively in its place.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Governed bytes held by the idle engines (lazy caches plus frozen
    /// deltas) — what this pool settles into a global
    /// [`spanners_core::MemoryGovernor`]. Checked-out engines are counted at
    /// the next settle point, after their batch checks them back in.
    pub fn governed_bytes(&self) -> usize {
        lock(&self.idle).iter().map(|(_, e)| e.governed_bytes()).sum()
    }

    /// Sheds every idle engine's governed memory (severity 1 of the global
    /// shedding ladder; see [`Evaluator::shed_cold_memory`]). Returns the
    /// number of engines that actually freed bytes.
    pub fn shed_cold(&self) -> u64 {
        let mut idle = lock(&self.idle);
        idle.iter_mut().map(|(_, e)| e.shed_cold_memory()).filter(|&freed| freed > 0).count() as u64
    }
}

/// Checkout guard of an [`EvaluatorPool`]; derefs to the [`Evaluator`] and
/// returns it (capacity retained) on drop.
#[derive(Debug)]
pub struct PooledEvaluator<'p> {
    pool: &'p EvaluatorPool,
    engine: Option<Evaluator>,
    tag: u64,
}

impl Deref for PooledEvaluator<'_> {
    type Target = Evaluator;
    fn deref(&self) -> &Evaluator {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl DerefMut for PooledEvaluator<'_> {
    fn deref_mut(&mut self) -> &mut Evaluator {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl PooledEvaluator<'_> {
    /// Consumes the guard **without** checking the engine back in: the
    /// engine is dropped and the pool's quarantine counter bumped. Used by
    /// panic containment — an engine whose evaluation unwound mid-document
    /// may hold arbitrarily corrupted arena state, so it must never serve
    /// another document. Replenishment is **pre-emptive**: a fresh engine is
    /// checked in immediately (counted in `engines_created`), so a pool
    /// hammered by sustained panics never drains toward zero engines and
    /// `engines_created` stays exactly `quarantined + peak concurrency`.
    pub fn quarantine(mut self) {
        if self.engine.take().is_some() {
            self.pool.quarantined.fetch_add(1, Ordering::Relaxed);
            self.pool.created.fetch_add(1, Ordering::Relaxed);
            lock(&self.pool.idle).push((self.tag, Evaluator::with_mode(self.pool.mode)));
        }
    }
}

impl Drop for PooledEvaluator<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            lock(&self.pool.idle).push((self.tag, engine));
        }
    }
}

/// A pool of warm [`CountCache`]s (Algorithm 3 engines) — the counting
/// mirror of [`EvaluatorPool`].
#[derive(Debug)]
pub struct CountCachePool<C: Counter> {
    idle: Mutex<Vec<(u64, CountCache<C>)>>,
    mode: EngineMode,
    created: AtomicUsize,
    quarantined: AtomicUsize,
}

impl<C: Counter> Default for CountCachePool<C> {
    fn default() -> Self {
        CountCachePool {
            idle: Mutex::new(Vec::new()),
            mode: EngineMode::default(),
            created: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        }
    }
}

impl<C: Counter> CountCachePool<C> {
    /// An empty pool handing out caches in the default
    /// [`EngineMode::SkipScan`].
    pub fn new() -> CountCachePool<C> {
        CountCachePool::default()
    }

    /// An empty pool whose caches run the given mode.
    pub fn with_mode(mode: EngineMode) -> CountCachePool<C> {
        CountCachePool { mode, ..CountCachePool::default() }
    }

    /// Checks a cache out: a warm one when available, a fresh one otherwise.
    /// The returned guard checks it back in on drop.
    pub fn checkout(&self) -> PooledCountCache<'_, C> {
        self.checkout_tagged(0)
    }

    /// Checks a cache out preferring one last used under generation `tag`
    /// (see [`EvaluatorPool::checkout_tagged`]).
    pub fn checkout_tagged(&self, tag: u64) -> PooledCountCache<'_, C> {
        crate::faults::checkout_fault();
        let engine = {
            let mut idle = lock(&self.idle);
            match idle.iter().rposition(|&(t, _)| t == tag) {
                Some(i) => Some(idle.swap_remove(i).1),
                None => idle.pop().map(|(_, e)| e),
            }
        };
        let engine = engine.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            CountCache::with_mode(self.mode)
        });
        PooledCountCache { pool: self, engine: Some(engine), tag }
    }

    /// Number of caches currently checked in.
    pub fn idle(&self) -> usize {
        lock(&self.idle).len()
    }

    /// Total caches ever created (see [`EvaluatorPool::engines_created`]).
    pub fn engines_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Total caches quarantined (see [`EvaluatorPool::quarantined`]).
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Governed bytes held by the idle caches (see
    /// [`EvaluatorPool::governed_bytes`]).
    pub fn governed_bytes(&self) -> usize {
        lock(&self.idle).iter().map(|(_, e)| e.governed_bytes()).sum()
    }

    /// Sheds every idle cache's governed memory (see
    /// [`EvaluatorPool::shed_cold`]); returns how many freed bytes.
    pub fn shed_cold(&self) -> u64 {
        let mut idle = lock(&self.idle);
        idle.iter_mut().map(|(_, e)| e.shed_cold_memory()).filter(|&freed| freed > 0).count() as u64
    }
}

/// Checkout guard of a [`CountCachePool`]; derefs to the [`CountCache`] and
/// returns it (capacity retained) on drop.
#[derive(Debug)]
pub struct PooledCountCache<'p, C: Counter> {
    pool: &'p CountCachePool<C>,
    engine: Option<CountCache<C>>,
    tag: u64,
}

impl<C: Counter> Deref for PooledCountCache<'_, C> {
    type Target = CountCache<C>;
    fn deref(&self) -> &CountCache<C> {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl<C: Counter> DerefMut for PooledCountCache<'_, C> {
    fn deref_mut(&mut self) -> &mut CountCache<C> {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl<C: Counter> PooledCountCache<'_, C> {
    /// Consumes the guard **without** checking the cache back in, checking a
    /// fresh replacement in pre-emptively (see
    /// [`PooledEvaluator::quarantine`]).
    pub fn quarantine(mut self) {
        if self.engine.take().is_some() {
            self.pool.quarantined.fetch_add(1, Ordering::Relaxed);
            self.pool.created.fetch_add(1, Ordering::Relaxed);
            lock(&self.pool.idle).push((self.tag, CountCache::with_mode(self.pool.mode)));
        }
    }
}

impl<C: Counter> Drop for PooledCountCache<'_, C> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            lock(&self.pool.idle).push((self.tag, engine));
        }
    }
}

/// A pool of warm [`SlpEvaluator`]s (grammar-aware engines) — the
/// compressed-corpus mirror of [`CountCachePool`]. Checked-in evaluators
/// keep their `(symbol, state)` memo tables alongside their lazy caches and
/// frozen deltas, so a batch over one shared rule set composes most
/// documents from already-memoized rows.
#[derive(Debug, Default)]
pub struct SlpEvaluatorPool {
    idle: Mutex<Vec<(u64, SlpEvaluator)>>,
    created: AtomicUsize,
    quarantined: AtomicUsize,
}

impl SlpEvaluatorPool {
    /// An empty pool. Grammar composition has no per-byte inner loop, so
    /// there is no engine-mode knob to configure.
    pub fn new() -> SlpEvaluatorPool {
        SlpEvaluatorPool::default()
    }

    /// Checks an evaluator out: a warm one when available, a fresh one
    /// otherwise. The returned guard checks it back in on drop.
    pub fn checkout(&self) -> PooledSlpEvaluator<'_> {
        self.checkout_tagged(0)
    }

    /// Checks an evaluator out preferring one last used under generation
    /// `tag` (see [`EvaluatorPool::checkout_tagged`]).
    pub fn checkout_tagged(&self, tag: u64) -> PooledSlpEvaluator<'_> {
        crate::faults::checkout_fault();
        let engine = {
            let mut idle = lock(&self.idle);
            match idle.iter().rposition(|&(t, _)| t == tag) {
                Some(i) => Some(idle.swap_remove(i).1),
                None => idle.pop().map(|(_, e)| e),
            }
        };
        let engine = engine.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            SlpEvaluator::new()
        });
        PooledSlpEvaluator { pool: self, engine: Some(engine), tag }
    }

    /// Number of evaluators currently checked in.
    pub fn idle(&self) -> usize {
        lock(&self.idle).len()
    }

    /// Total evaluators ever created (see
    /// [`EvaluatorPool::engines_created`]).
    pub fn engines_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Total evaluators quarantined (see [`EvaluatorPool::quarantined`]).
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Governed bytes held by the idle evaluators — memo tables, lazy
    /// caches and frozen deltas (see [`EvaluatorPool::governed_bytes`]).
    pub fn governed_bytes(&self) -> usize {
        lock(&self.idle).iter().map(|(_, e)| e.governed_bytes()).sum()
    }

    /// Sheds every idle evaluator's determinization-side memory (severity 1;
    /// see [`EvaluatorPool::shed_cold`]); returns how many freed bytes.
    pub fn shed_cold(&self) -> u64 {
        let mut idle = lock(&self.idle);
        idle.iter_mut().map(|(_, e)| e.shed_cold_memory()).filter(|&freed| freed > 0).count() as u64
    }

    /// Sheds every idle evaluator's SLP memo tables (severity 2 of the
    /// global shedding ladder; see [`SlpEvaluator::shed_memos`]); returns
    /// how many freed bytes.
    pub fn shed_memos(&self) -> u64 {
        let mut idle = lock(&self.idle);
        idle.iter_mut().map(|(_, e)| e.shed_memos()).filter(|&freed| freed > 0).count() as u64
    }
}

/// Checkout guard of an [`SlpEvaluatorPool`]; derefs to the [`SlpEvaluator`]
/// and returns it (capacity retained) on drop.
#[derive(Debug)]
pub struct PooledSlpEvaluator<'p> {
    pool: &'p SlpEvaluatorPool,
    engine: Option<SlpEvaluator>,
    tag: u64,
}

impl Deref for PooledSlpEvaluator<'_> {
    type Target = SlpEvaluator;
    fn deref(&self) -> &SlpEvaluator {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl DerefMut for PooledSlpEvaluator<'_> {
    fn deref_mut(&mut self) -> &mut SlpEvaluator {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl PooledSlpEvaluator<'_> {
    /// Consumes the guard **without** checking the evaluator back in,
    /// checking a fresh replacement in pre-emptively (see
    /// [`PooledEvaluator::quarantine`]).
    pub fn quarantine(mut self) {
        if self.engine.take().is_some() {
            self.pool.quarantined.fetch_add(1, Ordering::Relaxed);
            self.pool.created.fetch_add(1, Ordering::Relaxed);
            lock(&self.pool.idle).push((self.tag, SlpEvaluator::new()));
        }
    }
}

impl Drop for PooledSlpEvaluator<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            lock(&self.pool.idle).push((self.tag, engine));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_warm_engines() {
        let pool = EvaluatorPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.engines_created(), 2);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.engines_created(), 2, "warm engine must be reused");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn count_pool_mirrors_evaluator_pool() {
        let pool: CountCachePool<u64> = CountCachePool::new();
        {
            let _a = pool.checkout();
        }
        assert_eq!(pool.idle(), 1);
        let _b = pool.checkout();
        assert_eq!(pool.engines_created(), 1);
    }

    #[test]
    fn slp_pool_mirrors_evaluator_pool() {
        let pool = SlpEvaluatorPool::new();
        {
            let _a = pool.checkout();
        }
        assert_eq!(pool.idle(), 1);
        let _b = pool.checkout();
        assert_eq!(pool.engines_created(), 1);
        pool.checkout().quarantine();
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.idle(), 1, "quarantine must check a fresh replacement in");
    }

    #[test]
    fn pool_recovers_from_lock_poisoning() {
        let pool = EvaluatorPool::new();
        // Poison the freelist mutex: panic on another thread while holding it.
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = lock(&pool.idle);
                panic!("poison the pool lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(pool.idle.is_poisoned());
        // The pool recovers: checkout/checkin still work on the poisoned lock.
        {
            let _engine = pool.checkout();
        }
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.engines_created(), 1);
        let _again = pool.checkout();
        assert_eq!(pool.engines_created(), 1, "warm engine reused across poisoning");
    }

    #[test]
    fn panic_while_holding_guard_leaves_pool_usable() {
        let pool = EvaluatorPool::new();
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _engine = pool.checkout();
                panic!("worker died holding a checkout guard");
            });
            assert!(handle.join().is_err());
        });
        // The guard's Drop ran during unwinding: the engine was checked back
        // in, and the pool serves the next caller.
        assert_eq!(pool.idle(), 1);
        let _engine = pool.checkout();
        assert_eq!(pool.engines_created(), 1);
    }

    #[test]
    fn quarantined_engines_are_replaced_preemptively() {
        let pool = EvaluatorPool::new();
        {
            let engine = pool.checkout();
            engine.quarantine();
        }
        // The poisoned engine is gone, but a fresh replacement is already
        // checked in: the pool never drains toward zero under quarantines.
        assert_eq!(pool.idle(), 1, "quarantine must check a fresh replacement in");
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.engines_created(), 2);
        // The next checkout reuses the replacement — no further creation.
        let _fresh = pool.checkout();
        assert_eq!(pool.engines_created(), 2);

        let count_pool: CountCachePool<u64> = CountCachePool::new();
        count_pool.checkout().quarantine();
        assert_eq!(count_pool.idle(), 1);
        assert_eq!(count_pool.quarantined(), 1);
        let _fresh = count_pool.checkout();
        assert_eq!(count_pool.engines_created(), 2);
    }

    #[test]
    fn sustained_quarantines_keep_the_pool_stocked_and_creation_bounded() {
        // The replenishment invariant of the streaming runtime: a pool
        // hammered by panics (every other document quarantining its engine)
        // must never be found empty by the next checkout, and engines_created
        // must stay exactly quarantined + peak concurrency.
        let pool = EvaluatorPool::new();
        for i in 0..100 {
            let engine = pool.checkout();
            // Live engines (created minus quarantined) never dip below the
            // peak concurrency of 1: every checkout after the first found a
            // warm engine waiting, so creation tracks quarantines exactly.
            assert_eq!(
                pool.engines_created() - pool.quarantined(),
                1,
                "pool drained or overcreated at iteration {i}"
            );
            if i % 2 == 1 {
                engine.quarantine();
            }
        }
        assert_eq!(pool.quarantined(), 50);
        assert_eq!(pool.engines_created(), 51);
        assert_eq!(pool.idle(), 1, "exactly one live engine remains at quiescence");
    }

    #[test]
    fn tagged_checkout_prefers_matching_generation() {
        let pool = EvaluatorPool::new();
        // Seed two engines under generations 1 and 2.
        {
            let _g1 = pool.checkout_tagged(1);
            let _g2 = pool.checkout_tagged(2);
        }
        assert_eq!(pool.idle(), 2);
        // A generation-2 checkout takes the generation-2 engine, leaving the
        // generation-1 engine idle.
        {
            let _e = pool.checkout_tagged(2);
            assert_eq!(pool.engines_created(), 2, "matching engine must be reused");
        }
        // A checkout for an unseen generation falls back to any warm engine
        // rather than creating a cold one.
        let _e = pool.checkout_tagged(7);
        assert_eq!(pool.engines_created(), 2, "fallback must reuse a warm engine");
    }

    #[test]
    fn pools_are_shareable_across_threads() {
        fn shared<T: Send + Sync>() {}
        shared::<EvaluatorPool>();
        shared::<CountCachePool<u64>>();
        shared::<SlpEvaluatorPool>();
        let pool = EvaluatorPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _engine = pool.checkout();
                    }
                });
            }
        });
        // Contention bound: never more engines than peak concurrent checkouts.
        assert!(pool.engines_created() <= 4, "created {}", pool.engines_created());
        assert_eq!(pool.idle(), pool.engines_created());
    }
}
