//! Checkout/checkin pools of warm per-worker evaluation engines.
//!
//! A pool is the serving-side answer to "one warm [`Evaluator`] per worker":
//! workers check an engine out for a document (or a run of documents), and
//! the drop of the guard checks it back in with **all retained capacity** —
//! DAG arenas, per-state buffers, class buffers, lazy caches and frozen
//! deltas included. In steady state a pool stops allocating entirely: the
//! same engines cycle between workers, and a batch of N threads creates at
//! most N engines over the pool's lifetime no matter how many documents it
//! serves.

use spanners_core::{CountCache, Counter, EngineMode, Evaluator};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a pool mutex, recovering from poisoning: the pooled engines are
/// plain data whose invariants cannot be broken mid-operation, so a panic in
/// some other worker never invalidates the freelist itself.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A pool of warm [`Evaluator`]s (Algorithm 1 engines).
///
/// ```
/// use spanners_runtime::EvaluatorPool;
/// let pool = EvaluatorPool::new();
/// {
///     let mut evaluator = pool.checkout(); // fresh engine: the pool was empty
///     let _ = &mut *evaluator;             // …use it…
/// } // drop checks it back in, capacity retained
/// assert_eq!(pool.idle(), 1);
/// assert_eq!(pool.engines_created(), 1);
/// let _again = pool.checkout(); // the same warm engine, not a new one
/// assert_eq!(pool.engines_created(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EvaluatorPool {
    idle: Mutex<Vec<Evaluator>>,
    mode: EngineMode,
    created: AtomicUsize,
}

impl EvaluatorPool {
    /// An empty pool handing out engines in the default
    /// [`EngineMode::SkipScan`].
    pub fn new() -> EvaluatorPool {
        EvaluatorPool::default()
    }

    /// An empty pool whose engines run the given mode.
    pub fn with_mode(mode: EngineMode) -> EvaluatorPool {
        EvaluatorPool { mode, ..EvaluatorPool::default() }
    }

    /// Checks an engine out: a warm one when available, a fresh one
    /// otherwise. The returned guard checks it back in on drop.
    pub fn checkout(&self) -> PooledEvaluator<'_> {
        let engine = lock(&self.idle).pop().unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Evaluator::with_mode(self.mode)
        });
        PooledEvaluator { pool: self, engine: Some(engine) }
    }

    /// Number of engines currently checked in.
    pub fn idle(&self) -> usize {
        lock(&self.idle).len()
    }

    /// Total engines ever created — the warm-reuse diagnostic: a pool serving
    /// from warm engines stops incrementing this.
    pub fn engines_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }
}

/// Checkout guard of an [`EvaluatorPool`]; derefs to the [`Evaluator`] and
/// returns it (capacity retained) on drop.
#[derive(Debug)]
pub struct PooledEvaluator<'p> {
    pool: &'p EvaluatorPool,
    engine: Option<Evaluator>,
}

impl Deref for PooledEvaluator<'_> {
    type Target = Evaluator;
    fn deref(&self) -> &Evaluator {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl DerefMut for PooledEvaluator<'_> {
    fn deref_mut(&mut self) -> &mut Evaluator {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl Drop for PooledEvaluator<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            lock(&self.pool.idle).push(engine);
        }
    }
}

/// A pool of warm [`CountCache`]s (Algorithm 3 engines) — the counting
/// mirror of [`EvaluatorPool`].
#[derive(Debug)]
pub struct CountCachePool<C: Counter> {
    idle: Mutex<Vec<CountCache<C>>>,
    mode: EngineMode,
    created: AtomicUsize,
}

impl<C: Counter> Default for CountCachePool<C> {
    fn default() -> Self {
        CountCachePool {
            idle: Mutex::new(Vec::new()),
            mode: EngineMode::default(),
            created: AtomicUsize::new(0),
        }
    }
}

impl<C: Counter> CountCachePool<C> {
    /// An empty pool handing out caches in the default
    /// [`EngineMode::SkipScan`].
    pub fn new() -> CountCachePool<C> {
        CountCachePool::default()
    }

    /// An empty pool whose caches run the given mode.
    pub fn with_mode(mode: EngineMode) -> CountCachePool<C> {
        CountCachePool { mode, ..CountCachePool::default() }
    }

    /// Checks a cache out: a warm one when available, a fresh one otherwise.
    /// The returned guard checks it back in on drop.
    pub fn checkout(&self) -> PooledCountCache<'_, C> {
        let engine = lock(&self.idle).pop().unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            CountCache::with_mode(self.mode)
        });
        PooledCountCache { pool: self, engine: Some(engine) }
    }

    /// Number of caches currently checked in.
    pub fn idle(&self) -> usize {
        lock(&self.idle).len()
    }

    /// Total caches ever created (see [`EvaluatorPool::engines_created`]).
    pub fn engines_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }
}

/// Checkout guard of a [`CountCachePool`]; derefs to the [`CountCache`] and
/// returns it (capacity retained) on drop.
#[derive(Debug)]
pub struct PooledCountCache<'p, C: Counter> {
    pool: &'p CountCachePool<C>,
    engine: Option<CountCache<C>>,
}

impl<C: Counter> Deref for PooledCountCache<'_, C> {
    type Target = CountCache<C>;
    fn deref(&self) -> &CountCache<C> {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl<C: Counter> DerefMut for PooledCountCache<'_, C> {
    fn deref_mut(&mut self) -> &mut CountCache<C> {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl<C: Counter> Drop for PooledCountCache<'_, C> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            lock(&self.pool.idle).push(engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_warm_engines() {
        let pool = EvaluatorPool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.engines_created(), 2);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.engines_created(), 2, "warm engine must be reused");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn count_pool_mirrors_evaluator_pool() {
        let pool: CountCachePool<u64> = CountCachePool::new();
        {
            let _a = pool.checkout();
        }
        assert_eq!(pool.idle(), 1);
        let _b = pool.checkout();
        assert_eq!(pool.engines_created(), 1);
    }

    #[test]
    fn pools_are_shareable_across_threads() {
        fn shared<T: Send + Sync>() {}
        shared::<EvaluatorPool>();
        shared::<CountCachePool<u64>>();
        let pool = EvaluatorPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _engine = pool.checkout();
                    }
                });
            }
        });
        // Contention bound: never more engines than peak concurrent checkouts.
        assert!(pool.engines_created() <= 4, "created {}", pool.engines_created());
        assert_eq!(pool.idle(), pool.engines_created());
    }
}
