//! Deterministic fault injection for the batch runtime.
//!
//! Everything here is gated behind the **`fault-injection`** cargo feature;
//! without it every hook compiles to an inline no-op and the production
//! binary carries no injection machinery at all. With the feature on, a test
//! installs a [`FaultPlan`] and the runtime's hooks consult it at two
//! deterministic points:
//!
//! * **checkout** — the Nth engine checkout (a process-wide ordinal) panics,
//!   exercising worker-initialization containment;
//! * **per document** — a document index can be made to (a) panic
//!   mid-evaluation, (b) run with a zero determinization-cache budget so
//!   every maintenance point evicts (forced eviction thrash, tripping
//!   [`spanners_core::EvalLimits::max_cache_clears`] when set), or (c) run
//!   under an already-expired hard deadline.
//!
//! All triggers key on stable indices/ordinals — never on timing — so a
//! torture run is reproducible at any thread count. The plan is installed
//! process-globally (there is one batch runtime per process); tests that
//! install plans serialize on their own mutex and rely on the returned
//! [`FaultGuard`] to uninstall on drop, panics included.

#![cfg_attr(not(feature = "fault-injection"), allow(dead_code))]

/// The faults scheduled for one document index (resolved by
/// [`doc_faults`]; all-`false` when no plan is installed or the feature is
/// off).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocFaults {
    /// Panic mid-evaluation of this document.
    pub panic: bool,
    /// Evaluate this document with a zero cache budget (every maintenance
    /// point evicts).
    pub force_eviction: bool,
    /// Evaluate this document under an already-expired hard deadline.
    pub expire_deadline: bool,
}

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::DocFaults;
    use std::sync::Mutex;

    /// A deterministic schedule of injected faults, keyed on document
    /// indices and checkout ordinals.
    #[derive(Debug, Default, Clone)]
    pub struct FaultPlan {
        /// Document indices whose evaluation panics.
        pub panic_on_docs: Vec<usize>,
        /// Process-wide checkout ordinals (0-based, counted from `install`)
        /// that panic instead of handing out an engine.
        pub fail_checkouts: Vec<usize>,
        /// Document indices evaluated with a zero cache budget.
        pub force_eviction_docs: Vec<usize>,
        /// Document indices evaluated under an already-expired deadline.
        pub expire_deadline_docs: Vec<usize>,
    }

    /// The installed plan plus the number of checkouts seen since install.
    static PLAN: Mutex<Option<(FaultPlan, usize)>> = Mutex::new(None);

    fn plan_lock() -> std::sync::MutexGuard<'static, Option<(FaultPlan, usize)>> {
        match PLAN.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Installs `plan` process-globally, resetting the checkout ordinal.
    /// The previous plan (if any) is replaced. Dropping the returned guard
    /// uninstalls the plan — unwinding included, so a failed test never
    /// leaks faults into the next one.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        *plan_lock() = Some((plan, 0));
        FaultGuard(())
    }

    /// Uninstalls the active [`FaultPlan`] on drop.
    #[derive(Debug)]
    pub struct FaultGuard(());

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *plan_lock() = None;
        }
    }

    /// The faults scheduled for document `doc_index` under the installed
    /// plan.
    pub(crate) fn doc_faults(doc_index: usize) -> DocFaults {
        match plan_lock().as_ref() {
            Some((plan, _)) => DocFaults {
                panic: plan.panic_on_docs.contains(&doc_index),
                force_eviction: plan.force_eviction_docs.contains(&doc_index),
                expire_deadline: plan.expire_deadline_docs.contains(&doc_index),
            },
            None => DocFaults::default(),
        }
    }

    /// Engine-checkout hook: counts the checkout and panics when its ordinal
    /// is scheduled to fail. The plan lock is released before panicking.
    pub(crate) fn checkout_fault() {
        let fail = {
            let mut guard = plan_lock();
            match guard.as_mut() {
                Some((plan, seen)) => {
                    let ordinal = *seen;
                    *seen += 1;
                    plan.fail_checkouts.contains(&ordinal)
                }
                None => false,
            }
        };
        if fail {
            panic!("injected fault: engine checkout failed");
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use enabled::{install, FaultGuard, FaultPlan};

#[cfg(feature = "fault-injection")]
pub(crate) use enabled::{checkout_fault, doc_faults};

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn doc_faults(_doc_index: usize) -> DocFaults {
    DocFaults::default()
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn checkout_fault() {}
