//! Deterministic fault injection for the batch runtime.
//!
//! Everything here is gated behind the **`fault-injection`** cargo feature;
//! without it every hook compiles to an inline no-op and the production
//! binary carries no injection machinery at all. With the feature on, a test
//! installs a [`FaultPlan`] and the runtime's hooks consult it at two
//! deterministic points:
//!
//! * **checkout** — the Nth engine checkout (a process-wide ordinal) panics,
//!   exercising worker-initialization containment;
//! * **per document** — a document index can be made to (a) panic
//!   mid-evaluation, (b) run with a zero determinization-cache budget so
//!   every maintenance point evicts (forced eviction thrash, tripping
//!   [`spanners_core::EvalLimits::max_cache_clears`] when set), or (c) run
//!   under an already-expired hard deadline;
//! * **streaming** — the Nth re-freeze promotion panics mid-build, the Nth
//!   generation swap is abandoned, or the Nth micro-batch dequeue stalls
//!   past every per-request deadline it carries.
//!
//! All triggers key on stable indices/ordinals — never on timing — so a
//! torture run is reproducible at any thread count. The plan is installed
//! process-globally (there is one batch runtime per process); tests that
//! install plans serialize on their own mutex and rely on the returned
//! [`FaultGuard`] to uninstall on drop, panics included.

#![cfg_attr(not(feature = "fault-injection"), allow(dead_code))]

/// The faults scheduled for one document index (resolved by
/// [`doc_faults`]; all-`false` when no plan is installed or the feature is
/// off).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocFaults {
    /// Panic mid-evaluation of this document.
    pub panic: bool,
    /// Evaluate this document with a zero cache budget (every maintenance
    /// point evicts).
    pub force_eviction: bool,
    /// Evaluate this document under an already-expired hard deadline.
    pub expire_deadline: bool,
}

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::DocFaults;
    use std::sync::Mutex;

    /// A deterministic schedule of injected faults, keyed on document
    /// indices and per-trigger ordinals.
    #[derive(Debug, Default, Clone)]
    pub struct FaultPlan {
        /// Document indices whose evaluation panics.
        pub panic_on_docs: Vec<usize>,
        /// Process-wide checkout ordinals (0-based, counted from `install`)
        /// that panic instead of handing out an engine.
        pub fail_checkouts: Vec<usize>,
        /// Document indices evaluated with a zero cache budget.
        pub force_eviction_docs: Vec<usize>,
        /// Document indices evaluated under an already-expired deadline.
        pub expire_deadline_docs: Vec<usize>,
        /// Re-freeze promotion ordinals (0-based, counted from `install`)
        /// that panic mid-promotion — the streaming server must contain the
        /// panic and keep serving on the old generation.
        pub panic_on_promotions: Vec<usize>,
        /// Generation-swap ordinals whose swap is abandoned (the freshly
        /// built snapshot is dropped; serving continues on the old one).
        pub fail_swaps: Vec<usize>,
        /// Streaming dequeue ordinals (0-based, one per formed micro-batch)
        /// whose queue wait is treated as having outlived every per-request
        /// deadline in the batch.
        pub stall_dequeues: Vec<usize>,
        /// Tenants whose circuit breaker is forced open at their next
        /// admission attempt (and every one after, for as long as the plan
        /// is installed) — exercising breaker shedding without needing real
        /// failures first.
        pub trip_breaker_on_tenants: Vec<String>,
        /// Admission ordinals (0-based, one per admission attempt since
        /// `install`) denied with [`spanners_core::SpannerError::QuotaExceeded`]
        /// kind `"injected"` — exercising quota-rejection handling on an
        /// exact, reproducible submission.
        pub deny_admission_docs: Vec<usize>,
        /// Simulated external memory pressure, in bytes, reported to the
        /// global memory governor at every settle point — drives the
        /// governor's shedding ladder deterministically without allocating.
        pub governor_pressure: usize,
    }

    /// The installed plan plus the per-trigger ordinals seen since install.
    #[derive(Debug)]
    struct Installed {
        plan: FaultPlan,
        checkouts: usize,
        promotions: usize,
        swaps: usize,
        dequeues: usize,
        admissions: usize,
    }

    static PLAN: Mutex<Option<Installed>> = Mutex::new(None);

    fn plan_lock() -> std::sync::MutexGuard<'static, Option<Installed>> {
        match PLAN.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Installs `plan` process-globally, resetting every trigger ordinal.
    /// The previous plan (if any) is replaced. Dropping the returned guard
    /// uninstalls the plan — unwinding included, so a failed test never
    /// leaks faults into the next one.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        *plan_lock() = Some(Installed {
            plan,
            checkouts: 0,
            promotions: 0,
            swaps: 0,
            dequeues: 0,
            admissions: 0,
        });
        FaultGuard(())
    }

    /// Uninstalls the active [`FaultPlan`] on drop.
    #[derive(Debug)]
    pub struct FaultGuard(());

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *plan_lock() = None;
        }
    }

    /// The faults scheduled for document `doc_index` under the installed
    /// plan.
    pub(crate) fn doc_faults(doc_index: usize) -> DocFaults {
        match plan_lock().as_ref() {
            Some(inst) => DocFaults {
                panic: inst.plan.panic_on_docs.contains(&doc_index),
                force_eviction: inst.plan.force_eviction_docs.contains(&doc_index),
                expire_deadline: inst.plan.expire_deadline_docs.contains(&doc_index),
            },
            None => DocFaults::default(),
        }
    }

    /// Engine-checkout hook: counts the checkout and panics when its ordinal
    /// is scheduled to fail. The plan lock is released before panicking.
    pub(crate) fn checkout_fault() {
        let fail = {
            let mut guard = plan_lock();
            match guard.as_mut() {
                Some(inst) => {
                    let ordinal = inst.checkouts;
                    inst.checkouts += 1;
                    inst.plan.fail_checkouts.contains(&ordinal)
                }
                None => false,
            }
        };
        if fail {
            panic!("injected fault: engine checkout failed");
        }
    }

    /// Re-freeze promotion hook: counts the promotion attempt and panics
    /// when its ordinal is scheduled to fail. The plan lock is released
    /// before panicking — the streaming server wraps promotion in
    /// `catch_unwind` and keeps serving the old generation.
    pub(crate) fn promotion_fault() {
        let fail = {
            let mut guard = plan_lock();
            match guard.as_mut() {
                Some(inst) => {
                    let ordinal = inst.promotions;
                    inst.promotions += 1;
                    inst.plan.panic_on_promotions.contains(&ordinal)
                }
                None => false,
            }
        };
        if fail {
            panic!("injected fault: re-freeze promotion panicked");
        }
    }

    /// Generation-swap hook: counts the swap attempt; `true` means the swap
    /// must be abandoned (the new snapshot dropped, the old one kept).
    pub(crate) fn swap_fault() -> bool {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(inst) => {
                let ordinal = inst.swaps;
                inst.swaps += 1;
                inst.plan.fail_swaps.contains(&ordinal)
            }
            None => false,
        }
    }

    /// Streaming-dequeue hook: counts the formed micro-batch; `true` means
    /// the dequeue is treated as having stalled past every per-request
    /// deadline carried by the batch (deadline-less tickets are unaffected).
    pub(crate) fn stall_fault() -> bool {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(inst) => {
                let ordinal = inst.dequeues;
                inst.dequeues += 1;
                inst.plan.stall_dequeues.contains(&ordinal)
            }
            None => false,
        }
    }

    /// Admission hook: counts the admission attempt; `true` means this
    /// ordinal must be denied with an injected quota rejection.
    pub(crate) fn admission_fault() -> bool {
        let mut guard = plan_lock();
        match guard.as_mut() {
            Some(inst) => {
                let ordinal = inst.admissions;
                inst.admissions += 1;
                inst.plan.deny_admission_docs.contains(&ordinal)
            }
            None => false,
        }
    }

    /// Breaker hook: `true` when `tenant`'s breaker must be forced open at
    /// this admission attempt.
    pub(crate) fn breaker_trip(tenant: &str) -> bool {
        match plan_lock().as_ref() {
            Some(inst) => inst.plan.trip_breaker_on_tenants.iter().any(|t| t == tenant),
            None => false,
        }
    }

    /// Governor hook: simulated external memory pressure, in bytes (zero
    /// without a plan).
    pub(crate) fn governor_pressure() -> usize {
        match plan_lock().as_ref() {
            Some(inst) => inst.plan.governor_pressure,
            None => 0,
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use enabled::{install, FaultGuard, FaultPlan};

#[cfg(feature = "fault-injection")]
pub(crate) use enabled::{
    admission_fault, breaker_trip, checkout_fault, doc_faults, governor_pressure, promotion_fault,
    stall_fault, swap_fault,
};

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn doc_faults(_doc_index: usize) -> DocFaults {
    DocFaults::default()
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn checkout_fault() {}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn promotion_fault() {}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn swap_fault() -> bool {
    false
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn stall_fault() -> bool {
    false
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn admission_fault() -> bool {
    false
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn breaker_trip(_tenant: &str) -> bool {
    false
}

/// No-op stub compiled without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn governor_pressure() -> usize {
    0
}
