//! Tenant isolation and overload governance for the streaming servers:
//! per-tenant admission quotas, circuit breakers, deterministic
//! retry/backoff, and the wiring that hands a global
//! [`MemoryGovernor`](spanners_core::MemoryGovernor) to a server.
//!
//! Everything here is deliberately **batch-clocked**, not wall-clocked:
//! token buckets refill per completed micro-batch and breakers cool down in
//! completed batches, so every admission decision is a pure function of the
//! submission/completion sequence — reproducible in tests and under the
//! deterministic fault harness ([`crate::faults`]), which can trip breakers
//! (`trip_breaker_on_tenants`), deny admissions (`deny_admission_docs`) and
//! simulate governor pressure (`governor_pressure`) without any real load.
//!
//! The admission pipeline, in the order a submission traverses it:
//!
//! 1. **Global memory governor** — a retryable
//!    [`SpannerError::BudgetExceeded`] while the process is over its byte
//!    budget (severity 3 of the governor's shedding ladder);
//! 2. **Circuit breaker** — [`SpannerError::CircuitOpen`] while the
//!    tenant's breaker is open (its recent documents kept failing);
//! 3. **Quotas** — [`SpannerError::QuotaExceeded`] when the tenant is at
//!    its in-flight-document cap, queued-byte cap, or out of rate tokens;
//! 4. **Queue backpressure** — the pre-existing bounded ingress queue
//!    ([`SpannerError::Overloaded`] on `try_submit`, blocking on `submit`).
//!
//! All four rejections are **retryable** ([`SpannerError::is_retryable`]);
//! [`RetryPolicy`] packages the bounded decorrelated-jitter backoff loop
//! callers should drive them with.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spanners_core::{MemoryGovernor, SpannerError};

use crate::faults;
use crate::pool::lock;

/// Admission limits for one tenant. All dimensions default to `None`
/// (unlimited); each is enforced independently and reports its own
/// [`SpannerError::QuotaExceeded`] `kind`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum documents admitted but not yet completed (queued or being
    /// evaluated). Exceeding it rejects with kind `"in-flight documents"`.
    pub max_in_flight_docs: Option<usize>,
    /// Maximum bytes of this tenant's documents sitting in ingress queues
    /// (a document's bytes are released when a worker dequeues it).
    /// Exceeding it rejects with kind `"queued bytes"`. A single document
    /// larger than this cap can never be admitted.
    pub max_queued_bytes: Option<usize>,
    /// Batch-clocked token bucket; `None` disables rate limiting.
    /// An empty bucket rejects with kind `"rate tokens"`.
    pub rate: Option<RateLimit>,
}

impl TenantQuota {
    /// No limits at all (the default).
    pub fn unlimited() -> TenantQuota {
        TenantQuota::default()
    }

    /// Returns this quota with an in-flight document cap.
    pub fn with_max_in_flight_docs(mut self, max: usize) -> TenantQuota {
        self.max_in_flight_docs = Some(max);
        self
    }

    /// Returns this quota with a queued-byte cap.
    pub fn with_max_queued_bytes(mut self, max: usize) -> TenantQuota {
        self.max_queued_bytes = Some(max);
        self
    }

    /// Returns this quota with a token-bucket rate limit.
    pub fn with_rate(mut self, rate: RateLimit) -> TenantQuota {
        self.rate = Some(rate);
        self
    }
}

/// A **batch-clocked** token bucket: the bucket starts full at `burst`,
/// every admission consumes one token, and every completed micro-batch
/// refills `refill_per_batch` tokens (capped at `burst`). Clocking on
/// completed batches instead of wall time keeps admission decisions
/// deterministic: the same submission/completion sequence always admits and
/// rejects the same documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity: the largest admission burst from a full bucket.
    pub burst: u32,
    /// Tokens restored per completed micro-batch.
    pub refill_per_batch: u32,
}

/// The quota table handed to an [`AdmissionController`]: a default quota
/// for unlisted tenants plus per-tenant overrides.
#[derive(Debug, Clone, Default)]
pub struct TenantQuotas {
    default: TenantQuota,
    overrides: Vec<(String, TenantQuota)>,
}

impl TenantQuotas {
    /// Every tenant unlimited (overrides can still be added).
    pub fn unlimited() -> TenantQuotas {
        TenantQuotas::default()
    }

    /// The same quota for every tenant not otherwise listed.
    pub fn uniform(default: TenantQuota) -> TenantQuotas {
        TenantQuotas { default, overrides: Vec::new() }
    }

    /// Returns this table with a per-tenant override (last write wins).
    pub fn with_tenant(mut self, id: impl Into<String>, quota: TenantQuota) -> TenantQuotas {
        let id = id.into();
        if let Some(slot) = self.overrides.iter_mut().find(|(t, _)| *t == id) {
            slot.1 = quota;
        } else {
            self.overrides.push((id, quota));
        }
        self
    }

    /// The quota in effect for `tenant`.
    pub fn for_tenant(&self, tenant: &str) -> TenantQuota {
        self.overrides.iter().find_map(|(t, q)| (t == tenant).then_some(*q)).unwrap_or(self.default)
    }
}

/// Circuit-breaker tuning, shared by every tenant slot of one controller.
///
/// The breaker is a classic three-state machine, clocked on **completed
/// micro-batches** (see the module docs):
///
/// * **Closed** — documents admitted normally; `failure_threshold` failures
///   within a rolling window of `window_docs` completions trips it open.
/// * **Open** — submissions rejected with [`SpannerError::CircuitOpen`]
///   (carrying the remaining cooldown) for `open_batches` completed
///   batches, then the breaker half-opens.
/// * **Half-open** — exactly one probe document is admitted; its success
///   closes the breaker (window reset), its failure re-opens it for
///   another full `open_batches` cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Failures within the window that trip the breaker open. Minimum 1.
    pub failure_threshold: u32,
    /// Completed documents per rolling failure window.
    pub window_docs: u32,
    /// Completed micro-batches the breaker stays open before half-opening.
    pub open_batches: u32,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy { failure_threshold: 5, window_docs: 32, open_batches: 4 }
    }
}

/// The externally observable phase of one tenant's circuit breaker (see
/// [`AdmissionController::breaker_phase`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Admitting normally.
    Closed,
    /// Shedding every submission until the cooldown elapses.
    Open,
    /// Admitting a single probe document.
    HalfOpen,
}

/// Internal breaker state (see [`BreakerPolicy`] for the transitions).
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { window_seen: u32, window_failures: u32 },
    Open { remaining_batches: u32 },
    HalfOpen { probe_outstanding: bool },
}

impl BreakerState {
    fn closed() -> BreakerState {
        BreakerState::Closed { window_seen: 0, window_failures: 0 }
    }

    fn phase(&self) -> BreakerPhase {
        match self {
            BreakerState::Closed { .. } => BreakerPhase::Closed,
            BreakerState::Open { .. } => BreakerPhase::Open,
            BreakerState::HalfOpen { .. } => BreakerPhase::HalfOpen,
        }
    }

    /// Whether a submission may pass right now; `Err` carries the batches
    /// until the next admission opportunity. Does **not** commit the
    /// half-open probe — see [`BreakerState::commit_probe`].
    fn check_admit(&self) -> Result<(), u32> {
        match self {
            BreakerState::Closed { .. } => Ok(()),
            BreakerState::Open { remaining_batches } => Err(*remaining_batches),
            BreakerState::HalfOpen { probe_outstanding: false } => Ok(()),
            BreakerState::HalfOpen { probe_outstanding: true } => Err(1),
        }
    }

    /// Marks the half-open probe as taken (no-op in other states). Called
    /// under the controller lock after every other admission check passed,
    /// so a rejected submission never consumes the probe.
    fn commit_probe(&mut self) {
        if let BreakerState::HalfOpen { probe_outstanding } = self {
            *probe_outstanding = true;
        }
    }

    /// Feeds one completed document's outcome.
    fn note_result(&mut self, ok: bool, policy: &BreakerPolicy) {
        match self {
            BreakerState::Closed { window_seen, window_failures } => {
                *window_seen += 1;
                if !ok {
                    *window_failures += 1;
                }
                if *window_failures >= policy.failure_threshold.max(1) {
                    *self = BreakerState::Open { remaining_batches: policy.open_batches.max(1) };
                } else if *window_seen >= policy.window_docs.max(1) {
                    *self = BreakerState::closed();
                }
            }
            // Results landing while open are stale pre-trip admissions.
            BreakerState::Open { .. } => {}
            BreakerState::HalfOpen { probe_outstanding: true } => {
                *self = if ok {
                    BreakerState::closed()
                } else {
                    BreakerState::Open { remaining_batches: policy.open_batches.max(1) }
                };
            }
            // A stale result before the probe went out: ignore.
            BreakerState::HalfOpen { probe_outstanding: false } => {}
        }
    }

    /// Ticks one completed micro-batch (the breaker clock).
    fn note_batch(&mut self) {
        if let BreakerState::Open { remaining_batches } = self {
            *remaining_batches = remaining_batches.saturating_sub(1);
            if *remaining_batches == 0 {
                *self = BreakerState::HalfOpen { probe_outstanding: false };
            }
        }
    }
}

/// Per-tenant admission state behind the controller lock.
#[derive(Debug)]
struct TenantState {
    id: String,
    quota: TenantQuota,
    in_flight: usize,
    queued_bytes: usize,
    /// Meaningful only when `quota.rate` is set.
    tokens: u32,
    breaker: BreakerState,
}

/// Point-in-time admission counters (see [`AdmissionController::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted through quotas and breakers.
    pub admitted: u64,
    /// Submissions rejected by a quota dimension (injected denials
    /// included).
    pub quota_denials: u64,
    /// Submissions rejected by an open circuit breaker.
    pub breaker_denials: u64,
    /// Distinct tenants the controller has seen.
    pub tenants: usize,
}

/// One tenant's live admission accounting (see
/// [`AdmissionController::tenant_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantAdmissionStats {
    /// Documents admitted but not yet completed.
    pub in_flight: usize,
    /// Bytes of this tenant's documents currently in ingress queues.
    pub queued_bytes: usize,
    /// Rate tokens left (`None` when the tenant is not rate limited).
    pub tokens: Option<u32>,
    /// The tenant's breaker phase.
    pub phase: BreakerPhase,
}

/// The per-tenant admission gate shared by the streaming servers: quotas
/// ([`TenantQuotas`]) plus optional circuit breakers ([`BreakerPolicy`]).
///
/// One controller serves one [`crate::StreamingServer`] or one
/// [`crate::MultiStreamingServer`] (where it gates the whole multi-shard
/// submission once, not once per shard). Constructed by the caller, handed
/// to the server via [`Governance`], and shareable for inspection
/// ([`AdmissionController::stats`],
/// [`AdmissionController::breaker_phase`]).
#[derive(Debug)]
pub struct AdmissionController {
    quotas: TenantQuotas,
    breaker: Option<BreakerPolicy>,
    tenants: Mutex<Vec<TenantState>>,
    admitted: AtomicU64,
    quota_denials: AtomicU64,
    breaker_denials: AtomicU64,
}

impl AdmissionController {
    /// A controller enforcing `quotas`, with circuit breakers armed when
    /// `breaker` is `Some` (the fault harness can still force a breaker
    /// open when unarmed — the forced cooldown then uses
    /// [`BreakerPolicy::default`]).
    pub fn new(quotas: TenantQuotas, breaker: Option<BreakerPolicy>) -> AdmissionController {
        AdmissionController {
            quotas,
            breaker,
            tenants: Mutex::new(Vec::new()),
            admitted: AtomicU64::new(0),
            quota_denials: AtomicU64::new(0),
            breaker_denials: AtomicU64::new(0),
        }
    }

    /// A controller with unlimited quotas and no breakers — admits
    /// everything (useful as a stats-only observer).
    pub fn permissive() -> AdmissionController {
        AdmissionController::new(TenantQuotas::unlimited(), None)
    }

    /// Index of `tenant`'s slot, creating it on first sight. Caller holds
    /// the lock.
    fn slot_of(&self, tenants: &mut Vec<TenantState>, tenant: &str) -> usize {
        if let Some(i) = tenants.iter().position(|t| t.id == tenant) {
            return i;
        }
        let quota = self.quotas.for_tenant(tenant);
        tenants.push(TenantState {
            id: tenant.to_string(),
            quota,
            in_flight: 0,
            queued_bytes: 0,
            tokens: quota.rate.map_or(0, |r| r.burst),
            breaker: BreakerState::closed(),
        });
        tenants.len() - 1
    }

    /// Runs the full admission pipeline for one `bytes`-sized document from
    /// `tenant`. On success the tenant's in-flight and queued-byte
    /// accounting is charged (and a rate token consumed); the returned slot
    /// index must be fed back through [`AdmissionController::release_queued`]
    /// when the document leaves the ingress queue and
    /// [`AdmissionController::note_result`] (or
    /// [`AdmissionController::abandon`]) when it completes (or is dropped
    /// unevaluated at shutdown).
    pub(crate) fn admit(&self, tenant: &str, bytes: usize) -> Result<u32, SpannerError> {
        if faults::admission_fault() {
            self.quota_denials.fetch_add(1, Ordering::Relaxed);
            return Err(SpannerError::QuotaExceeded {
                tenant: tenant.to_string(),
                kind: "injected",
            });
        }
        let mut tenants = lock(&self.tenants);
        let slot = self.slot_of(&mut tenants, tenant);
        let t = &mut tenants[slot];
        if faults::breaker_trip(tenant) {
            let policy = self.breaker.unwrap_or_default();
            t.breaker = BreakerState::Open { remaining_batches: policy.open_batches.max(1) };
        }
        if let Err(retry_after_batches) = t.breaker.check_admit() {
            self.breaker_denials.fetch_add(1, Ordering::Relaxed);
            return Err(SpannerError::CircuitOpen {
                tenant: tenant.to_string(),
                retry_after_batches,
            });
        }
        let deny = |kind: &'static str| {
            self.quota_denials.fetch_add(1, Ordering::Relaxed);
            Err(SpannerError::QuotaExceeded { tenant: tenant.to_string(), kind })
        };
        if let Some(max) = t.quota.max_in_flight_docs {
            if t.in_flight >= max {
                return deny("in-flight documents");
            }
        }
        if let Some(max) = t.quota.max_queued_bytes {
            if t.queued_bytes.saturating_add(bytes) > max {
                return deny("queued bytes");
            }
        }
        if t.quota.rate.is_some() && t.tokens == 0 {
            return deny("rate tokens");
        }
        // Commit: every check passed.
        if t.quota.rate.is_some() {
            t.tokens -= 1;
        }
        t.breaker.commit_probe();
        t.in_flight += 1;
        t.queued_bytes += bytes;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(u32::try_from(slot).expect("tenant slots fit in u32"))
    }

    /// Releases a document's queued-byte charge when a worker dequeues it
    /// into a batch (it still counts as in-flight until its result lands).
    pub(crate) fn release_queued(&self, slot: u32, bytes: usize) {
        let mut tenants = lock(&self.tenants);
        let t = &mut tenants[slot as usize];
        t.queued_bytes = t.queued_bytes.saturating_sub(bytes);
    }

    /// Lands one document's outcome: releases its in-flight charge and
    /// feeds the tenant's breaker (when armed).
    pub(crate) fn note_result(&self, slot: u32, ok: bool) {
        let mut tenants = lock(&self.tenants);
        let t = &mut tenants[slot as usize];
        t.in_flight = t.in_flight.saturating_sub(1);
        if let Some(policy) = &self.breaker {
            t.breaker.note_result(ok, policy);
        }
    }

    /// Releases an admitted-but-never-evaluated document (dropped from the
    /// queue at shutdown/abort) without feeding the breaker: being shed by
    /// the server is not evidence about the tenant's documents.
    pub(crate) fn abandon(&self, slot: u32, bytes: usize) {
        let mut tenants = lock(&self.tenants);
        let t = &mut tenants[slot as usize];
        t.queued_bytes = t.queued_bytes.saturating_sub(bytes);
        t.in_flight = t.in_flight.saturating_sub(1);
    }

    /// Ticks the admission clock: one completed micro-batch. Open breakers
    /// cool down (half-opening at zero) and token buckets refill.
    pub(crate) fn note_batch(&self) {
        let mut tenants = lock(&self.tenants);
        for t in tenants.iter_mut() {
            t.breaker.note_batch();
            if let Some(rate) = t.quota.rate {
                t.tokens = t.tokens.saturating_add(rate.refill_per_batch).min(rate.burst);
            }
        }
    }

    /// The breaker phase of `tenant` (`None` before its first submission).
    pub fn breaker_phase(&self, tenant: &str) -> Option<BreakerPhase> {
        let tenants = lock(&self.tenants);
        tenants.iter().find(|t| t.id == tenant).map(|t| t.breaker.phase())
    }

    /// Live accounting for `tenant` (`None` before its first submission).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantAdmissionStats> {
        let tenants = lock(&self.tenants);
        tenants.iter().find(|t| t.id == tenant).map(|t| TenantAdmissionStats {
            in_flight: t.in_flight,
            queued_bytes: t.queued_bytes,
            tokens: t.quota.rate.map(|_| t.tokens),
            phase: t.breaker.phase(),
        })
    }

    /// Counter snapshot across all tenants.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            quota_denials: self.quota_denials.load(Ordering::Relaxed),
            breaker_denials: self.breaker_denials.load(Ordering::Relaxed),
            tenants: lock(&self.tenants).len(),
        }
    }
}

/// The governance bundle a streaming server is started with
/// ([`crate::StreamingServer::start_governed`],
/// [`crate::MultiStreamingServer::start_governed`]): an optional admission
/// controller and an optional global memory governor. The default is fully
/// permissive — `start` is exactly `start_governed` with
/// `Governance::none()`.
#[derive(Debug, Clone, Default)]
pub struct Governance {
    /// Per-tenant quotas and circuit breakers; `None` admits everything.
    pub admission: Option<Arc<AdmissionController>>,
    /// The process-wide memory governor; `None` disables global shedding.
    pub governor: Option<Arc<MemoryGovernor>>,
}

impl Governance {
    /// No admission control, no governor (the `start` default).
    pub fn none() -> Governance {
        Governance::default()
    }

    /// Returns this bundle with an admission controller.
    pub fn with_admission(mut self, admission: Arc<AdmissionController>) -> Governance {
        self.admission = Some(admission);
        self
    }

    /// Returns this bundle with a global memory governor.
    pub fn with_governor(mut self, governor: Arc<MemoryGovernor>) -> Governance {
        self.governor = Some(governor);
        self
    }
}

/// Bounded retry with **deterministic decorrelated-jitter** backoff for
/// retryable errors ([`SpannerError::is_retryable`]): quota rejections,
/// open breakers, queue overload, governor denials and soft deadlines.
///
/// The jitter follows the decorrelated scheme (`sleep_{k+1}` drawn
/// uniformly from `[base, 3 × sleep_k]`, capped at `cap`) but from a
/// **seeded** splitmix64 generator, so a given seed always yields the same
/// schedule — tests pin backoff sequences exactly, and two callers with
/// different seeds still decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included. `1` disables retries.
    pub max_attempts: u32,
    /// Lower bound of every backoff draw.
    pub base: Duration,
    /// Upper bound of every backoff draw.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first error is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The exact backoff schedule `seed` produces: one sleep per retry
    /// (`max_attempts - 1` entries), each in `[base, cap]`.
    pub fn backoff_schedule(&self, seed: u64) -> Vec<Duration> {
        let mut rng = SplitMix64(seed);
        let base = duration_micros(self.base);
        let cap = duration_micros(self.cap).max(base);
        let mut prev = base;
        (1..self.max_attempts.max(1))
            .map(|_| {
                let hi = prev.saturating_mul(3).clamp(base, cap);
                let next = if hi > base { base + rng.next() % (hi - base + 1) } else { base };
                prev = next;
                Duration::from_micros(next)
            })
            .collect()
    }

    /// Drives `op` (called with the 0-based attempt number) until it
    /// succeeds, fails terminally, or exhausts `max_attempts`, sleeping the
    /// seeded backoff schedule between retryable failures. The final error
    /// is returned as-is.
    pub fn run<T>(
        &self,
        seed: u64,
        mut op: impl FnMut(u32) -> Result<T, SpannerError>,
    ) -> Result<T, SpannerError> {
        let schedule = self.backoff_schedule(seed);
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && (attempt as usize) < schedule.len() => {
                    let delay = schedule[attempt as usize];
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The tiny seeded generator behind [`RetryPolicy`]'s jitter (Steele et
/// al.'s splitmix64) — deterministic, dependency-free, good enough to
/// decorrelate backoff.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker_policy() -> BreakerPolicy {
        BreakerPolicy { failure_threshold: 2, window_docs: 8, open_batches: 3 }
    }

    #[test]
    fn quotas_resolve_overrides_then_default() {
        let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_in_flight_docs(4))
            .with_tenant("hot", TenantQuota::unlimited().with_max_in_flight_docs(1))
            .with_tenant("hot", TenantQuota::unlimited().with_max_in_flight_docs(2));
        assert_eq!(quotas.for_tenant("cold").max_in_flight_docs, Some(4));
        assert_eq!(quotas.for_tenant("hot").max_in_flight_docs, Some(2), "last override wins");
    }

    #[test]
    fn in_flight_quota_charges_and_releases() {
        let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_in_flight_docs(2));
        let ctrl = AdmissionController::new(quotas, None);
        let a = ctrl.admit("t", 10).unwrap();
        let b = ctrl.admit("t", 10).unwrap();
        assert_eq!(a, b, "same tenant, same slot");
        match ctrl.admit("t", 10) {
            Err(SpannerError::QuotaExceeded { tenant, kind }) => {
                assert_eq!(tenant, "t");
                assert_eq!(kind, "in-flight documents");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        ctrl.release_queued(a, 10);
        ctrl.note_result(a, true);
        ctrl.admit("t", 10).unwrap();
        let stats = ctrl.stats();
        assert_eq!((stats.admitted, stats.quota_denials, stats.breaker_denials), (3, 1, 0));
    }

    #[test]
    fn queued_bytes_quota_is_released_at_dequeue() {
        let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_queued_bytes(100));
        let ctrl = AdmissionController::new(quotas, None);
        let slot = ctrl.admit("t", 80).unwrap();
        match ctrl.admit("t", 30) {
            Err(SpannerError::QuotaExceeded { kind, .. }) => assert_eq!(kind, "queued bytes"),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        ctrl.release_queued(slot, 80);
        ctrl.admit("t", 30).unwrap();
        assert_eq!(ctrl.tenant_stats("t").unwrap().queued_bytes, 30);
        assert_eq!(ctrl.tenant_stats("t").unwrap().in_flight, 2);
    }

    #[test]
    fn token_bucket_refills_per_batch() {
        let quotas = TenantQuotas::uniform(
            TenantQuota::unlimited().with_rate(RateLimit { burst: 2, refill_per_batch: 1 }),
        );
        let ctrl = AdmissionController::new(quotas, None);
        ctrl.admit("t", 1).unwrap();
        ctrl.admit("t", 1).unwrap();
        match ctrl.admit("t", 1) {
            Err(SpannerError::QuotaExceeded { kind, .. }) => assert_eq!(kind, "rate tokens"),
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        ctrl.note_batch();
        assert_eq!(ctrl.tenant_stats("t").unwrap().tokens, Some(1));
        ctrl.admit("t", 1).unwrap();
        ctrl.note_batch();
        ctrl.note_batch();
        ctrl.note_batch();
        assert_eq!(ctrl.tenant_stats("t").unwrap().tokens, Some(2), "refill caps at burst");
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let ctrl = AdmissionController::new(TenantQuotas::unlimited(), Some(breaker_policy()));
        // Two failures trip it open.
        for _ in 0..2 {
            let slot = ctrl.admit("t", 1).unwrap();
            ctrl.release_queued(slot, 1);
            ctrl.note_result(slot, false);
        }
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::Open));
        match ctrl.admit("t", 1) {
            Err(SpannerError::CircuitOpen { tenant, retry_after_batches }) => {
                assert_eq!(tenant, "t");
                assert_eq!(retry_after_batches, 3);
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        // Cooldown ticks in completed batches; the third tick half-opens.
        ctrl.note_batch();
        match ctrl.admit("t", 1) {
            Err(SpannerError::CircuitOpen { retry_after_batches, .. }) => {
                assert_eq!(retry_after_batches, 2)
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        ctrl.note_batch();
        ctrl.note_batch();
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::HalfOpen));
        // The probe is admitted; a second submission is not.
        let probe = ctrl.admit("t", 1).unwrap();
        assert!(matches!(ctrl.admit("t", 1), Err(SpannerError::CircuitOpen { .. })));
        // A failing probe re-opens for the full cooldown…
        ctrl.release_queued(probe, 1);
        ctrl.note_result(probe, false);
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::Open));
        for _ in 0..3 {
            ctrl.note_batch();
        }
        // …and a succeeding probe closes the breaker with a fresh window.
        let probe = ctrl.admit("t", 1).unwrap();
        ctrl.release_queued(probe, 1);
        ctrl.note_result(probe, true);
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::Closed));
        ctrl.admit("t", 1).unwrap();
    }

    #[test]
    fn closed_window_resets_after_window_docs_successes() {
        let policy = BreakerPolicy { failure_threshold: 2, window_docs: 3, open_batches: 1 };
        let ctrl = AdmissionController::new(TenantQuotas::unlimited(), Some(policy));
        // One failure, then enough successes to roll the window: the stale
        // failure must not combine with a later one to trip the breaker.
        let feed = |ok: bool| {
            let slot = ctrl.admit("t", 1).unwrap();
            ctrl.release_queued(slot, 1);
            ctrl.note_result(slot, ok);
        };
        feed(false);
        feed(true);
        feed(true);
        feed(false);
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::Closed));
    }

    #[test]
    fn abandon_releases_without_feeding_the_breaker() {
        let policy = BreakerPolicy { failure_threshold: 1, window_docs: 8, open_batches: 1 };
        let quotas = TenantQuotas::uniform(TenantQuota::unlimited().with_max_in_flight_docs(1));
        let ctrl = AdmissionController::new(quotas, Some(policy));
        let slot = ctrl.admit("t", 5).unwrap();
        ctrl.abandon(slot, 5);
        assert_eq!(ctrl.breaker_phase("t"), Some(BreakerPhase::Closed));
        let t = ctrl.tenant_stats("t").unwrap();
        assert_eq!((t.in_flight, t.queued_bytes), (0, 0));
        ctrl.admit("t", 5).unwrap();
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base: Duration::from_micros(100),
            cap: Duration::from_micros(2_000),
        };
        let a = policy.backoff_schedule(42);
        let b = policy.backoff_schedule(42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5);
        for d in &a {
            assert!(*d >= policy.base && *d <= policy.cap, "draw {d:?} out of [base, cap]");
        }
        let c = policy.backoff_schedule(43);
        assert_ne!(a, c, "different seeds decorrelate");
        assert!(RetryPolicy::none().backoff_schedule(42).is_empty());
    }

    #[test]
    fn retry_run_retries_retryable_and_stops_on_terminal() {
        let policy = RetryPolicy { max_attempts: 3, base: Duration::ZERO, cap: Duration::ZERO };
        let mut calls = 0;
        let out = policy.run(7, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(SpannerError::Overloaded { queued: 4, capacity: 4 })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<(), _> = policy.run(7, |_| {
            calls += 1;
            Err(SpannerError::ShuttingDown)
        });
        assert!(matches!(out, Err(SpannerError::ShuttingDown)));
        assert_eq!(calls, 1, "terminal errors are never retried");

        let mut calls = 0;
        let out: Result<(), _> = policy.run(7, |_| {
            calls += 1;
            Err(SpannerError::QuotaExceeded { tenant: "t".into(), kind: "rate tokens" })
        });
        assert!(matches!(out, Err(SpannerError::QuotaExceeded { .. })));
        assert_eq!(calls, 3, "retryable errors exhaust max_attempts");
    }
}
