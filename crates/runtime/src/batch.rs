//! One-shot parallel batch evaluation over a slice of documents.
//!
//! [`BatchSpanner`] extends [`CompiledSpanner`] with
//! `evaluate_batch`/`count_batch`/`is_match_batch`: fan a document slice out
//! over [`std::thread::scope`] workers (plain `std`, no external
//! dependencies), each holding one warm pooled engine, and return the
//! per-document results **in document order** regardless of scheduling. For
//! lazy-backed spanners the batch first warms and freezes a shared
//! determinization snapshot from the leading documents, so the N workers
//! read one table instead of re-determinizing N times.
//!
//! One thread (or one document) short-circuits to a plain sequential loop —
//! no threads are spawned, no atomics touched — and, because worker deltas
//! reset per document, the parallel output is byte-for-byte the sequential
//! output at every thread count. Long-lived services should prefer
//! [`crate::SpannerServer`], which keeps the pools and the frozen snapshot
//! warm across batches instead of rebuilding them per call.

use crate::pool::{CountCachePool, EvaluatorPool};
use spanners_core::{CompiledSpanner, Counter, DagView, Document, FrozenCache, SpannerError};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many leading documents a one-shot batch samples to warm the frozen
/// determinization snapshot of a lazy spanner before fanning out.
pub(crate) const WARM_SAMPLE_DOCS: usize = 4;

/// Configuration of a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOptions {
    /// Worker threads to fan out over; `0` (the default) means "ask the OS"
    /// ([`std::thread::available_parallelism`]). The effective count is
    /// additionally capped by the number of documents, and `1` selects the
    /// sequential fallback (no threads spawned).
    pub threads: usize,
}

impl BatchOptions {
    /// Options running exactly `threads` workers.
    pub fn threads(threads: usize) -> BatchOptions {
        BatchOptions { threads }
    }

    /// The worker count a batch of `jobs` documents actually uses.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let requested = match self.threads {
            0 => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
            n => n,
        };
        requested.min(jobs).max(1)
    }
}

/// Runs `jobs` independent jobs on `threads` scoped workers and returns the
/// results **in job order**. Each worker builds its state once (`init`),
/// then pulls job indices from a shared counter — dynamic scheduling, so an
/// expensive document does not stall a whole stripe. `threads <= 1` runs a
/// plain sequential loop with a single state and no synchronisation.
pub(crate) fn run_ordered<S, R, I, F>(jobs: usize, threads: usize, init: I, step: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if threads <= 1 || jobs <= 1 {
        let mut state = init();
        return (0..jobs).map(|i| step(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, step(&mut state, i)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} ran twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every job ran exactly once")).collect()
}

/// Warms and freezes a shared determinization snapshot for a lazy spanner
/// from the leading documents of the batch (`None` for eager spanners, whose
/// tables are immutable and shared as-is). Batches of fewer than two
/// documents skip the freeze: there is nothing to amortize across, and the
/// plain warm lazy path avoids evaluating the lone document twice.
pub(crate) fn freeze_for_batch(
    spanner: &CompiledSpanner,
    docs: &[Document],
) -> Option<FrozenCache> {
    if docs.len() < 2 {
        return None;
    }
    spanner.freeze_warm(&docs[..docs.len().min(WARM_SAMPLE_DOCS)])
}

/// The shared per-batch evaluation plan: spanner + optional frozen snapshot
/// + engine pools, borrowed by every worker.
pub(crate) struct BatchPlan<'a> {
    pub spanner: &'a CompiledSpanner,
    pub frozen: Option<&'a FrozenCache>,
}

impl BatchPlan<'_> {
    pub(crate) fn evaluate<R, F>(
        &self,
        pool: &EvaluatorPool,
        docs: &[Document],
        threads: usize,
        f: &F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        run_ordered(
            docs.len(),
            threads,
            || pool.checkout(),
            |evaluator, i| {
                let view = match self.frozen {
                    Some(frozen) => self.spanner.evaluate_frozen_with(evaluator, frozen, &docs[i]),
                    None => self.spanner.evaluate_with(evaluator, &docs[i]),
                };
                f(i, view)
            },
        )
    }

    pub(crate) fn count<C>(
        &self,
        pool: &CountCachePool<C>,
        docs: &[Document],
        threads: usize,
    ) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send,
    {
        run_ordered(
            docs.len(),
            threads,
            || pool.checkout(),
            |cache, i| match self.frozen {
                Some(frozen) => self.spanner.count_frozen_with(cache, frozen, &docs[i]),
                None => self.spanner.count_with(cache, &docs[i]),
            },
        )
        // Document order is preserved, so on failure the error reported is
        // the lowest-index failing document — deterministic across runs.
        .into_iter()
        .collect()
    }

    pub(crate) fn is_match(
        &self,
        pool: &EvaluatorPool,
        docs: &[Document],
        threads: usize,
    ) -> Vec<bool> {
        run_ordered(
            docs.len(),
            threads,
            || pool.checkout(),
            |evaluator, i| match self.frozen {
                Some(frozen) => self.spanner.is_match_frozen_with(evaluator, frozen, &docs[i]),
                None => self.spanner.is_match_with(evaluator, &docs[i]),
            },
        )
    }
}

/// Batch evaluation entry points on [`CompiledSpanner`] — import this trait
/// to call `spanner.evaluate_batch(...)` / `spanner.count_batch(...)`.
///
/// These are the one-shot forms: each call builds transient engine pools and
/// (for lazy spanners) a transient frozen snapshot warmed on the leading
/// [`WARM_SAMPLE_DOCS`] documents. A long-lived service should hold a
/// [`crate::SpannerServer`] instead, which amortizes both across calls.
pub trait BatchSpanner {
    /// Evaluates every document, mapping each resulting DAG view through `f`
    /// (e.g. `|_, dag| dag.collect_mappings()` or `|_, dag| dag.count_paths()`)
    /// on the worker that produced it, and returns the outputs in document
    /// order. `f` receives the document index alongside the view.
    fn evaluate_batch<R, F>(&self, docs: &[Document], opts: &BatchOptions, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync;

    /// Counts `|⟦A⟧(d)|` for every document (Algorithm 3), in document
    /// order. Fails with the error of the lowest-index failing document if
    /// any counter overflows.
    fn count_batch<C>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send;

    /// Whether each document has at least one output mapping, in document
    /// order.
    fn is_match_batch(&self, docs: &[Document], opts: &BatchOptions) -> Vec<bool>;
}

impl BatchSpanner for CompiledSpanner {
    fn evaluate_batch<R, F>(&self, docs: &[Document], opts: &BatchOptions, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        let frozen = freeze_for_batch(self, docs);
        let pool = EvaluatorPool::new();
        let plan = BatchPlan { spanner: self, frozen: frozen.as_ref() };
        plan.evaluate(&pool, docs, opts.effective_threads(docs.len()), &f)
    }

    fn count_batch<C>(&self, docs: &[Document], opts: &BatchOptions) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send,
    {
        let frozen = freeze_for_batch(self, docs);
        let pool: CountCachePool<C> = CountCachePool::new();
        let plan = BatchPlan { spanner: self, frozen: frozen.as_ref() };
        plan.count(&pool, docs, opts.effective_threads(docs.len()))
    }

    fn is_match_batch(&self, docs: &[Document], opts: &BatchOptions) -> Vec<bool> {
        let frozen = freeze_for_batch(self, docs);
        let pool = EvaluatorPool::new();
        let plan = BatchPlan { spanner: self, frozen: frozen.as_ref() };
        plan.is_match(&pool, docs, opts.effective_threads(docs.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_is_in_job_order_at_any_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let out = run_ordered(23, threads, || (), |_, i| i * 10);
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn run_ordered_empty_and_single() {
        let out: Vec<usize> = run_ordered(0, 8, || (), |_, i| i);
        assert!(out.is_empty());
        let out = run_ordered(1, 8, || (), |_, i| i + 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn effective_threads_caps_by_jobs() {
        assert_eq!(BatchOptions::threads(8).effective_threads(3), 3);
        assert_eq!(BatchOptions::threads(2).effective_threads(100), 2);
        assert_eq!(BatchOptions::threads(1).effective_threads(100), 1);
        assert!(BatchOptions::default().effective_threads(100) >= 1);
    }
}
