//! One-shot parallel batch evaluation over a slice of documents.
//!
//! [`BatchSpanner`] extends [`CompiledSpanner`] with
//! `evaluate_batch`/`count_batch`/`is_match_batch`: fan a document slice out
//! over [`std::thread::scope`] workers (plain `std`, no external
//! dependencies), each holding one warm pooled engine, and return the
//! per-document results **in document order** regardless of scheduling. For
//! lazy-backed spanners the batch first warms and freezes a shared
//! determinization snapshot from the leading documents, so the N workers
//! read one table instead of re-determinizing N times.
//!
//! One thread (or one document) short-circuits to a plain sequential loop —
//! no threads are spawned — and, because worker deltas reset per document,
//! the parallel output is byte-for-byte the sequential output at every
//! thread count. Long-lived services should prefer [`crate::SpannerServer`],
//! which keeps the pools and the frozen snapshot warm across batches instead
//! of rebuilding them per call.
//!
//! # Fault tolerance
//!
//! Every per-document unit of work is contained: a panic inside one
//! document's evaluation is caught, converted into
//! [`SpannerError::WorkerPanicked`], and the engine involved is
//! **quarantined** (dropped, never checked back into its pool) while the
//! worker keeps pulling documents. Per-document resource limits
//! ([`EvalLimits`] in [`BatchOptions::limits`]) bound steps, wall-clock time
//! and cache-eviction thrash; documents that trip a *recoverable* limit are
//! retried through the bounded [`DegradePolicy`] escalation ladder. The
//! report-returning entry points
//! ([`BatchSpanner::evaluate_batch_report`],
//! [`BatchSpanner::count_batch_report`]) surface all of this per document in
//! a [`BatchReport`]; the legacy entry points are thin wrappers that abort
//! on the lowest-index failure, exactly as before.

use crate::faults;
use crate::pool::{
    CountCachePool, EvaluatorPool, PooledCountCache, PooledEvaluator, PooledSlpEvaluator,
    SlpEvaluatorPool,
};
use crate::report::{BatchReport, DegradePolicy};
use spanners_core::{
    CompiledSpanner, Counter, DagView, Document, EngineMode, EvalLimits, FrozenCache,
    GovernorHandle, Slp, SpannerError,
};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// How many leading documents a one-shot batch samples to warm the frozen
/// determinization snapshot of a lazy spanner before fanning out.
pub(crate) const WARM_SAMPLE_DOCS: usize = 4;

/// Configuration of a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads to fan out over. The default resolves
    /// [`std::thread::available_parallelism`] at construction; `0` is kept
    /// as a legacy alias for "ask the OS" on the non-validating entry
    /// points, but [`BatchOptions::validate`] (and thus every
    /// report-returning API) rejects it. The effective count is additionally
    /// capped by the number of documents, and `1` selects the sequential
    /// fallback (no threads spawned).
    pub threads: usize,
    /// Per-document resource limits (step budget, deadlines, eviction-thrash
    /// guard). Default: unlimited.
    pub limits: EvalLimits,
    /// Bounded-retry escalation for documents that trip a recoverable limit.
    /// Default: up to 2 degraded retries with a 4× cache-budget boost.
    pub degrade: DegradePolicy,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            threads: std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
            limits: EvalLimits::none(),
            degrade: DegradePolicy::default(),
        }
    }
}

impl BatchOptions {
    /// Options running exactly `threads` workers.
    pub fn threads(threads: usize) -> BatchOptions {
        BatchOptions { threads, ..BatchOptions::default() }
    }

    /// Returns the options with the given per-document limits.
    pub fn with_limits(mut self, limits: EvalLimits) -> BatchOptions {
        self.limits = limits;
        self
    }

    /// Returns the options with the given degradation policy.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> BatchOptions {
        self.degrade = degrade;
        self
    }

    /// The worker count a batch of `jobs` documents actually uses.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let requested = match self.threads {
            0 => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
            n => n,
        };
        requested.min(jobs).max(1)
    }

    /// Rejects nonsensical configurations up front with
    /// [`SpannerError::InvalidConfig`] instead of silently falling through
    /// to the sequential path or retrying forever. Called by every
    /// report-returning batch entry point.
    pub fn validate(&self) -> Result<(), SpannerError> {
        if self.threads == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "BatchOptions.threads must be at least 1 \
                       (BatchOptions::default() resolves the available parallelism)",
            });
        }
        if self.degrade.max_attempts == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "DegradePolicy.max_attempts must be at least 1 (1 disables retries)",
            });
        }
        if self.degrade.max_attempts > 16 {
            return Err(SpannerError::InvalidConfig {
                what: "DegradePolicy.max_attempts is absurdly large (the ladder has 4 rungs; \
                       cap is 16)",
            });
        }
        if self.degrade.budget_boost == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "DegradePolicy.budget_boost must be at least 1",
            });
        }
        Ok(())
    }
}

/// Stringifies a caught panic payload for [`SpannerError::WorkerPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` independent jobs on `threads` scoped workers with **panic
/// containment**, returning the results **in job order**. Each worker builds
/// its state via `init`, then pulls job indices from a shared counter —
/// dynamic scheduling, so an expensive document does not stall a whole
/// stripe. `threads <= 1` runs the same containment loop sequentially with
/// no threads spawned.
///
/// A panic inside `step` is caught: the worker's state is handed to
/// `quarantine` (never reused), the job's result is produced by
/// `on_panic(job, message)`, a fresh state is built for the next job, and
/// the worker keeps pulling. A panic inside `init` is retried once per job
/// (transient checkout faults are one-shot); if it persists, the affected
/// jobs are reported through `on_panic` — nothing aborts the batch.
pub(crate) fn run_contained<S, R, I, F, P, Q>(
    jobs: usize,
    threads: usize,
    init: I,
    step: F,
    on_panic: P,
    quarantine: Q,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    P: Fn(usize, String) -> R + Sync,
    Q: Fn(S) + Sync,
{
    let next = AtomicUsize::new(0);
    let worker = || {
        let mut out = Vec::new();
        let mut state: Option<S> = None;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            if state.is_none() {
                state = catch_unwind(AssertUnwindSafe(&init))
                    .or_else(|_| catch_unwind(AssertUnwindSafe(&init)))
                    .ok();
            }
            let record = match state.as_mut() {
                None => on_panic(i, "worker state initialization panicked".to_string()),
                Some(s) => match catch_unwind(AssertUnwindSafe(|| step(s, i))) {
                    Ok(r) => r,
                    Err(payload) => {
                        let message = panic_message(payload);
                        if let Some(poisoned) = state.take() {
                            quarantine(poisoned);
                        }
                        on_panic(i, message)
                    }
                },
            };
            out.push((i, record));
        }
        out
    };
    let buckets: Vec<Vec<(usize, R)>> = if threads <= 1 || jobs <= 1 {
        vec![worker()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
        })
    };
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} ran twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| on_panic(i, "batch worker terminated early".to_string())))
        .collect()
}

/// Warms and freezes a shared determinization snapshot for a lazy spanner
/// from the leading documents of the batch (`None` for eager spanners, whose
/// tables are immutable and shared as-is). Batches of fewer than two
/// documents skip the freeze: there is nothing to amortize across, and the
/// plain warm lazy path avoids evaluating the lone document twice.
pub(crate) fn freeze_for_batch(
    spanner: &CompiledSpanner,
    docs: &[Document],
) -> Option<FrozenCache> {
    if docs.len() < 2 {
        return None;
    }
    spanner.freeze_warm(&docs[..docs.len().min(WARM_SAMPLE_DOCS)])
}

/// [`freeze_for_batch`] for SLP-compressed batches: warms the snapshot (and
/// the shared SLP memo attached to it) on the leading compressed documents.
pub(crate) fn freeze_for_slp_batch(spanner: &CompiledSpanner, slps: &[Slp]) -> Option<FrozenCache> {
    if slps.len() < 2 {
        return None;
    }
    spanner.freeze_warm_slp(&slps[..slps.len().min(WARM_SAMPLE_DOCS)])
}

/// One rung of the [`DegradePolicy`] escalation ladder (see
/// [`crate::report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    /// The plain first attempt: pool engine mode, configured cache budget.
    Normal,
    /// One-off enlarged determinization-cache budget (lazy spanners).
    BoostBudget,
    /// The simplest engine loop, keeping any budget boost.
    PerByte,
    /// The eager automaton — no cache at all (when the spanner has one).
    Eager,
}

/// The per-document attempt loop shared by all three batch shapes: walk the
/// rung ladder until an attempt succeeds or fails unrecoverably. Returns
/// `(outcome, retries_spent, succeeded_degraded)`.
fn run_attempts<R>(
    rungs: &[Rung],
    base_limits: EvalLimits,
    force_eviction: bool,
    mut attempt: impl FnMut(Rung, EvalLimits, bool) -> Result<R, SpannerError>,
) -> (Result<R, SpannerError>, u32, bool) {
    debug_assert!(!rungs.is_empty());
    let mut retries = 0u32;
    let mut outcome = None;
    for (k, &rung) in rungs.iter().enumerate() {
        let mut limits = base_limits;
        if k > 0 {
            // The soft deadline already fired — the retry is the degradation
            // it asked for. Hard deadline and step budget still apply.
            limits.soft_deadline = None;
        }
        match attempt(rung, limits, k == 0 && force_eviction) {
            Ok(v) => return (Ok(v), retries, k > 0),
            Err(e) => {
                let retryable = DegradePolicy::is_retryable(&e) && k + 1 < rungs.len();
                outcome = Some(Err(e));
                if !retryable {
                    break;
                }
                retries += 1;
            }
        }
    }
    (outcome.expect("at least one attempt ran"), retries, false)
}

/// The shared per-batch evaluation plan: spanner + optional frozen snapshot,
/// borrowed by every worker. The streaming runtime additionally threads
/// through stable document identities (fault keying + error reporting for
/// micro-batches cut out of a longer stream), per-request remaining-time
/// deadlines, and the serving-generation tag for pool checkouts.
pub(crate) struct BatchPlan<'a> {
    pub spanner: &'a CompiledSpanner,
    pub frozen: Option<&'a FrozenCache>,
    /// Stable per-document identities (stream sequence numbers). `None` for
    /// one-shot batches, where the slice index is the identity.
    pub doc_ids: Option<&'a [usize]>,
    /// Remaining wall-clock budget per document (already reduced by queue
    /// wait), clamped onto the configured hard deadline. `None` entries (and
    /// a `None` slice) leave the configured limits untouched.
    pub deadlines: Option<&'a [Option<Duration>]>,
    /// Serving-generation tag for pool checkouts (`0` = untagged).
    pub gen_tag: u64,
    /// Per-component ledger handle into the process-wide
    /// [`spanners_core::MemoryGovernor`]. When set, every report-returning
    /// run settles the pool's governed bytes after the batch and walks the
    /// shedding ladder while the ledger is over budget. `None` for one-shot
    /// batches (their pools die with the call).
    pub governor: Option<&'a GovernorHandle>,
}

impl<'a> BatchPlan<'a> {
    /// A plain one-shot plan: slice indices as identities, no per-request
    /// deadlines, untagged checkouts.
    pub(crate) fn new(
        spanner: &'a CompiledSpanner,
        frozen: Option<&'a FrozenCache>,
    ) -> BatchPlan<'a> {
        BatchPlan { spanner, frozen, doc_ids: None, deadlines: None, gen_tag: 0, governor: None }
    }
}

impl BatchPlan<'_> {
    /// The stable identity of job `i` (stream sequence number when set,
    /// slice index otherwise) — the key fault injection and
    /// [`SpannerError::WorkerPanicked`] report against.
    #[inline]
    fn doc_id(&self, i: usize) -> usize {
        self.doc_ids.map_or(i, |ids| ids[i])
    }
    /// The applicable escalation ladder, truncated to the policy's attempt
    /// budget. Rung order: normal → boosted cache budget (lazy only) →
    /// per-byte engine → eager automaton (when one exists alongside the lazy
    /// engine).
    fn rungs(&self, policy: &DegradePolicy) -> Vec<Rung> {
        let mut rungs = vec![Rung::Normal];
        if self.spanner.lazy_automaton().is_some() {
            rungs.push(Rung::BoostBudget);
        }
        rungs.push(Rung::PerByte);
        if self.spanner.lazy_automaton().is_some() && self.spanner.eager_automaton().is_some() {
            rungs.push(Rung::Eager);
        }
        rungs.truncate((policy.max_attempts.max(1)) as usize);
        rungs
    }

    /// The escalation ladder of the grammar-aware entry points. There is no
    /// per-byte rung — grammar composition has no byte loop to simplify —
    /// so the ladder is normal → boosted budgets (lazy only) → eager
    /// automaton (when one exists alongside the lazy engine).
    fn slp_rungs(&self, policy: &DegradePolicy) -> Vec<Rung> {
        let mut rungs = vec![Rung::Normal];
        if self.spanner.lazy_automaton().is_some() {
            rungs.push(Rung::BoostBudget);
            if self.spanner.eager_automaton().is_some() {
                rungs.push(Rung::Eager);
            }
        }
        rungs.truncate((policy.max_attempts.max(1)) as usize);
        rungs
    }

    /// The enlarged cache budget of the [`Rung::BoostBudget`] rung.
    fn boosted_budget(&self, policy: &DegradePolicy) -> Option<usize> {
        let base = self.spanner.lazy_automaton()?.config().memory_budget;
        Some(base.saturating_mul(policy.budget_boost as usize))
    }

    /// Settles this batch's pooled-engine bytes into the global memory
    /// governor (when a [`BatchPlan::governor`] handle is attached) and
    /// walks the shedding ladder while the ledger is over budget:
    /// severity 1 sheds the coldest per-engine state (lazy caches and
    /// frozen-overflow deltas of idle pooled engines), severity 2 clears
    /// SLP overflow memos (`shed_memos` is a no-op for non-grammar pools).
    /// Severity 3 — denying new checkouts with a retryable
    /// [`SpannerError::BudgetExceeded`] — happens at admission time, not
    /// here. Injected [`faults::governor_pressure`] is reported as external
    /// pressure before settling so torture tests can drive the ladder
    /// without allocating.
    fn govern(
        &self,
        governed: &dyn Fn() -> usize,
        shed_cold: &dyn Fn() -> u64,
        shed_memos: &dyn Fn() -> u64,
    ) {
        let Some(handle) = self.governor else { return };
        let gov = handle.governor();
        gov.set_pressure(faults::governor_pressure());
        handle.settle(governed());
        if gov.over_budget() {
            gov.note_deltas_shed(shed_cold());
            handle.settle(governed());
        }
        if gov.over_budget() {
            gov.note_memos_shed(shed_memos());
            handle.settle(governed());
        }
    }

    /// Resolves the injected faults, the per-request remaining-time clamp,
    /// and the effective base limits for one document. Panics here (the
    /// injected ones) are contained by [`run_contained`].
    fn doc_setup(&self, i: usize, limits: EvalLimits) -> (EvalLimits, bool) {
        let id = self.doc_id(i);
        let df = faults::doc_faults(id);
        if df.panic {
            panic!("injected fault: panic on document {id}");
        }
        let mut base = limits;
        if let Some(Some(remaining)) = self.deadlines.map(|d| d[i]) {
            base = base.clamp_deadline(remaining);
        }
        if df.expire_deadline {
            base.deadline = Some(Duration::ZERO);
        }
        (base, df.force_eviction)
    }

    pub(crate) fn evaluate_report<R, F>(
        &self,
        pool: &EvaluatorPool,
        docs: &[Document],
        opts: &BatchOptions,
        f: &F,
    ) -> BatchReport<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        let threads = opts.effective_threads(docs.len());
        let rungs = self.rungs(&opts.degrade);
        let boosted = self.boosted_budget(&opts.degrade);
        let quarantined = AtomicUsize::new(0);
        let delta_states = AtomicU64::new(0);
        let delta_bytes = AtomicUsize::new(0);
        let records = run_contained(
            docs.len(),
            threads,
            || pool.checkout_tagged(self.gen_tag),
            |engine: &mut PooledEvaluator<'_>, i| {
                let (base_limits, force_eviction) = self.doc_setup(i, opts.limits);
                let doc = &docs[i];
                let ev = &mut **engine;
                let original_mode = ev.mode();
                let interned_before = ev.frozen_delta().map_or(0, |d| d.states_interned());
                let record =
                    run_attempts(&rungs, base_limits, force_eviction, |rung, limits, evict| {
                        ev.set_limits(limits);
                        match rung {
                            Rung::Normal => ev.set_cache_budget_override(None),
                            Rung::BoostBudget => ev.set_cache_budget_override(boosted),
                            Rung::PerByte => ev.set_mode(EngineMode::PerByte),
                            Rung::Eager => {}
                        }
                        if evict {
                            ev.set_cache_budget_override(Some(0));
                        }
                        if rung == Rung::Eager {
                            if let Some(det) = self.spanner.eager_automaton() {
                                return ev.try_eval(det, doc).map(|view| f(i, view));
                            }
                        }
                        match self.frozen {
                            Some(frozen) => self
                                .spanner
                                .try_evaluate_frozen_with(ev, frozen, doc)
                                .map(|view| f(i, view)),
                            None => self.spanner.try_evaluate_with(ev, doc).map(|view| f(i, view)),
                        }
                    });
                // Delta-pressure sample: overflow states this document forced
                // past the frozen snapshot (a rebind to a new snapshot resets
                // the counter, undercounting that one document — harmless).
                if self.frozen.is_some() {
                    if let Some(d) = ev.frozen_delta() {
                        let grown = d.states_interned().saturating_sub(interned_before);
                        delta_states.fetch_add(grown, Ordering::Relaxed);
                        delta_bytes.fetch_max(d.memory_bytes(), Ordering::Relaxed);
                    }
                }
                // The engine goes back to the pool: shed per-document state.
                ev.set_mode(original_mode);
                ev.set_cache_budget_override(None);
                ev.set_limits(EvalLimits::none());
                record
            },
            |i, message| {
                (Err(SpannerError::WorkerPanicked { doc_index: self.doc_id(i), message }), 0, false)
            },
            |engine: PooledEvaluator<'_>| {
                engine.quarantine();
                quarantined.fetch_add(1, Ordering::Relaxed);
            },
        );
        let mut report =
            BatchReport::from_records(records, quarantined.into_inner(), pool.engines_created());
        report.delta_states = delta_states.into_inner();
        report.delta_bytes = delta_bytes.into_inner();
        self.govern(&|| pool.governed_bytes(), &|| pool.shed_cold(), &|| 0);
        report
    }

    pub(crate) fn count_report<C>(
        &self,
        pool: &CountCachePool<C>,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> BatchReport<C>
    where
        C: Counter + Send,
    {
        let threads = opts.effective_threads(docs.len());
        let rungs = self.rungs(&opts.degrade);
        let boosted = self.boosted_budget(&opts.degrade);
        let quarantined = AtomicUsize::new(0);
        let records = run_contained(
            docs.len(),
            threads,
            || pool.checkout_tagged(self.gen_tag),
            |engine: &mut PooledCountCache<'_, C>, i| {
                let (base_limits, force_eviction) = self.doc_setup(i, opts.limits);
                let doc = &docs[i];
                let cache = &mut **engine;
                let original_mode = cache.mode();
                let record =
                    run_attempts(&rungs, base_limits, force_eviction, |rung, limits, evict| {
                        cache.set_limits(limits);
                        match rung {
                            Rung::Normal => cache.set_cache_budget_override(None),
                            Rung::BoostBudget => cache.set_cache_budget_override(boosted),
                            Rung::PerByte => cache.set_mode(EngineMode::PerByte),
                            Rung::Eager => {}
                        }
                        if evict {
                            cache.set_cache_budget_override(Some(0));
                        }
                        if rung == Rung::Eager {
                            if let Some(det) = self.spanner.eager_automaton() {
                                return cache.count(det, doc);
                            }
                        }
                        match self.frozen {
                            Some(frozen) => self.spanner.count_frozen_with(cache, frozen, doc),
                            None => self.spanner.count_with(cache, doc),
                        }
                    });
                cache.set_mode(original_mode);
                cache.set_cache_budget_override(None);
                cache.set_limits(EvalLimits::none());
                record
            },
            |i, message| {
                (Err(SpannerError::WorkerPanicked { doc_index: self.doc_id(i), message }), 0, false)
            },
            |engine: PooledCountCache<'_, C>| {
                engine.quarantine();
                quarantined.fetch_add(1, Ordering::Relaxed);
            },
        );
        self.govern(&|| pool.governed_bytes(), &|| pool.shed_cold(), &|| 0);
        BatchReport::from_records(records, quarantined.into_inner(), pool.engines_created())
    }

    /// [`BatchPlan::count_report`] over SLP-compressed documents: same
    /// containment, fault keying, degradation ladder (minus the per-byte
    /// rung) and report pipeline, with each worker holding a pooled
    /// [`spanners_core::SlpEvaluator`] whose memo tables stay warm across
    /// the batch.
    pub(crate) fn count_slp_report(
        &self,
        pool: &SlpEvaluatorPool,
        slps: &[Slp],
        opts: &BatchOptions,
    ) -> BatchReport<u64> {
        let threads = opts.effective_threads(slps.len());
        let rungs = self.slp_rungs(&opts.degrade);
        let boosted = self.boosted_budget(&opts.degrade);
        let boosted_memo = spanners_core::slp::DEFAULT_MEMO_BUDGET
            .saturating_mul(opts.degrade.budget_boost.max(1) as usize);
        let quarantined = AtomicUsize::new(0);
        let records = run_contained(
            slps.len(),
            threads,
            || pool.checkout_tagged(self.gen_tag),
            |engine: &mut PooledSlpEvaluator<'_>, i| {
                let (base_limits, force_eviction) = self.doc_setup(i, opts.limits);
                let slp = &slps[i];
                let ev = &mut **engine;
                let record =
                    run_attempts(&rungs, base_limits, force_eviction, |rung, limits, evict| {
                        ev.set_limits(limits);
                        match rung {
                            Rung::Normal => {
                                ev.set_cache_budget_override(None);
                                ev.set_memo_budget_override(None);
                            }
                            Rung::BoostBudget => {
                                ev.set_cache_budget_override(boosted);
                                ev.set_memo_budget_override(Some(boosted_memo));
                            }
                            Rung::PerByte | Rung::Eager => {}
                        }
                        if evict {
                            ev.set_cache_budget_override(Some(0));
                            ev.set_memo_budget_override(Some(0));
                        }
                        if rung == Rung::Eager {
                            if let Some(det) = self.spanner.eager_automaton() {
                                return ev.count(det, slp);
                            }
                        }
                        match self.frozen {
                            Some(frozen) => self.spanner.count_slp_frozen_with(ev, frozen, slp),
                            None => self.spanner.count_slp_with(ev, slp),
                        }
                    });
                ev.set_cache_budget_override(None);
                ev.set_memo_budget_override(None);
                ev.set_limits(EvalLimits::none());
                record
            },
            |i, message| {
                (Err(SpannerError::WorkerPanicked { doc_index: self.doc_id(i), message }), 0, false)
            },
            |engine: PooledSlpEvaluator<'_>| {
                engine.quarantine();
                quarantined.fetch_add(1, Ordering::Relaxed);
            },
        );
        self.govern(&|| pool.governed_bytes(), &|| pool.shed_cold(), &|| pool.shed_memos());
        BatchReport::from_records(records, quarantined.into_inner(), pool.engines_created())
    }

    pub(crate) fn is_match_report(
        &self,
        pool: &EvaluatorPool,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> BatchReport<bool> {
        let threads = opts.effective_threads(docs.len());
        let rungs = self.rungs(&opts.degrade);
        let boosted = self.boosted_budget(&opts.degrade);
        let quarantined = AtomicUsize::new(0);
        let records = run_contained(
            docs.len(),
            threads,
            || pool.checkout_tagged(self.gen_tag),
            |engine: &mut PooledEvaluator<'_>, i| {
                let (base_limits, force_eviction) = self.doc_setup(i, opts.limits);
                let doc = &docs[i];
                let ev = &mut **engine;
                let original_mode = ev.mode();
                let record =
                    run_attempts(&rungs, base_limits, force_eviction, |rung, limits, evict| {
                        ev.set_limits(limits);
                        match rung {
                            Rung::Normal => ev.set_cache_budget_override(None),
                            Rung::BoostBudget => ev.set_cache_budget_override(boosted),
                            Rung::PerByte => ev.set_mode(EngineMode::PerByte),
                            Rung::Eager => {}
                        }
                        if evict {
                            ev.set_cache_budget_override(Some(0));
                        }
                        if rung == Rung::Eager {
                            if let Some(det) = self.spanner.eager_automaton() {
                                return ev.try_accepts(det, doc);
                            }
                        }
                        match self.frozen {
                            Some(frozen) => self.spanner.try_is_match_frozen_with(ev, frozen, doc),
                            None => self.spanner.try_is_match_with(ev, doc),
                        }
                    });
                ev.set_mode(original_mode);
                ev.set_cache_budget_override(None);
                ev.set_limits(EvalLimits::none());
                record
            },
            |i, message| {
                (Err(SpannerError::WorkerPanicked { doc_index: self.doc_id(i), message }), 0, false)
            },
            |engine: PooledEvaluator<'_>| {
                engine.quarantine();
                quarantined.fetch_add(1, Ordering::Relaxed);
            },
        );
        self.govern(&|| pool.governed_bytes(), &|| pool.shed_cold(), &|| 0);
        BatchReport::from_records(records, quarantined.into_inner(), pool.engines_created())
    }
}

/// Batch evaluation entry points on [`CompiledSpanner`] — import this trait
/// to call `spanner.evaluate_batch(...)` / `spanner.count_batch(...)`.
///
/// These are the one-shot forms: each call builds transient engine pools and
/// (for lazy spanners) a transient frozen snapshot warmed on the leading
/// [`WARM_SAMPLE_DOCS`] documents. A long-lived service should hold a
/// [`crate::SpannerServer`] instead, which amortizes both across calls.
pub trait BatchSpanner {
    /// Evaluates every document, mapping each resulting DAG view through `f`
    /// (e.g. `|_, dag| dag.collect_mappings()` or `|_, dag| dag.count_paths()`)
    /// on the worker that produced it, and returns the outputs in document
    /// order. `f` receives the document index alongside the view.
    ///
    /// Abort-on-failure semantics: panics if any document fails (lowest index
    /// reported) — with the default unlimited [`BatchOptions`] that requires
    /// a panic inside evaluation. Prefer
    /// [`BatchSpanner::evaluate_batch_report`] for per-document outcomes.
    fn evaluate_batch<R, F>(&self, docs: &[Document], opts: &BatchOptions, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync;

    /// Like [`BatchSpanner::evaluate_batch`], but fault-tolerant: every
    /// document gets its own `Result` slot in the returned [`BatchReport`],
    /// worker panics are contained and quarantine their engine, and
    /// documents tripping a recoverable limit are retried per
    /// [`BatchOptions::degrade`]. Fails only on invalid `opts`.
    fn evaluate_batch_report<R, F>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
        f: F,
    ) -> Result<BatchReport<R>, SpannerError>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync;

    /// Counts `|⟦A⟧(d)|` for every document (Algorithm 3), in document
    /// order. Fails with the error of the lowest-index failing document if
    /// any counter overflows (or any configured limit trips).
    fn count_batch<C>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send;

    /// Like [`BatchSpanner::count_batch`], but fault-tolerant (see
    /// [`BatchSpanner::evaluate_batch_report`]).
    fn count_batch_report<C>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> Result<BatchReport<C>, SpannerError>
    where
        C: Counter + Send;

    /// Whether each document has at least one output mapping, in document
    /// order.
    fn is_match_batch(&self, docs: &[Document], opts: &BatchOptions) -> Vec<bool>;

    /// [`BatchSpanner::count_batch`] over **SLP-compressed** documents,
    /// evaluated grammar-aware — without decompressing — by pooled
    /// [`spanners_core::SlpEvaluator`]s. For lazy spanners the batch first
    /// warms and freezes a determinization snapshot *with its SLP memo
    /// attached* (see
    /// [`spanners_core::CompiledSpanner::freeze_warm_slp`]), so the N
    /// workers compose documents off one shared bottom-up pass. Counts are
    /// byte-identical to [`BatchSpanner::count_batch`] on the decompressed
    /// documents, at every thread count.
    fn count_slp_batch(&self, slps: &[Slp], opts: &BatchOptions) -> Result<Vec<u64>, SpannerError>;

    /// Like [`BatchSpanner::count_slp_batch`], but fault-tolerant (see
    /// [`BatchSpanner::evaluate_batch_report`]): per-document results,
    /// contained panics, and the degradation ladder (minus the per-byte
    /// rung — grammar composition has no byte loop).
    fn count_slp_batch_report(
        &self,
        slps: &[Slp],
        opts: &BatchOptions,
    ) -> Result<BatchReport<u64>, SpannerError>;
}

impl BatchSpanner for CompiledSpanner {
    fn evaluate_batch<R, F>(&self, docs: &[Document], opts: &BatchOptions, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        let frozen = freeze_for_batch(self, docs);
        let pool = EvaluatorPool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        let report = plan.evaluate_report(&pool, docs, opts, &f);
        report
            .results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|e| {
                    panic!(
                        "document {i} failed in evaluate_batch \
                         (use evaluate_batch_report for per-document errors): {e}"
                    )
                })
            })
            .collect()
    }

    fn evaluate_batch_report<R, F>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
        f: F,
    ) -> Result<BatchReport<R>, SpannerError>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        opts.validate()?;
        let frozen = freeze_for_batch(self, docs);
        let pool = EvaluatorPool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        Ok(plan.evaluate_report(&pool, docs, opts, &f))
    }

    fn count_batch<C>(&self, docs: &[Document], opts: &BatchOptions) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send,
    {
        let frozen = freeze_for_batch(self, docs);
        let pool: CountCachePool<C> = CountCachePool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        // Document order is preserved, so the error reported is the one of
        // the lowest-index failing document — deterministic across runs.
        plan.count_report(&pool, docs, opts).into_results().into_iter().collect()
    }

    fn count_batch_report<C>(
        &self,
        docs: &[Document],
        opts: &BatchOptions,
    ) -> Result<BatchReport<C>, SpannerError>
    where
        C: Counter + Send,
    {
        opts.validate()?;
        let frozen = freeze_for_batch(self, docs);
        let pool: CountCachePool<C> = CountCachePool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        Ok(plan.count_report(&pool, docs, opts))
    }

    fn count_slp_batch(&self, slps: &[Slp], opts: &BatchOptions) -> Result<Vec<u64>, SpannerError> {
        let frozen = freeze_for_slp_batch(self, slps);
        let pool = SlpEvaluatorPool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        // Document order is preserved, so the error reported is the one of
        // the lowest-index failing document — deterministic across runs.
        plan.count_slp_report(&pool, slps, opts).into_results().into_iter().collect()
    }

    fn count_slp_batch_report(
        &self,
        slps: &[Slp],
        opts: &BatchOptions,
    ) -> Result<BatchReport<u64>, SpannerError> {
        opts.validate()?;
        let frozen = freeze_for_slp_batch(self, slps);
        let pool = SlpEvaluatorPool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        Ok(plan.count_slp_report(&pool, slps, opts))
    }

    fn is_match_batch(&self, docs: &[Document], opts: &BatchOptions) -> Vec<bool> {
        let frozen = freeze_for_batch(self, docs);
        let pool = EvaluatorPool::new();
        let plan = BatchPlan::new(self, frozen.as_ref());
        plan.is_match_report(&pool, docs, opts)
            .into_results()
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|e| {
                    panic!(
                        "document {i} failed in is_match_batch \
                         (configure limits via the report APIs): {e}"
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_panic(i: usize, message: String) -> usize {
        panic!("unexpected containment of job {i}: {message}");
    }

    #[test]
    fn run_contained_is_in_job_order_at_any_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let out = run_contained(23, threads, || (), |_, i| i * 10, no_panic, |_| ());
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn run_contained_empty_and_single() {
        let out: Vec<usize> = run_contained(0, 8, || (), |_, i| i, no_panic, |_| ());
        assert!(out.is_empty());
        let out = run_contained(1, 8, || (), |_, i| i + 1, no_panic, |_| ());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn run_contained_contains_step_panics_and_quarantines() {
        for threads in [1usize, 2, 8] {
            let quarantined = AtomicUsize::new(0);
            let out: Vec<Result<usize, String>> = run_contained(
                10,
                threads,
                || (),
                |_, i| {
                    if i == 3 || i == 7 {
                        panic!("boom {i}");
                    }
                    Ok(i)
                },
                |i, message| Err(format!("{i}: {message}")),
                |_| {
                    quarantined.fetch_add(1, Ordering::Relaxed);
                },
            );
            for (i, r) in out.iter().enumerate() {
                if i == 3 || i == 7 {
                    assert_eq!(
                        r.as_ref().err().map(String::as_str),
                        Some(format!("{i}: boom {i}").as_str())
                    );
                } else {
                    assert_eq!(*r, Ok(i));
                }
            }
            assert_eq!(quarantined.load(Ordering::Relaxed), 2, "threads = {threads}");
        }
    }

    #[test]
    fn effective_threads_caps_by_jobs() {
        assert_eq!(BatchOptions::threads(8).effective_threads(3), 3);
        assert_eq!(BatchOptions::threads(2).effective_threads(100), 2);
        assert_eq!(BatchOptions::threads(1).effective_threads(100), 1);
        assert!(BatchOptions::default().effective_threads(100) >= 1);
    }

    #[test]
    fn validate_rejects_nonsense_options() {
        assert!(BatchOptions::default().validate().is_ok());
        let err = |o: BatchOptions| match o.validate() {
            Err(SpannerError::InvalidConfig { what }) => what,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert!(err(BatchOptions::threads(0)).contains("threads"));
        let zero_retry = BatchOptions::default()
            .with_degrade(DegradePolicy { max_attempts: 0, ..DegradePolicy::default() });
        assert!(err(zero_retry).contains("max_attempts"));
        let absurd_retry = BatchOptions::default()
            .with_degrade(DegradePolicy { max_attempts: 17, ..DegradePolicy::default() });
        assert!(err(absurd_retry).contains("absurd"));
        let zero_boost = BatchOptions::default()
            .with_degrade(DegradePolicy { budget_boost: 0, ..DegradePolicy::default() });
        assert!(err(zero_boost).contains("budget_boost"));
    }
}
