//! The long-lived multi-document serving API.
//!
//! A [`SpannerServer`] owns everything a service needs to evaluate one
//! compiled spanner against arriving batches of documents, keeping all of it
//! warm across calls:
//!
//! * the engine pools ([`EvaluatorPool`], [`CountCachePool`]) — per-worker
//!   arenas retain capacity from batch to batch, so a steady-state server
//!   performs no allocation in the hot path;
//! * the shared frozen determinization snapshot of a lazy-backed spanner,
//!   built once (from the first batch's leading documents, or explicitly via
//!   [`SpannerServer::warm`]) and then shared read-only by every worker via
//!   `Arc`;
//! * the thread configuration ([`BatchOptions`]).
//!
//! A `SpannerServer` is `Send + Sync`: wrap it in an `Arc` and call it from
//! any number of request-handling threads — batches from concurrent callers
//! simply share the pools.

use crate::batch::{BatchOptions, BatchPlan, WARM_SAMPLE_DOCS};
use crate::pool::{CountCachePool, EvaluatorPool};
use crate::report::BatchReport;
use spanners_core::{CompiledSpanner, Counter, DagView, Document, FrozenCache, SpannerError};
use std::sync::{Arc, OnceLock};

/// A warm, thread-safe serving wrapper around one [`CompiledSpanner`].
///
/// ```
/// use spanners_core::{CompiledSpanner, Document};
/// use spanners_runtime::{BatchOptions, SpannerServer};
/// # use spanners_core::{EvaBuilder, ByteClass, MarkerSet, VarRegistry};
/// # let mut reg = VarRegistry::new();
/// # let x = reg.intern("x").unwrap();
/// # let mut b = EvaBuilder::new(reg);
/// # let q0 = b.add_state();
/// # let q1 = b.add_state();
/// # let q2 = b.add_state();
/// # b.set_initial(q0);
/// # b.set_final(q2);
/// # b.add_letter(q0, ByteClass::any(), q0);
/// # b.add_byte(q1, b'a', q1);
/// # b.add_letter(q2, ByteClass::any(), q2);
/// # b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// # b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
/// # let spanner = CompiledSpanner::from_eva(&b.build().unwrap()).unwrap();
/// let server = SpannerServer::with_options(spanner, BatchOptions::threads(2));
/// let batch: Vec<Document> = ["baab", "zzz"].iter().map(|t| Document::from(*t)).collect();
/// assert_eq!(server.count_batch(&batch).unwrap(), vec![3, 0]);
/// assert_eq!(server.is_match_batch(&batch), vec![true, false]);
/// ```
#[derive(Debug)]
pub struct SpannerServer {
    spanner: CompiledSpanner,
    opts: BatchOptions,
    /// `None` until the first warm-up; `Some(None)` for eager spanners
    /// (nothing to freeze), `Some(Some(_))` for lazy ones.
    frozen: OnceLock<Option<Arc<FrozenCache>>>,
    eval_pool: EvaluatorPool,
    count_pool: CountCachePool<u64>,
}

impl SpannerServer {
    /// Wraps a compiled spanner with default options (one worker per
    /// available core).
    pub fn new(spanner: CompiledSpanner) -> SpannerServer {
        SpannerServer::with_options(spanner, BatchOptions::default())
    }

    /// Wraps a compiled spanner with an explicit thread configuration.
    pub fn with_options(spanner: CompiledSpanner, opts: BatchOptions) -> SpannerServer {
        SpannerServer {
            spanner,
            opts,
            frozen: OnceLock::new(),
            eval_pool: EvaluatorPool::new(),
            count_pool: CountCachePool::new(),
        }
    }

    /// The served spanner.
    pub fn spanner(&self) -> &CompiledSpanner {
        &self.spanner
    }

    /// The thread configuration.
    pub fn options(&self) -> &BatchOptions {
        &self.opts
    }

    /// Explicitly warms the shared frozen snapshot on representative
    /// documents (lazy spanners only; a no-op for eager ones or when already
    /// warm). Without this, the first batch warms the snapshot on its own
    /// leading documents.
    pub fn warm(&self, docs: &[Document]) {
        let _ = self.frozen.get_or_init(|| self.spanner.freeze_warm(docs).map(Arc::new));
    }

    /// The shared frozen snapshot, if one has been built (lazy spanners
    /// after warm-up). Cloning the `Arc` is cheap — hand it to external
    /// workers freely.
    pub fn frozen_cache(&self) -> Option<Arc<FrozenCache>> {
        self.frozen.get().and_then(|f| f.clone())
    }

    /// Number of subset states in the shared frozen snapshot (diagnostics).
    pub fn frozen_states(&self) -> Option<usize> {
        self.frozen.get().and_then(|f| f.as_ref()).map(|f| f.num_states())
    }

    /// Total evaluator / count-cache engines created so far (diagnostics:
    /// both stop growing once the pools cover peak concurrency).
    pub fn engines_created(&self) -> (usize, usize) {
        (self.eval_pool.engines_created(), self.count_pool.engines_created())
    }

    fn plan<'a>(&'a self, docs: &[Document]) -> BatchPlan<'a> {
        let frozen = self
            .frozen
            .get_or_init(|| {
                self.spanner.freeze_warm(&docs[..docs.len().min(WARM_SAMPLE_DOCS)]).map(Arc::new)
            })
            .as_deref();
        BatchPlan::new(&self.spanner, frozen)
    }

    /// Evaluates every document of the batch (Algorithm 1), mapping each DAG
    /// view through `f` on the worker that produced it; results come back in
    /// document order. See [`crate::BatchSpanner::evaluate_batch`].
    pub fn evaluate_batch<R, F>(&self, docs: &[Document], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        self.plan(docs)
            .evaluate_report(&self.eval_pool, docs, &self.opts, &f)
            .into_results()
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|e| {
                    panic!(
                        "document {i} failed in evaluate_batch \
                         (use evaluate_batch_report for per-document errors): {e}"
                    )
                })
            })
            .collect()
    }

    /// Counts `|⟦A⟧(d)|` for every document of the batch (Algorithm 3), in
    /// document order. Fails with the error of the lowest-index failing
    /// document.
    pub fn count_batch(&self, docs: &[Document]) -> Result<Vec<u64>, SpannerError> {
        self.plan(docs)
            .count_report(&self.count_pool, docs, &self.opts)
            .into_results()
            .into_iter()
            .collect()
    }

    /// Like [`SpannerServer::count_batch`] with a caller-chosen counter type,
    /// counting through a caller-owned pool (the server's own pool is
    /// `u64`-typed).
    pub fn count_batch_with<C>(
        &self,
        pool: &CountCachePool<C>,
        docs: &[Document],
    ) -> Result<Vec<C>, SpannerError>
    where
        C: Counter + Send,
    {
        self.plan(docs).count_report(pool, docs, &self.opts).into_results().into_iter().collect()
    }

    /// Whether each document of the batch has at least one output mapping,
    /// in document order.
    pub fn is_match_batch(&self, docs: &[Document]) -> Vec<bool> {
        self.plan(docs)
            .is_match_report(&self.eval_pool, docs, &self.opts)
            .into_results()
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|e| {
                    panic!(
                        "document {i} failed in is_match_batch \
                         (configure limits via the report APIs): {e}"
                    )
                })
            })
            .collect()
    }

    /// Fault-tolerant batch evaluation: one `Result` per document, worker
    /// panics contained (engines quarantined, see
    /// [`crate::EvaluatorPool::quarantined`]), recoverable limit trips
    /// retried per the server's [`BatchOptions::degrade`] policy. Fails only
    /// on invalid options. See
    /// [`crate::BatchSpanner::evaluate_batch_report`].
    pub fn evaluate_batch_report<R, F>(
        &self,
        docs: &[Document],
        f: F,
    ) -> Result<BatchReport<R>, SpannerError>
    where
        R: Send,
        F: Fn(usize, DagView<'_>) -> R + Sync,
    {
        self.opts.validate()?;
        Ok(self.plan(docs).evaluate_report(&self.eval_pool, docs, &self.opts, &f))
    }

    /// Fault-tolerant batch counting (see
    /// [`SpannerServer::evaluate_batch_report`]).
    pub fn count_batch_report(&self, docs: &[Document]) -> Result<BatchReport<u64>, SpannerError> {
        self.opts.validate()?;
        Ok(self.plan(docs).count_report(&self.count_pool, docs, &self.opts))
    }

    /// Engines quarantined so far across both pools (each contained worker
    /// panic quarantines the engine it was holding).
    pub fn engines_quarantined(&self) -> (usize, usize) {
        (self.eval_pool.quarantined(), self.count_pool.quarantined())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_send_and_sync() {
        fn shared<T: Send + Sync>() {}
        shared::<SpannerServer>();
    }
}
