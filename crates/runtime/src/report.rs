//! Per-document batch outcomes ([`BatchReport`]) and the graceful
//! degradation policy ([`DegradePolicy`]).
//!
//! The report-returning batch entry points
//! ([`crate::BatchSpanner::evaluate_batch_report`],
//! [`crate::BatchSpanner::count_batch_report`] and their
//! [`crate::SpannerServer`] counterparts) never abort on a failing document:
//! each document yields its own `Result`, a panic inside a worker is
//! contained to the document it was serving (the engine is quarantined, the
//! worker keeps pulling), and documents that tripped a *recoverable* limit
//! are retried through a bounded escalation ladder before being reported as
//! failed.

use spanners_core::SpannerError;

/// Bounded-retry escalation for documents that tripped a **recoverable**
/// limit: delta-eviction thrash ([`SpannerError::BudgetExceeded`], raised by
/// [`spanners_core::EvalLimits::max_cache_clears`]) or a *soft* deadline
/// ([`SpannerError::DeadlineExceeded`]`{ soft: true, .. }`).
///
/// Retries climb an escalation ladder, one rung per extra attempt, each rung
/// kept cumulatively (the soft deadline — already spent — is dropped on
/// retries; the hard deadline and step budget still apply):
///
/// 1. a one-off enlarged determinization-cache budget
///    (`budget_boost ×` the automaton's configured budget; lazy spanners
///    only — this is the rung that rescues eviction thrash);
/// 2. [`spanners_core::EngineMode::PerByte`] — the simplest, most
///    predictable engine loop;
/// 3. the eager automaton, when the spanner has one — no cache to thrash at
///    all.
///
/// Hard-deadline expiries, step-budget exhaustion, panics and counter
/// overflows are **not** retried: re-running them buys nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Total attempts per document, the first (non-degraded) one included.
    /// `1` disables retries entirely. Default: 3.
    pub max_attempts: u32,
    /// Multiplier applied to the lazy automaton's configured cache budget on
    /// the first retry rung. Default: 4.
    pub budget_boost: u32,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy { max_attempts: 3, budget_boost: 4 }
    }
}

impl DegradePolicy {
    /// A policy that never retries (`max_attempts == 1`): every limit error
    /// is final.
    pub fn none() -> DegradePolicy {
        DegradePolicy { max_attempts: 1, ..DegradePolicy::default() }
    }

    /// Whether a failed attempt may be retried on the next ladder rung.
    ///
    /// Deliberately narrower than [`SpannerError::is_retryable`]: that
    /// classifies what a *caller* should retry after backing off (overload,
    /// quota and breaker shedding, governor denials — see
    /// [`crate::RetryPolicy`]), while the ladder only re-attempts the two
    /// conditions a degraded *in-batch* re-evaluation can actually cure
    /// (cache-eviction thrash and soft-deadline overruns).
    pub(crate) fn is_retryable(err: &SpannerError) -> bool {
        matches!(
            err,
            SpannerError::BudgetExceeded { .. } | SpannerError::DeadlineExceeded { soft: true, .. }
        )
    }
}

/// Per-tenant accounting attached to a shared-pass batch report (see
/// [`crate::MultiSpannerServer`]): how one tenant of a multi-tenant shard
/// fared across the batch's documents.
///
/// Single-tenant batch calls leave [`BatchReport::tenants`] empty; the
/// multi-tenant runtime fills one slot per tenant sharing the pass, in shard
/// slot order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSlot {
    /// The tenant id as registered.
    pub id: String,
    /// Documents whose shared pass succeeded for this tenant.
    pub ok: usize,
    /// Documents whose shared pass failed (the tenant inherits its shard's
    /// per-document failure — never a neighbour shard's).
    pub failed: usize,
    /// Total mappings demultiplexed to this tenant across the batch
    /// (evaluation batches only; zero for counting batches).
    pub mappings: usize,
}

/// The outcome of a report-returning batch call: one `Result` per document
/// (in document order), plus batch-level counters and pool diagnostics.
///
/// `results.len()` always equals the number of documents submitted — a
/// failing document occupies its slot with an `Err` instead of aborting its
/// neighbours.
#[derive(Debug)]
pub struct BatchReport<T> {
    /// Per-document outcomes, in document order.
    pub results: Vec<Result<T, SpannerError>>,
    /// Documents that succeeded (on any attempt).
    pub ok: usize,
    /// Documents whose final attempt failed.
    pub failed: usize,
    /// Documents that succeeded only after at least one degraded retry.
    pub degraded: usize,
    /// Total retry attempts spent across the batch (a document retried twice
    /// contributes 2).
    pub retried: usize,
    /// Engines quarantined during this batch (one per contained panic that
    /// was holding an engine): dropped, never checked back in.
    pub quarantined: usize,
    /// Engines the serving pool has created over its lifetime — the
    /// capacity-signature diagnostic: in steady state this stops growing, so
    /// growth across batches means quarantines (or higher concurrency) are
    /// forcing cold engines.
    pub engines_created: usize,
    /// Overflow subset states the workers' frozen deltas interned during
    /// this batch — the **delta-pressure** signal of the generational
    /// re-freeze path: zero on a snapshot that covers the workload, and
    /// persistently large on a drifting workload the snapshot has fallen
    /// behind (frozen-path evaluation batches only; zero elsewhere).
    pub delta_states: u64,
    /// Peak bytes held by any worker's frozen delta during this batch (the
    /// byte-sided half of the delta-pressure signal).
    pub delta_bytes: usize,
    /// Per-tenant accounting for shared multi-tenant passes, in shard slot
    /// order. Empty for single-tenant batch calls.
    pub tenants: Vec<TenantSlot>,
}

impl<T> BatchReport<T> {
    /// Builds the report from per-document records, deriving the counters.
    pub(crate) fn from_records(
        records: Vec<(Result<T, SpannerError>, u32, bool)>,
        quarantined: usize,
        engines_created: usize,
    ) -> BatchReport<T> {
        let mut ok = 0;
        let mut failed = 0;
        let mut degraded = 0;
        let mut retried = 0usize;
        let mut results = Vec::with_capacity(records.len());
        for (result, retries, was_degraded) in records {
            match &result {
                Ok(_) => {
                    ok += 1;
                    if was_degraded {
                        degraded += 1;
                    }
                }
                Err(_) => failed += 1,
            }
            retried += retries as usize;
            results.push(result);
        }
        BatchReport {
            results,
            ok,
            failed,
            degraded,
            retried,
            quarantined,
            engines_created,
            delta_states: 0,
            delta_bytes: 0,
            tenants: Vec::new(),
        }
    }

    /// A one-line human-readable summary of the batch outcome — the line a
    /// serving loop logs per batch. When the report carries per-tenant slots
    /// (shared multi-tenant passes), the line appends each tenant's ok/failed
    /// counts; single-tenant reports render exactly as before.
    ///
    /// ```
    /// # use spanners_runtime::BatchReport;
    /// # let report: BatchReport<u32> = BatchReport::from_results(vec![Ok(1), Ok(2)]);
    /// assert_eq!(report.summary().to_string(), "2 docs: 2 ok, 0 failed, 0 degraded, 0 retries, 0 quarantined");
    /// ```
    pub fn summary(&self) -> BatchSummary {
        BatchSummary {
            docs: self.results.len(),
            ok: self.ok,
            failed: self.failed,
            degraded: self.degraded,
            retried: self.retried,
            quarantined: self.quarantined,
            tenants: self.tenants.iter().map(|t| (t.id.clone(), t.ok, t.failed)).collect(),
        }
    }

    /// Builds a report from bare per-document results (no retries, no
    /// quarantines) — the streaming runtime uses this to splice
    /// queue-expired tickets into a worker batch, and doctests use it to
    /// fabricate reports.
    pub fn from_results(results: Vec<Result<T, SpannerError>>) -> BatchReport<T> {
        BatchReport::from_records(results.into_iter().map(|r| (r, 0, false)).collect(), 0, 0)
    }

    /// Whether every document succeeded.
    pub fn is_fully_ok(&self) -> bool {
        self.failed == 0
    }

    /// The lowest-index failing document and its error, if any — the error
    /// the legacy abort-at-lowest-index APIs would have surfaced.
    pub fn first_error(&self) -> Option<(usize, &SpannerError)> {
        self.results.iter().enumerate().find_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Consumes the report, yielding the per-document outcomes.
    pub fn into_results(self) -> Vec<Result<T, SpannerError>> {
        self.results
    }
}

/// The one-line [`std::fmt::Display`] summary of a [`BatchReport`] (see
/// [`BatchReport::summary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    docs: usize,
    ok: usize,
    failed: usize,
    degraded: usize,
    retried: usize,
    quarantined: usize,
    /// `(tenant id, ok, failed)` per [`TenantSlot`]; empty for
    /// single-tenant reports.
    tenants: Vec<(String, usize, usize)>,
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} docs: {} ok, {} failed, {} degraded, {} retries, {} quarantined",
            self.docs, self.ok, self.failed, self.degraded, self.retried, self.quarantined
        )?;
        if !self.tenants.is_empty() {
            write!(f, "; tenants:")?;
            for (id, ok, failed) in &self.tenants {
                write!(f, " {id}={ok} ok/{failed} failed")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_derive_from_records() {
        let report: BatchReport<u32> = BatchReport::from_records(
            vec![
                (Ok(1), 0, false),
                (Ok(2), 2, true),
                (Err(SpannerError::StepBudgetExceeded { limit: 7 }), 1, false),
            ],
            1,
            3,
        );
        assert_eq!(report.ok, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.degraded, 1);
        assert_eq!(report.retried, 3);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.engines_created, 3);
        assert!(!report.is_fully_ok());
        assert_eq!(report.first_error().map(|(i, _)| i), Some(2));
        assert_eq!(
            report.summary().to_string(),
            "3 docs: 2 ok, 1 failed, 1 degraded, 3 retries, 1 quarantined"
        );
    }

    #[test]
    fn summary_appends_tenant_slots_when_present() {
        let mut report: BatchReport<u32> = BatchReport::from_results(vec![Ok(1), Ok(2), Ok(3)]);
        assert_eq!(
            report.summary().to_string(),
            "3 docs: 3 ok, 0 failed, 0 degraded, 0 retries, 0 quarantined"
        );
        report.tenants = vec![
            TenantSlot { id: "t0".into(), ok: 3, failed: 0, mappings: 7 },
            TenantSlot { id: "t1".into(), ok: 2, failed: 1, mappings: 0 },
        ];
        assert_eq!(
            report.summary().to_string(),
            "3 docs: 3 ok, 0 failed, 0 degraded, 0 retries, 0 quarantined; \
             tenants: t0=3 ok/0 failed t1=2 ok/1 failed"
        );
    }

    #[test]
    fn retryable_errors_are_exactly_thrash_and_soft_deadline() {
        assert!(DegradePolicy::is_retryable(&SpannerError::BudgetExceeded { what: "x", limit: 1 }));
        assert!(DegradePolicy::is_retryable(&SpannerError::DeadlineExceeded {
            soft: true,
            limit_ms: 1,
        }));
        assert!(!DegradePolicy::is_retryable(&SpannerError::DeadlineExceeded {
            soft: false,
            limit_ms: 1,
        }));
        assert!(!DegradePolicy::is_retryable(&SpannerError::StepBudgetExceeded { limit: 1 }));
        assert!(!DegradePolicy::is_retryable(&SpannerError::WorkerPanicked {
            doc_index: 0,
            message: "boom".into(),
        }));
    }
}
