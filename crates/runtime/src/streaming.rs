//! The long-running streaming service: bounded ingress, adaptive
//! micro-batching, backpressure, graceful drain, and generational snapshot
//! re-freezing.
//!
//! [`StreamingServer`] turns one [`CompiledSpanner`] into a service that
//! stays live across an unbounded document stream:
//!
//! * **Bounded MPSC ingress** — [`StreamingServer::submit`] blocks for space,
//!   [`StreamingServer::try_submit`] sheds load with a typed
//!   [`SpannerError::Overloaded`] rejection when the queue is full. Both
//!   return a [`Ticket`] that resolves to the document's result.
//! * **Adaptive micro-batching** — worker threads cut the queue into batches
//!   bounded by [`StreamingOptions::max_batch_docs`],
//!   [`StreamingOptions::max_batch_bytes`] and
//!   [`StreamingOptions::max_linger`], whichever trips first: full batches
//!   flush immediately, a trickle flushes after the linger.
//! * **Per-request deadlines** — a submission may carry a wall-clock budget;
//!   time spent queued counts against it. Tickets already expired at dequeue
//!   complete with [`SpannerError::DeadlineExceeded`]`{soft: false}` without
//!   burning evaluation work, and live tickets evaluate under their
//!   *remaining* budget (clamped onto the configured limits).
//! * **Tenant isolation & overload governance** —
//!   [`StreamingServer::start_governed`] arms the server with per-tenant
//!   admission quotas and circuit breakers plus a process-wide memory
//!   governor (module [`crate::admission`]);
//!   [`StreamingServer::submit_for`] names the tenant a submission belongs
//!   to. All governance rejections are typed and retryable.
//! * **Graceful shutdown** — [`StreamingServer::drain`] completes every
//!   accepted ticket before returning; [`StreamingServer::abort`] finishes
//!   in-flight batches and deterministically fails still-queued tickets with
//!   [`SpannerError::ShuttingDown`]. Dropping the server aborts. No path
//!   loses a ticket: every accepted submission resolves.
//! * **Generational re-freezing** — each batch reports how many subset
//!   states its workers' [`spanners_core::FrozenDelta`]s had to build past
//!   the shared frozen snapshot (the *delta pressure*). When pressure stays
//!   above [`RefreezePolicy::min_delta_states`] for
//!   [`RefreezePolicy::sustained_batches`] consecutive batches, the
//!   triggering worker promotes a new generation: the current snapshot is
//!   thawed **merged with the worker's delta evidence**
//!   ([`FrozenCache::thaw_merged`] — warmed skip masks carried forward),
//!   re-warmed on the triggering batch, frozen, and swapped in behind an
//!   `Arc` + generation counter. In-flight batches finish on their
//!   checkout-time generation; the old snapshot drains by refcount.
//!
//! Results are **deterministic**: enumeration output is a pure function of
//! the automaton and the document (worker deltas reset per document, marker
//! rows sort by marker set), so the stream's outputs are byte-identical to
//! the sequential batch path at any worker count — generation swaps
//! included. `tests/streaming.rs` pins this differentially.

use crate::admission::{AdmissionController, Governance};
use crate::batch::{BatchOptions, BatchPlan, WARM_SAMPLE_DOCS};
use crate::faults;
use crate::pool::{lock, EvaluatorPool};
use crate::report::DegradePolicy;
use spanners_core::{
    CompiledSpanner, DagView, Document, EvalLimits, Evaluator, FrozenCache, GovernorHandle,
    SpannerError,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When to promote a new frozen-snapshot generation (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreezePolicy {
    /// A batch whose workers interned at least this many overflow subset
    /// states past the frozen snapshot counts as *hot*. `0` makes every
    /// batch hot (useful to force promotions in tests). Default: 64.
    pub min_delta_states: u64,
    /// Consecutive hot batches required before a promotion is attempted.
    /// Default: 4.
    pub sustained_batches: u32,
}

impl Default for RefreezePolicy {
    fn default() -> RefreezePolicy {
        RefreezePolicy { min_delta_states: 64, sustained_batches: 4 }
    }
}

/// Configuration of a [`StreamingServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingOptions {
    /// Worker threads consuming the ingress queue. Default: 1 — streaming
    /// determinism holds at any count, so size this to the offered load.
    pub workers: usize,
    /// Ingress queue capacity in documents; a full queue blocks
    /// [`StreamingServer::submit`] and rejects
    /// [`StreamingServer::try_submit`] with [`SpannerError::Overloaded`].
    /// Default: 1024.
    pub queue_docs: usize,
    /// Micro-batch flush trigger: document count. Default: 32.
    pub max_batch_docs: usize,
    /// Micro-batch flush trigger: cumulative document bytes. A document
    /// larger than the cap still forms a singleton batch. Default: 1 MiB.
    pub max_batch_bytes: usize,
    /// Micro-batch flush trigger: how long a non-full batch may wait for
    /// more documents after its first one was dequeued. Default: 2 ms.
    pub max_linger: Duration,
    /// Per-document resource limits (see [`BatchOptions::limits`]).
    pub limits: EvalLimits,
    /// Degradation ladder for recoverable limit trips (see
    /// [`BatchOptions::degrade`]).
    pub degrade: DegradePolicy,
    /// Generational re-freeze policy; `None` disables re-freezing (the
    /// first warm snapshot serves forever, deltas absorbing all drift).
    pub refreeze: Option<RefreezePolicy>,
}

impl Default for StreamingOptions {
    fn default() -> StreamingOptions {
        StreamingOptions {
            workers: 1,
            queue_docs: 1024,
            max_batch_docs: 32,
            max_batch_bytes: 1 << 20,
            max_linger: Duration::from_millis(2),
            limits: EvalLimits::none(),
            degrade: DegradePolicy::default(),
            refreeze: Some(RefreezePolicy::default()),
        }
    }
}

impl StreamingOptions {
    /// Options running exactly `workers` worker threads.
    pub fn workers(workers: usize) -> StreamingOptions {
        StreamingOptions { workers, ..StreamingOptions::default() }
    }

    /// Returns the options with the given ingress queue capacity.
    pub fn with_queue_docs(mut self, queue_docs: usize) -> StreamingOptions {
        self.queue_docs = queue_docs;
        self
    }

    /// Returns the options with the given batch-size flush triggers.
    pub fn with_batch_caps(mut self, max_docs: usize, max_bytes: usize) -> StreamingOptions {
        self.max_batch_docs = max_docs;
        self.max_batch_bytes = max_bytes;
        self
    }

    /// Returns the options with the given linger bound.
    pub fn with_max_linger(mut self, max_linger: Duration) -> StreamingOptions {
        self.max_linger = max_linger;
        self
    }

    /// Returns the options with the given per-document limits.
    pub fn with_limits(mut self, limits: EvalLimits) -> StreamingOptions {
        self.limits = limits;
        self
    }

    /// Returns the options with the given degradation policy.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> StreamingOptions {
        self.degrade = degrade;
        self
    }

    /// Returns the options with the given re-freeze policy (`None` disables
    /// re-freezing).
    pub fn with_refreeze(mut self, refreeze: Option<RefreezePolicy>) -> StreamingOptions {
        self.refreeze = refreeze;
        self
    }

    /// Rejects nonsensical configurations up front (see
    /// [`BatchOptions::validate`]).
    pub fn validate(&self) -> Result<(), SpannerError> {
        if self.workers == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "StreamingOptions.workers must be at least 1",
            });
        }
        if self.workers > 256 {
            return Err(SpannerError::InvalidConfig {
                what: "StreamingOptions.workers is absurdly large (cap is 256)",
            });
        }
        if self.queue_docs == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "StreamingOptions.queue_docs must be at least 1",
            });
        }
        if self.max_batch_docs == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "StreamingOptions.max_batch_docs must be at least 1",
            });
        }
        if self.max_batch_bytes == 0 {
            return Err(SpannerError::InvalidConfig {
                what: "StreamingOptions.max_batch_bytes must be at least 1",
            });
        }
        if let Some(rf) = &self.refreeze {
            if rf.sustained_batches == 0 {
                return Err(SpannerError::InvalidConfig {
                    what: "RefreezePolicy.sustained_batches must be at least 1",
                });
            }
        }
        self.batch_options().validate()
    }

    /// The per-micro-batch options: one in-worker thread (the fan-out is
    /// across streaming workers, not inside a batch), shared limits/ladder.
    fn batch_options(&self) -> BatchOptions {
        BatchOptions { threads: 1, limits: self.limits, degrade: self.degrade }
    }
}

/// The lifecycle of one ticket's result slot.
#[derive(Debug)]
enum TicketSlot<R> {
    /// No completion landed yet.
    Pending,
    /// The result is parked, waiting to be claimed.
    Ready(Result<R, SpannerError>),
    /// The result was claimed (by [`Ticket::wait`] or a successful
    /// [`Ticket::wait_timeout`]).
    Taken,
}

/// One result slot shared between a [`Ticket`] and the worker completing it.
#[derive(Debug)]
struct TicketCell<R> {
    slot: Mutex<TicketSlot<R>>,
    done: Condvar,
}

impl<R> TicketCell<R> {
    fn new() -> TicketCell<R> {
        TicketCell { slot: Mutex::new(TicketSlot::Pending), done: Condvar::new() }
    }

    /// First completion wins; later calls (the drop backstop) are no-ops.
    fn complete(&self, result: Result<R, SpannerError>) {
        let mut slot = lock(&self.slot);
        if matches!(*slot, TicketSlot::Pending) {
            *slot = TicketSlot::Ready(result);
            self.done.notify_all();
        }
    }

    /// Claims a parked result (`None` while pending). Panics on a
    /// double-claim — the consuming [`Ticket::wait`] makes that impossible
    /// unless a caller keeps waiting on a ticket a previous
    /// [`Ticket::wait_timeout`] already resolved.
    fn claim(slot: &mut TicketSlot<R>) -> Option<Result<R, SpannerError>> {
        match std::mem::replace(slot, TicketSlot::Taken) {
            TicketSlot::Ready(result) => Some(result),
            TicketSlot::Pending => {
                *slot = TicketSlot::Pending;
                None
            }
            TicketSlot::Taken => panic!("streaming ticket result claimed twice"),
        }
    }
}

/// The caller's handle to one accepted submission. Resolves exactly once:
/// with the document's result, its per-document error, or
/// [`SpannerError::ShuttingDown`] if the server aborted first.
#[derive(Debug)]
pub struct Ticket<R> {
    seq: usize,
    cell: Arc<TicketCell<R>>,
}

impl<R> Ticket<R> {
    /// The submission's stream sequence number (0-based, in submission
    /// order) — the index the mapper receives, and the document's identity
    /// in fault plans and [`SpannerError::WorkerPanicked`] reports.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Whether the result is already available (a non-blocking probe).
    pub fn is_done(&self) -> bool {
        !matches!(*lock(&self.cell.slot), TicketSlot::Pending)
    }

    /// Blocks until the result is available and returns it.
    pub fn wait(self) -> Result<R, SpannerError> {
        let mut slot = lock(&self.cell.slot);
        loop {
            if let Some(result) = TicketCell::claim(&mut slot) {
                return result;
            }
            slot = match self.cell.done.wait(slot) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Bounded [`Ticket::wait`]: blocks up to `timeout` for the result.
    ///
    /// A timeout returns [`SpannerError::WaitTimedOut`] **without consuming
    /// the ticket** — the submission stays in flight, the server still
    /// resolves it, and the caller may wait again (or probe
    /// [`Ticket::is_done`]) at its own cadence. Any other return claims the
    /// result exactly like [`Ticket::wait`]; waiting again after that
    /// panics.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<R, SpannerError> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock(&self.cell.slot);
        loop {
            if let Some(result) = TicketCell::claim(&mut slot) {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SpannerError::WaitTimedOut {
                    waited_ms: u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
                });
            }
            slot = match self.cell.done.wait_timeout(slot, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Claims an already-parked result without blocking (`None` while the
    /// submission is still pending) — for composite waits that first probe
    /// readiness via [`Ticket::wait_done_until`].
    pub(crate) fn take_ready(&self) -> Option<Result<R, SpannerError>> {
        TicketCell::claim(&mut lock(&self.cell.slot))
    }

    /// Bounded readiness probe for composite waits: blocks until the result
    /// is available or `deadline` passes, claiming nothing.
    pub(crate) fn wait_done_until(&self, deadline: Instant) -> bool {
        let mut slot = lock(&self.cell.slot);
        loop {
            if !matches!(*slot, TicketSlot::Pending) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            slot = match self.cell.done.wait_timeout(slot, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// Completes the ticket with [`SpannerError::ShuttingDown`] on drop unless
/// some path completed it first — the "never lose a ticket" backstop: any
/// code path that abandons a queued or in-flight submission (abort, worker
/// death, unwinding) resolves the caller's [`Ticket::wait`] deterministically
/// instead of hanging it.
#[derive(Debug)]
struct CompletionGuard<R>(Arc<TicketCell<R>>);

impl<R> CompletionGuard<R> {
    fn complete(&self, result: Result<R, SpannerError>) {
        self.0.complete(result);
    }
}

impl<R> Drop for CompletionGuard<R> {
    fn drop(&mut self) {
        self.0.complete(Err(SpannerError::ShuttingDown));
    }
}

/// One accepted, not-yet-dequeued submission.
#[derive(Debug)]
struct Pending<R> {
    seq: usize,
    doc: Document,
    /// Absolute expiry, when the submission carried a deadline.
    expires: Option<Instant>,
    /// The original budget in milliseconds, for expiry diagnostics.
    deadline_ms: u64,
    /// The tenant slot the admission controller charged (when one gates
    /// this server) — fed back at dequeue, completion and abandonment.
    admit_slot: Option<u32>,
    guard: CompletionGuard<R>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Aborting,
}

#[derive(Debug)]
struct Ingress<R> {
    queue: VecDeque<Pending<R>>,
    queued_bytes: usize,
    phase: Phase,
    next_seq: usize,
}

/// One frozen-snapshot generation. Workers clone the `Arc` at batch checkout
/// time and finish the batch on it even if a newer generation swaps in
/// mid-flight; the old snapshot is freed when its last batch drops the
/// reference.
#[derive(Debug)]
struct Generation {
    id: u64,
    frozen: Option<Arc<FrozenCache>>,
}

#[derive(Debug)]
struct GenState {
    current: Arc<Generation>,
    /// `false` until the first micro-batch warms the initial snapshot.
    initialized: bool,
    /// A promotion is being built; suppresses concurrent promotions.
    promoting: bool,
    /// Consecutive hot batches under the current generation.
    hot: u32,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    promotions: AtomicU64,
    swaps_failed: AtomicU64,
    promotions_panicked: AtomicU64,
    delta_states: AtomicU64,
}

/// A point-in-time snapshot of a [`StreamingServer`]'s lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions shed with [`SpannerError::Overloaded`].
    pub rejected: u64,
    /// Tickets that expired in the queue (completed with a hard
    /// [`SpannerError::DeadlineExceeded`] at dequeue, never evaluated).
    pub expired: u64,
    /// Tickets completed with a per-document success.
    pub completed: u64,
    /// Tickets completed with a per-document error (expiries excluded).
    pub failed: u64,
    /// Micro-batches formed.
    pub batches: u64,
    /// Successful generation promotions (snapshot swaps).
    pub promotions: u64,
    /// Promotions abandoned at the swap point (fault injection).
    pub swaps_failed: u64,
    /// Promotions that panicked mid-build and were contained.
    pub promotions_panicked: u64,
    /// Cumulative overflow subset states interned past the serving
    /// snapshots — the drift measure re-freezing exists to reduce.
    pub delta_states: u64,
    /// The current generation id (1 = the initial warm snapshot).
    pub generation: u64,
    /// Engines created / quarantined by the serving pool.
    pub engines_created: usize,
    /// See [`crate::EvaluatorPool::quarantined`].
    pub engines_quarantined: usize,
}

struct Shared<R> {
    spanner: CompiledSpanner,
    #[allow(clippy::type_complexity)]
    map: Box<dyn Fn(usize, DagView<'_>) -> R + Send + Sync>,
    opts: StreamingOptions,
    pool: EvaluatorPool,
    state: Mutex<Ingress<R>>,
    work_ready: Condvar,
    space_ready: Condvar,
    gen: Mutex<GenState>,
    counters: Counters,
    /// Per-tenant quotas and circuit breakers gating `submit`.
    admission: Option<Arc<AdmissionController>>,
    /// This server's ledger handle into the process-wide memory governor.
    governor: Option<GovernorHandle>,
}

impl<R> std::fmt::Debug for Shared<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("opts", &self.opts).finish_non_exhaustive()
    }
}

fn wait<'m, T>(cv: &Condvar, guard: MutexGuard<'m, T>) -> MutexGuard<'m, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A long-running streaming spanner service (see the module docs).
///
/// ```
/// use spanners_core::Document;
/// use spanners_runtime::{StreamingOptions, StreamingServer};
/// # use spanners_core::{CompiledSpanner, EvaBuilder, ByteClass, MarkerSet, VarRegistry};
/// # let mut reg = VarRegistry::new();
/// # let x = reg.intern("x").unwrap();
/// # let mut b = EvaBuilder::new(reg);
/// # let q0 = b.add_state();
/// # let q1 = b.add_state();
/// # let q2 = b.add_state();
/// # b.set_initial(q0);
/// # b.set_final(q2);
/// # b.add_letter(q0, ByteClass::any(), q0);
/// # b.add_byte(q1, b'a', q1);
/// # b.add_letter(q2, ByteClass::any(), q2);
/// # b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
/// # b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
/// # let spanner = CompiledSpanner::from_eva(&b.build().unwrap()).unwrap();
/// let server = StreamingServer::start(spanner, StreamingOptions::workers(2), |_, dag| {
///     dag.collect_mappings().len()
/// })
/// .unwrap();
/// let tickets: Vec<_> = ["baab", "zzz", "aa"]
///     .iter()
///     .map(|t| server.submit(Document::from(*t), None).unwrap())
///     .collect();
/// let counts: Vec<usize> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
/// assert_eq!(counts, vec![3, 0, 3]);
/// let stats = server.drain();
/// assert_eq!(stats.completed, 3);
/// ```
#[derive(Debug)]
pub struct StreamingServer<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    handles: Vec<JoinHandle<()>>,
}

impl<R: Send + 'static> StreamingServer<R> {
    /// Starts the service: validates `opts`, spawns the worker threads, and
    /// begins serving. `map` runs on the worker that evaluated the document,
    /// receiving the stream sequence number and the DAG view.
    pub fn start<F>(
        spanner: CompiledSpanner,
        opts: StreamingOptions,
        map: F,
    ) -> Result<StreamingServer<R>, SpannerError>
    where
        F: Fn(usize, DagView<'_>) -> R + Send + Sync + 'static,
    {
        StreamingServer::start_governed(spanner, opts, Governance::none(), map)
    }

    /// [`StreamingServer::start`] with overload governance attached: an
    /// optional per-tenant [`AdmissionController`] (quotas + circuit
    /// breakers, enforced by [`StreamingServer::submit_for`] /
    /// [`StreamingServer::try_submit_for`]) and an optional process-wide
    /// [`spanners_core::MemoryGovernor`] (this server settles its pooled
    /// engines' bytes into the shared ledger after every micro-batch, sheds
    /// cold engine state while over budget, and denies admissions with a
    /// retryable [`SpannerError::BudgetExceeded`] while the ledger stays
    /// over).
    pub fn start_governed<F>(
        spanner: CompiledSpanner,
        opts: StreamingOptions,
        governance: Governance,
        map: F,
    ) -> Result<StreamingServer<R>, SpannerError>
    where
        F: Fn(usize, DagView<'_>) -> R + Send + Sync + 'static,
    {
        opts.validate()?;
        let shared = Arc::new(Shared {
            spanner,
            map: Box::new(map),
            opts,
            pool: EvaluatorPool::new(),
            state: Mutex::new(Ingress {
                queue: VecDeque::new(),
                queued_bytes: 0,
                phase: Phase::Running,
                next_seq: 0,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            gen: Mutex::new(GenState {
                current: Arc::new(Generation { id: 0, frozen: None }),
                initialized: false,
                promoting: false,
                hot: 0,
            }),
            counters: Counters::default(),
            admission: governance.admission,
            governor: governance.governor.map(GovernorHandle::new),
        });
        let handles = (0..opts.workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spanner-stream-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn streaming worker")
            })
            .collect();
        Ok(StreamingServer { shared, handles })
    }

    /// Submits one document, **blocking while the queue is full**, with an
    /// optional wall-clock deadline covering queue wait *and* evaluation.
    /// Fails with [`SpannerError::ShuttingDown`] once a drain/abort began.
    /// Equivalent to [`StreamingServer::submit_for`] with the anonymous
    /// (empty) tenant id.
    pub fn submit(
        &self,
        doc: Document,
        deadline: Option<Duration>,
    ) -> Result<Ticket<R>, SpannerError> {
        self.submit_for("", doc, deadline)
    }

    /// [`StreamingServer::submit`] on behalf of `tenant`: the submission
    /// first traverses the governance pipeline (global memory governor,
    /// then the tenant's circuit breaker, then its quotas — see
    /// [`crate::admission`]) and only then blocks for queue space. All
    /// governance rejections are retryable ([`SpannerError::is_retryable`])
    /// and leave nothing charged.
    pub fn submit_for(
        &self,
        tenant: &str,
        doc: Document,
        deadline: Option<Duration>,
    ) -> Result<Ticket<R>, SpannerError> {
        let admit_slot = self.pre_admit(tenant, doc.len())?;
        let mut st = lock(&self.shared.state);
        loop {
            if st.phase != Phase::Running {
                drop(st);
                self.abandon_admit(admit_slot, doc.len());
                return Err(SpannerError::ShuttingDown);
            }
            if st.queue.len() < self.shared.opts.queue_docs {
                break;
            }
            st = wait(&self.shared.space_ready, st);
        }
        Ok(self.enqueue(st, doc, deadline, admit_slot))
    }

    /// Submits one document **without blocking**: a full queue sheds the
    /// request with [`SpannerError::Overloaded`] (the document is not
    /// accepted — nothing server-side refers to it). Equivalent to
    /// [`StreamingServer::try_submit_for`] with the anonymous (empty)
    /// tenant id.
    pub fn try_submit(
        &self,
        doc: Document,
        deadline: Option<Duration>,
    ) -> Result<Ticket<R>, SpannerError> {
        self.try_submit_for("", doc, deadline)
    }

    /// [`StreamingServer::try_submit`] on behalf of `tenant` (see
    /// [`StreamingServer::submit_for`] for the governance pipeline).
    pub fn try_submit_for(
        &self,
        tenant: &str,
        doc: Document,
        deadline: Option<Duration>,
    ) -> Result<Ticket<R>, SpannerError> {
        let admit_slot = self.pre_admit(tenant, doc.len())?;
        let st = lock(&self.shared.state);
        if st.phase != Phase::Running {
            drop(st);
            self.abandon_admit(admit_slot, doc.len());
            return Err(SpannerError::ShuttingDown);
        }
        if st.queue.len() >= self.shared.opts.queue_docs {
            let queued = st.queue.len();
            drop(st);
            self.abandon_admit(admit_slot, doc.len());
            self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SpannerError::Overloaded { queued, capacity: self.shared.opts.queue_docs });
        }
        Ok(self.enqueue(st, doc, deadline, admit_slot))
    }

    /// The governance stages ahead of the ingress queue: the global memory
    /// governor's retryable denial, then the tenant's breaker and quotas.
    /// On success the admission controller (when present) has charged the
    /// tenant and the returned slot must be settled via the controller.
    fn pre_admit(&self, tenant: &str, bytes: usize) -> Result<Option<u32>, SpannerError> {
        if let Some(handle) = &self.shared.governor {
            handle.governor().admit()?;
        }
        match &self.shared.admission {
            Some(ctrl) => ctrl.admit(tenant, bytes).map(Some),
            None => Ok(None),
        }
    }

    /// Rolls back a successful [`StreamingServer::pre_admit`] whose
    /// submission was then refused by the ingress queue.
    fn abandon_admit(&self, admit_slot: Option<u32>, bytes: usize) {
        if let (Some(ctrl), Some(slot)) = (&self.shared.admission, admit_slot) {
            ctrl.abandon(slot, bytes);
        }
    }

    fn enqueue(
        &self,
        mut st: MutexGuard<'_, Ingress<R>>,
        doc: Document,
        deadline: Option<Duration>,
        admit_slot: Option<u32>,
    ) -> Ticket<R> {
        let seq = st.next_seq;
        st.next_seq += 1;
        let cell = Arc::new(TicketCell::new());
        st.queued_bytes += doc.len();
        st.queue.push_back(Pending {
            seq,
            doc,
            expires: deadline.map(|d| Instant::now() + d),
            deadline_ms: deadline.map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            admit_slot,
            guard: CompletionGuard(Arc::clone(&cell)),
        });
        drop(st);
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.work_ready.notify_one();
        Ticket { seq, cell }
    }

    /// Documents currently queued (diagnostics).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> StreamingStats {
        let c = &self.shared.counters;
        StreamingStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            promotions: c.promotions.load(Ordering::Relaxed),
            swaps_failed: c.swaps_failed.load(Ordering::Relaxed),
            promotions_panicked: c.promotions_panicked.load(Ordering::Relaxed),
            delta_states: c.delta_states.load(Ordering::Relaxed),
            generation: lock(&self.shared.gen).current.id,
            engines_created: self.shared.pool.engines_created(),
            engines_quarantined: self.shared.pool.quarantined(),
        }
    }

    /// The served spanner.
    pub fn spanner(&self) -> &CompiledSpanner {
        &self.shared.spanner
    }

    /// Stops accepting submissions **without consuming the handle**:
    /// subsequent submits fail with [`SpannerError::ShuttingDown`] and the
    /// workers finish the queue. Call [`StreamingServer::drain`] to join
    /// them. Idempotent; a no-op once any shutdown began.
    pub fn begin_drain(&self) {
        self.begin(Phase::Draining);
    }

    /// Stops accepting submissions **without consuming the handle**; the
    /// workers finish only their in-flight micro-batches. Call
    /// [`StreamingServer::abort`] to join them and fail the still-queued
    /// tickets. Idempotent; a no-op once any shutdown began.
    pub fn begin_abort(&self) {
        self.begin(Phase::Aborting);
    }

    fn begin(&self, phase: Phase) {
        {
            let mut st = lock(&self.shared.state);
            if st.phase == Phase::Running {
                st.phase = phase;
            }
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
    }

    /// Stops accepting submissions, **completes every accepted ticket**,
    /// joins the workers, and returns the final counters.
    pub fn drain(mut self) -> StreamingStats {
        self.shutdown(Phase::Draining)
    }

    /// Stops accepting submissions, finishes in-flight micro-batches, fails
    /// every still-queued ticket with [`SpannerError::ShuttingDown`], joins
    /// the workers, and returns the final counters.
    pub fn abort(mut self) -> StreamingStats {
        self.shutdown(Phase::Aborting)
    }

    fn shutdown(&mut self, phase: Phase) -> StreamingStats {
        self.begin(phase);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Aborting (or a worker that died unclean) may leave queued tickets:
        // dropping them completes each with ShuttingDown via the guard, and
        // the admission controller releases their charges without feeding
        // the breakers (being shed by the server says nothing about the
        // tenant's documents).
        let leftover: Vec<Pending<R>> = {
            let mut st = lock(&self.shared.state);
            st.queued_bytes = 0;
            st.queue.drain(..).collect()
        };
        for p in &leftover {
            self.abandon_admit(p.admit_slot, p.doc.len());
        }
        drop(leftover);
        let c = &self.shared.counters;
        StreamingStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            promotions: c.promotions.load(Ordering::Relaxed),
            swaps_failed: c.swaps_failed.load(Ordering::Relaxed),
            promotions_panicked: c.promotions_panicked.load(Ordering::Relaxed),
            delta_states: c.delta_states.load(Ordering::Relaxed),
            generation: lock(&self.shared.gen).current.id,
            engines_created: self.shared.pool.engines_created(),
            engines_quarantined: self.shared.pool.quarantined(),
        }
    }
}

impl<R: Send + 'static> Drop for StreamingServer<R> {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown(Phase::Aborting);
        }
    }
}

/// The worker loop: form a micro-batch (flush on size, bytes, or linger —
/// whichever trips first), release the queue lock, evaluate, complete
/// tickets, account delta pressure, maybe promote a generation.
fn worker_loop<R: Send + 'static>(shared: &Shared<R>) {
    loop {
        let mut batch: Vec<Pending<R>> = Vec::new();
        let mut bytes = 0usize;
        {
            let mut st = lock(&shared.state);
            // Wait for the first document (or shutdown). Aborting exits
            // even with queued work (those tickets fail via abort());
            // Draining exits only once the queue is empty.
            loop {
                match st.phase {
                    Phase::Aborting => return,
                    Phase::Draining if st.queue.is_empty() => return,
                    _ if !st.queue.is_empty() => break,
                    Phase::Running => st = wait(&shared.work_ready, st),
                    Phase::Draining => unreachable!("empty draining queue returned above"),
                }
            }
            let linger_deadline = Instant::now() + shared.opts.max_linger;
            loop {
                // Take everything available under the caps. An oversized
                // document forms a singleton batch rather than starving.
                loop {
                    if batch.len() >= shared.opts.max_batch_docs
                        || bytes >= shared.opts.max_batch_bytes
                    {
                        break;
                    }
                    let fits = match st.queue.front() {
                        Some(p) => {
                            batch.is_empty() || bytes + p.doc.len() <= shared.opts.max_batch_bytes
                        }
                        None => false,
                    };
                    if !fits {
                        break;
                    }
                    let p = st.queue.pop_front().expect("front checked above");
                    st.queued_bytes -= p.doc.len();
                    bytes += p.doc.len();
                    batch.push(p);
                }
                shared.space_ready.notify_all();
                // Flush triggers: full by docs or bytes, a blocked (too big
                // to fit) head-of-queue document, or shutdown.
                if batch.len() >= shared.opts.max_batch_docs
                    || bytes >= shared.opts.max_batch_bytes
                    || !st.queue.is_empty()
                    || st.phase != Phase::Running
                {
                    break;
                }
                let now = Instant::now();
                if now >= linger_deadline {
                    break;
                }
                let (guard, timeout) =
                    match shared.work_ready.wait_timeout(st, linger_deadline - now) {
                        Ok(pair) => pair,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                st = guard;
                if timeout.timed_out() && st.queue.is_empty() {
                    break;
                }
            }
        }
        debug_assert!(!batch.is_empty());
        process_batch(shared, batch);
    }
}

fn process_batch<R: Send + 'static>(shared: &Shared<R>, batch: Vec<Pending<R>>) {
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    // Tick the admission clock FIRST: open breakers cool down and token
    // buckets refill on *previously completed* batches, never on the
    // failures this batch is about to report — keeping the batch-clocked
    // admission sequence deterministic at any worker count.
    if let Some(ctrl) = &shared.admission {
        ctrl.note_batch();
    }
    // Deadline check at dequeue: expired tickets complete immediately with a
    // hard DeadlineExceeded, never burning evaluation work. An injected
    // dequeue stall expires every deadline-carrying ticket in the batch.
    let stalled = faults::stall_fault();
    let now = Instant::now();
    let mut seqs = Vec::with_capacity(batch.len());
    let mut docs = Vec::with_capacity(batch.len());
    let mut deadlines = Vec::with_capacity(batch.len());
    let mut slots = Vec::with_capacity(batch.len());
    let mut guards = Vec::with_capacity(batch.len());
    for p in batch {
        let Pending { seq, doc, expires, deadline_ms, admit_slot, guard } = p;
        // The document left the ingress queue: release its queued-byte
        // charge (it stays in-flight until its result lands).
        if let (Some(ctrl), Some(slot)) = (&shared.admission, admit_slot) {
            ctrl.release_queued(slot, doc.len());
        }
        match expires {
            Some(at) if stalled || now >= at => {
                if let (Some(ctrl), Some(slot)) = (&shared.admission, admit_slot) {
                    ctrl.note_result(slot, false);
                }
                guard.complete(Err(SpannerError::DeadlineExceeded {
                    soft: false,
                    limit_ms: deadline_ms,
                }));
                shared.counters.expired.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                seqs.push(seq);
                docs.push(doc);
                deadlines.push(expires.map(|at| at - now));
                slots.push(admit_slot);
                guards.push(guard);
            }
        }
    }
    if docs.is_empty() {
        return;
    }

    // Pin the generation for the whole batch: a promotion mid-batch swaps
    // the *next* checkout, never this one.
    let generation = current_generation(shared, &docs);
    let plan = BatchPlan {
        spanner: &shared.spanner,
        frozen: generation.frozen.as_deref(),
        doc_ids: Some(&seqs),
        deadlines: Some(&deadlines),
        gen_tag: generation.id,
        governor: shared.governor.as_ref(),
    };
    let mapper = |i: usize, view: DagView<'_>| (shared.map)(seqs[i], view);
    let report = plan.evaluate_report(&shared.pool, &docs, &shared.opts.batch_options(), &mapper);
    shared.counters.completed.fetch_add(report.ok as u64, Ordering::Relaxed);
    shared.counters.failed.fetch_add(report.failed as u64, Ordering::Relaxed);
    shared.counters.delta_states.fetch_add(report.delta_states, Ordering::Relaxed);
    let pressure = report.delta_states;
    for ((guard, slot), result) in guards.iter().zip(slots).zip(report.results) {
        if let (Some(ctrl), Some(slot)) = (&shared.admission, slot) {
            ctrl.note_result(slot, result.is_ok());
        }
        guard.complete(result);
    }
    drop(guards);

    // Generational re-freezing: promote once pressure stayed hot for the
    // configured number of consecutive batches under this generation.
    let Some(policy) = shared.opts.refreeze else { return };
    if generation.frozen.is_none() {
        return;
    }
    let promote_now = {
        let mut gs = lock(&shared.gen);
        if gs.current.id != generation.id {
            false // this batch ran on a drained generation; don't count it
        } else {
            if pressure >= policy.min_delta_states {
                gs.hot = gs.hot.saturating_add(1);
            } else {
                gs.hot = 0;
            }
            if gs.hot >= policy.sustained_batches && !gs.promoting {
                gs.promoting = true;
                gs.hot = 0;
                true
            } else {
                false
            }
        }
    };
    if promote_now {
        promote(shared, &generation, &docs);
    }
}

/// The generation a batch evaluates on, warming the initial snapshot from
/// the first batch's leading documents (mirrors
/// [`crate::SpannerServer::warm`]'s lazy initialization).
fn current_generation<R>(shared: &Shared<R>, docs: &[Document]) -> Arc<Generation> {
    let mut gs = lock(&shared.gen);
    if !gs.initialized {
        gs.initialized = true;
        let frozen =
            shared.spanner.freeze_warm(&docs[..docs.len().min(WARM_SAMPLE_DOCS)]).map(Arc::new);
        gs.current = Arc::new(Generation { id: 1, frozen });
    }
    Arc::clone(&gs.current)
}

/// Builds and (fault permitting) swaps in the next generation. Runs on the
/// triggering worker; panics are contained — a failed promotion leaves the
/// old generation serving.
fn promote<R>(shared: &Shared<R>, old: &Generation, sample_docs: &[Document]) {
    let built = catch_unwind(AssertUnwindSafe(|| build_next_snapshot(shared, old, sample_docs)));
    let mut gs = lock(&shared.gen);
    match built {
        Ok(Some(frozen)) => {
            if faults::swap_fault() {
                shared.counters.swaps_failed.fetch_add(1, Ordering::Relaxed);
            } else {
                let id = gs.current.id + 1;
                gs.current = Arc::new(Generation { id, frozen: Some(Arc::new(frozen)) });
                shared.counters.promotions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(None) => {}
        Err(_) => {
            shared.counters.promotions_panicked.fetch_add(1, Ordering::Relaxed);
        }
    }
    gs.promoting = false;
}

/// The promotion pipeline: thaw the old snapshot merged with one worker's
/// delta evidence (skip masks carried forward), re-warm on the triggering
/// batch's leading documents, freeze.
fn build_next_snapshot<R>(
    shared: &Shared<R>,
    old: &Generation,
    sample_docs: &[Document],
) -> Option<FrozenCache> {
    faults::promotion_fault();
    let lazy = shared.spanner.lazy_automaton()?;
    let old_frozen = old.frozen.as_deref()?;
    let merged = {
        // An engine of this generation holds the freshest delta evidence
        // (its last document's overflow states and row overrides).
        let engine = shared.pool.checkout_tagged(old.id);
        match engine.frozen_delta() {
            Some(delta) if delta.snapshot_id() == old_frozen.id() => {
                old_frozen.thaw_merged(delta, lazy)
            }
            _ => old_frozen.thaw(lazy),
        }
    };
    let mut ev = Evaluator::new();
    ev.install_lazy_cache(lazy, merged);
    for doc in sample_docs.iter().take(WARM_SAMPLE_DOCS) {
        let _ = ev.eval_lazy(lazy, doc);
    }
    ev.lazy_cache().map(|cache| cache.freeze(lazy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_handle_is_send_and_tickets_are_send() {
        fn sendable<T: Send>() {}
        sendable::<StreamingServer<usize>>();
        sendable::<Ticket<usize>>();
    }

    #[test]
    fn options_validate_rejects_nonsense() {
        assert!(StreamingOptions::default().validate().is_ok());
        let err = |o: StreamingOptions| match o.validate() {
            Err(SpannerError::InvalidConfig { what }) => what,
            other => panic!("expected InvalidConfig, got {other:?}"),
        };
        assert!(err(StreamingOptions::workers(0)).contains("workers"));
        assert!(err(StreamingOptions::workers(1000)).contains("workers"));
        assert!(err(StreamingOptions::default().with_queue_docs(0)).contains("queue_docs"));
        assert!(err(StreamingOptions::default().with_batch_caps(0, 1)).contains("max_batch_docs"));
        assert!(err(StreamingOptions::default().with_batch_caps(1, 0)).contains("max_batch_bytes"));
        let bad_refreeze = StreamingOptions::default()
            .with_refreeze(Some(RefreezePolicy { min_delta_states: 0, sustained_batches: 0 }));
        assert!(err(bad_refreeze).contains("sustained_batches"));
    }
}
