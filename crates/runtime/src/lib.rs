//! # spanners-runtime
//!
//! The parallel batch/serving runtime: evaluate one warm compiled spanner
//! over **many documents at once**, on plain `std` threads, with the
//! determinization work shared instead of repeated per worker.
//!
//! The paper's constant-delay guarantee is per-document; serving traffic is
//! about throughput *across* documents. Three pieces turn the single-document
//! engines of `spanners-core` into a serving runtime:
//!
//! * **engine pools** ([`EvaluatorPool`], [`CountCachePool`]) hand out warm
//!   per-worker [`Evaluator`]s / [`CountCache`]s with a checkout/checkin
//!   guard. Engines retain their arena capacity across documents *and*
//!   batches, preserving the zero-steady-state-allocation contract of the
//!   core crate;
//! * **shared frozen caches** — for lazy-backed spanners, the warm
//!   determinization cache is snapshotted once into an immutable
//!   `FrozenCache` (`Send + Sync`, shared via [`std::sync::Arc`]); workers
//!   step through it read-only, each with a private overflow delta, so N
//!   threads no longer re-determinize the same user-supplied spanner N
//!   times. The snapshot includes the per-state **skippable-class masks** of
//!   the skip-mask scanning engine (`EngineMode::SkipScan`, the pools'
//!   default), so every worker skips straight to the next interesting byte
//!   off the same shared tables;
//! * **batch entry points** — [`BatchSpanner`] adds
//!   `evaluate_batch`/`count_batch`/`is_match_batch` to
//!   [`CompiledSpanner`] (one-shot, transient pools), and [`SpannerServer`]
//!   is the long-lived form that keeps pools and the frozen snapshot warm
//!   across calls. Both fan out over [`std::thread::scope`] workers — no
//!   external dependencies — return results in **document order**, and fall
//!   back to a plain sequential loop for a single thread.
//!
//! Determinism: batch results (including mapping enumeration order) are a
//! pure function of the spanner, the frozen snapshot and each document —
//! never of worker scheduling — so every thread count produces byte-for-byte
//! identical output. `tests/batch_runtime.rs` in the workspace root pins
//! this against the sequential engines.
//!
//! ```
//! use spanners_core::{CompiledSpanner, Document};
//! use spanners_runtime::{BatchOptions, BatchSpanner};
//! # use spanners_core::{EvaBuilder, ByteClass, MarkerSet, VarRegistry};
//! # let mut reg = VarRegistry::new();
//! # let x = reg.intern("x").unwrap();
//! # let mut b = EvaBuilder::new(reg);
//! # let q0 = b.add_state();
//! # let q1 = b.add_state();
//! # let q2 = b.add_state();
//! # b.set_initial(q0);
//! # b.set_final(q2);
//! # b.add_letter(q0, ByteClass::any(), q0);
//! # b.add_byte(q1, b'a', q1);
//! # b.add_letter(q2, ByteClass::any(), q2);
//! # b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
//! # b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
//! # let spanner = CompiledSpanner::from_eva(&b.build().unwrap()).unwrap();
//! let docs: Vec<Document> = ["baab", "xx", "aaa"].iter().map(|t| Document::from(*t)).collect();
//! let counts = spanner.count_batch::<u64>(&docs, &BatchOptions::default()).unwrap();
//! assert_eq!(counts, vec![3, 0, 6]);
//! let nodes = spanner.evaluate_batch(&docs, &BatchOptions::default(), |_, dag| dag.num_nodes());
//! assert_eq!(nodes.len(), docs.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod batch;
pub mod faults;
pub mod multi;
pub mod pool;
pub mod report;
pub mod server;
pub mod streaming;

pub use admission::{
    AdmissionController, AdmissionStats, BreakerPhase, BreakerPolicy, Governance, RateLimit,
    RetryPolicy, TenantAdmissionStats, TenantQuota, TenantQuotas,
};
pub use batch::{BatchOptions, BatchSpanner};
pub use multi::{
    MultiBatchReport, MultiSpanner, MultiSpannerServer, MultiStreamingServer, MultiTicket,
};
pub use pool::{
    CountCachePool, EvaluatorPool, PooledCountCache, PooledEvaluator, PooledSlpEvaluator,
    SlpEvaluatorPool,
};
pub use report::{BatchReport, BatchSummary, DegradePolicy, TenantSlot};
pub use server::SpannerServer;
pub use streaming::{RefreezePolicy, StreamingOptions, StreamingServer, StreamingStats, Ticket};

#[cfg(feature = "fault-injection")]
pub use faults::{install as install_faults, FaultGuard, FaultPlan};

// Re-exported so runtime users do not need a direct spanners-core dependency
// for the common types that appear in this crate's signatures.
pub use spanners_core::{
    CompiledSpanner, CountCache, Counter, DagView, Document, EngineMode, EvalLimits, Evaluator,
    FrozenCache, GovernorStats, MemoryGovernor, Slp, SlpEvaluator, SlpRules, SlpSharedMemo,
    SpannerError,
};
