//! A self-contained, dependency-free subset of the `criterion` benchmarking
//! API, used because this workspace builds in offline environments where the
//! real crates-io `criterion` cannot be fetched.
//!
//! It implements the surface the `spanners-bench` targets rely on —
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time` / `throughput`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` — with a real
//! wall-clock harness: each benchmark is warmed up, then sampled, and the
//! per-iteration mean plus throughput is printed in a criterion-like format.
//!
//! Swapping the workspace back to the real criterion is a one-line change in
//! `crates/bench/Cargo.toml`; no bench source needs to change.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark: how much work one iteration does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many bytes (reported in decimal multiples).
    BytesDecimal(u64),
    /// Iteration produces/consumes this many items.
    Elements(u64),
}

/// Identifier of a single benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter, for groups benchmarking a single function.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` the configured number of times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver. [`Criterion::default`] reads no configuration; all
/// tuning happens per group.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function(BenchmarkId::from("run"), f);
        group.finish();
        self
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, passing it only a [`Bencher`].
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let report = self.run(&mut f);
        self.print(&id, report);
        self
    }

    /// Benchmarks `f`, passing it a [`Bencher`] and `input`.
    pub fn bench_with_input<I, D: Into<BenchmarkId>, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let report = self.run(&mut |b: &mut Bencher| f(b, input));
        self.print(&id, report);
        self
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}

    /// Runs warm-up, picks an iteration count targeting
    /// `measurement_time / sample_size` per sample, and returns the best
    /// (minimum) per-iteration time across samples.
    fn run<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> Duration {
        // Warm-up: run single iterations until the warm-up budget is spent,
        // estimating the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut per_iter = Duration::MAX;
        loop {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Choose iterations per sample so one sample is ~measurement/sample_size.
        let sample_budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = (sample_budget / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            let per = b.elapsed / iters.max(1) as u32;
            best = best.min(per);
        }
        best
    }

    fn print(&self, id: &BenchmarkId, per_iter: Duration) {
        let time = fmt_duration(per_iter);
        match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                let rate = n as f64 / per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
                println!("  {:<44} {:>12}/iter  {:>14}/s", id.id, time, fmt_bytes(rate));
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter.as_secs_f64().max(f64::MIN_POSITIVE);
                println!("  {:<44} {:>12}/iter  {:>11.3e} elem/s", id.id, time, rate);
            }
            None => println!("  {:<44} {:>12}/iter", id.id, time),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Byte throughput is always reported in decimal MB/s (with enough precision
/// at the low end), so throughput numbers for the E1/E9 experiments can be
/// compared across runs and read straight out of CI logs without unit
/// juggling.
fn fmt_bytes(rate: f64) -> String {
    let mb = rate / 1e6;
    if mb >= 100.0 {
        format!("{mb:.1} MB")
    } else if mb >= 0.01 {
        format!("{mb:.2} MB")
    } else {
        format!("{mb:.4} MB")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| black_box(21u64 * 2));
        assert!(b.elapsed >= Duration::ZERO); // ran without panicking
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Bytes(8));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 8), &[1u64; 8].as_slice(), |b, xs| {
            ran = true;
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn sampling_respects_measurement_budget_for_cheap_routines() {
        // Regression test: the warm-up estimator must track the *observed*
        // per-iteration cost. A bad estimate (e.g. 1 ns) once made the sample
        // loop run hundreds of millions of iterations for sub-µs routines.
        let start = Instant::now();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_budget");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(5));
        group.bench_function(BenchmarkId::from("cheap"), |b| b.iter(|| black_box(1u64 + 1)));
        group.finish();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cheap benchmark blew through its measurement budget: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn byte_throughput_is_reported_in_decimal_mb() {
        assert_eq!(fmt_bytes(52_428_800.0), "52.43 MB");
        assert_eq!(fmt_bytes(1.23e9), "1230.0 MB");
        assert_eq!(fmt_bytes(123_456.0), "0.12 MB");
        assert_eq!(fmt_bytes(500.0), "0.0005 MB");
    }
}
