//! Translations between automaton models (Theorem 3.1, Propositions 4.1 and 4.3).
//!
//! * [`va_to_eva`] — classical VA → extended VA by collapsing *variable paths*
//!   (sequences of variable transitions using pairwise distinct markers) into a
//!   single extended transition. Preserves sequentiality and functionality
//!   (Theorem 3.1); may blow up by a factor `2^ℓ` for sequential VA (Proposition
//!   4.2, Figure 7), but stays polynomial for functional VA (Proposition 4.3,
//!   Lemma B.1).
//! * [`eva_to_va`] — extended VA → classical VA by expanding each extended
//!   transition into a chain of single-marker transitions (Theorem 3.1).
//! * [`sequentialize`] — arbitrary VA → equivalent sequential VA by annotating
//!   states with the status of every variable (the `3^ℓ` construction inside
//!   Proposition 4.1).
//! * [`compile_va`] — the full pipeline VA → deterministic sequential eVA →
//!   [`DetSeva`], combining the steps above with the subset construction of
//!   [`crate::determinize`].

use crate::determinize::{determinize, trim};
use crate::va::{Va, VaBuilder, VaLabel};
use spanners_core::eva::StateId;
use spanners_core::markerset::VariableStatus;
use spanners_core::{DetSeva, Eva, EvaBuilder, Marker, MarkerSet, SpannerError};
use std::collections::HashMap;

/// Resource limits for the potentially-exponential constructions.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Maximum number of states any intermediate or final automaton may have.
    pub max_states: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        // Generous default: the constructions are exponential in the worst case
        // but the spanners used in practice stay far below this.
        CompileOptions { max_states: 1 << 20 }
    }
}

impl CompileOptions {
    /// Options with a caller-chosen state budget.
    pub fn with_max_states(max_states: usize) -> Self {
        CompileOptions { max_states }
    }
}

/// Converts a classical VA into an equivalent extended VA (Theorem 3.1).
///
/// For every pair of states `(p, q)` connected by a *variable path* — a sequence
/// of variable transitions whose markers are pairwise distinct — the result has
/// an extended transition labelled with the set of markers on the path. Letter
/// transitions are copied unchanged.
///
/// The construction preserves sequentiality and functionality. Its output can
/// have `2^ℓ` extended transitions in the worst case (Proposition 4.2); for
/// functional VA at most one extended transition is created per state pair
/// (Lemma B.1), so the output has at most `m + n²` transitions (Proposition 4.3).
pub fn va_to_eva(va: &Va) -> Result<Eva, SpannerError> {
    let mut builder = EvaBuilder::new(va.registry().clone());
    let states = builder.add_states(va.num_states());
    builder.set_initial(states[va.initial()]);
    for q in va.final_states() {
        builder.set_final(states[q]);
    }
    // Letter transitions are copied.
    for (q, t) in va.all_transitions() {
        if let VaLabel::Letter(c) = &t.label {
            builder.add_letter(states[q], *c, states[t.target]);
        }
    }
    // Variable-path closure from every state.
    for p in 0..va.num_states() {
        // DFS over variable transitions with pairwise distinct markers.
        let mut stack: Vec<(StateId, MarkerSet)> = vec![(p, MarkerSet::new())];
        let mut seen: Vec<(StateId, MarkerSet)> = Vec::new();
        while let Some((q, used)) = stack.pop() {
            for t in va.transitions(q) {
                if let VaLabel::Variable(m) = &t.label {
                    if used.contains(*m) {
                        continue; // markers on a variable path must be distinct
                    }
                    let next = used.with(*m);
                    let entry = (t.target, next);
                    if !seen.contains(&entry) {
                        seen.push(entry);
                        builder.add_var(states[p], next, states[t.target])?;
                        stack.push(entry);
                    }
                }
            }
        }
    }
    builder.build()
}

/// Converts an extended VA into an equivalent classical VA (Theorem 3.1).
///
/// Each extended transition `(p, S, q)` with `|S| > 1` becomes a chain of fresh
/// intermediate states connected by single-marker transitions. Markers are
/// emitted in a canonical order — all opens (by variable index) before all
/// closes (by variable index) — which keeps every expanded path valid whenever
/// the original transition was used validly.
pub fn eva_to_va(eva: &Eva) -> Result<Va, SpannerError> {
    let mut builder = VaBuilder::new(eva.registry().clone());
    let states = builder.add_states(eva.num_states());
    builder.set_initial(states[eva.initial()]);
    for (q, &state) in states.iter().enumerate() {
        if eva.is_final(q) {
            builder.set_final(state);
        }
    }
    for (q, t) in eva.all_letter_transitions() {
        builder.add_letter(states[q], t.class, states[t.target]);
    }
    for (q, t) in eva.all_var_transitions() {
        // Canonical marker order: opens before closes, each by variable index.
        let mut markers: Vec<Marker> = t.markers.iter().collect();
        markers.sort_by_key(|m| match m {
            Marker::Open(v) => (0, v.index()),
            Marker::Close(v) => (1, v.index()),
        });
        let mut cur = states[q];
        for (i, m) in markers.iter().enumerate() {
            let next = if i + 1 == markers.len() { states[t.target] } else { builder.add_state() };
            builder.add_marker(cur, *m, next);
            cur = next;
        }
    }
    builder.build()
}

/// Converts an arbitrary VA into an equivalent **sequential** VA by annotating
/// states with the status (unopened / open / closed) of every variable —
/// the `n · 3^ℓ` construction used inside Proposition 4.1.
///
/// Transitions that would open or close a variable incorrectly are dropped, and
/// only annotated states whose variables are all closed may be final, so every
/// accepting run of the result is valid. The defined mappings are unchanged
/// because invalid runs never contribute mappings.
pub fn sequentialize(va: &Va, opts: CompileOptions) -> Result<Va, SpannerError> {
    let mut builder = VaBuilder::new(va.registry().clone());
    let mut index: HashMap<(StateId, VariableStatus), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, VariableStatus)> = Vec::new();

    let start = (va.initial(), VariableStatus::new());
    let s0 = builder.add_state();
    builder.set_initial(s0);
    index.insert(start, s0);
    worklist.push(start);

    while let Some((q, status)) = worklist.pop() {
        let from = index[&(q, status)];
        if va.is_final(q) && status.is_complete() {
            builder.set_final(from);
        }
        for t in va.transitions(q) {
            let (label, next_status) = match &t.label {
                VaLabel::Letter(c) => (VaLabel::Letter(*c), status),
                VaLabel::Variable(m) => match status.apply(MarkerSet::singleton(*m)) {
                    Some(next) => (VaLabel::Variable(*m), next),
                    None => continue, // would be invalid: prune
                },
            };
            let key = (t.target, next_status);
            let to = match index.get(&key) {
                Some(&id) => id,
                None => {
                    if builder.num_states() >= opts.max_states {
                        return Err(SpannerError::BudgetExceeded {
                            what: "sequentialization (Proposition 4.1)",
                            limit: opts.max_states,
                        });
                    }
                    let id = builder.add_state();
                    index.insert(key, id);
                    worklist.push(key);
                    id
                }
            };
            match label {
                VaLabel::Letter(c) => builder.add_letter(from, c, to),
                VaLabel::Variable(m) => builder.add_marker(from, m, to),
            }
        }
    }
    builder.build()
}

/// Compiles an arbitrary classical VA into a [`DetSeva`] ready for the
/// constant-delay algorithm, following Section 4 of the paper:
///
/// 1. if the VA is not already sequential, apply [`sequentialize`]
///    (`n·3^ℓ` states, Proposition 4.1);
/// 2. translate to an extended VA with [`va_to_eva`] (Theorem 3.1);
/// 3. determinize with the subset construction (Proposition 3.2);
/// 4. trim unreachable/dead states and compile the dense representation.
///
/// For functional VA this specialises to the `2^n`-state bound of
/// Proposition 4.3; for general VA it realises the `2^{n·3^ℓ}` bound of
/// Proposition 4.1.
pub fn compile_va(va: &Va, opts: CompileOptions) -> Result<DetSeva, SpannerError> {
    let sequential = if va.is_sequential() { va.clone() } else { sequentialize(va, opts)? };
    let eva = va_to_eva(&sequential)?;
    let det = determinize(&eva, opts.max_states)?;
    let trimmed = trim(&det)?;
    DetSeva::compile_trusted(&trimmed)
}

/// Compiles an extended VA (not necessarily deterministic) into a [`DetSeva`]:
/// determinize (Proposition 3.2), trim, and build the dense representation.
/// The input must be sequential; this is checked unless `trusted` is set.
pub fn compile_eva(
    eva: &Eva,
    opts: CompileOptions,
    trusted: bool,
) -> Result<DetSeva, SpannerError> {
    if !trusted {
        eva.check_sequential()?;
    }
    let det = determinize(eva, opts.max_states)?;
    let trimmed = trim(&det)?;
    DetSeva::compile_trusted(&trimmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{dedup_mappings, ByteClass, Document, VarRegistry};

    /// Figure 2's functional VA (same fixture as in `va::tests`).
    fn figure2() -> Va {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let y = reg.intern("y").unwrap();
        let mut b = VaBuilder::new(reg);
        let q = b.add_states(6);
        b.set_initial(q[0]);
        b.set_final(q[5]);
        b.add_open(q[0], x, q[1]);
        b.add_open(q[1], y, q[3]);
        b.add_open(q[0], y, q[2]);
        b.add_open(q[2], x, q[3]);
        b.add_byte(q[3], b'a', q[3]);
        b.add_close(q[3], x, q[4]);
        b.add_close(q[4], y, q[5]);
        b.build().unwrap()
    }

    /// The Proposition 4.2 family (Figure 7): a sequential VA with 2ℓ variables
    /// whose smallest equivalent eVA needs 2^ℓ extended transitions.
    fn prop42_family(ell: usize) -> Va {
        let mut reg = VarRegistry::new();
        let xs: Vec<_> = (0..ell).map(|i| reg.intern(&format!("x{i}")).unwrap()).collect();
        let ys: Vec<_> = (0..ell).map(|i| reg.intern(&format!("y{i}")).unwrap()).collect();
        let mut b = VaBuilder::new(reg);
        // Chain of blocks: at block i choose to open+close either x_i or y_i.
        let start = b.add_state();
        b.set_initial(start);
        let mut cur = start;
        for i in 0..ell {
            let next = b.add_state();
            // open/close x_i
            let mid_x = b.add_state();
            b.add_open(cur, xs[i], mid_x);
            b.add_close(mid_x, xs[i], next);
            // open/close y_i
            let mid_y = b.add_state();
            b.add_open(cur, ys[i], mid_y);
            b.add_close(mid_y, ys[i], next);
            cur = next;
        }
        let fin = b.add_state();
        b.add_byte(cur, b'a', fin);
        b.set_final(fin);
        b.build().unwrap()
    }

    #[test]
    fn figure2_to_eva_preserves_semantics() {
        let va = figure2();
        let eva = va_to_eva(&va).unwrap();
        assert!(eva.is_sequential());
        assert!(eva.is_functional());
        for text in ["", "a", "aa", "aaa", "b"] {
            let doc = Document::from(text);
            assert_eq!(eva.eval_naive(&doc), va.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn figure2_round_trip_through_va() {
        let va = figure2();
        let eva = va_to_eva(&va).unwrap();
        let back = eva_to_va(&eva).unwrap();
        assert!(back.is_sequential());
        for text in ["", "a", "aa"] {
            let doc = Document::from(text);
            assert_eq!(back.eval_naive(&doc), va.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn prop42_blowup_in_extended_transitions() {
        // Proposition 4.2 / Figures 7–9: the eVA equivalent to the family has at
        // least 2^ℓ extended transitions between the initial block and the last.
        for ell in 1..=6 {
            let va = prop42_family(ell);
            assert!(va.is_sequential());
            // The family is sequential but *not* functional: every accepting run
            // assigns exactly one of x_i / y_i per block, never all variables.
            assert!(!va.is_functional());
            assert_eq!(va.num_states(), 3 * ell + 2);
            assert_eq!(va.num_transitions(), 4 * ell + 1);
            let eva = va_to_eva(&va).unwrap();
            // Count extended transitions from the initial state to the last
            // chain state (the ones carrying a complete choice of x_i/y_i).
            let full: usize =
                eva.all_var_transitions().filter(|(_, t)| t.markers.len() == 2 * ell).count();
            assert_eq!(full, 1 << ell, "ℓ = {ell}");
        }
    }

    #[test]
    fn prop42_semantics_preserved() {
        let va = prop42_family(2);
        let eva = va_to_eva(&va).unwrap();
        let doc = Document::from("a");
        let mut expected = va.eval_naive(&doc);
        dedup_mappings(&mut expected);
        assert_eq!(expected.len(), 4); // choose x/y at each of the 2 blocks
        assert_eq!(eva.eval_naive(&doc), expected);
    }

    #[test]
    fn functional_va_eva_transition_bound() {
        // Proposition 4.3 / Lemma B.1: for functional VA the translation adds at
        // most one extended transition per (ordered) state pair, i.e. ≤ n².
        let va = figure2();
        let eva = va_to_eva(&va).unwrap();
        let n = va.num_states();
        let m = va.num_transitions();
        assert!(eva.num_transitions() <= m + n * n);
    }

    #[test]
    fn sequentialize_prunes_invalid_runs() {
        // A VA that can close x without opening it on one branch.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        // valid branch: open, a, close
        b.add_open(q0, x, q1);
        b.add_byte(q1, b'a', q1);
        b.add_close(q1, x, q2);
        // invalid branch: close x immediately
        b.add_close(q0, x, q2);
        // branch leaving x open
        b.add_open(q0, x, q2);
        let va = b.build().unwrap();
        assert!(!va.is_sequential());
        let seq = sequentialize(&va, CompileOptions::default()).unwrap();
        assert!(seq.is_sequential());
        for text in ["", "a", "aa"] {
            let doc = Document::from(text);
            assert_eq!(seq.eval_naive(&doc), va.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn sequentialize_budget() {
        let va = prop42_family(6);
        let err = sequentialize(&va, CompileOptions::with_max_states(4)).unwrap_err();
        assert!(matches!(err, SpannerError::BudgetExceeded { .. }));
    }

    #[test]
    fn compile_va_end_to_end_figure2() {
        let va = figure2();
        let det = compile_va(&va, CompileOptions::default()).unwrap();
        for text in ["", "a", "aa", "aaa"] {
            let doc = Document::from(text);
            let dag = spanners_core::EnumerationDag::build(&det, &doc);
            let mut got = dag.collect_mappings();
            dedup_mappings(&mut got);
            assert_eq!(got, va.eval_naive(&doc), "on {text:?}");
            // and the constant-delay enumeration had no duplicates to begin with
            assert_eq!(got.len(), dag.collect_mappings().len());
        }
    }

    #[test]
    fn compile_va_non_sequential_input() {
        // The sequentialization step makes the pipeline work on arbitrary VA.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = VaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_open(q0, x, q1);
        b.add_letter(q1, ByteClass::any(), q1);
        b.add_close(q1, x, q2);
        b.add_open(q0, x, q2); // leaves x open: invalid, must be pruned
        let va = b.build().unwrap();
        assert!(!va.is_sequential());
        let det = compile_va(&va, CompileOptions::default()).unwrap();
        let doc = Document::from("abc");
        let dag = spanners_core::EnumerationDag::build(&det, &doc);
        let mut got = dag.collect_mappings();
        dedup_mappings(&mut got);
        assert_eq!(got, va.eval_naive(&doc));
        // spans [i, j⟩ with i < j … x must span a non-empty prefix? Let's just
        // check the count against the naive evaluation (already asserted equal)
        // and that it is non-zero.
        assert!(!got.is_empty());
    }

    #[test]
    fn compile_eva_checks_sequentiality() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = spanners_core::EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let eva = b.build().unwrap();
        assert!(compile_eva(&eva, CompileOptions::default(), false).is_err());
    }

    #[test]
    fn eva_to_va_expands_marker_sets_in_valid_order() {
        // An eVA transition {x⊢, ⊣x} (empty capture) must expand to x⊢ then ⊣x,
        // never the other way around.
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = spanners_core::EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        b.add_byte(q1, b'a', q2);
        let eva = b.build().unwrap();
        let va = eva_to_va(&eva).unwrap();
        assert!(va.is_sequential());
        let out = va.eval_naive(&Document::from("a"));
        assert_eq!(out.len(), 1);
        assert_eq!(out, eva.eval_naive(&Document::from("a")));
    }
}
