//! Algebraic constructions on extended VA (Proposition 4.4 and Lemma B.2):
//! join, union, deterministic union and projection.
//!
//! These are the automaton-level counterparts of the spanner algebra
//! `{π, ∪, ⋈}`. Together with determinization they realise Propositions 4.5
//! and 4.6 (compiling whole algebra expressions into a single deterministic
//! sequential eVA); the expression-level driver lives in `spanners-algebra`.

use crate::determinize::trim;
use spanners_core::byteclass::ByteClass;
use spanners_core::eva::StateId;
use spanners_core::markerset::VarSet;
use spanners_core::{Eva, EvaBuilder, Marker, MarkerSet, SpannerError, VarId, VarRegistry};
use std::collections::HashMap;

/// Remaps the variables of a marker set through `map` (indexed by the old
/// variable id, yielding the new one).
pub fn remap_markers(markers: MarkerSet, map: &[VarId]) -> MarkerSet {
    let mut out = MarkerSet::new();
    for m in markers.iter() {
        let v = map[m.variable().index()];
        out.insert(match m {
            Marker::Open(_) => Marker::Open(v),
            Marker::Close(_) => Marker::Close(v),
        });
    }
    out
}

/// Returns an automaton equivalent to `eva` but whose variables live in
/// `registry`, remapping by variable *name*. Shared names map to shared ids.
pub fn rebase_registry(eva: &Eva, registry: &mut VarRegistry) -> Result<Eva, SpannerError> {
    let map = registry.merge(eva.registry())?;
    let mut b = EvaBuilder::new(registry.clone());
    let states = b.add_states(eva.num_states());
    b.set_initial(states[eva.initial()]);
    for q in 0..eva.num_states() {
        if eva.is_final(q) {
            b.set_final(states[q]);
        }
        for t in eva.letter_transitions(q) {
            b.add_letter(states[q], t.class, states[t.target]);
        }
        for t in eva.var_transitions(q) {
            b.add_var(states[q], remap_markers(t.markers, &map), states[t.target])?;
        }
    }
    b.build()
}

/// The join `A1 ⋈ A2` of two **functional** eVA (Proposition 4.4).
///
/// Variables are matched by name: variables present in both automata are
/// *shared* and must be opened/closed at the same positions by both operands;
/// other variables are private. The result is functional over the union of the
/// variables and has at most `|Q1| × |Q2|` states; it is trimmed before being
/// returned so product states that cannot reach a joint final state never leak
/// into downstream determinization budgets.
pub fn join(a1: &Eva, a2: &Eva) -> Result<Eva, SpannerError> {
    a1.check_functional()?;
    a2.check_functional()?;

    // Merge the registries (by name) and rebase both automata onto the result.
    let mut registry = a1.registry().clone();
    let map2 = registry.merge(a2.registry())?;
    let map1: Vec<VarId> = a1.registry().ids().collect(); // identity
    let vars1: VarSet = a1.variables();
    let vars2: VarSet = a2.variables().iter().map(|v| map2[v.index()]).collect();
    let shared = vars1.intersection(&vars2);
    let shared_markers: MarkerSet =
        shared.iter().flat_map(|v| [Marker::Open(v), Marker::Close(v)]).collect();

    let mut b = EvaBuilder::new(registry);
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, StateId)> = Vec::new();
    let start = (a1.initial(), a2.initial());
    let s0 = b.add_state();
    b.set_initial(s0);
    index.insert(start, s0);
    worklist.push(start);

    while let Some((p1, p2)) = worklist.pop() {
        let from = index[&(p1, p2)];
        if a1.is_final(p1) && a2.is_final(p2) {
            b.set_final(from);
        }
        let intern = |b: &mut EvaBuilder,
                      index: &mut HashMap<(StateId, StateId), StateId>,
                      worklist: &mut Vec<(StateId, StateId)>,
                      key: (StateId, StateId)|
         -> StateId {
            *index.entry(key).or_insert_with(|| {
                worklist.push(key);
                b.add_state()
            })
        };

        // Letter transitions: both automata read the same byte.
        for t1 in a1.letter_transitions(p1) {
            for t2 in a2.letter_transitions(p2) {
                let both = t1.class.intersection(&t2.class);
                if !both.is_empty() {
                    let to = intern(&mut b, &mut index, &mut worklist, (t1.target, t2.target));
                    b.add_letter(from, both, to);
                }
            }
        }
        // Variable transitions of A1 alone (no shared markers involved).
        for t1 in a1.var_transitions(p1) {
            let m1 = remap_markers(t1.markers, &map1);
            if m1.is_disjoint(&shared_markers) {
                let to = intern(&mut b, &mut index, &mut worklist, (t1.target, p2));
                b.add_var(from, m1, to)?;
            }
        }
        // Variable transitions of A2 alone.
        for t2 in a2.var_transitions(p2) {
            let m2 = remap_markers(t2.markers, &map2);
            if m2.is_disjoint(&shared_markers) {
                let to = intern(&mut b, &mut index, &mut worklist, (p1, t2.target));
                b.add_var(from, m2, to)?;
            }
        }
        // Simultaneous variable transitions agreeing on the shared markers.
        for t1 in a1.var_transitions(p1) {
            let m1 = remap_markers(t1.markers, &map1);
            for t2 in a2.var_transitions(p2) {
                let m2 = remap_markers(t2.markers, &map2);
                if m1.intersection(&shared_markers) == m2.intersection(&shared_markers) {
                    let to = intern(&mut b, &mut index, &mut worklist, (t1.target, t2.target));
                    b.add_var(from, m1.union(&m2), to)?;
                }
            }
        }
    }
    trim(&b.build()?)
}

/// The union `A1 ∪ A2` of two eVA over merged variables (Proposition 4.4).
///
/// Linear-size construction: disjoint copies of both automata plus a fresh
/// initial state that duplicates the outgoing transitions of both original
/// initial states (avoiding ε-transitions, which the eVA model does not have).
/// Does **not** preserve determinism — see [`union_deterministic`] for the
/// quadratic construction of Lemma B.2 that does. The result is trimmed
/// before being returned.
pub fn union(a1: &Eva, a2: &Eva) -> Result<Eva, SpannerError> {
    let mut registry = a1.registry().clone();
    let map2 = registry.merge(a2.registry())?;
    let mut b = EvaBuilder::new(registry);

    let s1 = b.add_states(a1.num_states());
    let s2 = b.add_states(a2.num_states());
    let start = b.add_state();
    b.set_initial(start);

    let copy = |b: &mut EvaBuilder,
                a: &Eva,
                states: &[StateId],
                map: &[VarId]|
     -> Result<(), SpannerError> {
        for q in 0..a.num_states() {
            if a.is_final(q) {
                b.set_final(states[q]);
            }
            for t in a.letter_transitions(q) {
                b.add_letter(states[q], t.class, states[t.target]);
            }
            for t in a.var_transitions(q) {
                b.add_var(states[q], remap_markers(t.markers, map), states[t.target])?;
            }
        }
        Ok(())
    };
    let map1: Vec<VarId> = a1.registry().ids().collect();
    copy(&mut b, a1, &s1, &map1)?;
    copy(&mut b, a2, &s2, &map2)?;

    // The fresh initial state mirrors both initial states.
    for (a, states, map) in [(a1, &s1, &map1), (a2, &s2, &map2)] {
        let init = a.initial();
        if a.is_final(init) {
            b.set_final(start);
        }
        for t in a.letter_transitions(init) {
            b.add_letter(start, t.class, states[t.target]);
        }
        for t in a.var_transitions(init) {
            b.add_var(start, remap_markers(t.markers, map), states[t.target])?;
        }
    }
    trim(&b.build()?)
}

/// The deterministic union of two deterministic eVA (Lemma B.2).
///
/// Runs both automata in parallel and branches off into a single automaton the
/// first time only one of them can execute the next transition. The result is
/// deterministic whenever both inputs are, and has `O(|Q1| × |Q2| + |Q1| + |Q2|)`
/// states before trimming (unreachable solo/paired states are removed; trimming
/// cannot introduce nondeterminism). Both automata should use the same variable
/// names for shared variables (they are merged by name).
pub fn union_deterministic(a1: &Eva, a2: &Eva) -> Result<Eva, SpannerError> {
    let mut registry = a1.registry().clone();
    let map2 = registry.merge(a2.registry())?;
    let map1: Vec<VarId> = a1.registry().ids().collect();
    let mut b = EvaBuilder::new(registry);

    // Solo copies.
    let s1 = b.add_states(a1.num_states());
    let s2 = b.add_states(a2.num_states());
    for (a, states, map) in [(a1, &s1, &map1), (a2, &s2, &map2)] {
        for q in 0..a.num_states() {
            if a.is_final(q) {
                b.set_final(states[q]);
            }
            for t in a.letter_transitions(q) {
                b.add_letter(states[q], t.class, states[t.target]);
            }
            for t in a.var_transitions(q) {
                b.add_var(states[q], remap_markers(t.markers, map), states[t.target])?;
            }
        }
    }

    // Paired states, created on demand.
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, StateId)> = Vec::new();
    let start_key = (a1.initial(), a2.initial());
    let start = b.add_state();
    b.set_initial(start);
    index.insert(start_key, start);
    worklist.push(start_key);

    while let Some((p1, p2)) = worklist.pop() {
        let from = index[&(p1, p2)];
        if a1.is_final(p1) || a2.is_final(p2) {
            b.set_final(from);
        }
        let intern = |b: &mut EvaBuilder,
                      index: &mut HashMap<(StateId, StateId), StateId>,
                      worklist: &mut Vec<(StateId, StateId)>,
                      key: (StateId, StateId)|
         -> StateId {
            *index.entry(key).or_insert_with(|| {
                worklist.push(key);
                b.add_state()
            })
        };

        // Letter transitions.
        let mut covered_by_a2 = ByteClass::empty();
        for t2 in a2.letter_transitions(p2) {
            covered_by_a2 = covered_by_a2.union(&t2.class);
        }
        let mut covered_by_a1 = ByteClass::empty();
        for t1 in a1.letter_transitions(p1) {
            covered_by_a1 = covered_by_a1.union(&t1.class);
        }
        for t1 in a1.letter_transitions(p1) {
            // Bytes both can read: stay paired.
            for t2 in a2.letter_transitions(p2) {
                let both = t1.class.intersection(&t2.class);
                if !both.is_empty() {
                    let to = intern(&mut b, &mut index, &mut worklist, (t1.target, t2.target));
                    b.add_letter(from, both, to);
                }
            }
            // Bytes only A1 can read: branch into the solo copy of A1.
            let only1 = t1.class.difference(&covered_by_a2);
            if !only1.is_empty() {
                b.add_letter(from, only1, s1[t1.target]);
            }
        }
        for t2 in a2.letter_transitions(p2) {
            let only2 = t2.class.difference(&covered_by_a1);
            if !only2.is_empty() {
                b.add_letter(from, only2, s2[t2.target]);
            }
        }

        // Variable transitions: matched by exact (remapped) marker set.
        let m1: Vec<(MarkerSet, StateId)> = a1
            .var_transitions(p1)
            .iter()
            .map(|t| (remap_markers(t.markers, &map1), t.target))
            .collect();
        let m2: Vec<(MarkerSet, StateId)> = a2
            .var_transitions(p2)
            .iter()
            .map(|t| (remap_markers(t.markers, &map2), t.target))
            .collect();
        for &(s, t1) in &m1 {
            match m2.iter().find(|(s2, _)| *s2 == s) {
                Some(&(_, t2)) => {
                    let to = intern(&mut b, &mut index, &mut worklist, (t1, t2));
                    b.add_var(from, s, to)?;
                }
                None => b.add_var(from, s, s1[t1])?,
            }
        }
        for &(s, t2) in &m2 {
            if !m1.iter().any(|(s1m, _)| *s1m == s) {
                b.add_var(from, s, s2[t2])?;
            }
        }
    }
    trim(&b.build()?)
}

/// The projection `π_Y(A)` of a **functional** eVA onto the variables `keep`
/// (given by name), following Proposition 4.4.
///
/// Markers of projected-away variables are removed from every transition label.
/// Transitions whose label becomes empty act like ε-transitions; they are
/// eliminated by composing them with the following letter transition (and with
/// final-state membership), which is sound because variable transitions are
/// never consecutive in a run of an eVA. The result is trimmed before being
/// returned (ε-elimination routinely strands states).
pub fn project(eva: &Eva, keep: &[&str]) -> Result<Eva, SpannerError> {
    eva.check_functional()?;
    // Build the projected registry (only the kept variables, in their original order).
    let mut new_registry = VarRegistry::new();
    let mut keep_set = VarSet::new();
    for (id, name) in eva.registry().iter() {
        if keep.contains(&name) {
            new_registry.intern(name)?;
            keep_set.insert(id);
        }
    }
    let old_to_new: Vec<VarId> = eva
        .registry()
        .iter()
        .map(|(_, name)| new_registry.get(name).unwrap_or(VarId::new(0).expect("id 0")))
        .collect();

    let keep_markers: MarkerSet =
        keep_set.iter().flat_map(|v| [Marker::Open(v), Marker::Close(v)]).collect();

    // ε-edges: projected-away variable transitions whose label becomes empty.
    let mut eps: Vec<Vec<StateId>> = vec![Vec::new(); eva.num_states()];
    for (q, t) in eva.all_var_transitions() {
        if t.markers.intersection(&keep_markers).is_empty() {
            eps[q].push(t.target);
        }
    }

    let mut b = EvaBuilder::new(new_registry);
    let states = b.add_states(eva.num_states());
    b.set_initial(states[eva.initial()]);
    for q in 0..eva.num_states() {
        // Final states: q is final, or q reaches a final state through one ε-edge
        // (a projected-away final variable transition).
        if eva.is_final(q) || eps[q].iter().any(|&p| eva.is_final(p)) {
            b.set_final(states[q]);
        }
        // Surviving variable transitions, with their labels restricted to Y.
        for t in eva.var_transitions(q) {
            let restricted = t.markers.intersection(&keep_markers);
            if !restricted.is_empty() {
                b.add_var(states[q], remap_markers(restricted, &old_to_new), states[t.target])?;
            }
        }
        // Letter transitions: from q directly, and from every ε-successor of q.
        for t in eva.letter_transitions(q) {
            b.add_letter(states[q], t.class, states[t.target]);
        }
        for &p in &eps[q] {
            for t in eva.letter_transitions(p) {
                b.add_letter(states[q], t.class, states[t.target]);
            }
        }
    }
    trim(&b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{
        dedup_mappings, join_mapping_sets, project_mapping_set, union_mapping_sets, Document,
        Mapping,
    };

    /// A functional eVA over variable `name`: extracts every span consisting of
    /// a single lowercase word surrounded by anything.
    fn word_spanner(var: &str, class: ByteClass) -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern(var).unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.set_initial(q0);
        b.set_final(q2);
        let any = ByteClass::any();
        b.add_letter(q0, any, q0);
        b.add_letter(q1, class, q1);
        b.add_letter(q2, any, q2);
        b.add_var(q0, MarkerSet::new().with_open(x), q1).unwrap();
        b.add_var(q1, MarkerSet::new().with_close(x), q2).unwrap();
        b.build().unwrap()
    }

    /// Projects naive evaluation results to compare against automaton-level ops.
    fn naive(eva: &Eva, doc: &Document) -> Vec<Mapping> {
        eva.eval_naive(doc)
    }

    #[test]
    fn remap_markers_by_map() {
        let a = VarId::new(0).unwrap();
        let b = VarId::new(1).unwrap();
        let c = VarId::new(2).unwrap();
        let ms = MarkerSet::new().with_open(a).with_close(b);
        let remapped = remap_markers(ms, &[c, a]);
        assert!(remapped.opens(c));
        assert!(remapped.closes(a));
        assert_eq!(remapped.len(), 2);
    }

    #[test]
    fn join_of_independent_variables() {
        // x captures a digit span, y captures a letter span; the join produces
        // the cartesian combinations that are compatible (here: all pairs).
        let a1 = word_spanner("x", ByteClass::ascii_digits());
        let a2 = word_spanner("y", ByteClass::ascii_alpha());
        let j = join(&a1, &a2).unwrap();
        assert!(j.is_functional());
        assert!(j.num_states() <= a1.num_states() * a2.num_states());
        let doc = Document::from("a1b");
        let expected =
            join_mapping_sets(&naive_rebased(&a1, &j, &doc), &naive_rebased(&a2, &j, &doc));
        let mut got = naive(&j, &doc);
        dedup_mappings(&mut got);
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    /// Evaluates `a` naively and remaps its variables into `target`'s registry
    /// (needed because join merges registries by name).
    fn naive_rebased(a: &Eva, target: &Eva, doc: &Document) -> Vec<Mapping> {
        let out = a.eval_naive(doc);
        out.into_iter()
            .map(|m| {
                m.iter()
                    .map(|(v, s)| {
                        let name = a.registry().name(v);
                        (target.registry().get(name).unwrap(), s)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn join_with_shared_variable_synchronizes() {
        // Both automata capture `x`; the join keeps only the spans both accept:
        // digit-only spans that are also alphanumeric spans = digit-only spans.
        let a1 = word_spanner("x", ByteClass::ascii_digits());
        let a2 = word_spanner("x", ByteClass::ascii_word());
        let j = join(&a1, &a2).unwrap();
        let doc = Document::from("ab12cd");
        let mut got = naive(&j, &doc);
        dedup_mappings(&mut got);
        let expected = naive_rebased(&a1, &j, &doc);
        assert_eq!(got, expected);
        // sanity: the digit spanner finds the spans "1", "2", "12"
        assert_eq!(expected.len(), 3);
    }

    #[test]
    fn join_rejects_non_functional_inputs() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.set_final(q0); // accepting without assigning x => not functional
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        let not_functional = b.build().unwrap();
        let ok = word_spanner("y", ByteClass::ascii_alpha());
        assert!(join(&not_functional, &ok).is_err());
        assert!(join(&ok, &not_functional).is_err());
    }

    #[test]
    fn union_combines_results() {
        let a1 = word_spanner("x", ByteClass::ascii_digits());
        let a2 = word_spanner("x", ByteClass::ascii_alpha());
        let u = union(&a1, &a2).unwrap();
        let doc = Document::from("a1");
        let mut got = naive(&u, &doc);
        dedup_mappings(&mut got);
        let expected =
            union_mapping_sets(&naive_rebased(&a1, &u, &doc), &naive_rebased(&a2, &u, &doc));
        assert_eq!(got, expected);
        assert_eq!(u.num_states(), a1.num_states() + a2.num_states() + 1);
    }

    #[test]
    fn union_deterministic_preserves_determinism() {
        let a1 = word_spanner("x", ByteClass::ascii_digits());
        let a2 = word_spanner("x", ByteClass::ascii_alpha());
        assert!(a1.is_deterministic() && a2.is_deterministic());
        let u = union_deterministic(&a1, &a2).unwrap();
        assert!(u.is_deterministic());
        for text in ["a1", "1a", "..", "abc123"] {
            let doc = Document::from(text);
            let mut got = naive(&u, &doc);
            dedup_mappings(&mut got);
            let expected =
                union_mapping_sets(&naive_rebased(&a1, &u, &doc), &naive_rebased(&a2, &u, &doc));
            assert_eq!(got, expected, "on {text:?}");
        }
        // Plain union of these two automata is *not* deterministic (the fresh
        // initial state copies overlapping transitions).
        let plain = union(&a1, &a2).unwrap();
        assert!(!plain.is_deterministic());
    }

    #[test]
    fn union_of_identical_automata_is_idempotent_semantically() {
        let a = word_spanner("x", ByteClass::ascii_digits());
        let u = union(&a, &a).unwrap();
        let doc = Document::from("12");
        let mut got = naive(&u, &doc);
        dedup_mappings(&mut got);
        assert_eq!(got, naive_rebased(&a, &u, &doc));
    }

    #[test]
    fn projection_drops_variables() {
        // Join x (digits) with y (letters), then project to x: should equal the
        // plain x spanner whenever a y-span exists at all in the document.
        let a1 = word_spanner("x", ByteClass::ascii_digits());
        let a2 = word_spanner("y", ByteClass::ascii_alpha());
        let j = join(&a1, &a2).unwrap();
        let p = project(&j, &["x"]).unwrap();
        assert_eq!(p.registry().len(), 1);
        let doc = Document::from("a1b2");
        let mut got = naive(&p, &doc);
        dedup_mappings(&mut got);
        let joined = naive(&j, &doc);
        let keep: VarSet = [j.registry().get("x").unwrap()].into_iter().collect();
        let mut expected: Vec<Mapping> = project_mapping_set(&joined, &keep)
            .into_iter()
            .map(|m| {
                // remap from j's registry to p's registry (x keeps index 0 here)
                m.iter()
                    .map(|(v, s)| (p.registry().get(j.registry().name(v)).unwrap(), s))
                    .collect()
            })
            .collect();
        dedup_mappings(&mut expected);
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn projection_to_empty_set_yields_boolean_spanner() {
        let a = word_spanner("x", ByteClass::ascii_digits());
        let p = project(&a, &[]).unwrap();
        assert_eq!(p.registry().len(), 0);
        // Non-empty result iff the document contains a digit.
        let got = naive(&p, &Document::from("ab3cd"));
        assert_eq!(got, vec![Mapping::new()]);
        let got = naive(&p, &Document::from("abcd"));
        assert!(got.is_empty());
    }

    #[test]
    fn projection_rejects_non_functional() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        reg.intern("y").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.set_final(q1);
        b.set_final(q0);
        b.add_var(q0, MarkerSet::new().with_open(x).with_close(x), q1).unwrap();
        let eva = b.build().unwrap();
        assert!(project(&eva, &["x"]).is_err());
    }

    #[test]
    fn join_size_is_at_most_quadratic() {
        // Proposition 4.4: |A⋈| ≤ |A1| × |A2| states.
        for (c1, c2) in [
            (ByteClass::ascii_digits(), ByteClass::ascii_alpha()),
            (ByteClass::ascii_word(), ByteClass::ascii_alpha()),
        ] {
            let a1 = word_spanner("x", c1);
            let a2 = word_spanner("y", c2);
            let j = join(&a1, &a2).unwrap();
            assert!(j.num_states() <= a1.num_states() * a2.num_states());
        }
    }
}
