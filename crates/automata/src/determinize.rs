//! Determinization of extended VA (Proposition 3.2) and automaton trimming.
//!
//! The construction is the classical subset construction, treating every
//! distinct marker set as its own input symbol and working over the automaton's
//! *alphabet equivalence classes* rather than over all 256 bytes. The result is
//! deterministic, and it preserves sequentiality and functionality: a run of the
//! determinized automaton over a given label sequence exists iff a run of the
//! original automaton over the same label sequence exists, and validity is a
//! property of the label sequence alone.

use spanners_core::byteclass::{AlphabetPartition, ByteClass};
use spanners_core::eva::StateId;
use spanners_core::{Eva, EvaBuilder, MarkerSet, SpannerError};
use std::collections::HashMap;

/// Determinizes an extended VA via the subset construction (Proposition 3.2).
///
/// `max_states` bounds the number of subset states; exceeding it returns
/// [`SpannerError::BudgetExceeded`]. The bound `2^n` of the paper is a worst
/// case — most practical spanners determinize to far fewer states.
pub fn determinize(eva: &Eva, max_states: usize) -> Result<Eva, SpannerError> {
    let partition = AlphabetPartition::from_classes(eva.letter_classes().iter());
    let ncls = partition.num_classes();

    let mut builder = EvaBuilder::new(eva.registry().clone());
    // Map from subset (sorted state vector) to the new state id.
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut worklist: Vec<Vec<StateId>> = Vec::new();

    let start = vec![eva.initial()];
    let s0 = builder.add_state();
    builder.set_initial(s0);
    index.insert(start.clone(), s0);
    worklist.push(start);

    while let Some(subset) = worklist.pop() {
        let from = index[&subset];
        if subset.iter().any(|&q| eva.is_final(q)) {
            builder.set_final(from);
        }

        // --- Extended variable transitions: group targets by marker set. ---
        let mut by_markers: HashMap<MarkerSet, Vec<StateId>> = HashMap::new();
        for &q in &subset {
            for t in eva.var_transitions(q) {
                by_markers.entry(t.markers).or_default().push(t.target);
            }
        }
        // Deterministic iteration order for reproducible automata.
        let mut marker_keys: Vec<MarkerSet> = by_markers.keys().copied().collect();
        marker_keys.sort();
        for markers in marker_keys {
            let mut targets = by_markers.remove(&markers).expect("key collected above");
            targets.sort_unstable();
            targets.dedup();
            let to = intern_subset(&mut builder, &mut index, &mut worklist, targets, max_states)?;
            builder.add_var(from, markers, to)?;
        }

        // --- Letter transitions: group targets per alphabet class, then merge
        //     classes that lead to the same target subset. ---
        let mut per_class: Vec<Vec<StateId>> = vec![Vec::new(); ncls];
        for &q in &subset {
            for t in eva.letter_transitions(q) {
                for cls in partition.classes_intersecting(&t.class) {
                    per_class[cls].push(t.target);
                }
            }
        }
        let mut by_target: HashMap<Vec<StateId>, ByteClass> = HashMap::new();
        for (cls, mut targets) in per_class.into_iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            targets.sort_unstable();
            targets.dedup();
            let entry = by_target.entry(targets).or_insert_with(ByteClass::empty);
            // Collect all bytes of this alphabet class into the merged label.
            for b in 0..=255u8 {
                if partition.class_of(b) == cls {
                    entry.insert(b);
                }
            }
        }
        let mut target_keys: Vec<Vec<StateId>> = by_target.keys().cloned().collect();
        target_keys.sort();
        for targets in target_keys {
            let class = by_target.remove(&targets).expect("key collected above");
            let to = intern_subset(&mut builder, &mut index, &mut worklist, targets, max_states)?;
            builder.add_letter(from, class, to);
        }
    }
    builder.build()
}

/// Looks up or creates the subset state for `targets`.
fn intern_subset(
    builder: &mut EvaBuilder,
    index: &mut HashMap<Vec<StateId>, StateId>,
    worklist: &mut Vec<Vec<StateId>>,
    targets: Vec<StateId>,
    max_states: usize,
) -> Result<StateId, SpannerError> {
    if let Some(&id) = index.get(&targets) {
        return Ok(id);
    }
    if builder.num_states() >= max_states {
        return Err(SpannerError::BudgetExceeded {
            what: "determinization (Proposition 3.2)",
            limit: max_states,
        });
    }
    let id = builder.add_state();
    index.insert(targets.clone(), id);
    worklist.push(targets);
    Ok(id)
}

/// Removes states that are unreachable from the initial state or cannot reach a
/// final state, remapping the remainder. The initial state is always kept.
pub fn trim(eva: &Eva) -> Result<Eva, SpannerError> {
    let reach = eva.reachable_states();
    let co = eva.coreachable_states();
    let keep: Vec<bool> =
        (0..eva.num_states()).map(|q| (reach[q] && co[q]) || q == eva.initial()).collect();

    let mut builder = EvaBuilder::new(eva.registry().clone());
    let mut remap: Vec<Option<StateId>> = vec![None; eva.num_states()];
    for q in 0..eva.num_states() {
        if keep[q] {
            remap[q] = Some(builder.add_state());
        }
    }
    builder.set_initial(remap[eva.initial()].expect("initial state kept"));
    for q in 0..eva.num_states() {
        let Some(nq) = remap[q] else { continue };
        if eva.is_final(q) {
            builder.set_final(nq);
        }
        for t in eva.letter_transitions(q) {
            if let Some(nt) = remap[t.target] {
                builder.add_letter(nq, t.class, nt);
            }
        }
        for t in eva.var_transitions(q) {
            if let Some(nt) = remap[t.target] {
                builder.add_var(nq, t.markers, nt)?;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanners_core::{dedup_mappings, DetSeva, Document, EnumerationDag, VarRegistry};

    /// A non-deterministic eVA: two transitions with the same marker set leave
    /// the initial state, and overlapping byte classes leave q1.
    fn nondet_eva() -> Eva {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let q3 = b.add_state();
        b.set_initial(q0);
        b.set_final(q3);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x), q1).unwrap();
        b.add_var(q0, ms().with_open(x), q2).unwrap();
        b.add_letter(q1, ByteClass::range(b'a', b'm'), q1);
        b.add_letter(q1, ByteClass::range(b'g', b'z'), q2);
        b.add_letter(q2, ByteClass::range(b'a', b'z'), q2);
        b.add_var(q1, ms().with_close(x), q3).unwrap();
        b.add_var(q2, ms().with_close(x), q3).unwrap();
        b.add_letter(q3, ByteClass::any(), q3);
        b.build().unwrap()
    }

    #[test]
    fn determinize_produces_deterministic_equivalent() {
        let eva = nondet_eva();
        assert!(!eva.is_deterministic());
        assert!(eva.is_sequential());
        let det = determinize(&eva, 1 << 16).unwrap();
        assert!(det.is_deterministic());
        assert!(det.is_sequential());
        for text in ["", "a", "g", "z", "ag", "gz", "abcxyz", "zzz"] {
            let doc = Document::from(text);
            assert_eq!(det.eval_naive(&doc), eva.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn determinized_automaton_feeds_constant_delay_algorithm() {
        let eva = nondet_eva();
        let det = determinize(&eva, 1 << 16).unwrap();
        let aut = DetSeva::compile_trusted(&det).unwrap();
        for text in ["abc", "gggg", "amz"] {
            let doc = Document::from(text);
            let dag = EnumerationDag::build(&aut, &doc);
            let got = dag.collect_mappings();
            // No duplicates even though the source automaton had duplicate runs.
            let mut dedup = got.clone();
            dedup_mappings(&mut dedup);
            assert_eq!(got.len(), dedup.len(), "duplicates on {text:?}");
            assert_eq!(dedup, eva.eval_naive(&doc), "mismatch on {text:?}");
        }
    }

    #[test]
    fn determinize_preserves_functionality() {
        let eva = nondet_eva();
        assert!(eva.is_functional());
        let det = determinize(&eva, 1 << 16).unwrap();
        assert!(det.is_functional());
    }

    #[test]
    fn determinize_budget_enforced() {
        let eva = nondet_eva();
        let err = determinize(&eva, 2).unwrap_err();
        assert!(matches!(err, SpannerError::BudgetExceeded { .. }));
    }

    #[test]
    fn determinize_is_idempotent_up_to_size() {
        let eva = nondet_eva();
        let det1 = determinize(&eva, 1 << 16).unwrap();
        let det2 = determinize(&det1, 1 << 16).unwrap();
        // Determinizing an already-deterministic automaton reachable from the
        // initial state cannot increase the number of states.
        assert!(det2.num_states() <= det1.num_states());
        for text in ["", "abc", "zzz"] {
            let doc = Document::from(text);
            assert_eq!(det1.eval_naive(&doc), det2.eval_naive(&doc));
        }
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut reg = VarRegistry::new();
        let x = reg.intern("x").unwrap();
        let mut b = EvaBuilder::new(reg);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let dead = b.add_state(); // reachable but cannot reach a final state
        let orphan = b.add_state(); // unreachable
        let fin = b.add_state();
        b.set_initial(q0);
        b.set_final(fin);
        let ms = MarkerSet::new;
        b.add_var(q0, ms().with_open(x).with_close(x), q1).unwrap();
        b.add_byte(q1, b'a', fin);
        b.add_byte(q1, b'x', dead);
        b.add_byte(orphan, b'y', fin);
        let eva = b.build().unwrap();
        let trimmed = trim(&eva).unwrap();
        assert_eq!(trimmed.num_states(), 3);
        for text in ["a", "x", "", "aa"] {
            let doc = Document::from(text);
            assert_eq!(trimmed.eval_naive(&doc), eva.eval_naive(&doc), "on {text:?}");
        }
    }

    #[test]
    fn trim_keeps_initial_even_if_language_empty() {
        let mut b = EvaBuilder::new(VarRegistry::new());
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_initial(q0);
        b.add_byte(q0, b'a', q1);
        // no final states at all
        let eva = b.build().unwrap();
        let trimmed = trim(&eva).unwrap();
        assert_eq!(trimmed.num_states(), 1);
        assert!(trimmed.eval_naive(&Document::from("a")).is_empty());
    }

    #[test]
    fn determinize_merges_letter_classes_per_target() {
        // q1's overlapping ranges are split into alphabet classes and regrouped:
        // the determinized automaton must still be deterministic on every byte.
        let eva = nondet_eva();
        let det = determinize(&eva, 1 << 16).unwrap();
        for q in 0..det.num_states() {
            let ts = det.letter_transitions(q);
            for i in 0..ts.len() {
                for j in (i + 1)..ts.len() {
                    assert!(!ts[i].class.intersects(&ts[j].class));
                }
            }
        }
    }
}
